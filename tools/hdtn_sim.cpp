// hdtn_sim — run the cooperative file-sharing simulation.
//
//   hdtn_tracegen --family=nus --out=nus.trace
//   hdtn_sim --trace=nus.trace --protocol=mbt --access=0.3 ...
//       --files-per-day=40 --ttl-days=3
//   hdtn_sim --scenario=examples/nus_paper.scenario --seed=7
//
// The run is configured by a core::Scenario: either built from the command
// line alone, or loaded from a scenario file (--scenario) with every other
// flag applied on top as an override. Scenario keys and flag names are
// identical (see docs/FAULTS.md for the file format).
//
// Prints the delivery report; --csv emits a single machine-readable row.
// --events-out writes a JSONL event trace and --timeseries-out a sampled
// delivery/totals CSV (see docs/OBSERVABILITY.md).
//
// `hdtn_sim --serve --state-dir=DIR` instead runs the resident sweep
// service: a daemon that accepts scenario jobs over a Unix socket (see
// hdtn_sweepctl and docs/SERVICE.md) and executes them in worker
// subprocesses — which are this same binary, run with --scenario. A worker
// that receives SIGTERM saves a checkpoint at the next boundary and exits
// with code 75, so the service can preempt and later resume it.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/core/download_planner.hpp"
#include "src/core/scenario.hpp"
#include "src/core/sharded_engine.hpp"
#include "src/service/daemon.hpp"
#include "src/service/exec.hpp"
#include "src/trace/contact_trace.hpp"
#include "src/util/args.hpp"

using namespace hdtn;

namespace {

int usage() {
  const std::vector<FlagHelp> flags = {
      {"scenario=PATH", "load a key = value scenario file first"},
      {"trace=PATH", "contact trace file (or trace-family=nus|dieselnet|rwp)"},
      {"protocol=mbt|mbt-q|mbt-qm", "protocol variant (default mbt)"},
      {"scheduling=coop|tft", "download scheduling (default coop)"},
      {"download-mode=coop|tft|popularity|pairwise|coded",
       "download mode (registry name; docs/CODING.md)"},
      {"coded-redundancy=0.5", "coded: extra frames per deficit fraction"},
      {"coded-sparsity=0.5", "coded: coefficient-vector density"},
      {"access=0.3", "Internet-access fraction"},
      {"files-per-day=40", "files published per day"},
      {"ttl-days=3", "file/query time-to-live"},
      {"md-per-contact=5", "metadata budget per contact"},
      {"files-per-contact=2", "file budget per contact"},
      {"pieces-per-file=1", "pieces per published file"},
      {"free-riders=0.0", "free-riding fraction"},
      {"frequent-days=3", "frequent-contact window, days"},
      {"seed=42", "simulation seed"},
      {"observed-popularity", "rank by server-observed popularity"},
      {"loss-rate=0.0", "fault: per-message loss probability"},
      {"truncation-rate=0.0", "fault: contact truncation probability"},
      {"corruption-rate=0.0", "fault: piece corruption probability"},
      {"churn-fraction=0.0", "fault: long-run down-time fraction"},
      {"recovery-retries=0", "recovery: retransmission attempts per frame"},
      {"recovery-retransmit-budget=16", "recovery: resend slots per contact"},
      {"recovery-repair=0", "recovery: anti-entropy requests per contact"},
      {"recovery-failover", "recovery: elect a new clique coordinator"},
      {"md-capacity=0", "metadata records per node (0 = unbounded)"},
      {"adversary-fraction=0.0", "Byzantine fraction (docs/ADVERSARY.md)"},
      {"adversary-attacks=all",
       "attack mask: pollution,piece-lie,false-summary,ack-spoof,coordinator"},
      {"defense", "enable verification + quarantine defenses"},
      {"quarantine-threshold=3.0", "suspicion level that quarantines a node"},
      {"shards=0", "run sharded: component scheduling groups (0 = classic)"},
      {"threads=1", "sharded: worker threads (0 = hardware concurrency)"},
      {"csv", "one CSV row instead of the report"},
      {"events-out=PATH", "JSONL event trace (docs/OBSERVABILITY.md)"},
      {"timeseries-out=PATH", "sampled delivery/totals CSV"},
      {"sample-every=21600", "time-series cadence, sim seconds"},
      {"checkpoint-out=PATH", "periodic checkpoint (docs/CHECKPOINT.md)"},
      {"checkpoint-every=21600", "checkpoint cadence, sim seconds"},
      {"resume", "restore from checkpoint-out if it exists"},
      {"serve", "run the sweep service instead (docs/SERVICE.md)"},
      {"state-dir=DIR", "serve: queue + job state directory (required)"},
      {"socket=PATH", "serve: control socket (default DIR/daemon.sock)"},
      {"workers=2", "serve: worker subprocess slots"},
      {"max-queue=256", "serve: backpressure depth; submissions past it shed"},
      {"job-timeout=600", "serve: wall-clock seconds per attempt"},
      {"max-attempts=3", "serve: attempts per job"},
      {"grace=5", "serve: seconds between SIGTERM and SIGKILL"},
      {"wal-max-bytes=1048576", "serve: queue WAL size before compaction"},
      {"job-checkpoint-every=21600",
       "serve: checkpoint cadence injected into jobs, sim seconds"},
  };
  std::fputs(formatUsage("hdtn_sim --trace=PATH|--scenario=PATH [options]",
                         flags)
                 .c_str(),
             stderr);
  return 2;
}

/// Flag-style spelling (the CSV row's protocol column, stable since v0).
const char* protocolFlagName(core::ProtocolKind kind) {
  switch (kind) {
    case core::ProtocolKind::kMbt: return "mbt";
    case core::ProtocolKind::kMbtQ: return "mbt-q";
    case core::ProtocolKind::kMbtQm: return "mbt-qm";
  }
  return "mbt";
}

// --- worker preemption ------------------------------------------------
// The service stops a worker with SIGTERM; the handler sets this flag and
// runScenario saves a checkpoint at the next boundary (scenario.cpp).
volatile std::sig_atomic_t g_preemptRequested = 0;

void onWorkerSigterm(int) { g_preemptRequested = 1; }

// --- service mode -----------------------------------------------------
service::Daemon* g_daemon = nullptr;

void onDaemonSignal(int) {
  if (g_daemon != nullptr) g_daemon->requestShutdown();
}

/// The worker binary the daemon launches is this very executable.
std::string selfExecutable(const char* argv0) {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
  return argv0;
}

int runServe(ArgParser& args, const char* argv0) {
  service::DaemonConfig config;
  config.stateDir = args.getString("state-dir", "");
  config.socketPath =
      args.getString("socket", config.stateDir + "/daemon.sock");
  config.workerExe = selfExecutable(argv0);
  config.workers = static_cast<std::size_t>(args.getInt("workers", 2));
  config.queueLimits.maxDepth =
      static_cast<std::size_t>(args.getInt("max-queue", 256));
  config.queueLimits.maxWalBytes =
      static_cast<std::uint64_t>(args.getInt("wal-max-bytes", 1 << 20));
  config.jobTimeoutSeconds = args.getDouble("job-timeout", 600.0);
  config.retry.maxAttempts =
      static_cast<int>(args.getInt("max-attempts", 3));
  config.graceSeconds = args.getDouble("grace", 5.0);
  config.checkpointEverySimSeconds =
      args.getInt("job-checkpoint-every", 21600);
  if (!args.ok("hdtn_sim")) return 2;
  if (config.stateDir.empty()) {
    std::fprintf(stderr, "error: --serve requires --state-dir=DIR\n");
    return 2;
  }
  if (config.workers == 0) {
    std::fprintf(stderr, "error: --workers must be at least 1\n");
    return 2;
  }

  service::Daemon daemon(std::move(config));
  std::string error;
  if (!daemon.start(&error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  g_daemon = &daemon;
  std::signal(SIGTERM, onDaemonSignal);
  std::signal(SIGINT, onDaemonSignal);
  std::fprintf(stderr, "serving on %s (state in %s, %zu workers)\n",
               daemon.config().socketPath.c_str(),
               daemon.config().stateDir.c_str(), daemon.config().workers);
  daemon.runLoop();
  g_daemon = nullptr;
  std::fprintf(stderr, "service stopped; queue persisted\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.helpRequested()) return usage();
  if (args.getBool("serve", false)) return runServe(args, argv[0]);

  core::Scenario scenario;
  const std::string scenarioPath = args.getString("scenario", "");
  if (!scenarioPath.empty()) {
    std::vector<std::string> fileErrors;
    const auto loaded = core::Scenario::fromFile(scenarioPath, &fileErrors);
    if (!loaded) {
      for (const std::string& error : fileErrors) {
        std::fprintf(stderr, "error: %s: %s\n", scenarioPath.c_str(),
                     error.c_str());
      }
      return 2;
    }
    scenario = *loaded;
  }

  // Every scenario key doubles as a flag; flags override the file.
  for (const std::string& key : core::Scenario::knownKeys()) {
    if (!args.has(key)) continue;
    const std::string error = scenario.apply(key, args.getString(key, ""));
    if (!error.empty()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
  }
  const bool csv = args.getBool("csv", false);
  const auto shards = static_cast<std::uint32_t>(args.getInt("shards", 0));
  const auto threads = static_cast<unsigned>(args.getInt("threads", 1));
  if (!args.ok("hdtn_sim")) return 2;

  if (scenarioPath.empty() && scenario.trace.family == "file" &&
      scenario.trace.path.empty()) {
    return usage();
  }
  const auto scenarioErrors = scenario.validate();
  for (const auto& error : scenarioErrors) {
    std::fprintf(stderr, "error: invalid parameters: %s\n", error.c_str());
  }
  if (!scenarioErrors.empty()) return 2;

  std::string error;
  const auto trace = scenario.trace.build(&error);
  if (!trace) {
    // A trace that cannot be built (missing file, bad generator knobs) is a
    // deterministic input error, not a transient one: exit 2 like the other
    // validation failures so a supervisor fails fast instead of retrying.
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }

  core::EngineResult result;
  if (shards > 0) {
    // Sharded path: one engine per contact-connected component, stepped on
    // a worker pool. Results are byte-identical at every shards/threads
    // setting (docs/SCALING.md); the per-engine observability sinks are not
    // wired through it.
    if (!scenario.eventsOut.empty() || !scenario.timeseriesOut.empty() ||
        !scenario.checkpointOut.empty()) {
      std::fprintf(stderr,
                   "error: --shards does not support --events-out, "
                   "--timeseries-out, or --checkpoint-out\n");
      return 2;
    }
    core::ShardedParams sharded;
    sharded.engine = scenario.params;
    sharded.shards = shards;
    sharded.threads = threads;
    try {
      core::ShardedEngine engine(*trace, sharded);
      std::fprintf(stderr, "sharded: %zu components in %zu groups\n",
                   engine.componentCount(), engine.shardCount());
      result = engine.run();
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
  } else {
    if (!scenario.checkpointOut.empty()) {
      // Cooperative preemption for checkpointing runs: SIGTERM asks the
      // engine to save state at the next boundary and stop.
      core::setScenarioStopFlag(&g_preemptRequested);
      std::signal(SIGTERM, onWorkerSigterm);
    }
    const auto outcome = core::runScenario(scenario, *trace, &error);
    if (!outcome) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    if (outcome->preempted) {
      std::fprintf(stderr, "preempted: checkpoint saved to %s\n",
                   scenario.checkpointOut.c_str());
      return service::kPreemptedExitCode;
    }
    result = outcome->result;
    if (outcome->resumed) {
      std::fprintf(stderr, "resumed from checkpoint %s\n",
                   scenario.checkpointOut.c_str());
    }
    if (!scenario.eventsOut.empty()) {
      std::fprintf(stderr, "events: %llu written to %s\n",
                   static_cast<unsigned long long>(outcome->eventsWritten),
                   scenario.eventsOut.c_str());
    }
  }

  if (csv) {
    std::printf(
        "protocol,access,metadata_ratio,file_ratio,mean_md_delay_s,"
        "mean_file_delay_s,queries,contacts\n");
    std::printf("%s,%.3f,%.4f,%.4f,%.1f,%.1f,%zu,%llu\n",
                protocolFlagName(scenario.params.protocol.kind),
                scenario.params.internetAccessFraction,
                result.delivery.metadataRatio, result.delivery.fileRatio,
                result.delivery.meanMetadataDelaySeconds,
                result.delivery.meanFileDelaySeconds,
                result.delivery.queries,
                static_cast<unsigned long long>(
                    result.totals.contactsProcessed));
    return 0;
  }

  const std::string traceLabel = scenario.trace.family == "file"
                                     ? scenario.trace.path
                                     : scenario.trace.family;
  std::printf("trace: %s (%zu nodes, %zu contacts)\n", traceLabel.c_str(),
              trace->nodeCount(), trace->contactCount());
  std::printf("protocol: %s (%s download mode)\n",
              core::protocolName(scenario.params.protocol.kind),
              core::downloadModeName(scenario.params.downloadMode,
                                     scenario.params.protocol.scheduling));
  std::printf("\nnon-access nodes (%zu queries):\n", result.delivery.queries);
  std::printf("  metadata delivery ratio: %.4f (mean delay %.1f h)\n",
              result.delivery.metadataRatio,
              result.delivery.meanMetadataDelaySeconds / 3600.0);
  std::printf("  file delivery ratio:     %.4f (mean delay %.1f h)\n",
              result.delivery.fileRatio,
              result.delivery.meanFileDelaySeconds / 3600.0);
  std::printf("\naccess nodes (%zu queries): metadata %.3f, file %.3f\n",
              result.accessDelivery.queries,
              result.accessDelivery.metadataRatio,
              result.accessDelivery.fileRatio);
  std::printf("\ntraffic: %llu metadata broadcasts, %llu piece broadcasts "
              "over %llu contacts\n",
              static_cast<unsigned long long>(
                  result.totals.metadataBroadcasts),
              static_cast<unsigned long long>(result.totals.pieceBroadcasts),
              static_cast<unsigned long long>(
                  result.totals.contactsProcessed));
  const core::EngineTotals& totals = result.totals;
  if (totals.faultMessagesDropped != 0 || totals.faultContactsTruncated != 0 ||
      totals.faultPiecesRejectedCorrupt != 0 ||
      totals.faultNodeDownIntervals != 0) {
    std::printf("faults: %llu messages lost, %llu contacts truncated, "
                "%llu pieces corrupt, %llu down intervals\n",
                static_cast<unsigned long long>(totals.faultMessagesDropped),
                static_cast<unsigned long long>(totals.faultContactsTruncated),
                static_cast<unsigned long long>(
                    totals.faultPiecesRejectedCorrupt),
                static_cast<unsigned long long>(
                    totals.faultNodeDownIntervals));
  }
  if (totals.codedBroadcasts != 0) {
    std::printf("coded: %llu frames (%llu innovative, %llu redundant), "
                "%llu generations decoded, %llu corrupt, %llu row ops\n",
                static_cast<unsigned long long>(totals.codedBroadcasts),
                static_cast<unsigned long long>(totals.codedInnovativeFrames),
                static_cast<unsigned long long>(totals.codedRedundantFrames),
                static_cast<unsigned long long>(totals.generationsDecoded),
                static_cast<unsigned long long>(totals.codedDecodeFailures),
                static_cast<unsigned long long>(totals.codedDecodeRowOps));
  }
  if (totals.recoveryRetransmits != 0 || totals.repairRequests != 0 ||
      totals.coordinatorFailovers != 0 || totals.metadataEvictions != 0) {
    std::printf("recovery: %llu retransmits (%llu recovered), %llu repair "
                "requests, %llu failovers, %llu metadata evictions\n",
                static_cast<unsigned long long>(totals.recoveryRetransmits),
                static_cast<unsigned long long>(totals.recoveryRedeliveries),
                static_cast<unsigned long long>(totals.repairRequests),
                static_cast<unsigned long long>(totals.coordinatorFailovers),
                static_cast<unsigned long long>(totals.metadataEvictions));
  }
  if (totals.adversaryAttacks != 0 || totals.nodesQuarantined != 0) {
    std::printf("adversary: %llu attacks (%llu polluted, %llu lies, "
                "%llu forged summaries, %llu spoofed acks, %llu suppressed), "
                "%llu rollbacks, %llu quarantined (%llu released)\n",
                static_cast<unsigned long long>(totals.adversaryAttacks),
                static_cast<unsigned long long>(totals.pollutionInjected),
                static_cast<unsigned long long>(totals.piecesLied),
                static_cast<unsigned long long>(totals.summariesForged),
                static_cast<unsigned long long>(totals.acksSpoofed),
                static_cast<unsigned long long>(totals.broadcastsSuppressed),
                static_cast<unsigned long long>(totals.generationsRolledBack),
                static_cast<unsigned long long>(totals.nodesQuarantined),
                static_cast<unsigned long long>(totals.nodesReleased));
  }
  return 0;
}
