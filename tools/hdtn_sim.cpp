// hdtn_sim — run the cooperative file-sharing simulation on a trace file.
//
//   hdtn_tracegen --family=nus --out=nus.trace
//   hdtn_sim --trace=nus.trace --protocol=mbt --access=0.3 ...
//       --files-per-day=40 --ttl-days=3
//
// Prints the delivery report; --csv emits a single machine-readable row.
// --events-out writes a JSONL event trace and --timeseries-out a sampled
// delivery/totals CSV (see docs/OBSERVABILITY.md).
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "src/core/engine.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/timeseries.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/args.hpp"

using namespace hdtn;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: hdtn_sim --trace=PATH [options]\n"
      "  --protocol=mbt|mbt-q|mbt-qm   (default mbt)\n"
      "  --scheduling=coop|tft         (default coop)\n"
      "  --access=0.3                  Internet-access fraction\n"
      "  --files-per-day=40 --ttl-days=3\n"
      "  --md-per-contact=5 --files-per-contact=2 --pieces-per-file=1\n"
      "  --free-riders=0.0 --frequent-days=3 --seed=42\n"
      "  --observed-popularity         rank by server-observed popularity\n"
      "  --csv                         one CSV row instead of the report\n"
      "  --events-out=PATH             JSONL event trace "
      "(docs/OBSERVABILITY.md)\n"
      "  --timeseries-out=PATH         sampled delivery/totals CSV\n"
      "  --sample-every=21600          time-series cadence, sim seconds\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string tracePath = args.getString("trace", "");
  if (tracePath.empty()) return usage();

  std::string error;
  const auto trace = trace::loadTraceFile(tracePath, &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  core::EngineParams params;
  const std::string protocol = args.getString("protocol", "mbt");
  if (protocol == "mbt") {
    params.protocol.kind = core::ProtocolKind::kMbt;
  } else if (protocol == "mbt-q") {
    params.protocol.kind = core::ProtocolKind::kMbtQ;
  } else if (protocol == "mbt-qm") {
    params.protocol.kind = core::ProtocolKind::kMbtQm;
  } else {
    return usage();
  }
  const std::string scheduling = args.getString("scheduling", "coop");
  if (scheduling == "coop") {
    params.protocol.scheduling = core::Scheduling::kCooperative;
  } else if (scheduling == "tft") {
    params.protocol.scheduling = core::Scheduling::kTitForTat;
  } else {
    return usage();
  }
  params.internetAccessFraction = args.getDouble("access", 0.3);
  params.newFilesPerDay =
      static_cast<int>(args.getInt("files-per-day", 40));
  params.fileTtlDays = static_cast<int>(args.getInt("ttl-days", 3));
  params.metadataPerContact =
      static_cast<int>(args.getInt("md-per-contact", 5));
  params.filesPerContact =
      static_cast<int>(args.getInt("files-per-contact", 2));
  params.piecesPerFile =
      static_cast<std::uint32_t>(args.getInt("pieces-per-file", 1));
  params.freeRiderFraction = args.getDouble("free-riders", 0.0);
  params.frequentContactPeriod =
      args.getInt("frequent-days", 3) * kDay;
  params.useObservedPopularity = args.getBool("observed-popularity", false);
  params.seed = static_cast<std::uint64_t>(args.getInt("seed", 42));
  const bool csv = args.getBool("csv", false);
  const std::string eventsOut = args.getString("events-out", "");
  const std::string timeseriesOut = args.getString("timeseries-out", "");
  const Duration sampleEvery =
      static_cast<Duration>(args.getInt("sample-every", 21600));

  for (const auto& parseError : args.errors()) {
    std::fprintf(stderr, "error: %s\n", parseError.c_str());
    return 2;
  }
  for (const auto& flag : args.unusedFlags()) {
    std::fprintf(stderr, "error: unknown flag --%s\n", flag.c_str());
    return 2;
  }
  const auto paramErrors = params.validate();
  for (const auto& paramError : paramErrors) {
    std::fprintf(stderr, "error: invalid parameters: %s\n",
                 paramError.c_str());
  }
  if (!paramErrors.empty()) return 2;
  if (sampleEvery <= 0) {
    std::fprintf(stderr, "error: --sample-every must be positive\n");
    return 2;
  }

  core::EngineResult result;
  if (eventsOut.empty() && timeseriesOut.empty()) {
    result = core::runSimulation(*trace, params);
  } else {
    core::Engine engine(*trace, params);
    std::ofstream eventsFile;
    std::optional<obs::JsonlEventSink> sink;
    if (!eventsOut.empty()) {
      eventsFile.open(eventsOut);
      if (!eventsFile) {
        std::fprintf(stderr, "error: cannot write %s\n", eventsOut.c_str());
        return 1;
      }
      sink.emplace(eventsFile);
      engine.setObserver(&*sink);
    }
    if (!timeseriesOut.empty()) {
      obs::TimeSeries series;
      result = obs::runSampled(engine, sampleEvery, series);
      std::ofstream tsFile(timeseriesOut);
      if (!tsFile) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     timeseriesOut.c_str());
        return 1;
      }
      series.writeCsv(tsFile);
    } else {
      result = engine.run();
    }
    if (sink) {
      std::fprintf(stderr, "events: %llu written to %s\n",
                   static_cast<unsigned long long>(sink->eventsWritten()),
                   eventsOut.c_str());
    }
  }
  if (csv) {
    std::printf(
        "protocol,access,metadata_ratio,file_ratio,mean_md_delay_s,"
        "mean_file_delay_s,queries,contacts\n");
    std::printf("%s,%.3f,%.4f,%.4f,%.1f,%.1f,%zu,%llu\n", protocol.c_str(),
                params.internetAccessFraction,
                result.delivery.metadataRatio, result.delivery.fileRatio,
                result.delivery.meanMetadataDelaySeconds,
                result.delivery.meanFileDelaySeconds,
                result.delivery.queries,
                static_cast<unsigned long long>(
                    result.totals.contactsProcessed));
    return 0;
  }

  std::printf("trace: %s (%zu nodes, %zu contacts)\n", tracePath.c_str(),
              trace->nodeCount(), trace->contactCount());
  std::printf("protocol: %s (%s scheduling)\n",
              core::protocolName(params.protocol.kind), scheduling.c_str());
  std::printf("\nnon-access nodes (%zu queries):\n", result.delivery.queries);
  std::printf("  metadata delivery ratio: %.4f (mean delay %.1f h)\n",
              result.delivery.metadataRatio,
              result.delivery.meanMetadataDelaySeconds / 3600.0);
  std::printf("  file delivery ratio:     %.4f (mean delay %.1f h)\n",
              result.delivery.fileRatio,
              result.delivery.meanFileDelaySeconds / 3600.0);
  std::printf("\naccess nodes (%zu queries): metadata %.3f, file %.3f\n",
              result.accessDelivery.queries,
              result.accessDelivery.metadataRatio,
              result.accessDelivery.fileRatio);
  std::printf("\ntraffic: %llu metadata broadcasts, %llu piece broadcasts "
              "over %llu contacts\n",
              static_cast<unsigned long long>(
                  result.totals.metadataBroadcasts),
              static_cast<unsigned long long>(result.totals.pieceBroadcasts),
              static_cast<unsigned long long>(
                  result.totals.contactsProcessed));
  return 0;
}
