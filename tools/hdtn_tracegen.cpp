// hdtn_tracegen — generate synthetic contact traces.
//
//   hdtn_tracegen --family=dieselnet --buses=40 --days=20 --seed=1 ...
//       --out=diesel.trace
//   hdtn_tracegen --family=nus --students=200 --days=14 --attendance=0.85 ...
//       --out=nus.trace
//   hdtn_tracegen --family=rwp --nodes=50 --hours=12 --range=50 ...
//       --out=rwp.trace
//   hdtn_tracegen --family=city --nodes=5000 --districts=8 --out=city.trace
//
// Writes the hdtn text trace format (see src/trace/trace_io.hpp); omit
// --out to write to stdout. The city family materializes the (otherwise
// streaming) generator, so keep --nodes modest here; city-scale runs should
// stream instead (docs/SCALING.md).
#include <cstdio>
#include <iostream>

#include "src/trace/citygen.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/mobility.hpp"
#include "src/trace/nus.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/args.hpp"

using namespace hdtn;

namespace {

int usage() {
  const std::vector<FlagHelp> flags = {
      {"family=dieselnet|nus|rwp", "trace family (required)"},
      {"seed=1", "generator seed"},
      {"out=PATH", "output trace path (default stdout)"},
      {"buses=40", "dieselnet: bus count"},
      {"routes=8", "dieselnet: route count"},
      {"days=20", "dieselnet/nus: simulated days"},
      {"students=200", "nus: student count"},
      {"courses=40", "nus: course count"},
      {"courses-per-student=4", "nus: enrollment per student"},
      {"attendance=0.85", "nus: session attendance probability"},
      {"nodes=50", "rwp/city: node count"},
      {"hours=12", "rwp: simulated hours"},
      {"range=50", "rwp: radio range, meters"},
      {"field=1000", "rwp: square field side, meters"},
      {"districts=64", "city: district count (contacts never span them)"},
      {"city-days=1", "city: simulated days"},
  };
  std::fputs(
      formatUsage(
          "hdtn_tracegen --family=dieselnet|nus|rwp|city [options]", flags)
          .c_str(),
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.helpRequested()) return usage();
  const std::string family = args.getString("family", "");
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const std::string out = args.getString("out", "");

  trace::ContactTrace trace;
  if (family == "dieselnet") {
    trace::DieselNetParams p;
    p.buses = static_cast<int>(args.getInt("buses", 40));
    p.routes = static_cast<int>(args.getInt("routes", 8));
    p.days = static_cast<int>(args.getInt("days", 20));
    p.seed = seed;
    trace = trace::generateDieselNet(p);
  } else if (family == "nus") {
    trace::NusParams p;
    p.students = static_cast<int>(args.getInt("students", 200));
    p.courses = static_cast<int>(args.getInt("courses", 40));
    p.coursesPerStudent =
        static_cast<int>(args.getInt("courses-per-student", 4));
    p.days = static_cast<int>(args.getInt("days", 14));
    p.attendanceRate = args.getDouble("attendance", 0.85);
    p.seed = seed;
    trace = trace::generateNus(p);
  } else if (family == "rwp") {
    trace::RandomWaypointParams p;
    p.nodes = static_cast<int>(args.getInt("nodes", 50));
    p.duration = args.getInt("hours", 12) * kHour;
    p.radioRange = args.getDouble("range", 50.0);
    p.fieldWidth = p.fieldHeight = args.getDouble("field", 1000.0);
    p.seed = seed;
    trace = trace::generateRandomWaypoint(p);
  } else if (family == "city") {
    trace::CityParams p;
    p.nodes = static_cast<std::uint32_t>(args.getInt("nodes", 5000));
    p.districts = static_cast<std::uint32_t>(args.getInt("districts", 64));
    p.days = static_cast<int>(args.getInt("city-days", 1));
    p.seed = seed;
    const auto errors = p.validate();
    if (!errors.empty()) {
      for (const auto& error : errors) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
      }
      return 2;
    }
    trace = trace::generateCity(p);
  } else {
    return usage();
  }

  if (!args.ok("hdtn_tracegen")) return 2;

  if (out.empty()) {
    trace::writeTrace(trace, std::cout);
  } else {
    std::string error;
    if (!trace::saveTraceFile(trace, out, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu contacts over %zu nodes to %s\n",
                 trace.contactCount(), trace.nodeCount(), out.c_str());
  }
  return 0;
}
