// hdtn_tracegen — generate synthetic contact traces.
//
//   hdtn_tracegen --family=dieselnet --buses=40 --days=20 --seed=1 ...
//       --out=diesel.trace
//   hdtn_tracegen --family=nus --students=200 --days=14 --attendance=0.85 ...
//       --out=nus.trace
//   hdtn_tracegen --family=rwp --nodes=50 --hours=12 --range=50 ...
//       --out=rwp.trace
//
// Writes the hdtn text trace format (see src/trace/trace_io.hpp); omit
// --out to write to stdout.
#include <cstdio>
#include <iostream>

#include "src/trace/dieselnet.hpp"
#include "src/trace/mobility.hpp"
#include "src/trace/nus.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/args.hpp"

using namespace hdtn;

namespace {

int usage() {
  const std::vector<FlagHelp> flags = {
      {"family=dieselnet|nus|rwp", "trace family (required)"},
      {"seed=1", "generator seed"},
      {"out=PATH", "output trace path (default stdout)"},
      {"buses=40", "dieselnet: bus count"},
      {"routes=8", "dieselnet: route count"},
      {"days=20", "dieselnet/nus: simulated days"},
      {"students=200", "nus: student count"},
      {"courses=40", "nus: course count"},
      {"courses-per-student=4", "nus: enrollment per student"},
      {"attendance=0.85", "nus: session attendance probability"},
      {"nodes=50", "rwp: node count"},
      {"hours=12", "rwp: simulated hours"},
      {"range=50", "rwp: radio range, meters"},
      {"field=1000", "rwp: square field side, meters"},
  };
  std::fputs(
      formatUsage("hdtn_tracegen --family=dieselnet|nus|rwp [options]", flags)
          .c_str(),
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.helpRequested()) return usage();
  const std::string family = args.getString("family", "");
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
  const std::string out = args.getString("out", "");

  trace::ContactTrace trace;
  if (family == "dieselnet") {
    trace::DieselNetParams p;
    p.buses = static_cast<int>(args.getInt("buses", 40));
    p.routes = static_cast<int>(args.getInt("routes", 8));
    p.days = static_cast<int>(args.getInt("days", 20));
    p.seed = seed;
    trace = trace::generateDieselNet(p);
  } else if (family == "nus") {
    trace::NusParams p;
    p.students = static_cast<int>(args.getInt("students", 200));
    p.courses = static_cast<int>(args.getInt("courses", 40));
    p.coursesPerStudent =
        static_cast<int>(args.getInt("courses-per-student", 4));
    p.days = static_cast<int>(args.getInt("days", 14));
    p.attendanceRate = args.getDouble("attendance", 0.85);
    p.seed = seed;
    trace = trace::generateNus(p);
  } else if (family == "rwp") {
    trace::RandomWaypointParams p;
    p.nodes = static_cast<int>(args.getInt("nodes", 50));
    p.duration = args.getInt("hours", 12) * kHour;
    p.radioRange = args.getDouble("range", 50.0);
    p.fieldWidth = p.fieldHeight = args.getDouble("field", 1000.0);
    p.seed = seed;
    trace = trace::generateRandomWaypoint(p);
  } else {
    return usage();
  }

  if (!args.ok("hdtn_tracegen")) return 2;

  if (out.empty()) {
    trace::writeTrace(trace, std::cout);
  } else {
    std::string error;
    if (!trace::saveTraceFile(trace, out, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu contacts over %zu nodes to %s\n",
                 trace.contactCount(), trace.nodeCount(), out.c_str());
  }
  return 0;
}
