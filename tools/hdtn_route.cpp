// hdtn_route — run store-carry-forward routing on a trace file.
//
//   hdtn_tracegen --family=rwp --out=rwp.trace
//   hdtn_route --trace=rwp.trace --algorithm=epidemic --messages=300 ...
//       --ttl-hours=4
//
// Compares the chosen protocol against the space-time oracle.
#include <cstdio>
#include <string>

#include "src/routing/routing.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/args.hpp"

using namespace hdtn;

namespace {

int usage() {
  const std::vector<FlagHelp> flags = {
      {"trace=PATH", "contact trace file (required)"},
      {"algorithm=direct|epidemic|spray|prophet",
       "routing algorithm (default epidemic)"},
      {"messages=300", "workload size"},
      {"ttl-hours=24", "message time-to-live"},
      {"seed=1", "workload seed"},
      {"spray-copies=8", "spray-and-wait copy budget"},
      {"buffer=0", "per-node buffer, messages; 0 = unbounded"},
  };
  std::fputs(formatUsage("hdtn_route --trace=PATH [options]", flags).c_str(),
             stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.helpRequested()) return usage();
  const std::string tracePath = args.getString("trace", "");
  if (tracePath.empty()) return usage();
  std::string error;
  const auto trace = trace::loadTraceFile(tracePath, &error);
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  routing::RoutingParams params;
  const std::string algorithm = args.getString("algorithm", "epidemic");
  if (algorithm == "direct") {
    params.algorithm = routing::RoutingAlgorithm::kDirectDelivery;
  } else if (algorithm == "epidemic") {
    params.algorithm = routing::RoutingAlgorithm::kEpidemic;
  } else if (algorithm == "spray") {
    params.algorithm = routing::RoutingAlgorithm::kSprayAndWait;
  } else if (algorithm == "prophet") {
    params.algorithm = routing::RoutingAlgorithm::kProphet;
  } else {
    return usage();
  }
  params.sprayCopies = static_cast<int>(args.getInt("spray-copies", 8));
  params.bufferCapacity =
      static_cast<std::size_t>(args.getInt("buffer", 0));
  const auto messages =
      static_cast<std::size_t>(args.getInt("messages", 300));
  const Duration ttl = args.getInt("ttl-hours", 24) * kHour;
  Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 1)));

  if (!args.ok("hdtn_route")) return 2;

  const SimTime horizon =
      std::max<SimTime>(1, trace->endTime() - ttl);
  const auto workload = routing::makeUniformWorkload(
      messages, trace->nodeCount(), horizon, ttl, rng);
  const auto result = routing::simulateRouting(*trace, workload, params);
  const auto oracle = routing::oracleRouting(*trace, workload);

  std::printf("trace: %s (%zu nodes, %zu contacts)\n", tracePath.c_str(),
              trace->nodeCount(), trace->contactCount());
  std::printf("%zu messages, ttl %lld h, algorithm %s\n", workload.size(),
              static_cast<long long>(ttl / kHour),
              routing::routingAlgorithmName(params.algorithm));
  std::printf("\n%-22s %10s %16s %10s\n", "", "delivery", "mean delay (h)",
              "forwards");
  std::printf("%-22s %10.3f %16.2f %10llu\n",
              routing::routingAlgorithmName(params.algorithm),
              result.deliveryRatio, result.meanDelay / 3600.0,
              static_cast<unsigned long long>(result.forwards));
  std::printf("%-22s %10.3f %16.2f %10s\n", "oracle (space-time)",
              oracle.deliveryRatio, oracle.meanDelay / 3600.0, "-");
  return 0;
}
