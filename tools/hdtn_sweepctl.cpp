// hdtn_sweepctl — control client for the resident sweep service
// (`hdtn_sim --serve`; docs/SERVICE.md).
//
//   hdtn_sweepctl --socket=/run/hdtn.sock submit --name=p30
//       --priority=1 --scenario=examples/nus_paper.scenario
//   hdtn_sweepctl --socket=/run/hdtn.sock status
//   hdtn_sweepctl --socket=/run/hdtn.sock cancel --id=7
//   hdtn_sweepctl --socket=/run/hdtn.sock wait --timeout=600
//   hdtn_sweepctl --socket=/run/hdtn.sock drain|shutdown|ping
//
// Speaks the daemon's newline-delimited JSON protocol over the Unix
// socket. Exit code 0 on success, 1 on a daemon-reported error or
// connection failure, 2 on usage errors.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/service/exec.hpp"
#include "src/service/jsonio.hpp"
#include "src/util/args.hpp"

using namespace hdtn;
using namespace hdtn::service;

namespace {

int usage() {
  const std::vector<FlagHelp> flags = {
      {"socket=PATH", "daemon socket (required)"},
      {"name=LABEL", "submit: job label (default scenario file name)"},
      {"priority=N", "submit: higher preempts lower (default 0)"},
      {"scenario=PATH", "submit: scenario file to run ('-' = stdin)"},
      {"id=N", "cancel: job id"},
      {"timeout=SECONDS", "wait: give up after this long (default 600)"},
      {"json", "status: print the raw JSON reply"},
  };
  std::fputs(
      formatUsage(
          "hdtn_sweepctl --socket=PATH "
          "submit|status|cancel|wait|drain|shutdown|ping [options]",
          flags)
          .c_str(),
      stderr);
  return 2;
}

/// One request/response round trip; the daemon replies with exactly one
/// line per command.
bool roundTrip(const std::string& socketPath, const std::string& request,
               std::string* reply, std::string* error) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "socket() failed";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    *error = "socket path too long: " + socketPath;
    close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "cannot connect to " + socketPath + ": " + std::strerror(errno);
    close(fd);
    return false;
  }
  const std::string line = request + "\n";
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      *error = "send failed";
      close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  reply->clear();
  char buf[4096];
  while (reply->find('\n') == std::string::npos) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      *error = "daemon closed the connection mid-reply";
      close(fd);
      return false;
    }
    reply->append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  reply->resize(reply->find('\n'));
  return true;
}

/// Checks a reply's "ok" field; prints the daemon's error when false.
bool replyOk(const std::string& reply) {
  FlatObject fields;
  std::string why;
  if (!parseFlatObject(stripArrayFields(reply), &fields, &why)) {
    std::fprintf(stderr, "hdtn_sweepctl: unparseable reply: %s\n",
                 why.c_str());
    return false;
  }
  if (!getBool(fields, "ok")) {
    std::fprintf(stderr, "hdtn_sweepctl: %s\n",
                 getString(fields, "error").c_str());
    return false;
  }
  return true;
}

void printStatus(const std::string& reply) {
  FlatObject top;
  std::string why;
  if (!parseFlatObject(stripArrayFields(reply), &top, &why)) {
    std::fprintf(stderr, "hdtn_sweepctl: unparseable status: %s\n",
                 why.c_str());
    return;
  }
  std::printf(
      "workers %lld  running %lld  queued %lld  preempted %lld  "
      "retrying %lld  done %lld  failed %lld  cancelled %lld%s%s\n",
      static_cast<long long>(getInt(top, "workers")),
      static_cast<long long>(getInt(top, "running")),
      static_cast<long long>(getInt(top, "queued")),
      static_cast<long long>(getInt(top, "preempted")),
      static_cast<long long>(getInt(top, "retrying")),
      static_cast<long long>(getInt(top, "done")),
      static_cast<long long>(getInt(top, "failed")),
      static_cast<long long>(getInt(top, "cancelled")),
      getBool(top, "draining") ? "  [draining]" : "",
      getBool(top, "shutting_down") ? "  [shutting down]" : "");
  std::printf("journal %lld B (%lld B written, %lld compactions), "
              "outputs %lld B\n",
              static_cast<long long>(getInt(top, "wal_bytes")),
              static_cast<long long>(getInt(top, "journal_bytes_written")),
              static_cast<long long>(getInt(top, "compactions")),
              static_cast<long long>(getInt(top, "output_bytes_written")));
  const std::string jobsBody = extractArrayBody(reply, "jobs");
  for (const std::string& jobJson : splitObjectArray(jobsBody)) {
    FlatObject job;
    if (!parseFlatObject(jobJson, &job, nullptr)) continue;
    std::printf("  #%-4lld %-20s %-10s prio %-3lld attempts %lld",
                static_cast<long long>(getInt(job, "id")),
                getString(job, "name").c_str(),
                getString(job, "state").c_str(),
                static_cast<long long>(getInt(job, "priority")),
                static_cast<long long>(getInt(job, "attempts")));
    const auto preemptions = getInt(job, "preemptions");
    if (preemptions > 0) {
      std::printf(" preemptions %lld", static_cast<long long>(preemptions));
    }
    const std::string state = getString(job, "state");
    if (state == "running") {
      std::printf(" pid %lld t=%llds",
                  static_cast<long long>(getInt(job, "pid")),
                  static_cast<long long>(getInt(job, "progress_t")));
    }
    const std::string error = getString(job, "error");
    if (!error.empty()) std::printf("  %s", error.c_str());
    std::printf("\n");
  }
}

int submitCommand(ArgParser& args, const std::string& socketPath) {
  const std::string scenarioPath = args.getString("scenario", "");
  if (scenarioPath.empty()) {
    std::fprintf(stderr, "hdtn_sweepctl: submit needs --scenario=PATH\n");
    return 2;
  }
  std::string scenarioText;
  if (scenarioPath == "-") {
    std::ostringstream body;
    body << std::cin.rdbuf();
    scenarioText = body.str();
  } else {
    std::ifstream in(scenarioPath);
    if (!in) {
      std::fprintf(stderr, "hdtn_sweepctl: cannot read %s\n",
                   scenarioPath.c_str());
      return 1;
    }
    std::ostringstream body;
    body << in.rdbuf();
    scenarioText = body.str();
  }
  const std::string name = args.getString("name", scenarioPath);
  const long long priority = args.getInt("priority", 0);
  if (!args.ok("hdtn_sweepctl")) return 2;
  const std::string request =
      "{\"cmd\":\"submit\",\"name\":\"" + jsonEscape(name) +
      "\",\"priority\":" + std::to_string(priority) + ",\"scenario\":\"" +
      jsonEscape(scenarioText) + "\"}";
  std::string reply;
  std::string error;
  if (!roundTrip(socketPath, request, &reply, &error)) {
    std::fprintf(stderr, "hdtn_sweepctl: %s\n", error.c_str());
    return 1;
  }
  if (!replyOk(reply)) return 1;
  FlatObject fields;
  (void)parseFlatObject(reply, &fields, nullptr);
  std::printf("submitted job %lld\n",
              static_cast<long long>(getInt(fields, "id")));
  return 0;
}

/// Polls status until no job is pending (queued/running/preempted/
/// retrying), the daemon goes away, or the timeout expires.
int waitCommand(ArgParser& args, const std::string& socketPath) {
  const double timeout = args.getDouble("timeout", 600.0);
  if (!args.ok("hdtn_sweepctl")) return 2;
  const double deadline = monotonicSeconds() + timeout;
  while (monotonicSeconds() < deadline) {
    std::string reply;
    std::string error;
    if (!roundTrip(socketPath, "{\"cmd\":\"status\"}", &reply, &error)) {
      std::fprintf(stderr, "hdtn_sweepctl: %s\n", error.c_str());
      return 1;
    }
    FlatObject top;
    if (parseFlatObject(stripArrayFields(reply), &top, nullptr) &&
        getInt(top, "pending") == 0) {
      printStatus(reply);
      return 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::fprintf(stderr, "hdtn_sweepctl: timed out after %.0f s\n", timeout);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.helpRequested()) return usage();
  if (args.positional().size() != 1) return usage();
  const std::string command = args.positional()[0];
  const std::string socketPath = args.getString("socket", "");
  if (socketPath.empty()) {
    std::fprintf(stderr, "hdtn_sweepctl: --socket=PATH is required\n");
    return 2;
  }

  if (command == "submit") return submitCommand(args, socketPath);
  if (command == "wait") return waitCommand(args, socketPath);

  std::string request;
  if (command == "status") {
    request = "{\"cmd\":\"status\"}";
  } else if (command == "cancel") {
    const long long id = args.getInt("id", 0);
    if (id <= 0) {
      std::fprintf(stderr, "hdtn_sweepctl: cancel needs --id=N\n");
      return 2;
    }
    request = "{\"cmd\":\"cancel\",\"id\":" + std::to_string(id) + "}";
  } else if (command == "drain" || command == "shutdown" ||
             command == "ping") {
    request = "{\"cmd\":\"" + command + "\"}";
  } else {
    std::fprintf(stderr, "hdtn_sweepctl: unknown command '%s'\n",
                 command.c_str());
    return usage();
  }
  const bool rawJson = args.getBool("json", false);
  if (!args.ok("hdtn_sweepctl")) return 2;

  std::string reply;
  std::string error;
  if (!roundTrip(socketPath, request, &reply, &error)) {
    std::fprintf(stderr, "hdtn_sweepctl: %s\n", error.c_str());
    return 1;
  }
  if (!replyOk(reply)) return 1;
  if (command == "status") {
    if (rawJson) {
      std::printf("%s\n", reply.c_str());
    } else {
      printStatus(reply);
    }
  } else {
    std::printf("ok\n");
  }
  return 0;
}
