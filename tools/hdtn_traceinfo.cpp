// hdtn_traceinfo — descriptive statistics of a contact trace.
//
//   hdtn_traceinfo --trace=nus.trace [--frequent-days=1] [--one]
//
// --one parses the ONE simulator connectivity format instead of the hdtn
// text format. Prints the summary, an inter-contact-time histogram, the
// frequent-contact relation size, and space-time reachability from a few
// sample sources.
#include <cstdio>
#include <fstream>

#include "src/graph/space_time.hpp"
#include "src/trace/trace_io.hpp"
#include "src/trace/trace_stats.hpp"
#include "src/util/args.hpp"
#include "src/util/stats.hpp"

using namespace hdtn;

namespace {

int usage() {
  const std::vector<FlagHelp> flags = {
      {"trace=PATH", "contact trace file (required)"},
      {"frequent-days=1", "frequent-contact window, days"},
      {"one", "parse the ONE simulator connectivity format"},
  };
  std::fputs(formatUsage("hdtn_traceinfo --trace=PATH [options]", flags)
                 .c_str(),
             stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.helpRequested()) return usage();
  const std::string tracePath = args.getString("trace", "");
  const auto frequentDays = args.getInt("frequent-days", 1);
  const bool oneFormat = args.getBool("one", false);
  if (!args.ok("hdtn_traceinfo")) return 2;
  if (tracePath.empty()) return usage();

  std::string error;
  std::optional<trace::ContactTrace> trace;
  if (oneFormat) {
    std::ifstream is(tracePath);
    if (!is) {
      std::fprintf(stderr, "error: cannot open %s\n", tracePath.c_str());
      return 1;
    }
    trace = trace::readOneTrace(is, &error);
  } else {
    trace = trace::loadTraceFile(tracePath, &error);
  }
  if (!trace) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }

  const trace::TraceSummary s = trace::summarize(*trace);
  std::printf("trace %s\n", trace->name().c_str());
  std::printf("  nodes: %zu, contacts: %zu (%s)\n", s.nodeCount,
              s.contactCount,
              trace->isPairwiseOnly() ? "pairwise" : "clique");
  std::printf("  span: %.2f days\n",
              static_cast<double>(s.span) / static_cast<double>(kDay));
  std::printf("  mean contact duration: %.1f s, mean clique size: %.2f\n",
              s.meanContactDuration, s.meanCliqueSize);
  std::printf("  contacts per node-day: %.2f\n",
              s.meanContactsPerNodePerDay);
  std::printf("  mean inter-contact time: %.2f h\n",
              s.meanInterContactTime / 3600.0);

  const auto frequent =
      trace::frequentContactPairs(*trace, frequentDays * kDay);
  std::printf("  frequent pairs (contact every %lld day(s)): %zu\n",
              static_cast<long long>(frequentDays), frequent.size());

  SampleSet gaps = trace::interContactTimes(*trace);
  if (gaps.count() > 0) {
    std::printf("\ninter-contact times (s): p50 %.0f, p90 %.0f, p99 %.0f\n",
                gaps.quantile(0.5), gaps.quantile(0.9), gaps.quantile(0.99));
    Histogram hist(0.0, gaps.quantile(0.99) + 1.0, 10);
    for (double g : gaps.samples()) hist.add(g);
    std::printf("%s", hist.render(40).c_str());
  }

  // Space-time reachability from the three lowest node ids at t = 0: the
  // fraction of the network a message could ever reach.
  const graph::SpaceTimeGraph stg(*trace);
  std::printf("\nspace-time reachability from t=0:\n");
  for (std::uint32_t n = 0; n < 3 && n < trace->nodeCount(); ++n) {
    std::printf("  node %u reaches %.0f%% of the network\n", n,
                100.0 * stg.reachability(NodeId(n), 0));
  }
  return 0;
}
