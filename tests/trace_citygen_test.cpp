#include "src/trace/citygen.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace hdtn::trace {
namespace {

CityParams smallCity() {
  CityParams p;
  p.nodes = 240;
  p.districts = 4;
  p.days = 2;
  p.campusFraction = 0.4;
  p.campusCliqueSize = 10;
  p.campusSessionsPerCliquePerDay = 2;
  p.transitMeetingsPerNodePerDay = 1.0;
  p.walkMeetingsPerNodePerDay = 0.5;
  p.seed = 11;
  return p;
}

std::vector<Contact> drain(ContactStream& stream) {
  std::vector<Contact> out;
  stream.reset();
  while (std::optional<Contact> c = stream.next()) out.push_back(*c);
  return out;
}

TEST(CityGen, ValidateCatchesBadParams) {
  CityParams p = smallCity();
  EXPECT_TRUE(p.validate().empty());
  p.nodes = 0;
  EXPECT_FALSE(p.validate().empty());
  p = smallCity();
  p.districts = p.nodes + 1;
  EXPECT_FALSE(p.validate().empty());
  p = smallCity();
  p.campusAttendanceRate = 1.5;
  EXPECT_FALSE(p.validate().empty());
  p = smallCity();
  p.dayEnd = p.dayStart;
  EXPECT_FALSE(p.validate().empty());
}

TEST(CityGen, StreamIsSortedAndNonTrivial) {
  CityParams p = smallCity();
  CityStream stream(p);
  const std::vector<Contact> contacts = drain(stream);
  ASSERT_GT(contacts.size(), 100u);
  for (std::size_t i = 1; i < contacts.size(); ++i) {
    const Contact& a = contacts[i - 1];
    const Contact& b = contacts[i];
    const bool ordered =
        a.start < b.start ||
        (a.start == b.start &&
         (a.end < b.end || (a.end == b.end && a.members <= b.members)));
    EXPECT_TRUE(ordered) << "contacts " << i - 1 << " and " << i;
  }
  EXPECT_LE(contacts.back().end, stream.endTime());
  EXPECT_EQ(stream.endTime(), 2 * kDay);
  EXPECT_EQ(stream.nodeCount(), 240u);
}

TEST(CityGen, ContactsNeverSpanDistricts) {
  CityParams p = smallCity();
  CityStream stream(p);
  const std::vector<std::uint32_t>& hint = stream.partitionHint();
  ASSERT_EQ(hint.size(), p.nodes);
  std::size_t count = 0;
  stream.reset();
  while (std::optional<Contact> c = stream.next()) {
    ++count;
    const std::uint32_t district = hint[c->members.front().value];
    for (const NodeId m : c->members) {
      ASSERT_EQ(hint[m.value], district);
    }
  }
  EXPECT_GT(count, 0u);
}

TEST(CityGen, ResetReplaysIdenticalSequence) {
  CityParams p = smallCity();
  CityStream stream(p);
  const std::vector<Contact> first = drain(stream);
  const std::vector<Contact> second = drain(stream);
  EXPECT_EQ(first, second);
}

TEST(CityGen, TwoStreamsWithSameParamsAgree) {
  CityParams p = smallCity();
  CityStream a(p);
  CityStream b(p);
  EXPECT_EQ(drain(a), drain(b));
}

TEST(CityGen, SeedChangesTheTrace) {
  CityParams p = smallCity();
  CityStream a(p);
  p.seed = 12;
  CityStream b(p);
  EXPECT_NE(drain(a), drain(b));
}

TEST(CityGen, MaterializeMatchesGenerateCity) {
  const CityParams p = smallCity();
  CityStream stream(p);
  const ContactTrace streamed = materialize(stream);
  const ContactTrace generated = generateCity(p);
  ASSERT_EQ(streamed.contactCount(), generated.contactCount());
  for (std::size_t i = 0; i < streamed.contactCount(); ++i) {
    EXPECT_EQ(streamed.contacts()[i], generated.contacts()[i]) << "contact "
                                                               << i;
  }
  EXPECT_EQ(streamed.nodeCount(), generated.nodeCount());
}

TEST(CityGen, MixesCliqueAndPairwiseContacts) {
  CityParams p = smallCity();
  CityStream stream(p);
  bool sawClique = false;
  bool sawPairwise = false;
  stream.reset();
  while (std::optional<Contact> c = stream.next()) {
    if (c->members.size() > 2) sawClique = true;
    if (c->isPairwise()) sawPairwise = true;
  }
  EXPECT_TRUE(sawClique);
  EXPECT_TRUE(sawPairwise);
}

TEST(CityGen, DistrictRangesAreContiguous) {
  CityParams p = smallCity();
  CityStream stream(p);
  const std::vector<std::uint32_t>& hint = stream.partitionHint();
  ASSERT_EQ(hint.size(), p.nodes);
  EXPECT_TRUE(std::is_sorted(hint.begin(), hint.end()));
  EXPECT_EQ(hint.front(), 0u);
  EXPECT_EQ(hint.back(), p.districts - 1);
}

}  // namespace
}  // namespace hdtn::trace
