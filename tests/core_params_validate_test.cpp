// EngineParams::validate(): one test per rejected configuration, plus the
// constructor contract (throws std::invalid_argument listing every problem).
#include "src/core/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "src/trace/nus.hpp"

namespace hdtn::core {
namespace {

EngineParams validParams() {
  EngineParams params;
  params.frequentContactPeriod = kDay;
  return params;
}

// True when exactly one message mentions `field`.
bool singleErrorMentioning(const EngineParams& params, const char* field) {
  const auto errors = params.validate();
  return errors.size() == 1 &&
         errors.front().find(field) != std::string::npos;
}

TEST(EngineParamsValidate, AcceptsDefaults) {
  EXPECT_TRUE(validParams().validate().empty());
}

TEST(EngineParamsValidate, RejectsAccessFractionOutOfRange) {
  auto params = validParams();
  params.internetAccessFraction = 1.5;
  EXPECT_TRUE(singleErrorMentioning(params, "internetAccessFraction"));
  params.internetAccessFraction = -0.1;
  EXPECT_TRUE(singleErrorMentioning(params, "internetAccessFraction"));
  params.internetAccessFraction = std::nan("");
  EXPECT_TRUE(singleErrorMentioning(params, "internetAccessFraction"));
}

TEST(EngineParamsValidate, RejectsFreeRiderFractionOutOfRange) {
  auto params = validParams();
  params.freeRiderFraction = 2.0;
  EXPECT_TRUE(singleErrorMentioning(params, "freeRiderFraction"));
}

TEST(EngineParamsValidate, RejectsForgerFractionOutOfRange) {
  auto params = validParams();
  params.forgerFraction = -1.0;
  EXPECT_TRUE(singleErrorMentioning(params, "forgerFraction"));
}

TEST(EngineParamsValidate, RejectsSyncFractionOutOfRange) {
  auto params = validParams();
  params.accessMetadataSyncFraction = 1.01;
  EXPECT_TRUE(singleErrorMentioning(params, "accessMetadataSyncFraction"));
}

TEST(EngineParamsValidate, RejectsNonPositiveFilesPerDay) {
  auto params = validParams();
  params.newFilesPerDay = 0;
  EXPECT_TRUE(singleErrorMentioning(params, "newFilesPerDay"));
}

TEST(EngineParamsValidate, RejectsNonPositiveTtl) {
  auto params = validParams();
  params.fileTtlDays = 0;
  EXPECT_TRUE(singleErrorMentioning(params, "fileTtlDays"));
}

TEST(EngineParamsValidate, RejectsNonPositiveMetadataBudget) {
  auto params = validParams();
  params.metadataPerContact = 0;
  EXPECT_TRUE(singleErrorMentioning(params, "metadataPerContact"));
}

TEST(EngineParamsValidate, RejectsNonPositiveFileBudget) {
  auto params = validParams();
  params.filesPerContact = -2;
  EXPECT_TRUE(singleErrorMentioning(params, "filesPerContact"));
}

TEST(EngineParamsValidate, RejectsZeroPiecesPerFile) {
  auto params = validParams();
  params.piecesPerFile = 0;
  EXPECT_TRUE(singleErrorMentioning(params, "piecesPerFile"));
}

TEST(EngineParamsValidate, RejectsZeroPieceSize) {
  auto params = validParams();
  params.pieceSizeBytes = 0;
  EXPECT_TRUE(singleErrorMentioning(params, "pieceSizeBytes"));
}

TEST(EngineParamsValidate, RejectsNegativeForgeryRate) {
  auto params = validParams();
  params.forgeriesPerForgerPerDay = -1;
  EXPECT_TRUE(singleErrorMentioning(params, "forgeriesPerForgerPerDay"));
}

TEST(EngineParamsValidate, RejectsNonPositiveFrequentContactPeriod) {
  auto params = validParams();
  params.frequentContactPeriod = 0;
  EXPECT_TRUE(singleErrorMentioning(params, "frequentContactPeriod"));
}

TEST(EngineParamsValidate, RejectsZeroReferenceDurationOnlyWhenScaling) {
  auto params = validParams();
  params.referenceContactDuration = 0;
  EXPECT_TRUE(params.validate().empty());  // unused without scaling
  params.scaleBudgetsWithDuration = true;
  EXPECT_TRUE(singleErrorMentioning(params, "referenceContactDuration"));
}

TEST(EngineParamsValidate, RejectsMisbehaverFractionsExceedingOne) {
  // Each fraction is valid alone, but both partition the *same* non-access
  // population: together they cannot exceed it.
  auto params = validParams();
  params.freeRiderFraction = 0.6;
  params.forgerFraction = 0.6;
  const auto errors = params.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("freeRiderFraction + forgerFraction"),
            std::string::npos);
}

TEST(EngineParamsValidate, AcceptsMisbehaverFractionsSummingToOne) {
  auto params = validParams();
  params.freeRiderFraction = 0.5;
  params.forgerFraction = 0.5;
  EXPECT_TRUE(params.validate().empty());
}

TEST(EngineParamsValidate, JointMisbehaverCheckSkippedWhenEitherInvalid) {
  // An out-of-range fraction already gets its own message; the joint check
  // must not pile a second (spurious) error on top.
  auto params = validParams();
  params.freeRiderFraction = 1.5;
  params.forgerFraction = 0.9;
  EXPECT_TRUE(singleErrorMentioning(params, "freeRiderFraction"));
}

TEST(EngineParamsValidate, RejectsBadFaultRates) {
  auto params = validParams();
  params.faults.messageLossRate = 1.5;
  EXPECT_TRUE(singleErrorMentioning(params, "faults.messageLossRate"));
  params = validParams();
  params.faults.pieceCorruptionRate = -0.1;
  EXPECT_TRUE(singleErrorMentioning(params, "faults.pieceCorruptionRate"));
  params = validParams();
  params.faults.churnDownFraction = 1.0;  // 1.0 would never be up
  EXPECT_TRUE(singleErrorMentioning(params, "faults.churnDownFraction"));
}

TEST(EngineParamsValidate, RejectsBadTruncationKeepBounds) {
  auto params = validParams();
  params.faults.contactTruncationRate = 0.5;
  params.faults.truncationKeepMin = 0.9;
  params.faults.truncationKeepMax = 0.1;
  EXPECT_TRUE(singleErrorMentioning(params, "truncationKeep"));
}

TEST(EngineParamsValidate, RejectsBadCodedKnobs) {
  auto params = validParams();
  params.coded.redundancy = 5.0;
  EXPECT_TRUE(singleErrorMentioning(params, "coded.redundancy"));
  params = validParams();
  params.coded.redundancy = -0.5;
  EXPECT_TRUE(singleErrorMentioning(params, "coded.redundancy"));
  params = validParams();
  params.coded.sparsity = 0.0;
  EXPECT_TRUE(singleErrorMentioning(params, "coded.sparsity"));
  params = validParams();
  params.coded.sparsity = 1.5;
  EXPECT_TRUE(singleErrorMentioning(params, "coded.sparsity"));
}

TEST(EngineParamsValidate, RejectsBadAdversaryKnobs) {
  auto params = validParams();
  params.adversary.byzantineFraction = 1.1;
  EXPECT_TRUE(singleErrorMentioning(params, "adversary.byzantineFraction"));
  params = validParams();
  params.adversary.byzantineFraction = -0.2;
  EXPECT_TRUE(singleErrorMentioning(params, "adversary.byzantineFraction"));
  params = validParams();
  params.adversary.attacks = 1u << 9;
  EXPECT_TRUE(singleErrorMentioning(params, "adversary.attacks"));
}

TEST(EngineParamsValidate, RejectsBadReputationKnobs) {
  auto params = validParams();
  params.reputation.quarantineThreshold = 0.0;
  EXPECT_TRUE(
      singleErrorMentioning(params, "reputation.quarantineThreshold"));
  params = validParams();
  params.reputation.ackAnomalyWeight = -0.1;
  EXPECT_TRUE(singleErrorMentioning(params, "reputation.ackAnomalyWeight"));
  params = validParams();
  params.reputation.decayPerDay = -1.0;
  EXPECT_TRUE(singleErrorMentioning(params, "reputation.decayPerDay"));
}

TEST(EngineParamsValidate, CollectsEveryViolationAtOnce) {
  auto params = validParams();
  params.internetAccessFraction = 7.0;
  params.newFilesPerDay = 0;
  params.fileTtlDays = -1;
  params.piecesPerFile = 0;
  EXPECT_EQ(params.validate().size(), 4u);
}

TEST(EngineParamsValidate, ConstructorThrowsWithEveryMessage) {
  trace::NusParams tp;
  tp.students = 10;
  tp.courses = 2;
  tp.coursesPerStudent = 1;
  tp.days = 1;
  tp.seed = 1;
  const auto trace = trace::generateNus(tp);
  auto params = validParams();
  params.internetAccessFraction = -0.5;
  params.metadataPerContact = 0;
  try {
    Engine engine(trace, params);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invalid EngineParams"), std::string::npos);
    EXPECT_NE(what.find("internetAccessFraction"), std::string::npos);
    EXPECT_NE(what.find("metadataPerContact"), std::string::npos);
  }
}

}  // namespace
}  // namespace hdtn::core
