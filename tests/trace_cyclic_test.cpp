#include "src/trace/cyclic.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hdtn::trace {
namespace {

CyclicSlot makeSlot(std::initializer_list<std::uint32_t> members,
                    SimTime offset, Duration duration, double probability) {
  CyclicSlot slot;
  for (auto m : members) slot.members.emplace_back(m);
  slot.offset = offset;
  slot.duration = duration;
  slot.probability = probability;
  return slot;
}

TEST(Cyclic, DeterministicSlotsRepeatEveryCycle) {
  CyclicParams params;
  params.period = kDay;
  params.cycles = 5;
  params.slots = {makeSlot({0, 1}, 9 * kHour, kHour, 1.0),
                  makeSlot({1, 2, 3}, 14 * kHour, 2 * kHour, 1.0)};
  const auto trace = generateCyclic(params);
  ASSERT_EQ(trace.contactCount(), 10u);  // 2 slots x 5 cycles
  for (const Contact& c : trace.contacts()) {
    const SimTime offset = c.start % kDay;
    EXPECT_TRUE(offset == 9 * kHour || offset == 14 * kHour);
  }
}

TEST(Cyclic, ProbabilityControlsRealizationRate) {
  CyclicParams params;
  params.period = kDay;
  params.cycles = 2000;
  params.slots = {makeSlot({0, 1}, kHour, 600, 0.3)};
  params.seed = 9;
  const auto trace = generateCyclic(params);
  const double rate =
      static_cast<double>(trace.contactCount()) / params.cycles;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(Cyclic, ZeroProbabilityNeverRealizes) {
  CyclicParams params;
  params.cycles = 50;
  params.slots = {makeSlot({0, 1}, kHour, 600, 0.0)};
  EXPECT_EQ(generateCyclic(params).contactCount(), 0u);
}

TEST(Cyclic, JitterStaysWithinCycle) {
  CyclicParams params;
  params.period = kDay;
  params.cycles = 200;
  params.startJitter = 2 * kHour;
  params.slots = {makeSlot({0, 1}, kHour, kHour, 1.0),
                  makeSlot({2, 3}, 23 * kHour, 30 * kMinute, 1.0)};
  const auto trace = generateCyclic(params);
  for (const Contact& c : trace.contacts()) {
    const SimTime cycleBase = (c.start / kDay) * kDay;
    EXPECT_GE(c.start, cycleBase);
    EXPECT_LE(c.end, cycleBase + kDay);
  }
}

TEST(Cyclic, DeterministicInSeed) {
  CyclicParams params;
  params.cycles = 20;
  params.slots = {makeSlot({0, 1}, kHour, 600, 0.5)};
  params.seed = 4;
  const auto a = generateCyclic(params);
  const auto b = generateCyclic(params);
  ASSERT_EQ(a.contactCount(), b.contactCount());
  for (std::size_t i = 0; i < a.contactCount(); ++i) {
    EXPECT_EQ(a.contacts()[i], b.contacts()[i]);
  }
}

TEST(Cyclic, RandomSlotBuilderRespectsBounds) {
  Rng rng(7);
  const auto slots = randomCyclicSlots(/*nodes=*/20, /*count=*/50, kDay,
                                       /*maxCliqueSize=*/6,
                                       /*minDuration=*/60,
                                       /*maxDuration=*/3600,
                                       /*minProbability=*/0.4, rng);
  ASSERT_EQ(slots.size(), 50u);
  for (const CyclicSlot& slot : slots) {
    EXPECT_GE(slot.members.size(), 2u);
    EXPECT_LE(slot.members.size(), 6u);
    std::set<NodeId> unique(slot.members.begin(), slot.members.end());
    EXPECT_EQ(unique.size(), slot.members.size());
    for (NodeId m : slot.members) EXPECT_LT(m.value, 20u);
    EXPECT_GE(slot.duration, 60);
    EXPECT_LE(slot.duration, 3600);
    EXPECT_GE(slot.offset, 0);
    EXPECT_LE(slot.offset + slot.duration, kDay);
    EXPECT_GE(slot.probability, 0.4);
    EXPECT_LE(slot.probability, 1.0);
  }
}

TEST(Cyclic, RandomSlotsDriveEngineCompatibleTrace) {
  Rng rng(11);
  CyclicParams params;
  params.period = kDay;
  params.cycles = 4;
  params.slots = randomCyclicSlots(15, 12, kDay, 5, 600, 7200, 0.6, rng);
  params.seed = 13;
  const auto trace = generateCyclic(params);
  EXPECT_GT(trace.contactCount(), 0u);
  EXPECT_LE(trace.nodeCount(), 15u);
}

}  // namespace
}  // namespace hdtn::trace
