#include "src/graph/space_time.hpp"

#include <gtest/gtest.h>

namespace hdtn::graph {
namespace {

using trace::Contact;
using trace::ContactTrace;

Contact makeContact(SimTime start, SimTime end,
                    std::initializer_list<std::uint32_t> members) {
  Contact c;
  c.start = start;
  c.end = end;
  for (auto m : members) c.members.emplace_back(m);
  return c;
}

// 0 meets 1 at t=[10,20), 1 meets 2 at t=[30,40).
ContactTrace lineTrace() {
  ContactTrace t("line", 3);
  t.addContact(makeContact(10, 20, {0, 1}));
  t.addContact(makeContact(30, 40, {1, 2}));
  t.sortByStart();
  return t;
}

TEST(SpaceTimeGraph, EarliestArrivalsAlongLine) {
  SpaceTimeGraph stg(lineTrace());
  const auto arrivals = stg.earliestArrivals(NodeId(0), 0);
  EXPECT_EQ(arrivals[0], 0);
  EXPECT_EQ(arrivals[1], 10);  // hop at contact start
  EXPECT_EQ(arrivals[2], 30);
}

TEST(SpaceTimeGraph, StartTimeAfterContactMissesIt) {
  SpaceTimeGraph stg(lineTrace());
  const auto arrivals = stg.earliestArrivals(NodeId(0), 25);
  EXPECT_EQ(arrivals[1], kTimeInfinity);  // 0-1 contact already over
  EXPECT_EQ(arrivals[2], kTimeInfinity);
}

TEST(SpaceTimeGraph, StartTimeInsideContactHopsImmediately) {
  SpaceTimeGraph stg(lineTrace());
  const auto arrivals = stg.earliestArrivals(NodeId(0), 15);
  EXPECT_EQ(arrivals[1], 15);  // mid-contact handoff
}

TEST(SpaceTimeGraph, ReverseDirectionBlockedByTime) {
  // From node 2: the 1-2 contact is at 30, after which the 0-1 contact is
  // over, so node 0 is unreachable. Time only flows forward.
  SpaceTimeGraph stg(lineTrace());
  const auto arrivals = stg.earliestArrivals(NodeId(2), 0);
  EXPECT_EQ(arrivals[1], 30);
  EXPECT_EQ(arrivals[0], kTimeInfinity);
}

TEST(SpaceTimeGraph, CliqueContactReachesAllMembers) {
  ContactTrace t("clique", 4);
  t.addContact(makeContact(100, 200, {0, 1, 2, 3}));
  SpaceTimeGraph stg(t);
  const auto arrivals = stg.earliestArrivals(NodeId(2), 0);
  for (std::uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(arrivals[n], n == 2 ? 0 : 100);
  }
}

TEST(SpaceTimeGraph, OverlappingContactsChainWithinWindow) {
  // 0-1 during [10, 50); 1-2 during [20, 30): the message can hop 0->1 at
  // 10 and 1->2 at 20 even though the second contact starts later.
  ContactTrace t("overlap", 3);
  t.addContact(makeContact(10, 50, {0, 1}));
  t.addContact(makeContact(20, 30, {1, 2}));
  SpaceTimeGraph stg(t);
  const auto arrivals = stg.earliestArrivals(NodeId(0), 0);
  EXPECT_EQ(arrivals[2], 20);
}

TEST(SpaceTimeGraph, BackwardFeedingOverlapNeedsFixpoint) {
  // 1-2 during [10, 100) starts BEFORE 0-1 during [20, 30): a sweep in
  // start order sees the 1-2 contact first, but node 1 only obtains the
  // message at 20, still within the 1-2 window -> node 2 at 20.
  ContactTrace t("backfeed", 3);
  t.addContact(makeContact(10, 100, {1, 2}));
  t.addContact(makeContact(20, 30, {0, 1}));
  SpaceTimeGraph stg(t);
  const auto arrivals = stg.earliestArrivals(NodeId(0), 0);
  EXPECT_EQ(arrivals[1], 20);
  EXPECT_EQ(arrivals[2], 20);
}

TEST(SpaceTimeGraph, ForemostJourneyHops) {
  SpaceTimeGraph stg(lineTrace());
  const Journey journey = stg.foremostJourney(NodeId(0), NodeId(2), 0);
  ASSERT_TRUE(journey.reachable);
  EXPECT_EQ(journey.arrival, 30);
  ASSERT_EQ(journey.hops.size(), 2u);
  EXPECT_EQ(journey.hops[0].from, NodeId(0));
  EXPECT_EQ(journey.hops[0].to, NodeId(1));
  EXPECT_EQ(journey.hops[0].time, 10);
  EXPECT_EQ(journey.hops[1].from, NodeId(1));
  EXPECT_EQ(journey.hops[1].to, NodeId(2));
  EXPECT_EQ(journey.hops[1].time, 30);
}

TEST(SpaceTimeGraph, JourneyToSelf) {
  SpaceTimeGraph stg(lineTrace());
  const Journey journey = stg.foremostJourney(NodeId(1), NodeId(1), 42);
  EXPECT_TRUE(journey.reachable);
  EXPECT_EQ(journey.arrival, 42);
  EXPECT_TRUE(journey.hops.empty());
}

TEST(SpaceTimeGraph, UnreachableJourney) {
  SpaceTimeGraph stg(lineTrace());
  const Journey journey = stg.foremostJourney(NodeId(2), NodeId(0), 0);
  EXPECT_FALSE(journey.reachable);
  EXPECT_EQ(journey.arrival, kTimeInfinity);
}

TEST(SpaceTimeGraph, Reachability) {
  SpaceTimeGraph stg(lineTrace());
  EXPECT_DOUBLE_EQ(stg.reachability(NodeId(0), 0), 1.0);
  EXPECT_DOUBLE_EQ(stg.reachability(NodeId(2), 0), 0.5);  // reaches only 1
  EXPECT_DOUBLE_EQ(stg.reachability(NodeId(0), 1000), 0.0);
}

TEST(SpaceTimeGraph, EmptyTrace) {
  ContactTrace t("empty", 3);
  SpaceTimeGraph stg(t);
  const auto arrivals = stg.earliestArrivals(NodeId(0), 0);
  EXPECT_EQ(arrivals[0], 0);
  EXPECT_EQ(arrivals[1], kTimeInfinity);
}

}  // namespace
}  // namespace hdtn::graph
