#include "src/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hdtn::sim {
namespace {

TEST(Simulator, RunUntilHorizonExclusive) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.at(10, [&] { fired.push_back(10); });
  sim.at(20, [&] { fired.push_back(20); });
  sim.at(30, [&] { fired.push_back(30); });
  sim.runUntil(30);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  sim.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  SimTime when = -1;
  sim.at(100, [&] {
    sim.after(50, [&] { when = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(when, 150);
}

TEST(Simulator, EveryRepeatsUntilHorizon) {
  Simulator sim;
  std::vector<SimTime> ticks;
  sim.every(10, 10, [&](SimTime now) { ticks.push_back(now); });
  sim.runUntil(45);
  EXPECT_EQ(ticks, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(Simulator, CancelScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.at(5, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, ExecutedEventsCounter) {
  Simulator sim;
  for (SimTime t = 1; t <= 5; ++t) sim.at(t, [] {});
  sim.run();
  EXPECT_EQ(sim.executedEvents(), 5u);
  EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, PeriodicTaskEndsAtItsRunHorizon) {
  // `every` is documented to repeat "until the horizon passed to run()":
  // the tick at 30 does not reschedule past horizon 35, so a later run
  // does not revive the chain.
  Simulator sim;
  int count = 0;
  sim.every(10, 10, [&](SimTime) { ++count; });
  sim.runUntil(35);
  EXPECT_EQ(count, 3);
  sim.runUntil(65);
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunOneExecutesExactlyOneEvent) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.at(10, [&] { fired.push_back(10); });
  sim.at(20, [&] { fired.push_back(20); });
  EXPECT_TRUE(sim.runOne());
  EXPECT_EQ(fired, (std::vector<SimTime>{10}));
  EXPECT_EQ(sim.now(), 10);
  EXPECT_EQ(sim.executedEvents(), 1u);
  EXPECT_TRUE(sim.runOne());
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  // Empty queue: nothing runs, clock and counters hold.
  EXPECT_FALSE(sim.runOne());
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.executedEvents(), 2u);
}

TEST(Simulator, RunOneKeepsPeriodicTasksAlive) {
  // Stepping has no horizon, so `every` reschedules indefinitely — matching
  // run()'s semantics, one event at a time.
  Simulator sim;
  int count = 0;
  sim.every(10, 10, [&](SimTime) { ++count; });
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(sim.runOne());
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.now(), 40);
  EXPECT_EQ(sim.pendingEvents(), 1u);  // the next occurrence is queued
}

TEST(Simulator, OneShotEventsSurviveAcrossRuns) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.at(10, [&] { fired.push_back(10); });
  sim.at(50, [&] { fired.push_back(50); });
  sim.runUntil(20);
  EXPECT_EQ(fired, (std::vector<SimTime>{10}));
  sim.runUntil(100);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 50}));
}

}  // namespace
}  // namespace hdtn::sim
