// ShardedEngine: the determinism contract (results byte-identical at every
// --shards / --threads setting, streaming or materialized), the component
// decomposition (union-find, explicit partitions, stream hints, isolated-node
// pooling), and sharded checkpoints restoring across shard counts and modes.
#include "src/core/sharded_engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/core/checkpoint.hpp"
#include "src/trace/citygen.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/nus.hpp"

namespace hdtn::core {
namespace {

trace::ContactTrace smallNusTrace(std::uint64_t seed = 3) {
  trace::NusParams p;
  p.students = 40;
  p.courses = 8;
  p.coursesPerStudent = 2;
  p.days = 5;
  p.attendanceRate = 0.9;
  p.seed = seed;
  return trace::generateNus(p);
}

trace::ContactTrace smallDieselTrace(std::uint64_t seed = 3) {
  trace::DieselNetParams p;
  p.buses = 16;
  p.routes = 4;
  p.days = 6;
  p.seed = seed;
  return trace::generateDieselNet(p);
}

trace::CityParams smallCity() {
  trace::CityParams p;
  p.nodes = 160;
  p.districts = 4;
  p.days = 2;
  p.campusFraction = 0.4;
  p.campusCliqueSize = 10;
  p.campusSessionsPerCliquePerDay = 2;
  p.transitMeetingsPerNodePerDay = 1.0;
  p.walkMeetingsPerNodePerDay = 0.5;
  p.seed = 11;
  return p;
}

ShardedParams shardedParams(ProtocolKind kind, std::uint32_t shards,
                            unsigned threads) {
  ShardedParams params;
  params.engine.protocol.kind = kind;
  params.engine.internetAccessFraction = 0.3;
  params.engine.newFilesPerDay = 20;
  params.engine.fileTtlDays = 2;
  params.engine.seed = 7;
  params.engine.frequentContactPeriod = kDay;
  params.shards = shards;
  params.threads = threads;
  return params;
}

void expectReportsEqual(const DeliveryReport& a, const DeliveryReport& b,
                        const char* which) {
  EXPECT_EQ(a.queries, b.queries) << which;
  EXPECT_EQ(a.metadataDelivered, b.metadataDelivered) << which;
  EXPECT_EQ(a.filesDelivered, b.filesDelivered) << which;
  EXPECT_EQ(a.metadataRatio, b.metadataRatio) << which;
  EXPECT_EQ(a.fileRatio, b.fileRatio) << which;
  EXPECT_EQ(a.meanMetadataDelaySeconds, b.meanMetadataDelaySeconds) << which;
  EXPECT_EQ(a.meanFileDelaySeconds, b.meanFileDelaySeconds) << which;
}

void expectResultsIdentical(const EngineResult& a, const EngineResult& b) {
  expectReportsEqual(a.delivery, b.delivery, "delivery");
  expectReportsEqual(a.accessDelivery, b.accessDelivery, "accessDelivery");
  expectReportsEqual(a.contributorDelivery, b.contributorDelivery,
                     "contributorDelivery");
  expectReportsEqual(a.freeRiderDelivery, b.freeRiderDelivery,
                     "freeRiderDelivery");
  EXPECT_EQ(a.totals.contactsProcessed, b.totals.contactsProcessed);
  EXPECT_EQ(a.totals.filesPublished, b.totals.filesPublished);
  EXPECT_EQ(a.totals.queriesGenerated, b.totals.queriesGenerated);
  EXPECT_EQ(a.totals.metadataBroadcasts, b.totals.metadataBroadcasts);
  EXPECT_EQ(a.totals.pieceBroadcasts, b.totals.pieceBroadcasts);
  EXPECT_EQ(a.totals.metadataReceptions, b.totals.metadataReceptions);
  EXPECT_EQ(a.totals.pieceReceptions, b.totals.pieceReceptions);
}

std::string ckptPath(const char* name) {
  return testing::TempDir() + "/" + name + ".shard.ckpt";
}

/// 8 nodes: contacts join {0,1,2} and {4,5}; 3, 6, 7 never appear.
trace::ContactTrace componentFixture() {
  trace::ContactTrace t("fixture", 8);
  t.addContact({100, 200, {NodeId(0), NodeId(1)}});
  t.addContact({300, 400, {NodeId(1), NodeId(2)}});
  t.addContact({500, 600, {NodeId(4), NodeId(5)}});
  t.sortByStart();
  return t;
}

TEST(ShardedEngine, ResultsIdenticalAtEveryShardAndThreadSetting) {
  for (const ProtocolKind kind :
       {ProtocolKind::kMbt, ProtocolKind::kMbtQ, ProtocolKind::kMbtQm}) {
    const auto nus = smallNusTrace();
    const EngineResult reference =
        ShardedEngine(nus, shardedParams(kind, 1, 1)).run();
    for (const std::uint32_t shards : {2u, 8u}) {
      for (const unsigned threads : {1u, 4u}) {
        ShardedEngine sharded(nus, shardedParams(kind, shards, threads));
        expectResultsIdentical(reference, sharded.run());
      }
    }
  }
}

TEST(ShardedEngine, DieselResultsIdenticalAcrossShards) {
  const auto diesel = smallDieselTrace();
  for (const ProtocolKind kind :
       {ProtocolKind::kMbt, ProtocolKind::kMbtQ, ProtocolKind::kMbtQm}) {
    auto make = [&](std::uint32_t shards, unsigned threads) {
      ShardedParams p = shardedParams(kind, shards, threads);
      p.engine.frequentContactPeriod = 3 * kDay;
      return ShardedEngine(diesel, p).run();
    };
    const EngineResult reference = make(1, 1);
    expectResultsIdentical(reference, make(8, 4));
    expectResultsIdentical(reference, make(3, 2));
  }
}

TEST(ShardedEngine, ComponentDecompositionIsCanonical) {
  const auto t = componentFixture();
  ShardedEngine sharded(t, shardedParams(ProtocolKind::kMbt, 8, 1));
  // Canonical order: ascending smallest global id. Isolated nodes (3, 6, 7)
  // pool into one component, first seen at id 3.
  ASSERT_EQ(sharded.componentCount(), 3u);
  EXPECT_EQ(sharded.componentNodes(0),
            (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2)}));
  EXPECT_EQ(sharded.componentNodes(1),
            (std::vector<NodeId>{NodeId(3), NodeId(6), NodeId(7)}));
  EXPECT_EQ(sharded.componentNodes(2),
            (std::vector<NodeId>{NodeId(4), NodeId(5)}));
  EXPECT_EQ(sharded.componentOf(NodeId(2)), 0u);
  EXPECT_EQ(sharded.componentOf(NodeId(6)), 1u);
  EXPECT_EQ(sharded.componentOf(NodeId(5)), 2u);
  // Only 3 components exist, so only 3 scheduling groups form.
  EXPECT_EQ(sharded.shardCount(), 3u);
  EXPECT_EQ(sharded.nodeCount(), 8u);
}

TEST(ShardedEngine, ExplicitPartitionIsAuthoritative) {
  trace::ContactTrace t("split", 4);
  t.addContact({100, 200, {NodeId(0), NodeId(1)}});
  t.addContact({100, 200, {NodeId(2), NodeId(3)}});
  t.sortByStart();
  ShardedParams params = shardedParams(ProtocolKind::kMbt, 2, 1);
  params.partition = {7, 7, 9, 9};
  ShardedEngine sharded(t, params);
  EXPECT_EQ(sharded.componentCount(), 2u);
  EXPECT_EQ(sharded.componentNodes(0),
            (std::vector<NodeId>{NodeId(0), NodeId(1)}));
  EXPECT_EQ(sharded.componentNodes(1),
            (std::vector<NodeId>{NodeId(2), NodeId(3)}));
}

TEST(ShardedEngine, ContactSpanningExplicitPartitionThrows) {
  trace::ContactTrace t("bad", 4);
  t.addContact({100, 200, {NodeId(1), NodeId(2)}});
  t.sortByStart();
  ShardedParams params = shardedParams(ProtocolKind::kMbt, 2, 1);
  params.partition = {0, 0, 1, 1};
  EXPECT_THROW(ShardedEngine(t, params), std::invalid_argument);
}

TEST(ShardedEngine, PartitionSizeMismatchThrows) {
  const auto t = componentFixture();
  ShardedParams params = shardedParams(ProtocolKind::kMbt, 2, 1);
  params.partition = {0, 0, 0};  // 3 labels for 8 nodes
  EXPECT_THROW(ShardedEngine(t, params), std::invalid_argument);
}

TEST(ShardedEngine, MergedResultEqualsComponentSum) {
  const auto diesel = smallDieselTrace();
  ShardedEngine sharded(diesel, shardedParams(ProtocolKind::kMbtQ, 4, 2));
  sharded.runUntil(sharded.endTime());
  EngineTotals sum;
  std::uint64_t queries = 0;
  for (std::size_t i = 0; i < sharded.componentCount(); ++i) {
    const EngineResult part = sharded.component(i).currentResult();
    sum.contactsProcessed += part.totals.contactsProcessed;
    sum.filesPublished += part.totals.filesPublished;
    sum.queriesGenerated += part.totals.queriesGenerated;
    queries += part.delivery.queries + part.accessDelivery.queries;
  }
  const EngineResult merged = sharded.currentResult();
  EXPECT_EQ(merged.totals.contactsProcessed, sum.contactsProcessed);
  EXPECT_EQ(merged.totals.filesPublished, sum.filesPublished);
  EXPECT_EQ(merged.totals.queriesGenerated, sum.queriesGenerated);
  EXPECT_EQ(merged.delivery.queries + merged.accessDelivery.queries, queries);
  EXPECT_EQ(merged.totals.contactsProcessed, diesel.contactCount());
}

TEST(ShardedEngine, SharedPublishStreamKeepsCatalogsAligned) {
  // Every component publishes the same daily catalog through the shared
  // publish horizon: merged filesPublished is componentCount * days *
  // newFilesPerDay even for components whose own contacts end early.
  const auto nus = smallNusTrace();
  ShardedParams params = shardedParams(ProtocolKind::kMbt, 4, 1);
  params.engine.newFilesPerDay = 5;
  ShardedEngine sharded(nus, params);
  const EngineResult result = sharded.run();
  // 5-day trace: 5 publish days x 5 files x componentCount components.
  EXPECT_EQ(result.totals.filesPublished, 5u * 5u * sharded.componentCount());
}

TEST(ShardedEngine, StreamingMatchesMaterialized) {
  // kMbtQ distributes metadata but not queries: the frequent-contact
  // relation (empty in feed mode) is inert, so the streamed run must be
  // byte-identical to the materialized one.
  auto check = [](const trace::ContactTrace& t, const char* which) {
    SCOPED_TRACE(which);
    const ShardedParams params = shardedParams(ProtocolKind::kMbtQ, 2, 2);
    const EngineResult materialized = ShardedEngine(t, params).run();
    trace::MaterializedStream stream(t);
    const EngineResult streamed = ShardedEngine(stream, params).run();
    expectResultsIdentical(materialized, streamed);
  };
  check(smallNusTrace(), "nus");
  check(smallDieselTrace(), "diesel");
}

TEST(ShardedEngine, CityStreamIdenticalAcrossShardsAndThreads) {
  const trace::CityParams city = smallCity();
  auto runCity = [&](std::uint32_t shards, unsigned threads) {
    trace::CityStream stream(city);
    ShardedEngine sharded(stream,
                          shardedParams(ProtocolKind::kMbtQ, shards, threads));
    // The district hint skips the union-find pass and fixes the layout.
    EXPECT_EQ(sharded.componentCount(), city.districts);
    return sharded.run();
  };
  const EngineResult reference = runCity(1, 1);
  expectResultsIdentical(reference, runCity(4, 4));
  expectResultsIdentical(reference, runCity(2, 8));
}

TEST(ShardedEngine, MaterializedCheckpointRoundTrip) {
  const auto diesel = smallDieselTrace();
  const ShardedParams params = shardedParams(ProtocolKind::kMbt, 2, 2);
  const std::string path = ckptPath("materialized");

  ShardedEngine full(diesel, params);
  const EngineResult expected = full.run();

  ShardedEngine saver(diesel, params);
  saver.runUntil(3 * kDay);
  saver.saveCheckpoint(path, "resume-me");

  ShardedEngine restored(diesel, params);
  restored.restoreCheckpoint(path);
  EXPECT_EQ(restored.now(), 3 * kDay);
  expectResultsIdentical(expected, restored.run());
}

TEST(ShardedEngine, CheckpointRestoresAcrossShardAndThreadSettings) {
  const auto nus = smallNusTrace();
  const std::string path = ckptPath("reshard");

  ShardedEngine saver(nus, shardedParams(ProtocolKind::kMbtQ, 1, 1));
  saver.runUntil(2 * kDay);
  saver.saveCheckpoint(path);

  // Shards/threads are scheduling knobs, not state: the checkpoint restores
  // at any other setting.
  ShardedEngine restored(nus, shardedParams(ProtocolKind::kMbtQ, 8, 4));
  restored.restoreCheckpoint(path);
  const EngineResult viaCheckpoint = restored.run();

  const EngineResult expected =
      ShardedEngine(nus, shardedParams(ProtocolKind::kMbtQ, 2, 2)).run();
  expectResultsIdentical(expected, viaCheckpoint);
}

TEST(ShardedEngine, StreamingCheckpointRoundTrip) {
  const trace::CityParams city = smallCity();
  const ShardedParams params = shardedParams(ProtocolKind::kMbtQ, 4, 2);
  const std::string path = ckptPath("streaming");

  trace::CityStream fullStream(city);
  const EngineResult expected = ShardedEngine(fullStream, params).run();

  trace::CityStream saveStream(city);
  ShardedEngine saver(saveStream, params);
  saver.runUntil(kDay);
  saver.saveCheckpoint(path);

  trace::CityStream restoreStream(city);
  ShardedEngine restored(restoreStream, params);
  restored.restoreCheckpoint(path);
  EXPECT_EQ(restored.now(), kDay);
  expectResultsIdentical(expected, restored.run());
}

TEST(ShardedEngine, StreamingCheckpointRejectsDifferentStream) {
  const trace::CityParams city = smallCity();
  const ShardedParams params = shardedParams(ProtocolKind::kMbtQ, 2, 1);
  const std::string path = ckptPath("wrong-stream");

  trace::CityStream saveStream(city);
  ShardedEngine saver(saveStream, params);
  saver.runUntil(kDay);
  saver.saveCheckpoint(path);

  // Same params and district layout, different seed: the engine
  // fingerprints match only on configuration the seed does not reach, so
  // the replay count check catches the divergent contact sequence... unless
  // the fingerprint already rejects it (both are CheckpointError).
  trace::CityParams other = city;
  other.transitMeetingsPerNodePerDay = 2.0;
  trace::CityStream otherStream(other);
  ShardedEngine restored(otherStream, params);
  EXPECT_THROW(restored.restoreCheckpoint(path), CheckpointError);
}

TEST(ShardedEngine, RestoreRequiresFreshEngine) {
  const auto diesel = smallDieselTrace();
  const ShardedParams params = shardedParams(ProtocolKind::kMbt, 2, 1);
  const std::string path = ckptPath("fresh");
  ShardedEngine saver(diesel, params);
  saver.runUntil(kDay);
  saver.saveCheckpoint(path);

  ShardedEngine advanced(diesel, params);
  advanced.runUntil(kDay);
  EXPECT_THROW(advanced.restoreCheckpoint(path), std::logic_error);
}

TEST(ShardedEngine, CheckpointConfigMismatchThrows) {
  const auto diesel = smallDieselTrace();
  const std::string path = ckptPath("config-mismatch");
  ShardedEngine saver(diesel, shardedParams(ProtocolKind::kMbt, 2, 1));
  saver.runUntil(kDay);
  saver.saveCheckpoint(path);

  ShardedParams other = shardedParams(ProtocolKind::kMbt, 2, 1);
  other.engine.seed = 8;
  ShardedEngine restored(diesel, other);
  EXPECT_THROW(restored.restoreCheckpoint(path), CheckpointError);
}

TEST(ShardedEngine, FinishTwiceThrows) {
  const auto t = componentFixture();
  ShardedEngine sharded(t, shardedParams(ProtocolKind::kMbt, 1, 1));
  (void)sharded.run();
  EXPECT_TRUE(sharded.finished());
  EXPECT_THROW(sharded.run(), std::logic_error);
  EXPECT_THROW(sharded.runUntil(kDay), std::logic_error);
  EXPECT_THROW(sharded.saveCheckpoint(ckptPath("finished")),
               std::logic_error);
}

TEST(ShardedEngine, ZeroShardsRejected) {
  const auto t = componentFixture();
  ShardedParams params = shardedParams(ProtocolKind::kMbt, 0, 1);
  EXPECT_THROW(ShardedEngine(t, params), std::invalid_argument);
}

TEST(ShardedEngine, ExplicitRoleListsAreRemappedPerComponent) {
  const auto t = componentFixture();
  ShardedParams params = shardedParams(ProtocolKind::kMbt, 2, 1);
  // Global ids 1 (component 0) and 4 (component 2) have access; the pooled
  // isolated component names none, and must not fall back to the fraction.
  params.engine.explicitAccessNodes = {NodeId(1), NodeId(4)};
  params.engine.internetAccessFraction = 0.9;
  ShardedEngine sharded(t, params);
  EXPECT_EQ(sharded.component(0).accessNodes(),
            (std::vector<NodeId>{NodeId(1)}));
  EXPECT_TRUE(sharded.component(1).accessNodes().empty());
  // Global id 4 is component 2's first node, so its local id is 0.
  EXPECT_EQ(sharded.component(2).accessNodes(),
            (std::vector<NodeId>{NodeId(0)}));
}

}  // namespace
}  // namespace hdtn::core
