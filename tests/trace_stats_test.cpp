#include "src/trace/trace_stats.hpp"

#include <gtest/gtest.h>

namespace hdtn::trace {
namespace {

Contact makeContact(SimTime start, SimTime end,
                    std::initializer_list<std::uint32_t> members) {
  Contact c;
  c.start = start;
  c.end = end;
  for (auto m : members) c.members.emplace_back(m);
  return c;
}

TEST(MakePair, Orders) {
  EXPECT_EQ(makePair(NodeId(5), NodeId(2)),
            (NodePair{NodeId(2), NodeId(5)}));
  EXPECT_EQ(makePair(NodeId(2), NodeId(5)),
            (NodePair{NodeId(2), NodeId(5)}));
}

TEST(PairContactCounts, DecomposesCliques) {
  ContactTrace t("t", 3);
  t.addContact(makeContact(0, 10, {0, 1, 2}));  // 3 pairs
  t.addContact(makeContact(20, 30, {0, 1}));    // 1 pair
  const auto counts = pairContactCounts(t);
  EXPECT_EQ(counts.at(makePair(NodeId(0), NodeId(1))), 2u);
  EXPECT_EQ(counts.at(makePair(NodeId(0), NodeId(2))), 1u);
  EXPECT_EQ(counts.at(makePair(NodeId(1), NodeId(2))), 1u);
}

TEST(InterContactTimes, StartToStartGaps) {
  ContactTrace t("t", 2);
  t.addContact(makeContact(0, 10, {0, 1}));
  t.addContact(makeContact(100, 110, {0, 1}));
  t.addContact(makeContact(400, 410, {0, 1}));
  const auto gaps = interContactTimes(t);
  ASSERT_EQ(gaps.count(), 2u);
  EXPECT_DOUBLE_EQ(gaps.min(), 100.0);
  EXPECT_DOUBLE_EQ(gaps.max(), 300.0);
}

TEST(Summarize, BasicFields) {
  ContactTrace t("t", 4);
  t.addContact(makeContact(0, 100, {0, 1}));
  t.addContact(makeContact(kDay, kDay + 300, {0, 1, 2}));
  const auto s = summarize(t);
  EXPECT_EQ(s.nodeCount, 4u);
  EXPECT_EQ(s.contactCount, 2u);
  EXPECT_EQ(s.span, kDay + 300);
  EXPECT_DOUBLE_EQ(s.meanContactDuration, 200.0);
  EXPECT_DOUBLE_EQ(s.meanCliqueSize, 2.5);
}

TEST(Summarize, EmptyTrace) {
  ContactTrace t("t", 3);
  const auto s = summarize(t);
  EXPECT_EQ(s.contactCount, 0u);
  EXPECT_DOUBLE_EQ(s.meanContactDuration, 0.0);
}

TEST(FrequentContacts, RequiresContactInEveryWindow) {
  ContactTrace t("t", 4);
  // Pair (0,1): one contact every day for 3 days -> frequent at 1-day period.
  for (int day = 0; day < 3; ++day) {
    t.addContact(makeContact(day * kDay + kHour, day * kDay + kHour + 60,
                             {0, 1}));
  }
  // Pair (2,3): days 0 and 2 only -> not frequent (misses day 1).
  t.addContact(makeContact(kHour, kHour + 60, {2, 3}));
  t.addContact(makeContact(2 * kDay + kHour, 2 * kDay + kHour + 60, {2, 3}));
  const auto pairs = frequentContactPairs(t, kDay);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], makePair(NodeId(0), NodeId(1)));
}

TEST(FrequentContacts, LongerPeriodAdmitsSparserPairs) {
  ContactTrace t("t", 2);
  // One contact every other day across 6 days.
  for (int day = 0; day < 6; day += 2) {
    t.addContact(makeContact(day * kDay + kHour, day * kDay + kHour + 60,
                             {0, 1}));
  }
  EXPECT_TRUE(frequentContactPairs(t, kDay).empty());
  EXPECT_EQ(frequentContactPairs(t, 2 * kDay).size(), 1u);
}

TEST(FrequentContacts, ContactStraddlingWindowCountsForBoth) {
  ContactTrace t("t", 2);
  // Contact spans the day-1 boundary; second window also needs coverage.
  t.addContact(makeContact(kDay - 30, kDay + 30, {0, 1}));
  // Trace must span two full windows: pad with a later contact of another
  // pair to extend the horizon? Use the same pair near the end instead.
  t.addContact(
      makeContact(2 * kDay - 3600, 2 * kDay - 3000, {0, 1}));
  const auto pairs = frequentContactPairs(t, kDay);
  ASSERT_EQ(pairs.size(), 1u);
}

TEST(FrequentContactLists, SymmetricAndSorted) {
  ContactTrace t("t", 3);
  for (int day = 0; day < 2; ++day) {
    t.addContact(makeContact(day * kDay + 10, day * kDay + 70, {0, 2}));
  }
  const auto lists = frequentContactLists(t, kDay);
  ASSERT_EQ(lists.size(), 3u);
  EXPECT_EQ(lists[0], (std::vector<NodeId>{NodeId(2)}));
  EXPECT_TRUE(lists[1].empty());
  EXPECT_EQ(lists[2], (std::vector<NodeId>{NodeId(0)}));
}

TEST(FrequentContacts, EmptyTraceNoPairs) {
  ContactTrace t("t", 5);
  EXPECT_TRUE(frequentContactPairs(t, kDay).empty());
}

}  // namespace
}  // namespace hdtn::trace
