#include "src/core/file_catalog.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

FileCatalog::PublishRequest sampleRequest() {
  FileCatalog::PublishRequest req;
  req.name = "fox news daily ep0";
  req.publisher = "fox";
  req.description = "poster for the daily news ep0";
  req.sizeBytes = 2500;
  req.pieceSizeBytes = 1024;
  req.popularity = 0.4;
  req.publishedAt = 100;
  req.ttl = 3 * kDay;
  return req;
}

TEST(FileInfo, PieceArithmetic) {
  FileInfo info;
  info.sizeBytes = 2500;
  info.pieceSizeBytes = 1024;
  EXPECT_EQ(info.pieceCount(), 3u);
  EXPECT_EQ(info.pieceLength(0), 1024u);
  EXPECT_EQ(info.pieceLength(1), 1024u);
  EXPECT_EQ(info.pieceLength(2), 452u);  // final short piece
}

TEST(FileInfo, ExactMultipleOfPieceSize) {
  FileInfo info;
  info.sizeBytes = 2048;
  info.pieceSizeBytes = 1024;
  EXPECT_EQ(info.pieceCount(), 2u);
  EXPECT_EQ(info.pieceLength(1), 1024u);
}

TEST(FileInfo, AliveWindow) {
  FileInfo info;
  info.publishedAt = 100;
  info.ttl = 50;
  EXPECT_FALSE(info.alive(99));
  EXPECT_TRUE(info.alive(100));
  EXPECT_TRUE(info.alive(149));
  EXPECT_FALSE(info.alive(150));
}

TEST(FileCatalog, PublishAssignsIdsAndUris) {
  FileCatalog catalog;
  const FileId a = catalog.publish(sampleRequest());
  const FileId b = catalog.publish(sampleRequest());
  EXPECT_EQ(a, FileId(0));
  EXPECT_EQ(b, FileId(1));
  EXPECT_EQ(catalog.size(), 2u);
  const FileInfo* info = catalog.find(a);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->uri, "dtn://fox/f0");
  EXPECT_EQ(catalog.findByUri("dtn://fox/f1")->id, b);
  EXPECT_EQ(catalog.findByUri("dtn://fox/f99"), nullptr);
  EXPECT_EQ(catalog.find(FileId(42)), nullptr);
  EXPECT_EQ(catalog.find(FileId()), nullptr);  // invalid id
}

TEST(FileCatalog, MetadataMatchesFileInfo) {
  FileCatalog catalog;
  const FileId id = catalog.publish(sampleRequest());
  const Metadata& md = catalog.metadataFor(id);
  const FileInfo& info = *catalog.find(id);
  EXPECT_EQ(md.file, id);
  EXPECT_EQ(md.name, info.name);
  EXPECT_EQ(md.uri, info.uri);
  EXPECT_EQ(md.sizeBytes, info.sizeBytes);
  EXPECT_EQ(md.pieceCount(), info.pieceCount());
  EXPECT_EQ(md.popularity, info.popularity);
  EXPECT_FALSE(md.keywords.empty());
}

TEST(FileCatalog, PieceBytesDeterministicAndSized) {
  FileCatalog catalog;
  const FileId id = catalog.publish(sampleRequest());
  const FileInfo& info = *catalog.find(id);
  const auto bytes1 = makePieceBytes(info, 0);
  const auto bytes2 = makePieceBytes(info, 0);
  EXPECT_EQ(bytes1, bytes2);
  EXPECT_EQ(bytes1.size(), 1024u);
  EXPECT_EQ(makePieceBytes(info, 2).size(), 452u);
  EXPECT_NE(makePieceBytes(info, 0), makePieceBytes(info, 1));
}

TEST(FileCatalog, ChecksumsVerifyGeneratedPieces) {
  FileCatalog catalog;
  const FileId id = catalog.publish(sampleRequest());
  const FileInfo& info = *catalog.find(id);
  for (std::uint32_t p = 0; p < info.pieceCount(); ++p) {
    const auto bytes = makePieceBytes(info, p);
    EXPECT_TRUE(catalog.verifyPiece(id, p, bytes));
    EXPECT_EQ(catalog.pieceDigest(id, p), Sha1::hash(bytes));
  }
}

TEST(FileCatalog, VerifyRejectsCorruptPiece) {
  FileCatalog catalog;
  const FileId id = catalog.publish(sampleRequest());
  auto bytes = makePieceBytes(*catalog.find(id), 0);
  bytes[10] ^= 0xff;
  EXPECT_FALSE(catalog.verifyPiece(id, 0, bytes));
  EXPECT_FALSE(catalog.verifyPiece(id, 99, bytes));  // bad index
}

TEST(FileCatalog, SignsWhenRegistryProvided) {
  PublisherRegistry registry;
  registry.registerPublisher("fox", "secret");
  FileCatalog catalog(&registry);
  const FileId id = catalog.publish(sampleRequest());
  EXPECT_TRUE(registry.verify(catalog.metadataFor(id)));
}

TEST(FileCatalog, AliveFilesFiltersByTime) {
  FileCatalog catalog;
  auto req = sampleRequest();
  req.publishedAt = 0;
  req.ttl = 100;
  const FileId early = catalog.publish(req);
  req.publishedAt = 1000;
  const FileId late = catalog.publish(req);
  EXPECT_EQ(catalog.aliveFiles(50), (std::vector<FileId>{early}));
  EXPECT_EQ(catalog.aliveFiles(1050), (std::vector<FileId>{late}));
  EXPECT_TRUE(catalog.aliveFiles(500).empty());
  EXPECT_EQ(catalog.allFiles().size(), 2u);
}

TEST(FileCatalog, DistinctFilesDistinctChecksums) {
  FileCatalog catalog;
  const FileId a = catalog.publish(sampleRequest());
  const FileId b = catalog.publish(sampleRequest());
  // Same content parameters but different URIs -> different streams.
  EXPECT_NE(catalog.pieceDigest(a, 0), catalog.pieceDigest(b, 0));
}

}  // namespace
}  // namespace hdtn::core
