#include "src/util/ascii_chart.hpp"

#include <gtest/gtest.h>

namespace hdtn {
namespace {

TEST(AsciiChart, RendersTitleAndLegend) {
  AsciiChart chart("my chart", {0.0, 1.0, 2.0});
  chart.addSeries({"rising", '*', {0.0, 0.5, 1.0}});
  const std::string out = chart.render(40, 10);
  EXPECT_NE(out.find("my chart"), std::string::npos);
  EXPECT_NE(out.find("* = rising"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, EmptyDataDoesNotCrash) {
  AsciiChart chart("empty", {});
  const std::string out = chart.render();
  EXPECT_NE(out.find("no data"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesGlyphsAppear) {
  AsciiChart chart("two", {0.0, 1.0});
  chart.addSeries({"a", 'a', {0.0, 1.0}});
  chart.addSeries({"b", 'b', {1.0, 0.0}});
  const std::string out = chart.render(30, 8);
  EXPECT_NE(out.find('a'), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(AsciiChart, ConstantSeriesGetsPaddedRange) {
  AsciiChart chart("flat", {0.0, 1.0, 2.0});
  chart.addSeries({"flat", '*', {0.5, 0.5, 0.5}});
  // Should render without dividing by a zero span.
  const std::string out = chart.render(30, 8);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiChart, FixedYRangeClampsPoints) {
  AsciiChart chart("clamped", {0.0, 1.0});
  chart.addSeries({"spike", '*', {0.5, 100.0}});
  chart.setYRange(0.0, 1.0);
  const std::string out = chart.render(30, 8);
  EXPECT_NE(out.find('*'), std::string::npos);
}

}  // namespace
}  // namespace hdtn
