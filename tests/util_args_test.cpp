#include "src/util/args.hpp"

#include <gtest/gtest.h>

namespace hdtn {
namespace {

ArgParser parse(std::vector<std::string> tokens) {
  static std::vector<std::string> storage;
  storage = std::move(tokens);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, EqualsForm) {
  auto args = parse({"--seed=42", "--name=fox"});
  EXPECT_EQ(args.getInt("seed", 0), 42);
  EXPECT_EQ(args.getString("name", ""), "fox");
}

TEST(ArgParser, SpaceForm) {
  auto args = parse({"--seed", "42"});
  EXPECT_EQ(args.getInt("seed", 0), 42);
}

TEST(ArgParser, BareSwitch) {
  auto args = parse({"--csv", "--seed=1"});
  EXPECT_TRUE(args.getBool("csv", false));
  EXPECT_FALSE(args.getBool("verbose", false));
  EXPECT_TRUE(args.has("csv"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(ArgParser, BoolValues) {
  auto args = parse({"--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(args.getBool("a", false));
  EXPECT_FALSE(args.getBool("b", true));
  EXPECT_TRUE(args.getBool("c", false));
  EXPECT_FALSE(args.getBool("d", true));
}

TEST(ArgParser, Defaults) {
  auto args = parse({});
  EXPECT_EQ(args.getInt("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.getDouble("x", 2.5), 2.5);
  EXPECT_EQ(args.getString("s", "dflt"), "dflt");
}

TEST(ArgParser, DoubleParsing) {
  auto args = parse({"--rate=0.35"});
  EXPECT_DOUBLE_EQ(args.getDouble("rate", 0.0), 0.35);
}

TEST(ArgParser, BadNumbersReportErrors) {
  auto args = parse({"--n=abc", "--x=1.2.3"});
  EXPECT_EQ(args.getInt("n", 9), 9);
  EXPECT_DOUBLE_EQ(args.getDouble("x", 1.0), 1.0);
  EXPECT_EQ(args.errors().size(), 2u);
}

TEST(ArgParser, PositionalCollected) {
  auto args = parse({"input.txt", "--seed=1", "more"});
  EXPECT_EQ(args.positional(),
            (std::vector<std::string>{"input.txt", "more"}));
}

TEST(ArgParser, UnusedFlagsDetected) {
  auto args = parse({"--seed=1", "--typo=2"});
  EXPECT_EQ(args.getInt("seed", 0), 1);
  const auto unused = args.unusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(ArgParser, SwitchFollowedByFlag) {
  auto args = parse({"--csv", "--seed=3"});
  EXPECT_TRUE(args.getBool("csv", false));
  EXPECT_EQ(args.getInt("seed", 0), 3);
}

TEST(ArgParser, HelpRequestedByFlagOrShortForm) {
  EXPECT_TRUE(parse({"--help"}).helpRequested());
  EXPECT_TRUE(parse({"-h"}).helpRequested());
  EXPECT_FALSE(parse({"--seed=1"}).helpRequested());
}

TEST(ArgParser, OkIsTrueOnlyForCleanCommandLines) {
  auto clean = parse({"--seed=1"});
  EXPECT_EQ(clean.getInt("seed", 0), 1);
  EXPECT_TRUE(clean.ok("test"));

  auto typo = parse({"--seed=1", "--sede=2"});
  EXPECT_EQ(typo.getInt("seed", 0), 1);
  EXPECT_FALSE(typo.ok("test"));  // --sede never queried

  auto bad = parse({"--seed=abc"});
  EXPECT_EQ(bad.getInt("seed", 0), 0);
  EXPECT_FALSE(bad.ok("test"));  // parse error accumulated
}

TEST(ArgParser, OkTreatsHelpAsKnown) {
  auto args = parse({"--help", "--seed=1"});
  EXPECT_EQ(args.getInt("seed", 0), 1);
  EXPECT_TRUE(args.ok("test"));
}

TEST(FormatUsage, AlignsFlagDescriptions) {
  const std::string text = formatUsage(
      "tool [options]",
      {{"seed=N", "generator seed"}, {"out=PATH", "output path"}});
  EXPECT_NE(text.find("usage: tool [options]\n"), std::string::npos);
  EXPECT_NE(text.find("  --seed=N    generator seed\n"), std::string::npos);
  EXPECT_NE(text.find("  --out=PATH  output path\n"), std::string::npos);
}

}  // namespace
}  // namespace hdtn
