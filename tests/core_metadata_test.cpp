#include "src/core/metadata.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

Metadata sampleMetadata() {
  Metadata md;
  md.file = FileId(1);
  md.name = "fox news daily ep1";
  md.publisher = "fox";
  md.description = "poster advertisement for the daily news show ep1";
  md.uri = "dtn://fox/f1";
  md.sizeBytes = 2048;
  md.pieceSizeBytes = 1024;
  md.pieceChecksums = {Sha1::hash("piece0"), Sha1::hash("piece1")};
  md.popularity = 0.25;
  md.publishedAt = 100;
  md.ttl = 1000;
  md.rebuildKeywords();
  return md;
}

TEST(Metadata, ExpiryBoundaries) {
  const Metadata md = sampleMetadata();
  EXPECT_EQ(md.expiresAt(), 1100);
  EXPECT_FALSE(md.expired(100));
  EXPECT_FALSE(md.expired(1099));
  EXPECT_TRUE(md.expired(1100));
}

TEST(Metadata, PieceCount) {
  EXPECT_EQ(sampleMetadata().pieceCount(), 2u);
}

TEST(Metadata, KeywordsSortedUniqueLowercase) {
  Metadata md = sampleMetadata();
  md.name = "FOX Fox fox NEWS";
  md.description = "";
  md.publisher = "fox";
  md.rebuildKeywords();
  EXPECT_EQ(md.keywords, (std::vector<std::string>{"fox", "news"}));
}

TEST(Metadata, AuthPayloadCoversIdentityFields) {
  const Metadata base = sampleMetadata();
  Metadata renamed = base;
  renamed.name = "fake name";
  EXPECT_NE(base.authPayload(), renamed.authPayload());
  Metadata rehashed = base;
  rehashed.pieceChecksums[0] = Sha1::hash("tampered");
  EXPECT_NE(base.authPayload(), rehashed.authPayload());
  Metadata repriced = base;
  repriced.popularity = 0.9;  // popularity is mutable metadata, not identity
  EXPECT_EQ(base.authPayload(), repriced.authPayload());
}

TEST(PublisherRegistry, SignAndVerify) {
  PublisherRegistry registry;
  registry.registerPublisher("fox", "super-secret");
  Metadata md = sampleMetadata();
  const auto tag = registry.sign(md);
  ASSERT_TRUE(tag.has_value());
  md.authTag = *tag;
  EXPECT_TRUE(registry.verify(md));
}

TEST(PublisherRegistry, RejectsTamperedMetadata) {
  PublisherRegistry registry;
  registry.registerPublisher("fox", "super-secret");
  Metadata md = sampleMetadata();
  md.authTag = *registry.sign(md);
  md.name = "fake fox news daily ep1";  // tamper after signing
  EXPECT_FALSE(registry.verify(md));
}

TEST(PublisherRegistry, RejectsUnknownPublisher) {
  PublisherRegistry registry;
  Metadata md = sampleMetadata();
  md.publisher = "evil-corp";
  EXPECT_FALSE(registry.sign(md).has_value());
  EXPECT_FALSE(registry.verify(md));
}

TEST(PublisherRegistry, RejectsForgedPublisherName) {
  // A fake publisher naming itself "fox" cannot produce fox's tag.
  PublisherRegistry registry;
  registry.registerPublisher("fox", "real-secret");
  PublisherRegistry forger;
  forger.registerPublisher("fox", "guessed-secret");
  Metadata md = sampleMetadata();
  md.authTag = *forger.sign(md);
  EXPECT_FALSE(registry.verify(md));
}

TEST(PublisherRegistry, ReRegisteringReplacesSecret) {
  PublisherRegistry registry;
  registry.registerPublisher("fox", "old");
  Metadata md = sampleMetadata();
  const auto oldTag = *registry.sign(md);
  registry.registerPublisher("fox", "new");
  EXPECT_NE(*registry.sign(md), oldTag);
  EXPECT_TRUE(registry.knows("fox"));
  EXPECT_FALSE(registry.knows("abc"));
}

}  // namespace
}  // namespace hdtn::core
