// The shared job-execution core: child spawning with memory or log-file
// capture, the cooperative stop protocol, and the retry classification the
// supervisor and the sweep service both use.
#include "src/service/exec.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace hdtn::service {
namespace {

namespace fs = std::filesystem;

std::string tempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(RunChildTest, CapturesExitCodeAndOutput) {
  const ChildOutcome run =
      runChild({"/bin/sh", "-c", "echo captured; exit 4"}, 10.0);
  EXPECT_EQ(run.cause, ExitCause::kCleanExit);
  EXPECT_EQ(run.exitCode, 4);
  EXPECT_EQ(run.output, "captured\n");
}

TEST(RunChildTest, KillsPastTheDeadline) {
  const ChildOutcome run = runChild({"/bin/sh", "-c", "sleep 30"}, 0.3);
  EXPECT_EQ(run.cause, ExitCause::kTimedOut);
}

TEST(RunChildTest, ReportsTheFatalSignal) {
  const ChildOutcome run = runChild({"/bin/sh", "-c", "kill -9 $$"}, 10.0);
  EXPECT_EQ(run.cause, ExitCause::kSignaled);
  EXPECT_EQ(run.signal, 9);
}

TEST(RunChildTest, ExecFailureIsExit127) {
  const ChildOutcome run = runChild({"/no/such/binary/anywhere"}, 10.0);
  EXPECT_EQ(run.cause, ExitCause::kCleanExit);
  EXPECT_EQ(run.exitCode, 127);
}

TEST(ChildProcessTest, LogFileModeRedirectsStdoutAndStderr) {
  const std::string log = tempPath("hdtn_exec_log_test.log");
  ChildProcess child;
  std::string error;
  ASSERT_TRUE(child.start({"/bin/sh", "-c", "echo out; echo err 1>&2"}, log,
                          &error))
      << error;
  const ChildOutcome run = child.wait();
  EXPECT_EQ(run.cause, ExitCause::kCleanExit);
  EXPECT_EQ(run.exitCode, 0);
  EXPECT_TRUE(run.output.empty());
  const std::string contents = readFile(log);
  EXPECT_NE(contents.find("out"), std::string::npos);
  EXPECT_NE(contents.find("err"), std::string::npos);
  fs::remove(log);
}

TEST(ChildProcessTest, RequestStopDeliversSigterm) {
  // A trap-aware child exits kPreemptedExitCode on SIGTERM — exactly the
  // worker preemption protocol.
  ChildProcess child;
  std::string error;
  ASSERT_TRUE(child.start({"/bin/sh", "-c",
                           "trap 'exit 75' TERM; "
                           "i=0; while [ $i -lt 400 ]; do sleep 0.05; "
                           "i=$((i+1)); done"},
                          "", &error))
      << error;
  // Give the shell a moment to install the trap before signaling.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(child.poll());
  child.requestStop();
  const ChildOutcome run = child.wait();
  ASSERT_EQ(run.cause, ExitCause::kCleanExit);
  EXPECT_EQ(run.exitCode, kPreemptedExitCode);
  EXPECT_EQ(classifyOutcome(run, RetryPolicy{}), RetryDecision::kPreempted);
}

TEST(ClassifyOutcomeTest, MapsEveryCauseToADecision) {
  const RetryPolicy policy;
  ChildOutcome outcome;
  outcome.cause = ExitCause::kCleanExit;
  outcome.exitCode = 0;
  EXPECT_EQ(classifyOutcome(outcome, policy), RetryDecision::kSuccess);
  outcome.exitCode = kPreemptedExitCode;
  EXPECT_EQ(classifyOutcome(outcome, policy), RetryDecision::kPreempted);
  // Deterministic validation failures fail fast; other clean nonzero exits
  // are transient and retry.
  outcome.exitCode = 2;
  EXPECT_EQ(classifyOutcome(outcome, policy), RetryDecision::kFailFast);
  outcome.exitCode = 127;
  EXPECT_EQ(classifyOutcome(outcome, policy), RetryDecision::kFailFast);
  outcome.exitCode = 1;
  EXPECT_EQ(classifyOutcome(outcome, policy), RetryDecision::kRetry);
  outcome.exitCode = 9;
  EXPECT_EQ(classifyOutcome(outcome, policy), RetryDecision::kRetry);
  outcome.cause = ExitCause::kSignaled;
  outcome.signal = 11;
  EXPECT_EQ(classifyOutcome(outcome, policy), RetryDecision::kRetry);
  outcome.cause = ExitCause::kTimedOut;
  EXPECT_EQ(classifyOutcome(outcome, policy), RetryDecision::kRetry);
}

TEST(BackoffTest, DoublesPerAttempt) {
  RetryPolicy policy;
  policy.backoffBaseSeconds = 0.5;
  EXPECT_DOUBLE_EQ(backoffSeconds(policy, 1), 0.0);
  EXPECT_DOUBLE_EQ(backoffSeconds(policy, 2), 0.5);
  EXPECT_DOUBLE_EQ(backoffSeconds(policy, 3), 1.0);
  EXPECT_DOUBLE_EQ(backoffSeconds(policy, 4), 2.0);
}

TEST(DescribeOutcomeTest, NamesTheFailure) {
  ChildOutcome outcome;
  outcome.cause = ExitCause::kCleanExit;
  outcome.exitCode = 3;
  EXPECT_EQ(describeOutcome(outcome, 60.0), "exit code 3");
  outcome.exitCode = kPreemptedExitCode;
  EXPECT_EQ(describeOutcome(outcome, 60.0), "preempted (checkpoint saved)");
  outcome.cause = ExitCause::kSignaled;
  outcome.signal = 9;
  EXPECT_EQ(describeOutcome(outcome, 60.0), "killed by signal 9");
  outcome.cause = ExitCause::kTimedOut;
  EXPECT_NE(describeOutcome(outcome, 60.0).find("timed out"),
            std::string::npos);
}

}  // namespace
}  // namespace hdtn::service
