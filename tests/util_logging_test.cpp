#include "src/util/logging.hpp"

#include <gtest/gtest.h>

#include "src/util/types.hpp"

namespace hdtn {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = logThreshold(); }
  void TearDown() override { setLogThreshold(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, ThresholdRoundTrip) {
  setLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(logThreshold(), LogLevel::kDebug);
  setLogThreshold(LogLevel::kError);
  EXPECT_EQ(logThreshold(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroEvaluatesLazily) {
  setLogThreshold(LogLevel::kError);
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return "x";
  };
  HDTN_DEBUG() << touch();  // below threshold: stream arg never evaluated
  EXPECT_EQ(evaluations, 0);
  HDTN_ERROR() << touch();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LogMessageRespectsThreshold) {
  setLogThreshold(LogLevel::kOff);
  // Nothing observable to assert on stderr here; this documents that the
  // call is safe at every level when logging is off.
  logMessage(LogLevel::kError, "suppressed");
  logMessage(LogLevel::kTrace, "suppressed");
  SUCCEED();
}

TEST(FormatTime, DayHourMinuteSecond) {
  EXPECT_EQ(formatTime(0), "d0 00:00:00");
  EXPECT_EQ(formatTime(kDay + 2 * kHour + 3 * kMinute + 4), "d1 02:03:04");
  EXPECT_EQ(formatTime(kDailyPublishHour), "d0 14:00:00");
  EXPECT_EQ(formatTime(10 * kDay - 1), "d9 23:59:59");
}

}  // namespace
}  // namespace hdtn
