#include "src/trace/mobility.hpp"

#include <gtest/gtest.h>

#include "src/trace/trace_stats.hpp"

namespace hdtn::trace {
namespace {

RandomWaypointParams smallParams() {
  RandomWaypointParams p;
  p.nodes = 20;
  p.fieldWidth = 400.0;
  p.fieldHeight = 400.0;
  p.radioRange = 60.0;
  p.duration = 2 * kHour;
  p.tick = 10;
  p.seed = 5;
  return p;
}

TEST(RandomWaypoint, WalkerStaysInField) {
  RandomWaypointParams p = smallParams();
  Rng rng(3);
  RandomWaypointWalker walker(p, rng.fork(1));
  for (int step = 0; step < 5000; ++step) {
    walker.advance(7);
    const Position pos = walker.position();
    ASSERT_GE(pos.x, 0.0);
    ASSERT_LE(pos.x, p.fieldWidth);
    ASSERT_GE(pos.y, 0.0);
    ASSERT_LE(pos.y, p.fieldHeight);
  }
}

TEST(RandomWaypoint, WalkerSpeedBounded) {
  RandomWaypointParams p = smallParams();
  p.maxPause = 0;  // so displacement reflects speed directly
  Rng rng(7);
  RandomWaypointWalker walker(p, rng.fork(2));
  Position prev = walker.position();
  for (int step = 0; step < 1000; ++step) {
    walker.advance(10);
    const Position cur = walker.position();
    // In 10 s, at most maxSpeed * 10 meters (waypoint turns only shorten
    // the straight-line displacement).
    EXPECT_LE(distance(prev, cur), p.maxSpeed * 10.0 + 1e-9);
    prev = cur;
  }
}

TEST(RandomWaypoint, TraceIsPairwiseAndDeterministic) {
  const auto a = generateRandomWaypoint(smallParams());
  const auto b = generateRandomWaypoint(smallParams());
  EXPECT_TRUE(a.isPairwiseOnly());
  ASSERT_EQ(a.contactCount(), b.contactCount());
  for (std::size_t i = 0; i < a.contactCount(); ++i) {
    EXPECT_EQ(a.contacts()[i], b.contacts()[i]);
  }
  EXPECT_GT(a.contactCount(), 0u);
}

TEST(RandomWaypoint, ContactsAlignedToTicks) {
  const RandomWaypointParams p = smallParams();
  const auto trace = generateRandomWaypoint(p);
  for (const Contact& c : trace.contacts()) {
    EXPECT_EQ(c.start % p.tick, 0);
    EXPECT_GE(c.duration(), p.tick);
  }
}

TEST(RandomWaypoint, LargerRangeMoreContactTime) {
  RandomWaypointParams small = smallParams();
  small.radioRange = 30.0;
  RandomWaypointParams large = smallParams();
  large.radioRange = 120.0;
  const auto smallStats = summarize(generateRandomWaypoint(small));
  const auto largeStats = summarize(generateRandomWaypoint(large));
  const double smallTime =
      smallStats.meanContactDuration * smallStats.contactCount;
  const double largeTime =
      largeStats.meanContactDuration * largeStats.contactCount;
  EXPECT_GT(largeTime, smallTime);
}

TEST(RandomWaypoint, NoOverlappingIntervalsPerPair) {
  const auto trace = generateRandomWaypoint(smallParams());
  std::map<NodePair, SimTime> lastEnd;
  for (const Contact& c : trace.contacts()) {
    const NodePair pair = makePair(c.members[0], c.members[1]);
    auto it = lastEnd.find(pair);
    if (it != lastEnd.end()) {
      EXPECT_GE(c.start, it->second) << "overlapping contacts for a pair";
    }
    lastEnd[pair] = std::max(lastEnd[pair], c.end);
  }
}

TEST(RandomWaypoint, DifferentSeedsDiffer) {
  RandomWaypointParams p = smallParams();
  const auto a = generateRandomWaypoint(p);
  p.seed = 6;
  const auto b = generateRandomWaypoint(p);
  EXPECT_NE(a.contactCount(), b.contactCount());
}

}  // namespace
}  // namespace hdtn::trace
