#include "src/util/string_util.hpp"

#include <gtest/gtest.h>

namespace hdtn {
namespace {

TEST(ToLower, Basic) {
  EXPECT_EQ(toLower("FoX NeWs"), "fox news");
  EXPECT_EQ(toLower(""), "");
  EXPECT_EQ(toLower("123-ABC"), "123-abc");
}

TEST(SplitTokens, SkipsEmptyTokens) {
  const auto tokens = splitTokens("a,,b, c", ", ");
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTokens, NoDelimiters) {
  EXPECT_EQ(splitTokens("hello", ","),
            (std::vector<std::string>{"hello"}));
}

TEST(SplitTokens, OnlyDelimiters) {
  EXPECT_TRUE(splitTokens(",,,", ",").empty());
  EXPECT_TRUE(splitTokens("", ",").empty());
}

TEST(KeywordTokens, LowercasesAndSplitsPunctuation) {
  const auto tokens = keywordTokens("FOX News: daily-special (ep42)!");
  EXPECT_EQ(tokens, (std::vector<std::string>{"fox", "news", "daily",
                                              "special", "ep42"}));
}

TEST(KeywordTokens, HandlesUnderscoresAndSlashes) {
  const auto tokens = keywordTokens("dtn://fox/f12_clip");
  EXPECT_EQ(tokens, (std::vector<std::string>{"dtn", "fox", "f12", "clip"}));
}

TEST(Join, Basic) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nochange"), "nochange");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(startsWith("--seeds=3", "--seeds="));
  EXPECT_FALSE(startsWith("-seeds=3", "--seeds="));
  EXPECT_TRUE(startsWith("abc", ""));
  EXPECT_FALSE(startsWith("", "a"));
}

}  // namespace
}  // namespace hdtn
