// Shared plumbing for the sweep-service tests: a daemon-on-a-thread
// harness, a tiny socket client, and scenario texts sized for tests.
// The worker binary is the real hdtn_sim (HDTN_SIM_BINARY, injected by
// tests/CMakeLists.txt).
#pragma once

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/service/daemon.hpp"
#include "src/service/jsonio.hpp"

namespace hdtn::service::testutil {

namespace fs = std::filesystem;

inline std::string uniqueTempDir(const std::string& tag) {
  static int counter = 0;
  const std::string path =
      (fs::temp_directory_path() /
       ("hdtn_service_" + tag + "_" + std::to_string(::getpid()) + "_" +
        std::to_string(counter++)))
          .string();
  fs::remove_all(path);
  return path;
}

inline std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A scenario quick enough to finish in well under a second.
inline std::string quickScenario(int seed) {
  return "name = svc-quick\n"
         "trace-family = nus\n"
         "trace-students = 30\n"
         "trace-courses = 6\n"
         "trace-courses-per-student = 2\n"
         "trace-days = 3\n"
         "trace-seed = 7\n"
         "protocol = mbt-qm\n"
         "access = 0.3\n"
         "files-per-day = 10\n"
         "ttl-days = 2\n"
         "seed = " + std::to_string(seed) + "\n";
}

/// A scenario slow enough (a few seconds) that tests can reliably observe
/// it running and kill or preempt it mid-flight.
inline std::string slowScenario(int seed) {
  return "name = svc-slow\n"
         "trace-family = nus\n"
         "trace-students = 200\n"
         "trace-courses = 40\n"
         "trace-courses-per-student = 4\n"
         "trace-days = 14\n"
         "trace-seed = 7\n"
         "protocol = mbt-qm\n"
         "access = 0.3\n"
         "files-per-day = 40\n"
         "ttl-days = 3\n"
         "pieces-per-file = 4\n"
         "seed = " + std::to_string(seed) + "\n";
}

/// One request/response round trip against a daemon socket. Returns false
/// on connection trouble (daemon mid-restart, for example).
inline bool roundTrip(const std::string& socketPath,
                      const std::string& request, std::string* reply) {
  const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    close(fd);
    return false;
  }
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return false;
  }
  const std::string line = request + "\n";
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n =
        send(fd, line.data() + sent, line.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  reply->clear();
  char buf[4096];
  while (reply->find('\n') == std::string::npos) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      close(fd);
      return false;
    }
    reply->append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  reply->resize(reply->find('\n'));
  return true;
}

/// Submits a scenario; returns the job id (0 on shed/reject, with the
/// daemon's error in *error).
inline std::uint64_t submitJob(const std::string& socketPath,
                               const std::string& name, int priority,
                               const std::string& scenarioText,
                               std::string* error = nullptr) {
  std::string reply;
  const std::string request =
      "{\"cmd\":\"submit\",\"name\":\"" + jsonEscape(name) +
      "\",\"priority\":" + std::to_string(priority) + ",\"scenario\":\"" +
      jsonEscape(scenarioText) + "\"}";
  if (!roundTrip(socketPath, request, &reply)) {
    if (error != nullptr) *error = "no daemon";
    return 0;
  }
  FlatObject fields;
  if (!parseFlatObject(reply, &fields, error)) return 0;
  if (!getBool(fields, "ok")) {
    if (error != nullptr) *error = getString(fields, "error");
    return 0;
  }
  return static_cast<std::uint64_t>(getInt(fields, "id"));
}

/// The parsed per-job rows of a status reply.
inline std::vector<FlatObject> statusJobs(const std::string& socketPath,
                                          FlatObject* top = nullptr) {
  std::string reply;
  std::vector<FlatObject> jobs;
  if (!roundTrip(socketPath, "{\"cmd\":\"status\"}", &reply)) return jobs;
  if (top != nullptr) {
    (void)parseFlatObject(stripArrayFields(reply), top, nullptr);
  }
  for (const std::string& text :
       splitObjectArray(extractArrayBody(reply, "jobs"))) {
    FlatObject job;
    if (parseFlatObject(text, &job, nullptr)) jobs.push_back(std::move(job));
  }
  return jobs;
}

inline FlatObject statusJob(const std::string& socketPath,
                            std::uint64_t id) {
  for (FlatObject& job : statusJobs(socketPath)) {
    if (static_cast<std::uint64_t>(getInt(job, "id")) == id) return job;
  }
  return {};
}

/// Runs a Daemon on its own thread; the test thread talks to it over the
/// socket only (plus the signal-safe requestShutdown), so there is no
/// shared mutable state.
class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonConfig config) : config_(std::move(config)) {}
  ~DaemonHarness() { stop(); }

  /// Starts the daemon; empty string on success, the error otherwise.
  std::string start() {
    daemon_ = std::make_unique<Daemon>(config_);
    std::string error;
    if (!daemon_->start(&error)) {
      daemon_.reset();
      return error.empty() ? "daemon start failed" : error;
    }
    thread_ = std::thread([this] { daemon_->runLoop(); });
    return "";
  }

  /// Graceful stop: running workers are preempted, the queue is compacted.
  void stop() {
    if (daemon_ == nullptr) return;
    daemon_->requestShutdown();
    if (thread_.joinable()) thread_.join();
    daemon_.reset();
  }

  [[nodiscard]] const std::string& socketPath() const {
    return config_.socketPath;
  }
  [[nodiscard]] const DaemonConfig& config() const { return config_; }
  [[nodiscard]] bool running() const { return daemon_ != nullptr; }

  /// Waits until every job is terminal (status "pending" hits zero).
  /// Returns false on timeout.
  bool waitForDrain(double timeoutSeconds) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration<double>(timeoutSeconds);
    while (std::chrono::steady_clock::now() < deadline) {
      FlatObject top;
      (void)statusJobs(config_.socketPath, &top);
      if (!top.empty() && getInt(top, "pending", -1) == 0) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }

 private:
  DaemonConfig config_;
  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
};

/// A test-sized daemon config rooted in a fresh state dir.
inline DaemonConfig testConfig(const std::string& tag,
                               std::size_t workers = 2) {
  DaemonConfig config;
  config.stateDir = uniqueTempDir(tag);
  // Unix socket paths are capped at ~107 bytes; the state dir lives in
  // /tmp, so this stays comfortably under.
  config.socketPath = config.stateDir + "/daemon.sock";
  config.workerExe = HDTN_SIM_BINARY;
  config.workers = workers;
  config.jobTimeoutSeconds = 90.0;
  config.retry.maxAttempts = 4;
  config.retry.backoffBaseSeconds = 0.05;
  config.graceSeconds = 10.0;
  // Frequent checkpoints so kills land between boundaries often.
  config.checkpointEverySimSeconds = 3600;
  return config;
}

}  // namespace hdtn::service::testutil
