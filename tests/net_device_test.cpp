#include "src/net/device.hpp"

#include <gtest/gtest.h>

#include "src/core/internet.hpp"

namespace hdtn::net {
namespace {

core::FileCatalog::PublishRequest request(const std::string& name) {
  core::FileCatalog::PublishRequest req;
  req.name = name;
  req.publisher = "fox";
  req.description = "about " + name;
  req.sizeBytes = 8 * 1024;
  req.pieceSizeBytes = 1024;  // 8 pieces
  req.popularity = 0.5;
  req.publishedAt = 0;
  req.ttl = 10 * kDay;
  return req;
}

struct Fixture {
  core::InternetServices internet;
  FileId file;

  Fixture() { file = internet.publish(request("fox news daily ep0")); }

  [[nodiscard]] const core::Metadata& metadata() const {
    return internet.catalog().metadataFor(file);
  }
};

core::Query makeQuery(std::uint32_t owner, const std::string& text) {
  core::Query q;
  q.id = QueryId(0);
  q.owner = NodeId(owner);
  q.text = text;
  q.target = FileId(0);
  q.issuedAt = 0;
  q.ttl = 10 * kDay;
  return q;
}

TEST(Device, HelloFrameCarriesStateAndTracksNeighbors) {
  Fixture fx;
  Device alice(NodeId(1), {});
  Device bob(NodeId(2), {});
  alice.node().addQuery(makeQuery(1, "news ep0"));
  // Bob hears Alice's hello: her query should be visible (bob proxies only
  // frequent contacts, so mark Alice as one).
  bob.node().setFrequentContacts({NodeId(1)});
  const Bytes hello = alice.makeHelloFrame(100);
  EXPECT_EQ(bob.receive(hello, 100), RxOutcome::kHello);
  EXPECT_EQ(bob.node().proxiedQueryTexts(100),
            (std::vector<std::string>{"news ep0"}));
  // Bob's next hello lists Alice as heard.
  const auto decoded = decodeHello(bob.makeHelloFrame(101));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->heardNeighbors, (std::vector<NodeId>{NodeId(1)}));
}

TEST(Device, MetadataFrameStoredOnce) {
  Fixture fx;
  Device alice(NodeId(1), {});
  alice.node().acceptMetadata(fx.metadata(), 0);
  Device bob(NodeId(2), {});
  const auto frame = alice.makeMetadataFrame(fx.file);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(bob.receive(*frame, 10), RxOutcome::kMetadataStored);
  EXPECT_EQ(bob.receive(*frame, 11), RxOutcome::kMetadataDuplicate);
  EXPECT_TRUE(bob.node().metadata().has(fx.file));
}

TEST(Device, ForgedMetadataRejectedWithRegistry) {
  Fixture fx;
  Device bob(NodeId(2), {}, &fx.internet.registry());
  core::Metadata forged = fx.metadata();
  forged.name = "fox news daily ep0 remastered";  // invalidates the tag
  forged.rebuildKeywords();
  EXPECT_EQ(bob.receive(encodeMetadata(forged), 10),
            RxOutcome::kMetadataRejected);
  EXPECT_FALSE(bob.node().metadata().has(fx.file));
  // The genuine record still passes.
  EXPECT_EQ(bob.receive(encodeMetadata(fx.metadata()), 10),
            RxOutcome::kMetadataStored);
}

TEST(Device, PieceWithoutMetadataDropped) {
  Fixture fx;
  Device alice(NodeId(1), {});
  alice.node().acceptMetadata(fx.metadata(), 0);
  alice.node().acceptPiece(fx.file, 0, fx.metadata().pieceCount(), 0);
  Device bob(NodeId(2), {});
  const auto frame = alice.makePieceFrame(fx.internet.catalog(), fx.file, 0);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(bob.receive(*frame, 10), RxOutcome::kPieceUnknown);
  EXPECT_EQ(bob.node().pieces().piecesHeld(fx.file), 0u);
}

TEST(Device, CorruptPieceRejectedByChecksum) {
  Fixture fx;
  Device alice(NodeId(1), {});
  alice.node().acceptMetadata(fx.metadata(), 0);
  alice.node().acceptPiece(fx.file, 0, fx.metadata().pieceCount(), 0);
  Device bob(NodeId(2), {});
  bob.receive(encodeMetadata(fx.metadata()), 5);
  auto frame = *alice.makePieceFrame(fx.internet.catalog(), fx.file, 0);
  frame.back() ^= 0xff;  // corrupt the payload tail
  EXPECT_EQ(bob.receive(frame, 10), RxOutcome::kPieceCorrupt);
  // The pristine frame goes through, once.
  const auto clean = alice.makePieceFrame(fx.internet.catalog(), fx.file, 0);
  EXPECT_EQ(bob.receive(*clean, 11), RxOutcome::kPieceStored);
  EXPECT_EQ(bob.receive(*clean, 12), RxOutcome::kPieceDuplicate);
}

TEST(Device, MalformedFrameCounted) {
  Device bob(NodeId(2), {});
  const Bytes junk = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(bob.receive(junk, 0), RxOutcome::kMalformed);
  EXPECT_EQ(bob.outcomeCount(RxOutcome::kMalformed), 1u);
}

TEST(Device, LastDecodeErrorNamesTheRejectionCause) {
  Device bob(NodeId(2), {});
  EXPECT_EQ(bob.lastDecodeError(), DecodeError::kNone);
  Bytes frame = encodeHello([] {
    HelloMessage h;
    h.sender = NodeId(1);
    return h;
  }());
  frame[0] = kCodecVersion + 1;
  EXPECT_EQ(bob.receive(frame, 0), RxOutcome::kMalformed);
  EXPECT_EQ(bob.lastDecodeError(), DecodeError::kBadVersion);
  frame[0] = kCodecVersion;
  frame.pop_back();
  EXPECT_EQ(bob.receive(frame, 1), RxOutcome::kMalformed);
  EXPECT_EQ(bob.lastDecodeError(), DecodeError::kTruncated);
}

TEST(Device, SenderCannotFrameUnheldContent) {
  Fixture fx;
  Device alice(NodeId(1), {});
  EXPECT_FALSE(alice.makeMetadataFrame(fx.file).has_value());
  EXPECT_FALSE(
      alice.makePieceFrame(fx.internet.catalog(), fx.file, 0).has_value());
}

TEST(LossyLink, DropAndCorruptRates) {
  LossyLink link(0.3, 0.2, Rng(5));
  const Bytes frame(100, 0x42);
  int delivered = 0;
  for (int i = 0; i < 5000; ++i) {
    if (link.transfer(frame)) ++delivered;
  }
  EXPECT_NEAR(delivered / 5000.0, 0.7, 0.03);
  EXPECT_NEAR(static_cast<double>(link.corrupted()) / delivered, 0.2, 0.03);
}

TEST(LossyLink, PerfectLinkIsTransparent) {
  LossyLink link(0.0, 0.0, Rng(1));
  const Bytes frame = {1, 2, 3};
  const auto out = link.transfer(frame);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, frame);
  EXPECT_EQ(link.dropped(), 0u);
}

TEST(LossyLink, BuildsFromFaultParams) {
  // The radio view of a fault configuration behaves like the explicit-rate
  // constructor: same rates, same Rng, same decisions.
  faults::FaultParams faults;
  faults.messageLossRate = 0.3;
  faults.pieceCorruptionRate = 0.2;
  LossyLink fromFaults(faults, Rng(5));
  LossyLink explicitRates(0.3, 0.2, Rng(5));
  const Bytes frame(64, 0x17);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(fromFaults.transfer(frame).has_value(),
              explicitRates.transfer(frame).has_value());
  }
  EXPECT_EQ(fromFaults.dropped(), explicitRates.dropped());
  EXPECT_EQ(fromFaults.corrupted(), explicitRates.corrupted());
}

// End-to-end: a whole 8-piece file crosses a lossy radio; checksums weed
// out corruption and retransmission drives the transfer to completion.
TEST(Device, FileTransferAcrossLossyRadio) {
  Fixture fx;
  Device seeder(NodeId(1), {});
  seeder.node().acceptMetadata(fx.metadata(), 0);
  for (std::uint32_t p = 0; p < fx.metadata().pieceCount(); ++p) {
    seeder.node().acceptPiece(fx.file, p, fx.metadata().pieceCount(), 0);
  }
  Device leecher(NodeId(2), {});
  leecher.node().addQuery(makeQuery(2, "news ep0"));

  LossyLink link(0.25, 0.25, Rng(42));
  SimTime now = 10;

  // Metadata first (retransmit until it lands).
  while (!leecher.node().metadata().has(fx.file)) {
    if (const auto frame = link.transfer(*seeder.makeMetadataFrame(fx.file))) {
      leecher.receive(*frame, now);
    }
    ++now;
    ASSERT_LT(now, 1000);
  }
  EXPECT_EQ(leecher.node().wantedFiles(now),
            (std::vector<FileId>{fx.file}));

  // Pieces: naive ARQ — send every missing piece each round.
  while (!leecher.node().pieces().isComplete(fx.file)) {
    for (std::uint32_t p : leecher.node().pieces().missingPieces(fx.file)) {
      const auto frame =
          seeder.makePieceFrame(fx.internet.catalog(), fx.file, p);
      ASSERT_TRUE(frame.has_value());
      if (const auto rx = link.transfer(*frame)) {
        leecher.receive(*rx, now);
      }
    }
    ++now;
    ASSERT_LT(now, 2000);
  }
  EXPECT_TRUE(leecher.node().pieces().isComplete(fx.file));
  // The lossy radio really did interfere, and every corruption was caught.
  EXPECT_GT(link.dropped() + link.corrupted(), 0u);
  EXPECT_EQ(leecher.outcomeCount(RxOutcome::kPieceStored),
            fx.metadata().pieceCount());
  // Corrupted piece payloads were rejected, not stored (malformed covers
  // frames whose corruption hit the header instead).
  EXPECT_GE(leecher.outcomeCount(RxOutcome::kPieceCorrupt) +
                leecher.outcomeCount(RxOutcome::kMalformed),
            link.corrupted() > 0 ? 1u : 0u);
}

}  // namespace
}  // namespace hdtn::net
