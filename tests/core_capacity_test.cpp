#include "src/core/capacity.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

TEST(Capacity, AnalyticForms) {
  EXPECT_DOUBLE_EQ(analyticBroadcastCapacity(2), 0.5);
  EXPECT_DOUBLE_EQ(analyticBroadcastCapacity(10), 0.9);
  EXPECT_DOUBLE_EQ(analyticPairwiseCapacity(2), 0.5);
  EXPECT_DOUBLE_EQ(analyticPairwiseCapacity(10), 0.1);
  EXPECT_DOUBLE_EQ(analyticBroadcastCapacity(1), 0.0);
  EXPECT_DOUBLE_EQ(analyticPairwiseCapacity(1), 0.0);
}

TEST(Capacity, BroadcastIncreasesWithDensity) {
  for (int n = 2; n < 50; ++n) {
    EXPECT_GT(analyticBroadcastCapacity(n + 1), analyticBroadcastCapacity(n));
  }
}

TEST(Capacity, PairwiseDecreasesWithDensity) {
  for (int n = 2; n < 50; ++n) {
    EXPECT_LT(analyticPairwiseCapacity(n + 1), analyticPairwiseCapacity(n));
  }
}

TEST(Capacity, BroadcastScheduleMatchesAnalytic) {
  ContentionParams params;
  params.nodes = 12;
  params.slots = 1000;
  const auto result = simulateBroadcastSchedule(params);
  EXPECT_DOUBLE_EQ(result.perNodeGoodput, analyticBroadcastCapacity(12));
  EXPECT_DOUBLE_EQ(result.collisionFraction, 0.0);
}

TEST(Capacity, PairwiseContentionBelowAnalyticBound) {
  // Random access cannot beat the perfectly scheduled 1/n bound.
  for (int n : {2, 5, 10, 20}) {
    ContentionParams params;
    params.nodes = n;
    params.slots = 50000;
    params.attemptProbability = optimalAttemptProbability(n);
    params.seed = 3;
    const auto result = simulatePairwiseContention(params);
    EXPECT_LT(result.perNodeGoodput, analyticPairwiseCapacity(n));
    EXPECT_GT(result.perNodeGoodput, 0.0);
  }
}

TEST(Capacity, PairwiseSuccessRateNearSlottedAlohaOptimum) {
  // With p = 1/n, P(success) = n * p * (1-p)^(n-1) -> 1/e for large n.
  ContentionParams params;
  params.nodes = 30;
  params.slots = 400000;
  params.attemptProbability = optimalAttemptProbability(30);
  params.seed = 5;
  const auto result = simulatePairwiseContention(params);
  const double successRate = result.perNodeGoodput * 30;
  EXPECT_NEAR(successRate, 0.3678, 0.01);
}

TEST(Capacity, FractionsSumToOne) {
  ContentionParams params;
  params.nodes = 8;
  params.slots = 20000;
  params.attemptProbability = 0.3;
  const auto result = simulatePairwiseContention(params);
  const double successFraction = result.perNodeGoodput * 8;
  EXPECT_NEAR(successFraction + result.collisionFraction +
                  result.idleFraction,
              1.0, 1e-9);
}

TEST(Capacity, CrossoverAtTwoNodes) {
  // The paper's claim in one line: at n = 2 the schemes tie; for any larger
  // clique broadcast wins, and the gap widens.
  EXPECT_DOUBLE_EQ(analyticBroadcastCapacity(2), analyticPairwiseCapacity(2));
  double previousGap = 0.0;
  for (int n = 3; n <= 50; ++n) {
    const double gap =
        analyticBroadcastCapacity(n) - analyticPairwiseCapacity(n);
    EXPECT_GT(gap, previousGap);
    previousGap = gap;
  }
}

TEST(Capacity, DeterministicInSeed) {
  ContentionParams params;
  params.nodes = 6;
  params.slots = 10000;
  params.attemptProbability = 0.2;
  params.seed = 11;
  const auto a = simulatePairwiseContention(params);
  const auto b = simulatePairwiseContention(params);
  EXPECT_DOUBLE_EQ(a.perNodeGoodput, b.perNodeGoodput);
  EXPECT_DOUBLE_EQ(a.collisionFraction, b.collisionFraction);
}

}  // namespace
}  // namespace hdtn::core
