#include "src/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace hdtn::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (q.runNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, EqualTimesFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (q.runNext()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel fails
  while (q.runNext()) {
  }
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.runNext();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.schedule(5, [] {});
  q.schedule(9, [] {});
  EXPECT_EQ(q.nextTime(), 5);
  q.cancel(a);
  EXPECT_EQ(q.nextTime(), 9);
}

TEST(EventQueue, NextTimeInfinityWhenEmpty) {
  EventQueue q;
  EXPECT_EQ(q.nextTime(), kTimeInfinity);
  EXPECT_FALSE(q.runNext());
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> times;
  q.schedule(1, [&] {
    times.push_back(q.now());
    q.schedule(5, [&] { times.push_back(q.now()); });
  });
  q.schedule(3, [&] { times.push_back(q.now()); });
  while (q.runNext()) {
  }
  EXPECT_EQ(times, (std::vector<SimTime>{1, 3, 5}));
}

TEST(EventQueue, SlotsAreReusedAcrossPopCycles) {
  EventQueue q;
  // Schedule/run in waves: the slot pool must stay at the high-water mark of
  // *pending* events, not grow by one slot per event ever scheduled.
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 10; ++i) {
      q.schedule(wave * 10 + i, [] {});
    }
    while (q.runNext()) {
    }
  }
  EXPECT_EQ(q.slotCapacity(), 10u);
}

TEST(EventQueue, CancelledSlotsAreReused) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(q.schedule(100 + i, [] {}));
  for (const EventId id : ids) EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 0u);
  // The cancelled slots back the next schedules without growing the pool.
  for (int i = 0; i < 8; ++i) q.schedule(200 + i, [] {});
  EXPECT_EQ(q.slotCapacity(), 8u);
  EXPECT_EQ(q.size(), 8u);
}

TEST(EventQueue, StaleIdCannotCancelSlotsNextTenant) {
  EventQueue q;
  const EventId stale = q.schedule(1, [] {});
  ASSERT_TRUE(q.cancel(stale));
  bool ran = false;
  q.schedule(2, [&] { ran = true; });  // reuses the recycled slot
  EXPECT_FALSE(q.cancel(stale));       // generation mismatch
  while (q.runNext()) {
  }
  EXPECT_TRUE(ran);
}

TEST(EventQueue, ReservePreSizesSlotPool) {
  EventQueue q;
  q.reserve(64);
  for (int i = 0; i < 64; ++i) q.schedule(i, [] {});
  EXPECT_EQ(q.size(), 64u);
  while (q.runNext()) {
  }
}

TEST(EventQueue, SameTimeScheduledFromHandlerRunsAfter) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1, [&] {
    order.push_back(1);
    q.schedule(1, [&] { order.push_back(2); });
  });
  while (q.runNext()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace hdtn::sim
