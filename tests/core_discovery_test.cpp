#include "src/core/discovery.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hdtn::core {
namespace {

Metadata makeMetadata(std::uint32_t id, const std::string& name,
                      double popularity) {
  Metadata md;
  md.file = FileId(id);
  md.name = name;
  md.publisher = "pub";
  md.uri = "dtn://pub/f" + std::to_string(id);
  md.popularity = popularity;
  md.ttl = 1000;
  md.rebuildKeywords();
  return md;
}

struct Fixture {
  std::vector<MetadataStore> stores;
  std::vector<CreditLedger> ledgers;
  std::vector<DiscoveryPeer> peers;

  explicit Fixture(std::size_t n) : stores(n), ledgers(n) {
    for (std::size_t i = 0; i < n; ++i) {
      DiscoveryPeer peer;
      peer.id = NodeId(static_cast<std::uint32_t>(i));
      peer.store = &stores[i];
      peer.credits = &ledgers[i];
      peers.push_back(peer);
    }
  }
};

TEST(PlanDiscovery, EmptyWhenBudgetZeroOrLonePeer) {
  Fixture f(2);
  f.stores[0].add(makeMetadata(1, "a", 0.5));
  EXPECT_TRUE(planDiscovery(f.peers, 0, Scheduling::kCooperative).empty());
  std::vector<DiscoveryPeer> solo{f.peers[0]};
  EXPECT_TRUE(planDiscovery(solo, 5, Scheduling::kCooperative).empty());
}

TEST(PlanDiscovery, RequestedBeforeUnrequested) {
  Fixture f(2);
  f.stores[0].add(makeMetadata(1, "fox news ep1", 0.1));   // peer 1 wants
  f.stores[0].add(makeMetadata(2, "abc drama ep2", 0.99)); // nobody wants
  f.peers[1].queries = {"news ep1"};
  const auto plan = planDiscovery(f.peers, 2, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].metadata->file, FileId(1));  // requested, low popularity
  EXPECT_EQ(plan[0].phase, 1);
  EXPECT_EQ(plan[0].requesters, (std::vector<NodeId>{NodeId(1)}));
  EXPECT_EQ(plan[1].metadata->file, FileId(2));
  EXPECT_EQ(plan[1].phase, 2);
}

TEST(PlanDiscovery, MoreRequestersFirst) {
  Fixture f(4);
  f.stores[0].add(makeMetadata(1, "fox news ep1", 0.9));
  f.stores[0].add(makeMetadata(2, "abc drama ep2", 0.1));
  f.peers[1].queries = {"drama ep2"};
  f.peers[2].queries = {"drama ep2"};
  f.peers[3].queries = {"news ep1"};
  const auto plan = planDiscovery(f.peers, 2, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 2u);
  // ep2 has two requesters and beats ep1 despite lower popularity.
  EXPECT_EQ(plan[0].metadata->file, FileId(2));
  EXPECT_EQ(plan[0].requesters.size(), 2u);
  EXPECT_EQ(plan[1].metadata->file, FileId(1));
}

TEST(PlanDiscovery, PopularityOrdersWithinPhase) {
  Fixture f(2);
  f.stores[0].add(makeMetadata(1, "a one", 0.3));
  f.stores[0].add(makeMetadata(2, "b two", 0.7));
  f.stores[0].add(makeMetadata(3, "c three", 0.5));
  const auto plan = planDiscovery(f.peers, 3, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].metadata->file, FileId(2));
  EXPECT_EQ(plan[1].metadata->file, FileId(3));
  EXPECT_EQ(plan[2].metadata->file, FileId(1));
}

TEST(PlanDiscovery, BudgetCapsBroadcasts) {
  Fixture f(2);
  for (std::uint32_t i = 0; i < 10; ++i) {
    f.stores[0].add(makeMetadata(i, "file " + std::to_string(i), 0.5));
  }
  EXPECT_EQ(planDiscovery(f.peers, 4, Scheduling::kCooperative).size(), 4u);
}

TEST(PlanDiscovery, SkipsUniversallyHeldRecords) {
  Fixture f(2);
  const Metadata md = makeMetadata(1, "shared", 0.5);
  f.stores[0].add(md);
  f.stores[1].add(md);
  EXPECT_TRUE(planDiscovery(f.peers, 5, Scheduling::kCooperative).empty());
}

TEST(PlanDiscovery, EachRecordBroadcastOnce) {
  Fixture f(3);
  const Metadata md = makeMetadata(1, "dup", 0.5);
  f.stores[0].add(md);
  f.stores[1].add(md);  // two holders, one lacker
  const auto plan = planDiscovery(f.peers, 5, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].sender, NodeId(0));  // lowest-id holder sends
}

TEST(PlanDiscovery, FreeRidersNeverSend) {
  Fixture f(2);
  f.stores[0].add(makeMetadata(1, "only free rider has this", 0.9));
  f.peers[0].contributes = false;
  EXPECT_TRUE(planDiscovery(f.peers, 5, Scheduling::kCooperative).empty());
  EXPECT_TRUE(planDiscovery(f.peers, 5, Scheduling::kTitForTat).empty());
}

TEST(PlanDiscovery, FreeRidersStillCountAsReceivers) {
  Fixture f(2);
  f.stores[0].add(makeMetadata(1, "payload", 0.5));
  f.peers[1].contributes = false;
  const auto plan = planDiscovery(f.peers, 5, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 1u);  // free-rider overhears the broadcast
}

TEST(PlanDiscovery, TitForTatPrefersHighCreditRequesters) {
  Fixture f(3);
  // Sender 0 holds two records, each requested by one distinct peer.
  f.stores[0].add(makeMetadata(1, "alpha item", 0.5));
  f.stores[0].add(makeMetadata(2, "beta item", 0.5));
  f.peers[1].queries = {"alpha item"};
  f.peers[2].queries = {"beta item"};
  // Peer 2 has far more credit with sender 0.
  f.ledgers[0].addCredit(NodeId(2), 50.0);
  const auto plan = planDiscovery(f.peers, 1, Scheduling::kTitForTat);
  ASSERT_EQ(plan.size(), 1u);
  // Whichever node is first in the cyclic order, only node 0 can send.
  EXPECT_EQ(plan[0].sender, NodeId(0));
  EXPECT_EQ(plan[0].metadata->file, FileId(2));
}

TEST(PlanDiscovery, TitForTatRequestedOutranksPopularPush) {
  Fixture f(2);
  f.stores[0].add(makeMetadata(1, "wanted item", 0.01));
  f.stores[0].add(makeMetadata(2, "popular item", 0.99));
  f.peers[1].queries = {"wanted item"};
  const auto plan = planDiscovery(f.peers, 1, Scheduling::kTitForTat);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].metadata->file, FileId(1));
  EXPECT_EQ(plan[0].phase, 1);
}

TEST(PlanDiscovery, TitForTatRotatesSenders) {
  Fixture f(2);
  f.stores[0].add(makeMetadata(1, "from zero", 0.5));
  f.stores[1].add(makeMetadata(2, "from one", 0.5));
  const auto plan = planDiscovery(f.peers, 2, Scheduling::kTitForTat);
  ASSERT_EQ(plan.size(), 2u);
  std::set<NodeId> senders{plan[0].sender, plan[1].sender};
  EXPECT_EQ(senders.size(), 2u);
}

TEST(PlanDiscovery, PopularityOnlyIgnoresRequests) {
  Fixture f(2);
  f.stores[0].add(makeMetadata(1, "requested", 0.1));
  f.stores[0].add(makeMetadata(2, "popular", 0.9));
  f.peers[1].queries = {"requested"};
  const auto plan = planDiscovery(f.peers, 1, Scheduling::kPopularityOnly);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].metadata->file, FileId(2));
}

TEST(PlanDiscovery, DeterministicForSameInputs) {
  Fixture f(3);
  for (std::uint32_t i = 0; i < 6; ++i) {
    f.stores[i % 2].add(makeMetadata(i, "file " + std::to_string(i),
                                     0.1 * static_cast<double>(i)));
  }
  f.peers[2].queries = {"file 3"};
  const auto a = planDiscovery(f.peers, 4, Scheduling::kCooperative);
  const auto b = planDiscovery(f.peers, 4, Scheduling::kCooperative);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sender, b[i].sender);
    EXPECT_EQ(a[i].metadata->file, b[i].metadata->file);
  }
}

}  // namespace
}  // namespace hdtn::core
