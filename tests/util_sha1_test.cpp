#include "src/util/sha1.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hdtn {
namespace {

// FIPS 180-1 / RFC 3174 reference vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1::hash("").hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::hash("abc").hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .hex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hasher.finish().hex(),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, QuickBrownFox) {
  EXPECT_EQ(Sha1::hash("The quick brown fox jumps over the lazy dog").hex(),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string data =
      "delay tolerant networks distribute files via store-carry-forward";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Sha1 hasher;
    hasher.update(std::string_view(data).substr(0, split));
    hasher.update(std::string_view(data).substr(split));
    EXPECT_EQ(hasher.finish(), Sha1::hash(data)) << "split at " << split;
  }
}

TEST(Sha1, ResetRestoresInitialState) {
  Sha1 hasher;
  hasher.update("garbage");
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(hasher.finish().hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, BinaryInput) {
  std::vector<std::uint8_t> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  // Stability check against self (incremental vs one-shot over bytes).
  Sha1 hasher;
  hasher.update(std::span<const std::uint8_t>(data.data(), 100));
  hasher.update(std::span<const std::uint8_t>(data.data() + 100, 156));
  EXPECT_EQ(hasher.finish(), Sha1::hash(data));
}

TEST(Sha1, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha1::hash("piece-0"), Sha1::hash("piece-1"));
  // An embedded NUL is part of the message (string literals would truncate).
  const std::string withNul("a\0", 2);
  EXPECT_NE(Sha1::hash("a"), Sha1::hash(withNul));
}

TEST(Sha1Digest, HexIs40LowercaseChars) {
  const std::string hex = Sha1::hash("x").hex();
  ASSERT_EQ(hex.size(), 40u);
  for (char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

// Boundary lengths around the 64-byte block and 56-byte padding threshold.
class Sha1LengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(Sha1LengthSweep, IncrementalByteAtATimeMatchesOneShot) {
  const int length = GetParam();
  std::string data(static_cast<std::size_t>(length), 'q');
  for (int i = 0; i < length; ++i) {
    data[static_cast<std::size_t>(i)] = static_cast<char>('a' + i % 26);
  }
  Sha1 hasher;
  for (char c : data) hasher.update(std::string_view(&c, 1));
  EXPECT_EQ(hasher.finish(), Sha1::hash(data));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha1LengthSweep,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 127, 128, 129, 1000));

}  // namespace
}  // namespace hdtn
