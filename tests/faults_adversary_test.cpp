// Byzantine adversary layer: attack-mask parsing, AdversaryPlan determinism
// and serialization, membership selection from the engine's role shuffle,
// and the engine-level guarantees — zero-cost-off byte-identity, pollution
// rollback under defense (no polluted delivery ever completes), quarantine
// of real attackers with no false quarantine of honest nodes under pure
// random faults, and per-attack accounting for every attack class.
#include "src/faults/adversary.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/reputation.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/events.hpp"
#include "src/trace/nus.hpp"
#include "src/util/random.hpp"

namespace hdtn::faults {
namespace {

// ---------------------------------------------------------------------------
// Attack mask parsing and naming

TEST(AdversaryParams, DefaultsAreDisabledAndValid) {
  AdversaryParams params;
  EXPECT_FALSE(params.enabled());
  EXPECT_TRUE(params.validate().empty());
  EXPECT_EQ(params.attacks, kAllAttacks);
}

TEST(AdversaryParams, EnabledNeedsFractionAndAttacks) {
  AdversaryParams params;
  params.byzantineFraction = 0.2;
  EXPECT_TRUE(params.enabled());
  params.attacks = 0;
  EXPECT_FALSE(params.enabled());
  params.attacks = static_cast<std::uint32_t>(AttackKind::kPollution);
  params.byzantineFraction = 0.0;
  EXPECT_FALSE(params.enabled());
}

TEST(AdversaryParams, ValidateRejectsBadFractionAndUnknownBits) {
  AdversaryParams params;
  params.byzantineFraction = 1.5;
  auto errors = params.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("byzantineFraction"), std::string::npos);
  params.byzantineFraction = -0.1;
  EXPECT_EQ(params.validate().size(), 1u);
  params.byzantineFraction = 0.2;
  params.attacks = kAllAttacks | (1u << 17);
  errors = params.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("unknown bits"), std::string::npos);
}

TEST(AttackMask, KindNamesAreStable) {
  EXPECT_STREQ(attackKindName(AttackKind::kPollution), "pollution");
  EXPECT_STREQ(attackKindName(AttackKind::kPieceLie), "piece-lie");
  EXPECT_STREQ(attackKindName(AttackKind::kFalseSummary), "false-summary");
  EXPECT_STREQ(attackKindName(AttackKind::kAckSpoof), "ack-spoof");
  EXPECT_STREQ(attackKindName(AttackKind::kCoordinator), "coordinator");
}

TEST(AttackMask, ParseAcceptsListsAllAndNone) {
  std::uint32_t mask = 0;
  EXPECT_TRUE(parseAttackMask("all", &mask));
  EXPECT_EQ(mask, kAllAttacks);
  EXPECT_TRUE(parseAttackMask("none", &mask));
  EXPECT_EQ(mask, 0u);
  EXPECT_TRUE(parseAttackMask("pollution,ack-spoof", &mask));
  EXPECT_EQ(mask, static_cast<std::uint32_t>(AttackKind::kPollution) |
                      static_cast<std::uint32_t>(AttackKind::kAckSpoof));
  // Spaces around tokens are tolerated.
  EXPECT_TRUE(parseAttackMask(" piece-lie , false-summary ", &mask));
  EXPECT_EQ(mask, static_cast<std::uint32_t>(AttackKind::kPieceLie) |
                      static_cast<std::uint32_t>(AttackKind::kFalseSummary));
}

TEST(AttackMask, ParseRejectsUnknownTokenAndLeavesMaskUntouched) {
  std::uint32_t mask = 0xdeadu;
  std::string error;
  EXPECT_FALSE(parseAttackMask("pollution,rateless", &mask, &error));
  EXPECT_EQ(mask, 0xdeadu);
  EXPECT_EQ(error, "rateless");
}

TEST(AttackMask, NameRoundTripsThroughParse) {
  const std::uint32_t singles[] = {
      static_cast<std::uint32_t>(AttackKind::kPollution),
      static_cast<std::uint32_t>(AttackKind::kPieceLie),
      static_cast<std::uint32_t>(AttackKind::kFalseSummary),
      static_cast<std::uint32_t>(AttackKind::kAckSpoof),
      static_cast<std::uint32_t>(AttackKind::kCoordinator),
  };
  for (std::uint32_t bit : singles) {
    std::uint32_t parsed = 0;
    ASSERT_TRUE(parseAttackMask(attackMaskName(bit), &parsed));
    EXPECT_EQ(parsed, bit) << attackMaskName(bit);
  }
  EXPECT_EQ(attackMaskName(kAllAttacks), "all");
  EXPECT_EQ(attackMaskName(0), "none");
  std::uint32_t parsed = 0;
  const std::uint32_t pair =
      static_cast<std::uint32_t>(AttackKind::kPieceLie) |
      static_cast<std::uint32_t>(AttackKind::kCoordinator);
  ASSERT_TRUE(parseAttackMask(attackMaskName(pair), &parsed));
  EXPECT_EQ(parsed, pair);
}

// ---------------------------------------------------------------------------
// AdversaryPlan: determinism, stream independence, serialization

AdversaryParams enabledParams() {
  AdversaryParams params;
  params.byzantineFraction = 0.3;
  return params;
}

TEST(AdversaryPlan, SameSeedSameDecisions) {
  AdversaryPlan a(enabledParams(), Rng(42));
  AdversaryPlan b(enabledParams(), Rng(42));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.pollutesFrame(), b.pollutesFrame());
    EXPECT_EQ(a.liesAboutPiece(), b.liesAboutPiece());
    EXPECT_EQ(a.forgesSummary(), b.forgesSummary());
    EXPECT_EQ(a.spoofedAckClaims(), b.spoofedAckClaims());
    EXPECT_EQ(a.dropsPlannedBroadcast(), b.dropsPlannedBroadcast());
  }
}

TEST(AdversaryPlan, AttackStreamsAreIndependent) {
  // Drawing heavily from one attack stream must not perturb another: the
  // pollution sequence is the same whether or not piece lies are drawn.
  AdversaryPlan pure(enabledParams(), Rng(7));
  AdversaryPlan interleaved(enabledParams(), Rng(7));
  std::vector<bool> pureSeq, interleavedSeq;
  for (int i = 0; i < 100; ++i) pureSeq.push_back(pure.pollutesFrame());
  for (int i = 0; i < 100; ++i) {
    (void)interleaved.liesAboutPiece();
    (void)interleaved.spoofedAckClaims();
    interleavedSeq.push_back(interleaved.pollutesFrame());
    (void)interleaved.forgesSummary();
  }
  EXPECT_EQ(pureSeq, interleavedSeq);
}

TEST(AdversaryPlan, DecisionRatesAreRoughlyAsConfigured) {
  AdversaryPlan plan(enabledParams(), Rng(1234));
  int pollution = 0;
  std::uint32_t claims = 0;
  for (int i = 0; i < 2000; ++i) {
    if (plan.pollutesFrame()) ++pollution;
    claims += plan.spoofedAckClaims();
    EXPECT_LE(plan.spoofedAckClaims(), 3u);
  }
  // kPollutionRate = 0.75 with a wide tolerance; a broken stream (always
  // true / always false) fails decisively.
  EXPECT_GT(pollution, 1300);
  EXPECT_LT(pollution, 1700);
  EXPECT_GT(claims, 0u);
}

TEST(AdversaryPlan, SetByzantineBuildsBitmapAndCount) {
  AdversaryPlan plan(enabledParams(), Rng(5));
  plan.setByzantine({NodeId{2}, NodeId{5}, NodeId{2}, NodeId{99}}, 10);
  EXPECT_EQ(plan.byzantineCount(), 2u);  // dupes once, out-of-range ignored
  EXPECT_TRUE(plan.isByzantine(NodeId{2}));
  EXPECT_TRUE(plan.isByzantine(NodeId{5}));
  EXPECT_FALSE(plan.isByzantine(NodeId{3}));
  EXPECT_FALSE(plan.isByzantine(NodeId{99}));
}

TEST(AdversaryPlan, AttackEnabledFollowsMask) {
  AdversaryParams params;
  params.byzantineFraction = 0.2;
  params.attacks = static_cast<std::uint32_t>(AttackKind::kPollution) |
                   static_cast<std::uint32_t>(AttackKind::kAckSpoof);
  AdversaryPlan plan(params, Rng(5));
  EXPECT_TRUE(plan.attackEnabled(AttackKind::kPollution));
  EXPECT_TRUE(plan.attackEnabled(AttackKind::kAckSpoof));
  EXPECT_FALSE(plan.attackEnabled(AttackKind::kPieceLie));
  EXPECT_FALSE(plan.attackEnabled(AttackKind::kFalseSummary));
  EXPECT_FALSE(plan.attackEnabled(AttackKind::kCoordinator));
}

TEST(AdversaryPlan, SaveLoadResumesEveryStreamExactly) {
  AdversaryPlan original(enabledParams(), Rng(77));
  // Advance the streams unevenly so the snapshot carries distinct
  // positions per attack class.
  for (int i = 0; i < 13; ++i) (void)original.pollutesFrame();
  for (int i = 0; i < 7; ++i) (void)original.liesAboutPiece();
  for (int i = 0; i < 3; ++i) (void)original.spoofedAckClaims();
  Serializer out;
  original.saveState(out);

  AdversaryPlan restored(enabledParams(), Rng(1));  // different seed on purpose
  Deserializer in(out.bytes());
  restored.loadState(in);
  EXPECT_TRUE(in.done());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(restored.pollutesFrame(), original.pollutesFrame());
    EXPECT_EQ(restored.liesAboutPiece(), original.liesAboutPiece());
    EXPECT_EQ(restored.forgesSummary(), original.forgesSummary());
    EXPECT_EQ(restored.spoofedAckClaims(), original.spoofedAckClaims());
    EXPECT_EQ(restored.dropsPlannedBroadcast(),
              original.dropsPlannedBroadcast());
  }
}

// ---------------------------------------------------------------------------
// Engine integration

trace::ContactTrace smallNusTrace(std::uint64_t seed = 3) {
  trace::NusParams p;
  p.students = 40;
  p.courses = 8;
  p.coursesPerStudent = 2;
  p.days = 5;
  p.attendanceRate = 0.9;
  p.seed = seed;
  return trace::generateNus(p);
}

core::EngineParams baseParams() {
  core::EngineParams params;
  params.protocol.kind = core::ProtocolKind::kMbtQm;
  params.internetAccessFraction = 0.3;
  params.newFilesPerDay = 20;
  params.fileTtlDays = 2;
  params.seed = 7;
  params.frequentContactPeriod = kDay;
  return params;
}

core::EngineParams codedParams() {
  core::EngineParams params = baseParams();
  params.downloadMode = core::DownloadMode::kCoded;
  params.piecesPerFile = 4;
  return params;
}

core::EngineParams withAdversary(core::EngineParams params, double fraction,
                                 std::uint32_t attacks, bool defense) {
  params.adversary.byzantineFraction = fraction;
  params.adversary.attacks = attacks;
  params.reputation.defense = defense;
  return params;
}

std::string eventStream(const trace::ContactTrace& trace,
                        const core::EngineParams& params,
                        core::EngineResult* result = nullptr) {
  std::ostringstream out;
  obs::JsonlEventSink sink(out);
  core::Engine engine(trace, params);
  engine.setObserver(&sink);
  const core::EngineResult r = engine.run();
  if (result != nullptr) *result = r;
  return out.str();
}

/// Records which nodes each quarantine/release event named.
struct QuarantineObserver final : obs::EngineObserver {
  void onEvent(const obs::SimEvent& event) override {
    if (event.type == obs::SimEventType::kNodeQuarantined) {
      quarantined.push_back(event.node);
    } else if (event.type == obs::SimEventType::kNodeReleased) {
      released.push_back(event.node);
    }
  }
  std::vector<NodeId> quarantined;
  std::vector<NodeId> released;
};

TEST(EngineAdversary, DisabledParamsArmNothing) {
  const auto trace = smallNusTrace();
  core::Engine engine(trace, baseParams());
  EXPECT_EQ(engine.adversaryPlan(), nullptr);
  EXPECT_EQ(engine.reputationTracker(), nullptr);
}

TEST(EngineAdversary, MembershipComesFromRoleShuffle) {
  const auto trace = smallNusTrace();
  auto params = withAdversary(baseParams(), 0.5, kAllAttacks, false);
  params.freeRiderFraction = 0.2;
  core::Engine engine(trace, params);
  ASSERT_NE(engine.adversaryPlan(), nullptr);
  const AdversaryPlan& plan = *engine.adversaryPlan();
  std::size_t nonAccess = 0;
  std::size_t byzantine = 0;
  for (std::uint32_t i = 0; i < trace.nodeCount(); ++i) {
    const auto& options = engine.node(NodeId{i}).options();
    if (!options.internetAccess) ++nonAccess;
    if (!plan.isByzantine(NodeId{i})) continue;
    ++byzantine;
    // Byzantine nodes come from the honest non-access population: they
    // must transmit to attack, and the roles must not overlap.
    EXPECT_FALSE(options.internetAccess) << "node " << i;
    EXPECT_FALSE(options.freeRider) << "node " << i;
  }
  EXPECT_EQ(byzantine, plan.byzantineCount());
  EXPECT_GT(byzantine, 0u);
  EXPECT_LE(byzantine, nonAccess);
  // Determinism: a second engine with the same params picks the same set.
  core::Engine again(trace, params);
  ASSERT_NE(again.adversaryPlan(), nullptr);
  for (std::uint32_t i = 0; i < trace.nodeCount(); ++i) {
    EXPECT_EQ(plan.isByzantine(NodeId{i}),
              again.adversaryPlan()->isByzantine(NodeId{i}));
  }
}

TEST(EngineAdversary, HonestRunWithDefenseOnIsByteIdentical) {
  // The defense layer must be invisible until an anomaly appears: on a
  // faulty-but-honest run (loss, truncation, corruption, churn, recovery,
  // repair, coded download — everything on, no Byzantine nodes) the
  // defense-on event stream is byte-identical to defense-off, and no
  // honest node is ever quarantined. This is the no-false-quarantine
  // guarantee under pure random faults.
  const auto trace = smallNusTrace();
  core::EngineParams params = codedParams();
  params.faults.messageLossRate = 0.2;
  params.faults.contactTruncationRate = 0.3;
  params.faults.pieceCorruptionRate = 0.1;
  params.faults.churnDownFraction = 0.15;
  params.faults.churnMeanDowntime = 4 * kHour;
  params.recovery.maxRetries = 2;
  params.recovery.retransmitBudget = 4;
  params.recovery.repairPerContact = 4;
  params.recovery.coordinatorFailover = true;

  core::EngineResult off, on;
  const std::string offEvents = eventStream(trace, params, &off);
  params.reputation.defense = true;
  const std::string onEvents = eventStream(trace, params, &on);

  EXPECT_EQ(offEvents, onEvents);
  EXPECT_EQ(on.delivery.fileRatio, off.delivery.fileRatio);
  EXPECT_EQ(on.totals.nodesQuarantined, 0u);
  EXPECT_EQ(on.totals.falseQuarantines, 0u);
  EXPECT_EQ(on.totals.adversaryAttacks, 0u);
  EXPECT_EQ(on.totals.pollutionDetected, 0u);
  EXPECT_EQ(on.totals.generationsRolledBack, 0u);
}

TEST(EngineAdversary, PollutionIsRolledBackAndAttackersQuarantined) {
  const auto trace = smallNusTrace();
  const auto params = withAdversary(
      codedParams(), 0.3,
      static_cast<std::uint32_t>(AttackKind::kPollution), true);
  obs::CountingObserver counter;
  QuarantineObserver quarantine;
  obs::MulticastObserver observers;
  observers.add(&counter);
  observers.add(&quarantine);
  core::Engine engine(trace, params);
  engine.setObserver(&observers);
  const core::EngineResult result = engine.run();
  const core::EngineTotals& t = result.totals;

  ASSERT_GT(t.pollutionInjected, 0u);
  // Verification-at-decode: no polluted generation is ever delivered.
  EXPECT_EQ(t.pollutedDeliveries, 0u);
  EXPECT_GT(t.generationsRolledBack, 0u);
  EXPECT_GT(t.pollutionDetected, 0u);
  EXPECT_EQ(counter.count(obs::SimEventType::kGenerationRolledBack),
            t.generationsRolledBack);
  EXPECT_GT(counter.count(obs::SimEventType::kPollutionDetected), 0u);
  EXPECT_EQ(counter.count(obs::SimEventType::kAttackInjected),
            t.adversaryAttacks);
  EXPECT_EQ(t.adversaryAttacks, t.pollutionInjected);

  // Quarantine hits real attackers only.
  ASSERT_NE(engine.adversaryPlan(), nullptr);
  EXPECT_GT(t.nodesQuarantined, 0u);
  EXPECT_EQ(t.falseQuarantines, 0u);
  EXPECT_EQ(quarantine.quarantined.size(), t.nodesQuarantined);
  std::set<std::uint32_t> distinct;
  for (NodeId node : quarantine.quarantined) {
    EXPECT_TRUE(engine.adversaryPlan()->isByzantine(node))
        << "quarantined honest node " << node.value;
    distinct.insert(node.value);
  }
  EXPECT_LE(distinct.size(), engine.adversaryPlan()->byzantineCount());
  // Pieces still flow and honest generations still decode.
  EXPECT_GT(t.generationsDecoded, 0u);
  EXPECT_GT(result.delivery.fileRatio, 0.0);
}

TEST(EngineAdversary, DefenseOnBeatsDefenseOffUnderPollution) {
  const auto trace = smallNusTrace();
  const std::uint32_t pollution =
      static_cast<std::uint32_t>(AttackKind::kPollution);
  core::EngineResult off, on;
  eventStream(trace, withAdversary(codedParams(), 0.3, pollution, false),
              &off);
  eventStream(trace, withAdversary(codedParams(), 0.3, pollution, true), &on);
  // Undefended, fully-ranked-but-tainted generations complete as garbage
  // and the file is never counted delivered; defended, the rollback lets
  // honest retransmissions finish the download.
  EXPECT_GT(off.totals.pollutedDeliveries, 0u);
  EXPECT_EQ(off.totals.generationsRolledBack, 0u);
  EXPECT_EQ(off.totals.pollutionDetected, 0u);
  EXPECT_EQ(on.totals.pollutedDeliveries, 0u);
  EXPECT_GT(on.delivery.fileRatio, off.delivery.fileRatio);
}

TEST(EngineAdversary, PieceLiesAreCaughtByVerification) {
  const auto trace = smallNusTrace();
  const auto params = withAdversary(
      baseParams(), 0.3, static_cast<std::uint32_t>(AttackKind::kPieceLie),
      true);
  obs::CountingObserver counter;
  core::Engine engine(trace, params);
  engine.setObserver(&counter);
  const core::EngineResult result = engine.run();
  EXPECT_GT(result.totals.piecesLied, 0u);
  EXPECT_EQ(result.totals.adversaryAttacks, result.totals.piecesLied);
  // Every lie is rejected at the checksum, never stored: the rejection
  // event fires at least once per lie (random corruption is off here).
  EXPECT_GE(counter.count(obs::SimEventType::kPieceRejectedCorrupt),
            result.totals.piecesLied);
  EXPECT_GT(result.delivery.fileRatio, 0.0);
}

TEST(EngineAdversary, AckSpoofingBurnsRetransmitBudget) {
  const auto trace = smallNusTrace();
  core::EngineParams params = withAdversary(
      baseParams(), 0.3, static_cast<std::uint32_t>(AttackKind::kAckSpoof),
      false);
  // Ack spoofing targets metadata frames, so it needs a protocol that
  // distributes metadata through the DTN (MBT-QM keeps metadata at the
  // access points and gives the spoofers nothing to claim about).
  params.protocol.kind = core::ProtocolKind::kMbt;
  params.recovery.maxRetries = 2;
  params.recovery.retransmitBudget = 4;
  core::EngineResult r;
  eventStream(trace, params, &r);
  EXPECT_GT(r.totals.acksSpoofed, 0u);
  EXPECT_EQ(r.totals.adversaryAttacks, r.totals.acksSpoofed);
  // Spoofed claims are redelivered (burning budget) but are not lost
  // frames, so the recovery ledger invariant keeps its direction.
  EXPECT_GT(r.totals.recoveryRetransmits, 0u);
}

TEST(EngineAdversary, ForgedSummariesBurnRepairBudget) {
  const auto trace = smallNusTrace();
  core::EngineParams params = withAdversary(
      baseParams(), 0.3,
      static_cast<std::uint32_t>(AttackKind::kFalseSummary), true);
  params.faults.messageLossRate = 0.15;
  params.recovery.repairPerContact = 4;
  core::EngineResult r;
  eventStream(trace, params, &r);
  EXPECT_GT(r.totals.summariesForged, 0u);
  EXPECT_GT(r.totals.repairRequests, 0u);
}

TEST(EngineAdversary, ByzantineCoordinatorSuppressesBroadcasts) {
  const auto trace = smallNusTrace();
  const auto params = withAdversary(
      baseParams(), 0.3,
      static_cast<std::uint32_t>(AttackKind::kCoordinator), false);
  core::EngineResult abused, honest;
  eventStream(trace, params, &abused);
  eventStream(trace, withAdversary(baseParams(), 0.0, 0, false), &honest);
  EXPECT_GT(abused.totals.broadcastsSuppressed, 0u);
  EXPECT_EQ(abused.totals.adversaryAttacks,
            abused.totals.broadcastsSuppressed);
  // Dropped broadcasts are traffic that never happened.
  EXPECT_LT(abused.totals.pieceBroadcasts + abused.totals.metadataBroadcasts,
            honest.totals.pieceBroadcasts + honest.totals.metadataBroadcasts);
}

TEST(EngineAdversary, FullAttackRunsAreDeterministic) {
  const auto trace = smallNusTrace();
  core::EngineParams params =
      withAdversary(codedParams(), 0.25, kAllAttacks, true);
  params.faults.messageLossRate = 0.1;
  params.recovery.maxRetries = 2;
  params.recovery.retransmitBudget = 4;
  params.recovery.repairPerContact = 4;
  core::EngineResult a, b;
  const std::string eventsA = eventStream(trace, params, &a);
  const std::string eventsB = eventStream(trace, params, &b);
  EXPECT_EQ(eventsA, eventsB);
  EXPECT_EQ(a.totals.adversaryAttacks, b.totals.adversaryAttacks);
  EXPECT_EQ(a.delivery.fileRatio, b.delivery.fileRatio);
  EXPECT_GT(a.totals.adversaryAttacks, 0u);
}

TEST(EngineAdversary, QuarantinedSendersAreExcludedUntilReleased) {
  // Under sustained pollution the tracker must quarantine attackers and
  // the live tracker state must agree with the event stream; hysteresis
  // means releases never outnumber quarantines.
  const auto trace = smallNusTrace();
  const auto params = withAdversary(
      codedParams(), 0.3,
      static_cast<std::uint32_t>(AttackKind::kPollution), true);
  QuarantineObserver quarantine;
  core::Engine engine(trace, params);
  engine.setObserver(&quarantine);
  const core::EngineResult result = engine.run();
  ASSERT_NE(engine.reputationTracker(), nullptr);
  EXPECT_EQ(quarantine.quarantined.size(), result.totals.nodesQuarantined);
  EXPECT_EQ(quarantine.released.size(), result.totals.nodesReleased);
  EXPECT_LE(result.totals.nodesReleased, result.totals.nodesQuarantined);
  EXPECT_GE(quarantine.quarantined.size(),
            engine.reputationTracker()->quarantinedCount());
}

}  // namespace
}  // namespace hdtn::faults
