#include "src/util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/random.hpp"

namespace hdtn {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Rng rng(5);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 7.0);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-7);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.75), 4.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.4);  // interpolated
}

TEST(SampleSet, UnsortedInsertionOrder) {
  SampleSet s;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SampleSet, MeanAndStddev) {
  SampleSet s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Histogram, BucketAssignment) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, BucketBounds) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bucketLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bucketHigh(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bucketLow(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bucketHigh(3), 20.0);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string rendered = h.render(10);
  EXPECT_NE(rendered.find("2"), std::string::npos);
  EXPECT_NE(rendered.find('#'), std::string::npos);
}

}  // namespace
}  // namespace hdtn
