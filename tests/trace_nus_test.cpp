#include "src/trace/nus.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/trace/trace_stats.hpp"

namespace hdtn::trace {
namespace {

NusParams smallParams() {
  NusParams p;
  p.students = 30;
  p.courses = 6;
  p.coursesPerStudent = 2;
  p.days = 4;
  p.attendanceRate = 1.0;
  p.seed = 3;
  return p;
}

TEST(Nus, ScheduleStructure) {
  const NusParams p = smallParams();
  const NusSchedule schedule = buildNusSchedule(p);
  ASSERT_EQ(schedule.enrollment.size(), 6u);
  ASSERT_EQ(schedule.sessionStart.size(), 6u);
  std::size_t totalEnrollments = 0;
  for (const auto& roster : schedule.enrollment) {
    totalEnrollments += roster.size();
    for (std::size_t i = 1; i < roster.size(); ++i) {
      EXPECT_LT(roster[i - 1], roster[i]);  // sorted, unique
    }
  }
  EXPECT_EQ(totalEnrollments, 30u * 2u);
  for (const auto& starts : schedule.sessionStart) {
    ASSERT_EQ(starts.size(), 1u);
    EXPECT_GE(starts[0], p.dayStart);
    EXPECT_LE(starts[0] + p.sessionDuration, p.dayEnd);
    EXPECT_EQ(starts[0] % kHour, 0);
  }
}

TEST(Nus, ScheduleIndependentOfAttendanceRate) {
  NusParams a = smallParams();
  NusParams b = smallParams();
  b.attendanceRate = 0.3;
  const auto schedA = buildNusSchedule(a);
  const auto schedB = buildNusSchedule(b);
  EXPECT_EQ(schedA.enrollment, schedB.enrollment);
  EXPECT_EQ(schedA.sessionStart, schedB.sessionStart);
}

TEST(Nus, FullAttendanceContactsMatchRosters) {
  const NusParams p = smallParams();
  const NusSchedule schedule = buildNusSchedule(p);
  const auto trace = generateNus(p, schedule);
  // With attendance 1.0, every session with >= 2 enrolled students emits
  // one clique contact per day with exactly the roster as members.
  std::size_t expected = 0;
  for (const auto& roster : schedule.enrollment) {
    if (roster.size() >= 2) ++expected;
  }
  EXPECT_EQ(trace.contactCount(), expected * static_cast<std::size_t>(p.days));
  for (const Contact& c : trace.contacts()) {
    bool matchesSomeRoster = false;
    for (const auto& roster : schedule.enrollment) {
      if (c.members == roster) matchesSomeRoster = true;
    }
    EXPECT_TRUE(matchesSomeRoster);
  }
}

TEST(Nus, SessionsRepeatDaily) {
  const NusParams p = smallParams();
  const auto trace = generateNus(p);
  std::set<SimTime> daysSeen;
  for (const Contact& c : trace.contacts()) {
    daysSeen.insert(c.start / kDay);
    EXPECT_EQ(c.duration(), p.sessionDuration);
  }
  EXPECT_EQ(daysSeen.size(), static_cast<std::size_t>(p.days));
}

TEST(Nus, LowerAttendanceShrinksCliques) {
  NusParams full = smallParams();
  NusParams half = smallParams();
  half.attendanceRate = 0.5;
  const auto schedule = buildNusSchedule(full);
  const auto fullTrace = generateNus(full, schedule);
  const auto halfTrace = generateNus(half, schedule);
  const auto fullStats = summarize(fullTrace);
  const auto halfStats = summarize(halfTrace);
  EXPECT_GT(fullStats.meanCliqueSize, halfStats.meanCliqueSize);
}

TEST(Nus, ZeroAttendanceYieldsNoContacts) {
  NusParams p = smallParams();
  p.attendanceRate = 0.0;
  EXPECT_EQ(generateNus(p).contactCount(), 0u);
}

TEST(Nus, DeterministicInSeed) {
  const auto a = generateNus(smallParams());
  const auto b = generateNus(smallParams());
  ASSERT_EQ(a.contactCount(), b.contactCount());
  for (std::size_t i = 0; i < a.contactCount(); ++i) {
    EXPECT_EQ(a.contacts()[i], b.contacts()[i]);
  }
}

TEST(Nus, ClassmatesAreFrequentContactsAtOneDayPeriod) {
  // With full attendance and daily sessions, every pair sharing a course
  // meets every day.
  const NusParams p = smallParams();
  const auto schedule = buildNusSchedule(p);
  const auto trace = generateNus(p, schedule);
  const auto pairs = frequentContactPairs(trace, kNusFrequentPeriod);
  std::set<NodePair> frequent(pairs.begin(), pairs.end());
  for (const auto& roster : schedule.enrollment) {
    for (std::size_t i = 0; i < roster.size(); ++i) {
      for (std::size_t j = i + 1; j < roster.size(); ++j) {
        EXPECT_TRUE(frequent.contains(makePair(roster[i], roster[j])));
      }
    }
  }
}

TEST(Nus, MultipleSessionsPerDaySupported) {
  NusParams p = smallParams();
  p.sessionsPerCourseDay = 2;
  const auto schedule = buildNusSchedule(p);
  for (const auto& starts : schedule.sessionStart) {
    EXPECT_EQ(starts.size(), 2u);
  }
  const auto trace = generateNus(p, schedule);
  EXPECT_GT(trace.contactCount(), generateNus(smallParams()).contactCount());
}

// --- native session-log import --------------------------------------------

TEST(NusImport, ParsesSessionsIntoCliqueContacts) {
  std::istringstream in(
      "# day offset duration students...\n"
      "0 28800 7200 3 1 2\n"
      "1 36000 3600 4 5\n"
      "2 28800 7200 9\n");  // one attendee: well-formed, no contact
  std::string error;
  const auto trace = readNusSessions(in, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->contactCount(), 2u);
  EXPECT_EQ(trace->contacts()[0].start, 28800);
  EXPECT_EQ(trace->contacts()[0].end, 36000);
  EXPECT_EQ(trace->contacts()[0].members,
            (std::vector<NodeId>{NodeId(1), NodeId(2), NodeId(3)}));
  EXPECT_EQ(trace->contacts()[1].start, kDay + 36000);
}

TEST(NusImport, MalformedRecordIsALineNumberedError) {
  std::istringstream in(
      "0 28800 7200 1 2\n"
      "0 nine 7200 1 2\n");
  std::string error;
  EXPECT_FALSE(readNusSessions(in, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("malformed session record"), std::string::npos);
}

TEST(NusImport, RejectsOutOfDayOffsetsAndBadDurations) {
  std::string error;
  std::istringstream late("0 90000 3600 1 2\n");
  EXPECT_FALSE(readNusSessions(late, &error).has_value());
  EXPECT_NE(error.find("outside the day"), std::string::npos);
  std::istringstream negativeDay("-1 28800 3600 1 2\n");
  EXPECT_FALSE(readNusSessions(negativeDay, &error).has_value());
  EXPECT_NE(error.find("negative day"), std::string::npos);
  std::istringstream zeroDuration("0 28800 0 1 2\n");
  EXPECT_FALSE(readNusSessions(zeroDuration, &error).has_value());
  EXPECT_NE(error.find("non-positive session duration"), std::string::npos);
}

TEST(NusImport, RejectsMissingOrMalformedAttendees) {
  std::string error;
  std::istringstream none("0 28800 3600\n");
  EXPECT_FALSE(readNusSessions(none, &error).has_value());
  EXPECT_NE(error.find("no attendees"), std::string::npos);
  std::istringstream junk("0 28800 3600 1 bob\n");
  EXPECT_FALSE(readNusSessions(junk, &error).has_value());
  EXPECT_NE(error.find("malformed student id"), std::string::npos);
}

}  // namespace
}  // namespace hdtn::trace
