#include "src/graph/clique.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/util/random.hpp"

namespace hdtn {
namespace {

AdjacencyGraph completeGraph(std::uint32_t n) {
  AdjacencyGraph g;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      g.addEdge(NodeId(i), NodeId(j));
    }
  }
  return g;
}

TEST(MaximalCliques, CompleteGraphIsOneClique) {
  const auto cliques = maximalCliques(completeGraph(5));
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].size(), 5u);
}

TEST(MaximalCliques, TriangleWithTail) {
  AdjacencyGraph g;
  g.addEdge(NodeId(0), NodeId(1));
  g.addEdge(NodeId(1), NodeId(2));
  g.addEdge(NodeId(0), NodeId(2));
  g.addEdge(NodeId(2), NodeId(3));
  const auto cliques = maximalCliques(g);
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0], (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2)}));
  EXPECT_EQ(cliques[1], (std::vector<NodeId>{NodeId(2), NodeId(3)}));
}

TEST(MaximalCliques, DisjointEdges) {
  AdjacencyGraph g;
  g.addEdge(NodeId(0), NodeId(1));
  g.addEdge(NodeId(2), NodeId(3));
  const auto cliques = maximalCliques(g);
  EXPECT_EQ(cliques.size(), 2u);
}

TEST(MaximalCliques, IsolatedNodeIsItsOwnClique) {
  AdjacencyGraph g;
  g.addNode(NodeId(7));
  const auto cliques = maximalCliques(g);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0], (std::vector<NodeId>{NodeId(7)}));
}

TEST(MaximalCliques, EmptyGraph) {
  AdjacencyGraph g;
  EXPECT_TRUE(maximalCliques(g).empty());
}

TEST(MaximalCliques, CycleOfFourHasFourEdgesAsCliques) {
  AdjacencyGraph g;  // C4 is triangle-free
  g.addEdge(NodeId(0), NodeId(1));
  g.addEdge(NodeId(1), NodeId(2));
  g.addEdge(NodeId(2), NodeId(3));
  g.addEdge(NodeId(3), NodeId(0));
  const auto cliques = maximalCliques(g);
  EXPECT_EQ(cliques.size(), 4u);
  for (const auto& clique : cliques) EXPECT_EQ(clique.size(), 2u);
}

TEST(MaximalCliquesContaining, FiltersByMembership) {
  AdjacencyGraph g;
  g.addEdge(NodeId(0), NodeId(1));
  g.addEdge(NodeId(1), NodeId(2));
  g.addEdge(NodeId(0), NodeId(2));
  g.addEdge(NodeId(2), NodeId(3));
  const auto withNode3 = maximalCliquesContaining(g, NodeId(3));
  ASSERT_EQ(withNode3.size(), 1u);
  EXPECT_EQ(withNode3[0], (std::vector<NodeId>{NodeId(2), NodeId(3)}));
  const auto withNode2 = maximalCliquesContaining(g, NodeId(2));
  EXPECT_EQ(withNode2.size(), 2u);
}

TEST(IsClique, Checks) {
  AdjacencyGraph g = completeGraph(4);
  g.removeEdge(NodeId(0), NodeId(3));
  EXPECT_TRUE(isClique(g, {NodeId(0), NodeId(1), NodeId(2)}));
  EXPECT_FALSE(isClique(g, {NodeId(0), NodeId(1), NodeId(3)}));
  EXPECT_TRUE(isClique(g, {NodeId(0)}));
  EXPECT_TRUE(isClique(g, {}));
}

TEST(PartitionIntoCliques, DisjointAndCovering) {
  AdjacencyGraph g;
  // Two triangles sharing node 2: partition must not reuse node 2.
  g.addEdge(NodeId(0), NodeId(1));
  g.addEdge(NodeId(1), NodeId(2));
  g.addEdge(NodeId(0), NodeId(2));
  g.addEdge(NodeId(2), NodeId(3));
  g.addEdge(NodeId(3), NodeId(4));
  g.addEdge(NodeId(2), NodeId(4));
  const auto parts = partitionIntoCliques(g);
  std::set<NodeId> seen;
  for (const auto& part : parts) {
    EXPECT_TRUE(isClique(g, part));
    for (NodeId n : part) {
      EXPECT_TRUE(seen.insert(n).second) << "node reused across cliques";
    }
  }
  EXPECT_EQ(seen.size(), 5u);
}

// Brute-force reference: enumerate all subsets (n <= 12) and keep maximal
// cliques; Bron-Kerbosch must agree exactly.
std::vector<std::vector<NodeId>> bruteForceMaximalCliques(
    const AdjacencyGraph& g) {
  const auto nodes = g.nodes();
  const std::size_t n = nodes.size();
  std::vector<std::vector<NodeId>> cliques;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<NodeId> subset;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) subset.push_back(nodes[i]);
    }
    if (!isClique(g, subset)) continue;
    // Maximal: no node outside extends it.
    bool maximal = true;
    for (std::size_t i = 0; i < n && maximal; ++i) {
      if (mask & (1u << i)) continue;
      bool extends = true;
      for (NodeId m : subset) {
        if (!g.hasEdge(nodes[i], m)) {
          extends = false;
          break;
        }
      }
      if (extends) maximal = false;
    }
    if (maximal) cliques.push_back(subset);
  }
  std::sort(cliques.begin(), cliques.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  return cliques;
}

class RandomGraphSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphSweep, MatchesBruteForce) {
  Rng rng(GetParam());
  const std::uint32_t n = 10;
  AdjacencyGraph g;
  for (std::uint32_t i = 0; i < n; ++i) g.addNode(NodeId(i));
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.chance(0.45)) g.addEdge(NodeId(i), NodeId(j));
    }
  }
  EXPECT_EQ(maximalCliques(g), bruteForceMaximalCliques(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// The dense-bitset implementations must be byte-identical to the retained
// naive references on random graphs — same cliques, same order.
class ReferenceEquivalenceSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

AdjacencyGraph randomSweepGraph(std::uint64_t seed, std::uint32_t n,
                                double edgeChance) {
  Rng rng(seed);
  AdjacencyGraph g;
  // Sparse non-contiguous ids so index mapping is exercised.
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < n; ++i) {
    ids.emplace_back(i * 3 + 1);
    g.addNode(ids.back());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (rng.chance(edgeChance)) g.addEdge(ids[i], ids[j]);
    }
  }
  return g;
}

TEST_P(ReferenceEquivalenceSweep, MaximalCliquesMatchReference) {
  for (const double edgeChance : {0.2, 0.5, 0.8}) {
    const AdjacencyGraph g =
        randomSweepGraph(GetParam() * 131 + 7, 18, edgeChance);
    EXPECT_EQ(maximalCliques(g), maximalCliquesReference(g));
  }
}

TEST_P(ReferenceEquivalenceSweep, CliquesContainingMatchReference) {
  const AdjacencyGraph g = randomSweepGraph(GetParam() * 61 + 3, 16, 0.5);
  for (NodeId node : g.nodes()) {
    EXPECT_EQ(maximalCliquesContaining(g, node),
              maximalCliquesContainingReference(g, node));
  }
  // A node absent from the graph yields nothing in both.
  EXPECT_EQ(maximalCliquesContaining(g, NodeId(999999)),
            maximalCliquesContainingReference(g, NodeId(999999)));
}

TEST_P(ReferenceEquivalenceSweep, PartitionMatchesReference) {
  for (const double edgeChance : {0.25, 0.55}) {
    const AdjacencyGraph g =
        randomSweepGraph(GetParam() * 389 + 11, 16, edgeChance);
    EXPECT_EQ(partitionIntoCliques(g), partitionIntoCliquesReference(g));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceEquivalenceSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace hdtn
