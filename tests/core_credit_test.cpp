#include "src/core/credit.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

TEST(CreditLedger, UnknownPeerHasZeroCredit) {
  CreditLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.credit(NodeId(1)), 0.0);
  EXPECT_EQ(ledger.knownPeers(), 0u);
}

TEST(CreditLedger, RequestedCreditIsFive) {
  // Paper Section IV-B: +5 for a requested metadata.
  CreditLedger ledger;
  ledger.onReceivedRequested(NodeId(1));
  EXPECT_DOUBLE_EQ(ledger.credit(NodeId(1)), 5.0);
  EXPECT_DOUBLE_EQ(kRequestedCredit, 5.0);
}

TEST(CreditLedger, UnrequestedCreditIsPopularity) {
  CreditLedger ledger;
  ledger.onReceivedUnrequested(NodeId(2), 0.35);
  EXPECT_DOUBLE_EQ(ledger.credit(NodeId(2)), 0.35);
}

TEST(CreditLedger, CreditsAccumulate) {
  CreditLedger ledger;
  ledger.onReceivedRequested(NodeId(1));
  ledger.onReceivedRequested(NodeId(1));
  ledger.onReceivedUnrequested(NodeId(1), 0.5);
  EXPECT_DOUBLE_EQ(ledger.credit(NodeId(1)), 10.5);
}

TEST(CreditLedger, AddCreditDirect) {
  CreditLedger ledger;
  ledger.addCredit(NodeId(3), -2.0);
  EXPECT_DOUBLE_EQ(ledger.credit(NodeId(3)), -2.0);
}

TEST(CreditLedger, DecayScalesAll) {
  CreditLedger ledger;
  ledger.addCredit(NodeId(1), 10.0);
  ledger.addCredit(NodeId(2), 4.0);
  ledger.decay(0.5);
  EXPECT_DOUBLE_EQ(ledger.credit(NodeId(1)), 5.0);
  EXPECT_DOUBLE_EQ(ledger.credit(NodeId(2)), 2.0);
}

TEST(CreditLedger, RankingSortedByCreditThenId) {
  CreditLedger ledger;
  ledger.addCredit(NodeId(5), 1.0);
  ledger.addCredit(NodeId(2), 8.0);
  ledger.addCredit(NodeId(9), 8.0);
  const auto ranking = ledger.ranking();
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].first, NodeId(2));  // tie broken by smaller id
  EXPECT_EQ(ranking[1].first, NodeId(9));
  EXPECT_EQ(ranking[2].first, NodeId(5));
}

TEST(CreditLedger, ContributorOutranksFreeRider) {
  // The incentive property in miniature: a peer that sent us requested
  // items outweighs one that only pushed unpopular extras.
  CreditLedger ledger;
  ledger.onReceivedRequested(NodeId(1));           // contributor
  ledger.onReceivedUnrequested(NodeId(2), 0.05);   // barely contributes
  EXPECT_GT(ledger.credit(NodeId(1)), ledger.credit(NodeId(2)));
}

}  // namespace
}  // namespace hdtn::core
