#include "src/net/hello.hpp"

#include <gtest/gtest.h>

namespace hdtn::net {
namespace {

HelloMessage makeHelloFrom(std::uint32_t sender) {
  HelloMessage h;
  h.sender = NodeId(sender);
  return h;
}

TEST(HelloState, TracksActiveNeighborsWithinWindow) {
  HelloState state(NodeId(0));
  state.onHello(100, makeHelloFrom(1));
  state.onHello(103, makeHelloFrom(2));
  EXPECT_EQ(state.activeNeighbors(104),
            (std::vector<NodeId>{NodeId(1), NodeId(2)}));
  // Node 1 was last heard at 100; at 106 it is out of the 5 s window.
  EXPECT_EQ(state.activeNeighbors(106), (std::vector<NodeId>{NodeId(2)}));
}

TEST(HelloState, IgnoresOwnHello) {
  HelloState state(NodeId(3));
  state.onHello(10, makeHelloFrom(3));
  EXPECT_TRUE(state.activeNeighbors(10).empty());
}

TEST(HelloState, RefreshExtendsWindow) {
  HelloState state(NodeId(0));
  state.onHello(100, makeHelloFrom(1));
  state.onHello(104, makeHelloFrom(1));
  EXPECT_EQ(state.activeNeighbors(108), (std::vector<NodeId>{NodeId(1)}));
}

TEST(HelloState, LatestFromReturnsPayload) {
  HelloState state(NodeId(0));
  HelloMessage h = makeHelloFrom(1);
  h.queries = {"fox ep3"};
  h.wantedUris = {"dtn://fox/f3"};
  state.onHello(100, h);
  const auto latest = state.latestFrom(102, NodeId(1));
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->queries, (std::vector<std::string>{"fox ep3"}));
  EXPECT_EQ(latest->wantedUris, (std::vector<Uri>{"dtn://fox/f3"}));
  EXPECT_FALSE(state.latestFrom(110, NodeId(1)).has_value());  // expired
  EXPECT_FALSE(state.latestFrom(102, NodeId(9)).has_value());  // unknown
}

TEST(HelloState, LatestPayloadWins) {
  HelloState state(NodeId(0));
  HelloMessage first = makeHelloFrom(1);
  first.queries = {"old"};
  HelloMessage second = makeHelloFrom(1);
  second.queries = {"new"};
  state.onHello(100, first);
  state.onHello(101, second);
  EXPECT_EQ(state.latestFrom(102, NodeId(1))->queries,
            (std::vector<std::string>{"new"}));
}

TEST(HelloState, ExpireDropsStaleEntries) {
  HelloState state(NodeId(0));
  state.onHello(100, makeHelloFrom(1));
  state.onHello(200, makeHelloFrom(2));
  state.expire(203);
  // Node 1 entry physically removed; node 2 still active.
  EXPECT_EQ(state.activeNeighbors(203), (std::vector<NodeId>{NodeId(2)}));
  EXPECT_FALSE(state.latestFrom(203, NodeId(1)).has_value());
}

TEST(HelloState, MakeHelloCarriesNeighborsQueriesWants) {
  HelloState state(NodeId(7));
  state.onHello(50, makeHelloFrom(1));
  state.onHello(52, makeHelloFrom(4));
  const HelloMessage hello =
      state.makeHello(53, {"drama ep9"}, {"dtn://abc/f9"});
  EXPECT_EQ(hello.sender, NodeId(7));
  EXPECT_EQ(hello.heardNeighbors,
            (std::vector<NodeId>{NodeId(1), NodeId(4)}));
  EXPECT_EQ(hello.queries, (std::vector<std::string>{"drama ep9"}));
  EXPECT_EQ(hello.wantedUris, (std::vector<Uri>{"dtn://abc/f9"}));
}

TEST(HelloState, ClearForgetsEverything) {
  HelloState state(NodeId(0));
  state.onHello(10, makeHelloFrom(1));
  state.clear();
  EXPECT_TRUE(state.activeNeighbors(10).empty());
}

}  // namespace
}  // namespace hdtn::net
