// Scale tests (ctest label: slow). A mid-size city population through the
// sharded streaming engine: the determinism contract and mid-run checkpoint
// restore at a node count large enough to exercise the district layout and
// the worker pool for real. The fast tier-1 lane skips these with
// `ctest -LE slow`; the full contract at unit scale lives in
// core_sharded_engine_test.cpp, and bench_scale measures 10^5-10^6 nodes.
#include <gtest/gtest.h>

#include <string>

#include "src/core/sharded_engine.hpp"
#include "src/trace/citygen.hpp"

namespace hdtn::core {
namespace {

trace::CityParams scaleCity() {
  trace::CityParams p;
  p.nodes = 20000;
  p.districts = 16;
  p.days = 1;
  p.seed = 19;
  return p;
}

ShardedParams scaleParams(std::uint32_t shards, unsigned threads) {
  ShardedParams params;
  params.engine.protocol.kind = ProtocolKind::kMbtQ;
  params.engine.internetAccessFraction = 0.3;
  params.engine.newFilesPerDay = 20;
  params.engine.fileTtlDays = 2;
  params.engine.seed = 7;
  params.shards = shards;
  params.threads = threads;
  return params;
}

void expectReportsEqual(const DeliveryReport& a, const DeliveryReport& b,
                        const char* which) {
  EXPECT_EQ(a.queries, b.queries) << which;
  EXPECT_EQ(a.metadataDelivered, b.metadataDelivered) << which;
  EXPECT_EQ(a.filesDelivered, b.filesDelivered) << which;
  EXPECT_EQ(a.metadataRatio, b.metadataRatio) << which;
  EXPECT_EQ(a.fileRatio, b.fileRatio) << which;
  EXPECT_EQ(a.meanMetadataDelaySeconds, b.meanMetadataDelaySeconds) << which;
  EXPECT_EQ(a.meanFileDelaySeconds, b.meanFileDelaySeconds) << which;
}

void expectResultsIdentical(const EngineResult& a, const EngineResult& b) {
  expectReportsEqual(a.delivery, b.delivery, "delivery");
  expectReportsEqual(a.accessDelivery, b.accessDelivery, "accessDelivery");
  EXPECT_EQ(a.totals.contactsProcessed, b.totals.contactsProcessed);
  EXPECT_EQ(a.totals.filesPublished, b.totals.filesPublished);
  EXPECT_EQ(a.totals.queriesGenerated, b.totals.queriesGenerated);
  EXPECT_EQ(a.totals.metadataBroadcasts, b.totals.metadataBroadcasts);
  EXPECT_EQ(a.totals.pieceBroadcasts, b.totals.pieceBroadcasts);
  EXPECT_EQ(a.totals.metadataReceptions, b.totals.metadataReceptions);
  EXPECT_EQ(a.totals.pieceReceptions, b.totals.pieceReceptions);
}

TEST(Scale, CityDeterminismAcrossShardsAndThreads) {
  const trace::CityParams city = scaleCity();
  auto runCity = [&](std::uint32_t shards, unsigned threads) {
    trace::CityStream stream(city);
    ShardedEngine sharded(stream, scaleParams(shards, threads));
    EXPECT_EQ(sharded.componentCount(), city.districts);
    return sharded.run();
  };
  const EngineResult reference = runCity(1, 1);
  EXPECT_GT(reference.totals.contactsProcessed, 10000u);
  EXPECT_GT(reference.delivery.queries, 0u);
  expectResultsIdentical(reference, runCity(8, 4));
  expectResultsIdentical(reference, runCity(16, 2));
}

TEST(Scale, MidRunStreamingCheckpointRestores) {
  const trace::CityParams city = scaleCity();
  const ShardedParams params = scaleParams(8, 2);
  const std::string path = testing::TempDir() + "/scale.shard.ckpt";

  trace::CityStream fullStream(city);
  const EngineResult expected = ShardedEngine(fullStream, params).run();

  trace::CityStream saveStream(city);
  ShardedEngine saver(saveStream, params);
  saver.runUntil(kDay / 2);
  saver.saveCheckpoint(path, "scale mid-run");

  // Restore at a different shard/thread setting and finish the day.
  trace::CityStream restoreStream(city);
  ShardedEngine restored(restoreStream, scaleParams(2, 4));
  restored.restoreCheckpoint(path);
  EXPECT_EQ(restored.now(), kDay / 2);
  expectResultsIdentical(expected, restored.run());
}

}  // namespace
}  // namespace hdtn::core
