// Binary (de)serialization primitives behind the checkpoint format:
// round-trips for every scalar kind, little-endian byte layout, and the
// bounds checks that make the deserializer safe on corrupt input.
#include "src/util/serialize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <string>

namespace hdtn {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  Serializer out;
  out.u8(0xab);
  out.u32(0xdeadbeefu);
  out.u64(0x0123456789abcdefull);
  out.i64(-12345678901234ll);
  out.f64(3.14159);
  out.f64(-0.0);
  out.boolean(true);
  out.boolean(false);
  out.str("hello checkpoint");
  out.str("");

  Deserializer in(out.bytes());
  EXPECT_EQ(in.u8(), 0xab);
  EXPECT_EQ(in.u32(), 0xdeadbeefu);
  EXPECT_EQ(in.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(in.i64(), -12345678901234ll);
  EXPECT_EQ(in.f64(), 3.14159);
  const double negZero = in.f64();
  EXPECT_EQ(negZero, 0.0);
  EXPECT_TRUE(std::signbit(negZero));
  EXPECT_TRUE(in.boolean());
  EXPECT_FALSE(in.boolean());
  EXPECT_EQ(in.str(), "hello checkpoint");
  EXPECT_EQ(in.str(), "");
  EXPECT_TRUE(in.done());
}

TEST(Serialize, LittleEndianLayout) {
  Serializer out;
  out.u32(0x01020304u);
  const std::string& bytes = out.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(Serialize, DoubleBitPatternExact) {
  // NaN payloads and denormals must survive: the round-trip is bitwise.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double denormal = std::numeric_limits<double>::denorm_min();
  Serializer out;
  out.f64(nan);
  out.f64(denormal);
  Deserializer in(out.bytes());
  EXPECT_TRUE(std::isnan(in.f64()));
  EXPECT_EQ(in.f64(), denormal);
}

TEST(Serialize, TruncatedReadThrows) {
  Serializer out;
  out.u64(7);
  Deserializer in(std::string_view(out.bytes()).substr(0, 5));
  EXPECT_THROW(in.u64(), SerializeError);
}

TEST(Serialize, StringLengthBeyondBufferThrows) {
  Serializer out;
  out.u64(1u << 30);  // promises a gigabyte that is not there
  Deserializer in(out.bytes());
  EXPECT_THROW(in.str(), SerializeError);
}

TEST(Serialize, BooleanRejectsNonCanonicalByte) {
  Serializer out;
  out.u8(2);
  Deserializer in(out.bytes());
  EXPECT_THROW(in.boolean(), SerializeError);
}

TEST(Serialize, LengthGuardRejectsAbsurdCounts) {
  Serializer out;
  out.u64(std::numeric_limits<std::uint64_t>::max());
  Deserializer in(out.bytes());
  EXPECT_THROW(in.length(8), SerializeError);
}

TEST(Serialize, RemainingAndDoneTrackConsumption) {
  Serializer out;
  out.u32(1);
  out.u32(2);
  Deserializer in(out.bytes());
  EXPECT_EQ(in.remaining(), 8u);
  in.u32();
  EXPECT_EQ(in.remaining(), 4u);
  EXPECT_FALSE(in.done());
  in.u32();
  EXPECT_TRUE(in.done());
}

TEST(Serialize, FileRoundTripAtomicWrite) {
  const std::string path = testing::TempDir() + "/serialize_roundtrip.bin";
  const std::string payload = "binary\0payload", error = "";
  std::string writeError;
  ASSERT_TRUE(writeFileAtomic(path, payload, &writeError)) << writeError;
  std::string readBack, readError;
  ASSERT_TRUE(readFileBytes(path, &readBack, &readError)) << readError;
  EXPECT_EQ(readBack, payload);
  // No temp file left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
}

TEST(Serialize, ReadMissingFileReportsError) {
  std::string out, error;
  EXPECT_FALSE(readFileBytes(testing::TempDir() + "/missing.bin", &out,
                             &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace hdtn
