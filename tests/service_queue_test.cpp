// The durable work queue: submits survive reopen, running jobs requeue
// with resume, torn WAL tails and malformed lines are tolerated with
// line-numbered warnings, backpressure sheds past the depth bound, and
// compaction keeps the WAL bounded while pruning old terminal jobs.
#include "src/service/queue.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace hdtn::service {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() : path((fs::temp_directory_path() /
                    ("hdtn_queue_test_" +
                     std::to_string(::getpid()) + "_" +
                     std::to_string(counter++)))
                       .string()) {
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static int counter;
  std::string path;
};
int TempDir::counter = 0;

QueueLimits smallLimits() {
  QueueLimits limits;
  limits.maxDepth = 8;
  limits.maxWalBytes = 1 << 20;
  limits.keepTerminal = 4;
  return limits;
}

TEST(WorkQueueTest, SubmitsSurviveReopen) {
  TempDir dir;
  {
    WorkQueue queue(dir.path, smallLimits());
    std::string error;
    std::vector<std::string> warnings;
    ASSERT_TRUE(queue.open(&error, &warnings)) << error;
    EXPECT_TRUE(warnings.empty());
    EXPECT_EQ(queue.submit("alpha", 1, "seed = 1\n", &error), 1u);
    EXPECT_EQ(queue.submit("beta", 0, "seed = 2\n", &error), 2u);
    queue.markRunning(1);
    queue.markDone(1, "result-row");
  }
  WorkQueue reopened(dir.path, smallLimits());
  std::string error;
  std::vector<std::string> warnings;
  ASSERT_TRUE(reopened.open(&error, &warnings)) << error;
  EXPECT_TRUE(warnings.empty());
  ASSERT_NE(reopened.find(1), nullptr);
  EXPECT_EQ(reopened.find(1)->state, JobState::kDone);
  EXPECT_EQ(reopened.find(1)->result, "result-row");
  ASSERT_NE(reopened.find(2), nullptr);
  EXPECT_EQ(reopened.find(2)->state, JobState::kQueued);
  EXPECT_EQ(reopened.find(2)->spec.scenarioText, "seed = 2\n");
  // Ids keep counting from where the previous daemon stopped.
  EXPECT_EQ(reopened.submit("gamma", 0, "seed = 3\n", &error), 3u);
}

TEST(WorkQueueTest, RunningJobsRequeueWithResumeOnReopen) {
  TempDir dir;
  {
    WorkQueue queue(dir.path, smallLimits());
    std::string error;
    ASSERT_TRUE(queue.open(&error, nullptr)) << error;
    ASSERT_EQ(queue.submit("crashy", 0, "seed = 1\n", &error), 1u);
    queue.markRunning(1);
    // Daemon dies here (no clean state transition).
  }
  WorkQueue reopened(dir.path, smallLimits());
  std::string error;
  ASSERT_TRUE(reopened.open(&error, nullptr)) << error;
  const JobRecord* job = reopened.find(1);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->state, JobState::kQueued);
  EXPECT_TRUE(job->resume);
  // The interrupted attempt stays counted.
  EXPECT_EQ(job->attempts, 1);
}

TEST(WorkQueueTest, DropsATornFinalLineWithAWarning) {
  TempDir dir;
  {
    WorkQueue queue(dir.path, smallLimits());
    std::string error;
    ASSERT_TRUE(queue.open(&error, nullptr)) << error;
    ASSERT_EQ(queue.submit("kept", 0, "seed = 1\n", &error), 1u);
  }
  {
    // Crash mid-append: the final line never got its newline.
    std::ofstream wal(dir.path + "/queue.wal", std::ios::app);
    wal << "{\"op\":\"submit\",\"id\":2,\"name\":\"torn";
  }
  WorkQueue reopened(dir.path, smallLimits());
  std::string error;
  std::vector<std::string> warnings;
  ASSERT_TRUE(reopened.open(&error, &warnings)) << error;
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("truncated final line"), std::string::npos);
  EXPECT_NE(reopened.find(1), nullptr);
  EXPECT_EQ(reopened.find(2), nullptr);
}

TEST(WorkQueueTest, ReportsMalformedInteriorLinesWithLineNumbers) {
  TempDir dir;
  {
    WorkQueue queue(dir.path, smallLimits());
    std::string error;
    ASSERT_TRUE(queue.open(&error, nullptr)) << error;
    ASSERT_EQ(queue.submit("first", 0, "seed = 1\n", &error), 1u);
  }
  {
    // Corruption in the middle (newline-terminated, so not a torn tail),
    // followed by a good line that must still replay.
    std::ofstream wal(dir.path + "/queue.wal", std::ios::app);
    wal << "garbage that is not json\n";
    wal << "{\"op\":\"submit\",\"id\":2,\"name\":\"second\","
           "\"priority\":0,\"scenario\":\"seed = 2\\n\"}\n";
  }
  WorkQueue reopened(dir.path, smallLimits());
  std::string error;
  std::vector<std::string> warnings;
  ASSERT_TRUE(reopened.open(&error, &warnings)) << error;
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_NE(warnings[0].find("line 2"), std::string::npos);
  EXPECT_NE(warnings[0].find("malformed entry"), std::string::npos);
  EXPECT_NE(reopened.find(1), nullptr);
  ASSERT_NE(reopened.find(2), nullptr);
  EXPECT_EQ(reopened.find(2)->spec.name, "second");
}

TEST(WorkQueueTest, BackpressureShedsSubmissionsPastTheDepthBound) {
  TempDir dir;
  QueueLimits limits = smallLimits();
  limits.maxDepth = 2;
  WorkQueue queue(dir.path, limits);
  std::string error;
  ASSERT_TRUE(queue.open(&error, nullptr)) << error;
  EXPECT_NE(queue.submit("a", 0, "seed = 1\n", &error), 0u);
  EXPECT_NE(queue.submit("b", 0, "seed = 2\n", &error), 0u);
  EXPECT_EQ(queue.submit("c", 0, "seed = 3\n", &error), 0u);
  EXPECT_NE(error.find("queue full"), std::string::npos);
  // Terminal jobs free their slot.
  queue.markRunning(1);
  queue.markDone(1, "r");
  EXPECT_NE(queue.submit("c", 0, "seed = 3\n", &error), 0u);
}

TEST(WorkQueueTest, NextRunnablePrefersPriorityThenFifoAndHonorsBackoff) {
  TempDir dir;
  WorkQueue queue(dir.path, smallLimits());
  std::string error;
  ASSERT_TRUE(queue.open(&error, nullptr)) << error;
  ASSERT_EQ(queue.submit("low-1", 0, "seed = 1\n", &error), 1u);
  ASSERT_EQ(queue.submit("high", 5, "seed = 2\n", &error), 2u);
  ASSERT_EQ(queue.submit("low-2", 0, "seed = 3\n", &error), 3u);
  JobRecord* next = queue.nextRunnable(0.0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->spec.id, 2u);
  queue.markRunning(2);
  // Same priority → FIFO by id.
  next = queue.nextRunnable(0.0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->spec.id, 1u);
  // A retrying job is not eligible until its backoff elapses.
  queue.markRunning(1);
  queue.markRetrying(1, "exit code 1", 100.0);
  next = queue.nextRunnable(50.0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->spec.id, 3u);
  queue.markRunning(3);
  EXPECT_EQ(queue.nextRunnable(50.0), nullptr);
  next = queue.nextRunnable(150.0);
  ASSERT_NE(next, nullptr);
  EXPECT_EQ(next->spec.id, 1u);
  EXPECT_TRUE(next->resume);
}

TEST(WorkQueueTest, CompactionBoundsTheWalAndPrunesOldTerminalJobs) {
  TempDir dir;
  QueueLimits limits;
  limits.maxDepth = 64;
  limits.maxWalBytes = 2048;  // tiny, to force compactions
  limits.keepTerminal = 3;
  WorkQueue queue(dir.path, limits);
  std::string error;
  ASSERT_TRUE(queue.open(&error, nullptr)) << error;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t id =
        queue.submit("j" + std::to_string(i), 0, "seed = 1\n", &error);
    ASSERT_NE(id, 0u);
    queue.markRunning(id);
    queue.markDone(id, "r" + std::to_string(i));
  }
  EXPECT_GT(queue.compactions(), 0u);
  EXPECT_LE(queue.walBytes(), limits.maxWalBytes);
  EXPECT_GT(queue.prunedJobs(), 0u);
  // Pruning happens at compaction time, so jobs submitted since the last
  // compaction linger — but the total stays well below everything-forever.
  EXPECT_LT(queue.jobs().size(), 20u);
  EXPECT_GT(queue.bytesWritten(), 0u);

  // The compacted state still replays: the newest terminal jobs survive.
  WorkQueue reopened(dir.path, limits);
  std::vector<std::string> warnings;
  ASSERT_TRUE(reopened.open(&error, &warnings)) << error;
  EXPECT_TRUE(warnings.empty());
  ASSERT_NE(reopened.find(20), nullptr);
  EXPECT_EQ(reopened.find(20)->state, JobState::kDone);
  EXPECT_EQ(reopened.find(20)->result, "r19");
  EXPECT_EQ(reopened.find(1), nullptr);
}

}  // namespace
}  // namespace hdtn::service
