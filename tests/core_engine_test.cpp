#include "src/core/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/trace/dieselnet.hpp"
#include "src/trace/nus.hpp"
#include "src/trace/trace_stats.hpp"

namespace hdtn::core {
namespace {

trace::ContactTrace smallNusTrace(std::uint64_t seed = 3) {
  trace::NusParams p;
  p.students = 40;
  p.courses = 8;
  p.coursesPerStudent = 2;
  p.days = 5;
  p.attendanceRate = 0.9;
  p.seed = seed;
  return trace::generateNus(p);
}

trace::ContactTrace smallDieselTrace(std::uint64_t seed = 3) {
  trace::DieselNetParams p;
  p.buses = 16;
  p.routes = 4;
  p.days = 6;
  p.seed = seed;
  return trace::generateDieselNet(p);
}

EngineParams baseParams(ProtocolKind kind) {
  EngineParams params;
  params.protocol.kind = kind;
  params.internetAccessFraction = 0.3;
  params.newFilesPerDay = 20;
  params.fileTtlDays = 2;
  params.seed = 7;
  params.frequentContactPeriod = kDay;
  return params;
}

void expectReportsEqual(const DeliveryReport& a, const DeliveryReport& b,
                        const char* which) {
  EXPECT_EQ(a.queries, b.queries) << which;
  EXPECT_EQ(a.metadataDelivered, b.metadataDelivered) << which;
  EXPECT_EQ(a.filesDelivered, b.filesDelivered) << which;
  EXPECT_EQ(a.metadataRatio, b.metadataRatio) << which;
  EXPECT_EQ(a.fileRatio, b.fileRatio) << which;
  EXPECT_EQ(a.meanMetadataDelaySeconds, b.meanMetadataDelaySeconds) << which;
  EXPECT_EQ(a.meanFileDelaySeconds, b.meanFileDelaySeconds) << which;
}

void expectResultsIdentical(const EngineResult& a, const EngineResult& b) {
  expectReportsEqual(a.delivery, b.delivery, "delivery");
  expectReportsEqual(a.accessDelivery, b.accessDelivery, "accessDelivery");
  expectReportsEqual(a.contributorDelivery, b.contributorDelivery,
                     "contributorDelivery");
  expectReportsEqual(a.freeRiderDelivery, b.freeRiderDelivery,
                     "freeRiderDelivery");
  EXPECT_EQ(a.totals.contactsProcessed, b.totals.contactsProcessed);
  EXPECT_EQ(a.totals.filesPublished, b.totals.filesPublished);
  EXPECT_EQ(a.totals.queriesGenerated, b.totals.queriesGenerated);
  EXPECT_EQ(a.totals.metadataBroadcasts, b.totals.metadataBroadcasts);
  EXPECT_EQ(a.totals.pieceBroadcasts, b.totals.pieceBroadcasts);
  EXPECT_EQ(a.totals.metadataReceptions, b.totals.metadataReceptions);
  EXPECT_EQ(a.totals.pieceReceptions, b.totals.pieceReceptions);
  EXPECT_EQ(a.totals.forgeriesCrafted, b.totals.forgeriesCrafted);
  EXPECT_EQ(a.totals.forgeriesAccepted, b.totals.forgeriesAccepted);
  EXPECT_EQ(a.totals.forgeriesRejected, b.totals.forgeriesRejected);
}

TEST(Engine, DeterministicForSameSeed) {
  // Same trace + same params must reproduce every counter exactly, for
  // every protocol and both trace families: the contact-path caches (store
  // views, tokenized queries, planner indices) may never leak state between
  // runs or alter behavior.
  for (const ProtocolKind kind :
       {ProtocolKind::kMbt, ProtocolKind::kMbtQ, ProtocolKind::kMbtQm}) {
    const auto nus = smallNusTrace();
    expectResultsIdentical(runSimulation(nus, baseParams(kind)),
                           runSimulation(nus, baseParams(kind)));
    const auto diesel = smallDieselTrace();
    auto params = baseParams(kind);
    params.frequentContactPeriod = 3 * kDay;
    expectResultsIdentical(runSimulation(diesel, params),
                           runSimulation(diesel, params));
  }
}

TEST(Engine, DifferentSeedsChangeOutcomes) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  const auto a = runSimulation(trace, params);
  params.seed = 8;
  const auto b = runSimulation(trace, params);
  EXPECT_NE(a.delivery.queries, b.delivery.queries);
}

TEST(Engine, AccessNodesFullyServed) {
  const auto trace = smallNusTrace();
  for (auto kind : {ProtocolKind::kMbt, ProtocolKind::kMbtQ,
                    ProtocolKind::kMbtQm}) {
    const auto result = runSimulation(trace, baseParams(kind));
    ASSERT_GT(result.accessDelivery.queries, 0u);
    EXPECT_DOUBLE_EQ(result.accessDelivery.metadataRatio, 1.0);
    EXPECT_DOUBLE_EQ(result.accessDelivery.fileRatio, 1.0);
  }
}

TEST(Engine, FilePublicationFollowsParameters) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  const auto result = runSimulation(trace, params);
  // 5-day trace -> 5 publications of 20 files each at 14:00.
  EXPECT_EQ(result.totals.filesPublished, 100u);
  EXPECT_GT(result.totals.queriesGenerated, 0u);
  EXPECT_EQ(result.totals.queriesGenerated,
            result.delivery.queries + result.accessDelivery.queries);
}

TEST(Engine, MbtQmSendsNoMetadata) {
  const auto trace = smallNusTrace();
  const auto result = runSimulation(trace, baseParams(ProtocolKind::kMbtQm));
  EXPECT_EQ(result.totals.metadataBroadcasts, 0u);
  EXPECT_EQ(result.totals.metadataReceptions, 0u);
  EXPECT_GT(result.totals.pieceBroadcasts, 0u);
}

TEST(Engine, MetadataBudgetRespected) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.metadataPerContact = 3;
  params.filesPerContact = 2;
  const auto result = runSimulation(trace, params);
  EXPECT_LE(result.totals.metadataBroadcasts,
            3 * result.totals.contactsProcessed);
  EXPECT_LE(result.totals.pieceBroadcasts,
            2 * result.totals.contactsProcessed);
}

TEST(Engine, ProtocolOrderingOnNus) {
  const auto trace = smallNusTrace();
  const auto mbt = runSimulation(trace, baseParams(ProtocolKind::kMbt));
  const auto mbtQ = runSimulation(trace, baseParams(ProtocolKind::kMbtQ));
  const auto mbtQm = runSimulation(trace, baseParams(ProtocolKind::kMbtQm));
  EXPECT_GE(mbt.delivery.metadataRatio, mbtQ.delivery.metadataRatio);
  EXPECT_GT(mbtQ.delivery.metadataRatio, mbtQm.delivery.metadataRatio);
  EXPECT_GE(mbt.delivery.fileRatio, mbtQm.delivery.fileRatio);
}

TEST(Engine, NoContactsMeansNoNonAccessDelivery) {
  trace::ContactTrace empty("empty", 10);
  // Give it a nonzero span so one publication day happens.
  trace::Contact c;
  c.start = 20 * kHour;
  c.end = 20 * kHour + 60;
  c.members = {NodeId(8), NodeId(9)};
  empty.addContact(c);
  auto params = baseParams(ProtocolKind::kMbt);
  params.explicitAccessNodes = {NodeId(0)};
  const auto result = runSimulation(empty, params);
  // Only nodes 8 and 9 ever meet, and neither has Internet access nor meets
  // an access node, so file delivery among non-access nodes requires luck:
  // with no path from node 0, nothing can arrive.
  EXPECT_EQ(result.delivery.filesDelivered, 0u);
}

TEST(Engine, ExplicitRolesHonored) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.explicitAccessNodes = {NodeId(0), NodeId(1)};
  params.explicitFreeRiders = {NodeId(2)};
  Engine engine(trace, params);
  EXPECT_TRUE(engine.node(NodeId(0)).options().internetAccess);
  EXPECT_TRUE(engine.node(NodeId(1)).options().internetAccess);
  EXPECT_FALSE(engine.node(NodeId(2)).options().internetAccess);
  EXPECT_TRUE(engine.node(NodeId(2)).options().freeRider);
  EXPECT_FALSE(engine.node(NodeId(3)).options().freeRider);
  EXPECT_EQ(engine.accessNodes().size(), 2u);
}

TEST(Engine, AccessFractionSetsRoleCounts) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.internetAccessFraction = 0.25;
  Engine engine(trace, params);
  EXPECT_EQ(engine.accessNodes().size(), 10u);  // 25% of 40
}

TEST(Engine, MetadataNeverDeliveredAfterFile) {
  const auto trace = smallDieselTrace();
  const auto params = baseParams(ProtocolKind::kMbt);
  Engine engine(trace, params);
  engine.run();
  for (const auto& record : engine.metrics().records()) {
    if (record.fileAt.has_value()) {
      ASSERT_TRUE(record.metadataAt.has_value());
      EXPECT_LE(*record.metadataAt, *record.fileAt);
    }
  }
}

TEST(Engine, RunsOnPairwiseTraces) {
  const auto trace = smallDieselTrace();
  const auto result = runSimulation(trace, baseParams(ProtocolKind::kMbt));
  EXPECT_GT(result.totals.contactsProcessed, 0u);
  EXPECT_GT(result.delivery.queries, 0u);
  EXPECT_GT(result.delivery.fileRatio, 0.0);
}

TEST(Engine, MultiPieceFilesDeliverable) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.piecesPerFile = 3;
  params.filesPerContact = 2;  // piece budget 6 per contact
  const auto result = runSimulation(trace, params);
  EXPECT_GT(result.delivery.fileRatio, 0.0);
  EXPECT_DOUBLE_EQ(result.accessDelivery.fileRatio, 1.0);
}

TEST(Engine, TitForTatSchedulingRuns) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.protocol.scheduling = Scheduling::kTitForTat;
  const auto result = runSimulation(trace, params);
  EXPECT_GT(result.delivery.fileRatio, 0.0);
}

TEST(Engine, TftFavorsContributorsOverFreeRiders) {
  // Under TFT, contributors' requests carry credit weight and free-riders'
  // do not. Broadcast overhearing keeps free-riders close (the paper notes
  // they "cannot be completely inhibited"), so the advantage is
  // statistical: aggregate over several seeds on a trace large enough for
  // the classes to be populated, and allow a small noise margin.
  trace::NusParams tp;
  tp.students = 120;
  tp.courses = 24;
  tp.coursesPerStudent = 4;
  tp.days = 8;
  tp.attendanceRate = 0.9;
  double contributor = 0.0, freeRider = 0.0;
  for (int seed = 1; seed <= 3; ++seed) {
    tp.seed = static_cast<std::uint64_t>(seed);
    const auto trace = trace::generateNus(tp);
    auto params = baseParams(ProtocolKind::kMbt);
    params.protocol.scheduling = Scheduling::kTitForTat;
    params.freeRiderFraction = 0.4;
    params.fileTtlDays = 3;
    params.newFilesPerDay = 40;
    params.seed = static_cast<std::uint64_t>(seed) * 77;
    const auto result = runSimulation(trace, params);
    ASSERT_GT(result.freeRiderDelivery.queries, 0u);
    ASSERT_GT(result.contributorDelivery.queries, 0u);
    contributor += result.contributorDelivery.fileRatio;
    freeRider += result.freeRiderDelivery.fileRatio;
  }
  EXPECT_GE(contributor / 3.0, freeRider / 3.0 - 0.01);
}

TEST(Engine, PairwiseDownloadModeRuns) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.downloadMode = DownloadMode::kPairwise;
  const auto pairwise = runSimulation(trace, params);
  EXPECT_GT(pairwise.delivery.fileRatio, 0.0);
  EXPECT_DOUBLE_EQ(pairwise.accessDelivery.fileRatio, 1.0);
}

TEST(Engine, BroadcastBeatsPairwiseOnCliqueTrace) {
  // Section V at system level: with classroom cliques, one broadcast serves
  // the whole room while a pairwise slot serves one node.
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  const auto broadcast = runSimulation(trace, params);
  params.downloadMode = DownloadMode::kPairwise;
  const auto pairwise = runSimulation(trace, params);
  EXPECT_GT(broadcast.delivery.fileRatio, pairwise.delivery.fileRatio);
  // Broadcast also moves more pieces per transmission.
  ASSERT_GT(broadcast.totals.pieceBroadcasts, 0u);
  ASSERT_GT(pairwise.totals.pieceBroadcasts, 0u);
  const double broadcastFanout =
      static_cast<double>(broadcast.totals.pieceReceptions) /
      static_cast<double>(broadcast.totals.pieceBroadcasts);
  const double pairwiseFanout =
      static_cast<double>(pairwise.totals.pieceReceptions) /
      static_cast<double>(pairwise.totals.pieceBroadcasts);
  EXPECT_GT(broadcastFanout, pairwiseFanout);
  EXPECT_NEAR(pairwiseFanout, 1.0, 1e-9);
}

TEST(Engine, CodedDownloadModeRunsAndDecodes) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.downloadMode = DownloadMode::kCoded;
  params.piecesPerFile = 4;
  const auto coded = runSimulation(trace, params);
  EXPECT_GT(coded.delivery.fileRatio, 0.0);
  EXPECT_DOUBLE_EQ(coded.accessDelivery.fileRatio, 1.0);
  // The coded pipeline actually ran: frames were sent, some were
  // innovative, generations decoded, and decoding cost row operations.
  EXPECT_GT(coded.totals.codedBroadcasts, 0u);
  EXPECT_GT(coded.totals.codedInnovativeFrames, 0u);
  EXPECT_GT(coded.totals.generationsDecoded, 0u);
  EXPECT_GT(coded.totals.codedDecodeRowOps, 0u);
}

TEST(Engine, CodedModeDeterministicForSameSeed) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbtQm);
  params.downloadMode = DownloadMode::kCoded;
  params.piecesPerFile = 3;
  params.faults.messageLossRate = 0.2;
  params.recovery.maxRetries = 2;
  const auto a = runSimulation(trace, params);
  const auto b = runSimulation(trace, params);
  expectResultsIdentical(a, b);
  EXPECT_EQ(a.totals.codedBroadcasts, b.totals.codedBroadcasts);
  EXPECT_EQ(a.totals.codedInnovativeFrames, b.totals.codedInnovativeFrames);
  EXPECT_EQ(a.totals.codedRedundantFrames, b.totals.codedRedundantFrames);
  EXPECT_EQ(a.totals.generationsDecoded, b.totals.generationsDecoded);
  EXPECT_EQ(a.totals.codedDecodeRowOps, b.totals.codedDecodeRowOps);
}

TEST(Engine, NonCodedModesUntouchedByCodedKnobs) {
  // The coded RNG stream only forks in coded mode; varying the coded knobs
  // in broadcast mode must not perturb a single counter.
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbtQ);
  const auto before = runSimulation(trace, params);
  params.coded.redundancy = 2.0;
  params.coded.sparsity = 0.1;
  const auto after = runSimulation(trace, params);
  expectResultsIdentical(before, after);
  EXPECT_EQ(after.totals.codedBroadcasts, 0u);
  EXPECT_EQ(after.totals.generationsDecoded, 0u);
}

TEST(Engine, CodedModeBeatsBaselineUnderHeavyLoss) {
  // The redundancy argument for coding: at high loss, extra independent
  // combinations substitute for the selective-repeat feedback loop the
  // baseline lacks (recovery off on both sides).
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.piecesPerFile = 4;
  params.faults.messageLossRate = 0.5;
  const auto plain = runSimulation(trace, params);
  params.downloadMode = DownloadMode::kCoded;
  const auto coded = runSimulation(trace, params);
  EXPECT_GT(coded.delivery.fileRatio, plain.delivery.fileRatio);
}

TEST(Engine, RarestFirstPushOrderRuns) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.pushOrder = PushOrder::kRarestFirst;
  const auto result = runSimulation(trace, params);
  EXPECT_GT(result.delivery.fileRatio, 0.0);
  EXPECT_DOUBLE_EQ(result.accessDelivery.fileRatio, 1.0);
}

TEST(Engine, DurationScaledBudgetsMoveMore) {
  const auto trace = smallNusTrace();  // 2-hour classroom sessions
  auto params = baseParams(ProtocolKind::kMbt);
  const auto fixed = runSimulation(trace, params);
  params.scaleBudgetsWithDuration = true;  // 2 h vs 10 min reference: x12
  const auto scaled = runSimulation(trace, params);
  EXPECT_GT(scaled.totals.pieceBroadcasts, fixed.totals.pieceBroadcasts);
  EXPECT_GE(scaled.delivery.fileRatio, fixed.delivery.fileRatio);
}

TEST(Engine, ObservedPopularityModeRuns) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.useObservedPopularity = true;
  const auto observed = runSimulation(trace, params);
  params.useObservedPopularity = false;
  const auto oracle = runSimulation(trace, params);
  // The estimate is a sample of true interest; delivery stays in a sane
  // band and query generation (ground truth) is unaffected.
  EXPECT_EQ(observed.totals.queriesGenerated, oracle.totals.queriesGenerated);
  EXPECT_GT(observed.delivery.fileRatio, 0.0);
  EXPECT_DOUBLE_EQ(observed.accessDelivery.fileRatio, 1.0);
}

TEST(Engine, ObservedPopularityTracksRequests) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.useObservedPopularity = true;
  Engine engine(trace, params);
  engine.run();
  // After the run, alive files' catalog popularity equals the observed
  // fraction of access nodes that requested them (in [0, 1]).
  for (FileId id : engine.internet().catalog().allFiles()) {
    const FileInfo* info = engine.internet().catalog().find(id);
    ASSERT_NE(info, nullptr);
    EXPECT_GE(info->popularity, 0.0);
    EXPECT_LE(info->popularity, 1.0);
  }
}

TEST(Engine, ForgersPoisonDiscoveryWithoutVerification) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  const auto clean = runSimulation(trace, params);
  params.forgerFraction = 0.25;
  params.verifyMetadata = false;
  const auto poisoned = runSimulation(trace, params);
  EXPECT_GT(poisoned.totals.forgeriesCrafted, 0u);
  EXPECT_GT(poisoned.totals.forgeriesAccepted, 0u);
  // Victims lock onto fake records whose files do not exist, so file
  // delivery suffers.
  EXPECT_LT(poisoned.delivery.fileRatio, clean.delivery.fileRatio);
}

TEST(Engine, VerificationNeutralizesForgers) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.forgerFraction = 0.25;
  params.verifyMetadata = true;
  const auto defended = runSimulation(trace, params);
  EXPECT_GT(defended.totals.forgeriesCrafted, 0u);
  EXPECT_EQ(defended.totals.forgeriesAccepted, 0u);
  EXPECT_GT(defended.totals.forgeriesRejected, 0u);
  // Compare against the same adversary without the defense.
  params.verifyMetadata = false;
  const auto poisoned = runSimulation(trace, params);
  EXPECT_GT(defended.delivery.fileRatio, poisoned.delivery.fileRatio);
}

TEST(Engine, RepeatForgersGetDistrusted) {
  const auto trace = smallNusTrace();
  auto params = baseParams(ProtocolKind::kMbt);
  params.forgerFraction = 0.25;
  params.verifyMetadata = true;
  Engine engine(trace, params);
  engine.run();
  // Some honest node must have blacklisted some forger after repeat
  // offences (threshold 2).
  bool someDistrust = false;
  for (std::uint32_t i = 0; i < engine.nodeCount(); ++i) {
    const Node& node = engine.node(NodeId(i));
    if (node.options().forger) continue;
    for (NodeId suspect : node.distrustedPeers()) {
      EXPECT_TRUE(engine.node(suspect).options().forger)
          << "honest node " << suspect.value << " wrongly distrusted";
      someDistrust = true;
    }
  }
  EXPECT_TRUE(someDistrust);
}

TEST(Engine, RunTwiceThrows) {
  // Regression: a second run()/finish() used to be a debug-only assert (a
  // silent no-op in release builds); it must throw in every build type.
  const auto trace = smallNusTrace();
  Engine engine(trace, baseParams(ProtocolKind::kMbt));
  engine.run();
  EXPECT_TRUE(engine.finished());
  EXPECT_THROW(engine.run(), std::logic_error);
  EXPECT_THROW(engine.finish(), std::logic_error);
  EXPECT_THROW(engine.step(), std::logic_error);
  EXPECT_THROW(engine.runUntil(kTimeInfinity), std::logic_error);
}

TEST(Engine, SteppedExecutionMatchesRun) {
  // The three drive modes — run(), runUntil slices + finish(), step() loop —
  // must be byte-identical for every protocol and both trace generators:
  // the schedule is built once and all randomness lives inside the event
  // callbacks, so slicing cannot perturb anything.
  for (const ProtocolKind kind :
       {ProtocolKind::kMbt, ProtocolKind::kMbtQ, ProtocolKind::kMbtQm}) {
    for (const bool diesel : {false, true}) {
      const auto trace = diesel ? smallDieselTrace() : smallNusTrace();
      auto params = baseParams(kind);
      if (diesel) params.frequentContactPeriod = 3 * kDay;
      const EngineResult whole = runSimulation(trace, params);

      Engine sliced(trace, params);
      for (SimTime t = kDay; t < sliced.endTime(); t += kDay) {
        sliced.runUntil(t);
        EXPECT_LE(sliced.now(), t);
      }
      expectResultsIdentical(whole, sliced.finish());

      Engine stepped(trace, params);
      std::size_t steps = 0;
      while (stepped.step()) ++steps;
      EXPECT_GT(steps, 0u);
      EXPECT_EQ(stepped.pendingEvents(), 0u);
      expectResultsIdentical(whole, stepped.finish());
    }
  }
}

TEST(Engine, CurrentResultIsMonotoneSnapshot) {
  const auto trace = smallNusTrace();
  Engine engine(trace, baseParams(ProtocolKind::kMbtQm));
  std::uint64_t lastContacts = 0;
  for (SimTime t = kDay; t < engine.endTime(); t += kDay) {
    engine.runUntil(t);
    const EngineResult snap = engine.currentResult();
    EXPECT_GE(snap.totals.contactsProcessed, lastContacts);
    lastContacts = snap.totals.contactsProcessed;
  }
  const EngineResult fin = engine.finish();
  EXPECT_GE(fin.totals.contactsProcessed, lastContacts);
  // currentResult stays callable after finish and equals the final result.
  expectResultsIdentical(fin, engine.currentResult());
}

// Property sweep: delivery ratios are valid probabilities under any
// parameter combination.
struct SweepCase {
  ProtocolKind kind;
  int filesPerDay;
  int ttlDays;
};

class EngineParamSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineParamSweep, RatiosAreValidProbabilities) {
  const SweepCase c = GetParam();
  const auto trace = smallNusTrace();
  auto params = baseParams(c.kind);
  params.newFilesPerDay = c.filesPerDay;
  params.fileTtlDays = c.ttlDays;
  const auto result = runSimulation(trace, params);
  for (const auto& report :
       {result.delivery, result.accessDelivery, result.contributorDelivery,
        result.freeRiderDelivery}) {
    EXPECT_GE(report.metadataRatio, 0.0);
    EXPECT_LE(report.metadataRatio, 1.0);
    EXPECT_GE(report.fileRatio, 0.0);
    EXPECT_LE(report.fileRatio, 1.0);
    // File delivery implies metadata delivery (the file subsumes it).
    EXPECT_LE(report.fileRatio, report.metadataRatio + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineParamSweep,
    ::testing::Values(SweepCase{ProtocolKind::kMbt, 10, 1},
                      SweepCase{ProtocolKind::kMbt, 40, 3},
                      SweepCase{ProtocolKind::kMbtQ, 10, 2},
                      SweepCase{ProtocolKind::kMbtQ, 40, 1},
                      SweepCase{ProtocolKind::kMbtQm, 10, 3},
                      SweepCase{ProtocolKind::kMbtQm, 40, 2}));

}  // namespace
}  // namespace hdtn::core
