#include "src/net/codec.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace hdtn::net {
namespace {

HelloMessage sampleHello() {
  HelloMessage h;
  h.sender = NodeId(42);
  h.heardNeighbors = {NodeId(1), NodeId(7), NodeId(300000)};
  h.queries = {"fox news ep1", "drama special"};
  h.wantedUris = {"dtn://fox/f1"};
  return h;
}

core::Metadata sampleMetadata() {
  core::Metadata md;
  md.file = FileId(9);
  md.name = "fox news daily ep9";
  md.publisher = "fox";
  md.description = "poster for ep9";
  md.uri = "dtn://fox/f9";
  md.sizeBytes = 512 * 1024;
  md.pieceSizeBytes = 256 * 1024;
  md.pieceChecksums = {Sha1::hash("p0"), Sha1::hash("p1")};
  md.authTag = Sha1::hash("auth");
  md.popularity = 0.125;
  md.publishedAt = 1234567;
  md.ttl = 3 * kDay;
  md.rebuildKeywords();
  return md;
}

TEST(Codec, VarintRoundTrip) {
  for (std::uint64_t value :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xffffffffull, 0xffffffffffffffffull}) {
    Encoder enc;
    enc.writeVarint(value);
    Decoder dec(enc.buffer());
    const auto decoded = dec.readVarint();
    ASSERT_TRUE(decoded.has_value()) << value;
    EXPECT_EQ(*decoded, value);
    EXPECT_TRUE(dec.atEnd());
  }
}

TEST(Codec, VarintTruncatedFails) {
  Encoder enc;
  enc.writeVarint(0xffffffffull);
  auto bytes = enc.buffer();
  bytes.pop_back();
  Decoder dec(bytes);
  EXPECT_FALSE(dec.readVarint().has_value());
}

TEST(Codec, StringRoundTripAndLimit) {
  Encoder enc;
  enc.writeString("hello dtn");
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.readString(), "hello dtn");
  Decoder dec2(enc.buffer());
  EXPECT_FALSE(dec2.readString(/*maxLength=*/3).has_value());
}

TEST(Codec, HelloRoundTrip) {
  const HelloMessage original = sampleHello();
  const Bytes frame = encodeHello(original);
  EXPECT_EQ(peekKind(frame), WireKind::kHello);
  const auto decoded = decodeHello(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sender, original.sender);
  EXPECT_EQ(decoded->heardNeighbors, original.heardNeighbors);
  EXPECT_EQ(decoded->queries, original.queries);
  EXPECT_EQ(decoded->wantedUris, original.wantedUris);
}

TEST(Codec, EmptyHelloRoundTrip) {
  HelloMessage h;
  h.sender = NodeId(0);
  const auto decoded = decodeHello(encodeHello(h));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->heardNeighbors.empty());
  EXPECT_TRUE(decoded->queries.empty());
}

TEST(Codec, MetadataRoundTrip) {
  const core::Metadata original = sampleMetadata();
  const Bytes frame = encodeMetadata(original);
  EXPECT_EQ(peekKind(frame), WireKind::kMetadata);
  const auto decoded = decodeMetadata(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->file, original.file);
  EXPECT_EQ(decoded->name, original.name);
  EXPECT_EQ(decoded->publisher, original.publisher);
  EXPECT_EQ(decoded->description, original.description);
  EXPECT_EQ(decoded->uri, original.uri);
  EXPECT_EQ(decoded->sizeBytes, original.sizeBytes);
  EXPECT_EQ(decoded->pieceSizeBytes, original.pieceSizeBytes);
  EXPECT_EQ(decoded->pieceChecksums, original.pieceChecksums);
  EXPECT_EQ(decoded->authTag, original.authTag);
  EXPECT_NEAR(decoded->popularity, original.popularity, 1e-6);
  EXPECT_EQ(decoded->publishedAt, original.publishedAt);
  EXPECT_EQ(decoded->ttl, original.ttl);
  // Derived keywords are rebuilt on decode.
  EXPECT_EQ(decoded->keywords, original.keywords);
}

TEST(Codec, PieceRoundTripWithPayload) {
  PieceMessage header;
  header.sender = NodeId(5);
  header.file = FileId(77);
  header.pieceIndex = 3;
  Bytes payload(1000);
  Rng rng(1);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  const Bytes frame = encodePiece(header, payload);
  EXPECT_EQ(peekKind(frame), WireKind::kPiece);
  const auto decoded = decodePiece(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.sender, header.sender);
  EXPECT_EQ(decoded->header.file, header.file);
  EXPECT_EQ(decoded->header.pieceIndex, header.pieceIndex);
  EXPECT_EQ(decoded->payload, payload);
}

CodedPieceMessage sampleCodedPiece() {
  CodedPieceMessage frame;
  frame.sender = NodeId(8);
  frame.file = FileId(21);
  frame.generationSize = 4;
  frame.seed = 0xdeadbeefcafef00dull;
  frame.coefficients = {0x01, 0x00, 0x9a, 0xff};
  return frame;
}

TEST(Codec, CodedPieceRoundTripWithPayload) {
  const CodedPieceMessage header = sampleCodedPiece();
  Bytes payload(512);
  Rng rng(2);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  const Bytes frame = encodeCodedPiece(header, payload);
  EXPECT_EQ(peekKind(frame), WireKind::kCodedPiece);
  const auto decoded = decodeCodedPiece(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->header.sender, header.sender);
  EXPECT_EQ(decoded->header.file, header.file);
  EXPECT_EQ(decoded->header.generationSize, header.generationSize);
  EXPECT_EQ(decoded->header.seed, header.seed);
  EXPECT_EQ(decoded->header.coefficients, header.coefficients);
  EXPECT_EQ(decoded->payload, payload);
}

TEST(Codec, CodedPieceEmptyPayloadRoundTrip) {
  const Bytes frame = encodeCodedPiece(sampleCodedPiece(), {});
  const auto decoded = decodeCodedPiece(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Codec, CodedPieceCoefficientLengthMismatchReportsBadValue) {
  CodedPieceMessage header = sampleCodedPiece();
  header.coefficients.push_back(0x33);  // now 5 coefficients, generation 4
  const auto decoded = decodeCodedPiece(encodeCodedPiece(header, {}));
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error, DecodeError::kBadValue);
}

TEST(Codec, CodedPieceZeroGenerationReportsBadValue) {
  CodedPieceMessage header = sampleCodedPiece();
  header.generationSize = 0;
  header.coefficients.clear();
  const auto decoded = decodeCodedPiece(encodeCodedPiece(header, {}));
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error, DecodeError::kBadValue);
}

TEST(Codec, CodedPieceAllZeroCoefficientsReportBadValue) {
  // No honest encoder emits a zero vector (it can never raise rank); at
  // the wire it is a degenerate/hostile frame, not a transport error.
  CodedPieceMessage header = sampleCodedPiece();
  header.coefficients.assign(header.coefficients.size(), 0x00);
  const auto decoded = decodeCodedPiece(encodeCodedPiece(header, {}));
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error, DecodeError::kBadValue);
}

TEST(Codec, CodedPieceHugeGenerationReportsBadValue) {
  CodedPieceMessage header = sampleCodedPiece();
  header.generationSize = kMaxGenerationSize + 1;
  header.coefficients.assign(header.generationSize, 1);
  const auto decoded = decodeCodedPiece(encodeCodedPiece(header, {}));
  ASSERT_FALSE(decoded.has_value());
  EXPECT_EQ(decoded.error, DecodeError::kBadValue);
}

TEST(Codec, CodedPieceTrailingGarbageRejected) {
  const Bytes payload = {1, 2, 3};
  Bytes frame = encodeCodedPiece(sampleCodedPiece(), payload);
  frame.push_back(0x7f);
  EXPECT_EQ(decodeCodedPiece(frame).error, DecodeError::kTrailingBytes);
}

TEST(Codec, CodedPieceKindMismatchReportsBadKind) {
  const Bytes hello = encodeHello(sampleHello());
  EXPECT_EQ(decodeCodedPiece(hello).error, DecodeError::kBadKind);
  const Bytes coded = encodeCodedPiece(sampleCodedPiece(), {});
  EXPECT_EQ(decodePiece(coded).error, DecodeError::kBadKind);
}

TEST(Codec, KindMismatchRejected) {
  const Bytes hello = encodeHello(sampleHello());
  EXPECT_FALSE(decodeMetadata(hello).has_value());
  EXPECT_FALSE(decodePiece(hello).has_value());
  const Bytes md = encodeMetadata(sampleMetadata());
  EXPECT_FALSE(decodeHello(md).has_value());
}

TEST(Codec, WrongVersionRejected) {
  Bytes frame = encodeHello(sampleHello());
  frame[0] = kCodecVersion + 1;
  EXPECT_FALSE(peekKind(frame).has_value());
  EXPECT_FALSE(decodeHello(frame).has_value());
}

TEST(Codec, TrailingGarbageRejected) {
  Bytes frame = encodeHello(sampleHello());
  frame.push_back(0x00);
  EXPECT_FALSE(decodeHello(frame).has_value());
}

TEST(Codec, EmptyFrameRejected) {
  EXPECT_FALSE(peekKind({}).has_value());
  EXPECT_FALSE(decodeHello({}).has_value());
  EXPECT_FALSE(decodeMetadata({}).has_value());
  EXPECT_FALSE(decodePiece({}).has_value());
}

// Truncation fuzz: every proper prefix of a valid frame must be rejected,
// never crash or over-read.
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, AllPrefixesRejected) {
  const int kind = GetParam();
  Bytes frame;
  if (kind == 0) {
    frame = encodeHello(sampleHello());
  } else if (kind == 1) {
    frame = encodeMetadata(sampleMetadata());
  } else if (kind == 2) {
    PieceMessage header;
    header.sender = NodeId(1);
    header.file = FileId(2);
    header.pieceIndex = 0;
    const Bytes payload = {1, 2, 3, 4, 5};
    frame = encodePiece(header, payload);
  } else {
    const Bytes payload = {1, 2, 3, 4, 5};
    frame = encodeCodedPiece(sampleCodedPiece(), payload);
  }
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::span<const std::uint8_t> prefix(frame.data(), cut);
    EXPECT_FALSE(decodeHello(prefix).has_value());
    EXPECT_FALSE(decodeMetadata(prefix).has_value());
    EXPECT_FALSE(decodePiece(prefix).has_value());
    EXPECT_FALSE(decodeCodedPiece(prefix).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Frames, TruncationSweep,
                         ::testing::Values(0, 1, 2, 3));

// Mutation fuzz: random byte flips either decode to something or are
// rejected with a *typed* error — no crashes, no over-reads, no silent
// partial decodes (a failed decode always names its cause).
TEST(Codec, RandomMutationNeverCrashes) {
  Rng rng(99);
  const Bytes original = encodeMetadata(sampleMetadata());
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes mutated = original;
    const std::size_t pos = rng.pickIndex(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.pickIndex(255));
    for (const auto& check :
         {decodeMetadata(mutated).error, decodeHello(mutated).error,
          decodePiece(mutated).error}) {
      // Either a clean decode or a named error, never an unnamed failure.
      SUCCEED();
      (void)decodeErrorName(check);
    }
    const auto md = decodeMetadata(mutated);
    EXPECT_NE(md.has_value(), md.error != DecodeError::kNone)
        << "value and error must be mutually exclusive (trial " << trial
        << ", pos " << pos << ")";
  }
}

// --- typed decode errors ----------------------------------------------------

TEST(Codec, ErrorNamesAreStable) {
  EXPECT_STREQ(decodeErrorName(DecodeError::kNone), "ok");
  EXPECT_STREQ(decodeErrorName(DecodeError::kTruncated), "truncated");
  EXPECT_STREQ(decodeErrorName(DecodeError::kBadVersion), "bad-version");
  EXPECT_STREQ(decodeErrorName(DecodeError::kBadKind), "bad-kind");
  EXPECT_STREQ(decodeErrorName(DecodeError::kOverflow), "overflow");
  EXPECT_STREQ(decodeErrorName(DecodeError::kLimitExceeded),
               "limit-exceeded");
  EXPECT_STREQ(decodeErrorName(DecodeError::kTrailingBytes),
               "trailing-bytes");
  EXPECT_STREQ(decodeErrorName(DecodeError::kBadValue), "bad-value");
}

TEST(Codec, TruncatedPrefixesReportTruncated) {
  const Bytes frame = encodeHello(sampleHello());
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    std::span<const std::uint8_t> prefix(frame.data(), cut);
    const auto decoded = decodeHello(prefix);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.error, DecodeError::kTruncated) << "cut " << cut;
  }
}

TEST(Codec, WrongVersionReportsBadVersion) {
  Bytes frame = encodeHello(sampleHello());
  frame[0] = kCodecVersion + 1;
  EXPECT_EQ(peekKind(frame).error, DecodeError::kBadVersion);
  EXPECT_EQ(decodeHello(frame).error, DecodeError::kBadVersion);
}

TEST(Codec, KindMismatchReportsBadKind) {
  const Bytes hello = encodeHello(sampleHello());
  EXPECT_EQ(decodeMetadata(hello).error, DecodeError::kBadKind);
  EXPECT_EQ(decodePiece(hello).error, DecodeError::kBadKind);
  // An out-of-range kind value is kBadKind from peekKind too.
  Encoder enc;
  enc.writeVarint(kCodecVersion);
  enc.writeVarint(200);
  EXPECT_EQ(peekKind(enc.buffer()).error, DecodeError::kBadKind);
}

TEST(Codec, TrailingByteReportsTrailingBytes) {
  Bytes frame = encodeHello(sampleHello());
  frame.push_back(0x00);
  EXPECT_EQ(decodeHello(frame).error, DecodeError::kTrailingBytes);
}

TEST(Codec, OverlongVarintReportsOverflow) {
  const Bytes overlong(11, 0xff);  // 77 significant bits
  Decoder dec(overlong);
  EXPECT_FALSE(dec.readVarint().has_value());
  EXPECT_EQ(dec.error(), DecodeError::kOverflow);
}

TEST(Codec, StringOverLimitReportsLimitExceeded) {
  Encoder enc;
  enc.writeString("hello dtn");
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.readString(/*maxLength=*/3).has_value());
  EXPECT_EQ(dec.error(), DecodeError::kLimitExceeded);
}

TEST(Codec, OutOfRangeIdReportsBadValue) {
  Encoder enc;
  enc.writeVarint(kCodecVersion);
  enc.writeVarint(static_cast<std::uint64_t>(WireKind::kHello));
  enc.writeVarint(0x1'0000'0000ull);  // sender above any representable id
  EXPECT_EQ(decodeHello(enc.buffer()).error, DecodeError::kBadValue);
}

TEST(Codec, DecoderKeepsFirstError) {
  const Bytes overlong(11, 0xff);
  Decoder dec(overlong);
  EXPECT_FALSE(dec.readVarint().has_value());
  EXPECT_FALSE(dec.readVarint().has_value());  // now also truncated
  EXPECT_EQ(dec.error(), DecodeError::kOverflow);  // first cause wins
}

}  // namespace
}  // namespace hdtn::net
