// Checkpoint/restore: a run restored at any step boundary finishes
// byte-identical (event stream and final metrics) to the uninterrupted run,
// across all protocols, both trace families, and with faults on; corrupt,
// truncated, version-mismatched, or configuration-mismatched files fail with
// a clear CheckpointError and never leave a partial restore behind.
#include "src/core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/obs/event_log.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/nus.hpp"

namespace hdtn::core {
namespace {

trace::ContactTrace nusTrace() {
  trace::NusParams p;
  p.students = 36;
  p.courses = 8;
  p.coursesPerStudent = 2;
  p.days = 4;
  p.attendanceRate = 0.9;
  p.seed = 11;
  return trace::generateNus(p);
}

trace::ContactTrace dieselTrace() {
  trace::DieselNetParams p;
  p.buses = 24;
  p.routes = 6;
  p.days = 4;
  p.seed = 11;
  return trace::generateDieselNet(p);
}

EngineParams paramsFor(ProtocolKind kind, bool withFaults) {
  EngineParams params;
  params.protocol.kind = kind;
  params.internetAccessFraction = 0.3;
  params.newFilesPerDay = 12;
  params.fileTtlDays = 2;
  params.seed = 21;
  params.frequentContactPeriod = kDay;
  if (withFaults) {
    params.faults.messageLossRate = 0.15;
    params.faults.contactTruncationRate = 0.2;
    params.faults.pieceCorruptionRate = 0.1;
    params.faults.churnDownFraction = 0.1;
    params.faults.churnMeanDowntime = 3 * kHour;
  }
  return params;
}

std::string ckptPath(const char* name) {
  return testing::TempDir() + "/" + name + ".ckpt";
}

struct FullRun {
  std::string events;
  EngineResult result;
  std::uint64_t steps = 0;
};

FullRun uninterrupted(const trace::ContactTrace& trace,
                      const EngineParams& params) {
  FullRun full;
  std::ostringstream out;
  obs::JsonlEventSink sink(out);
  Engine engine(trace, params);
  engine.setObserver(&sink);
  while (engine.step()) ++full.steps;
  full.result = engine.finish();
  full.events = out.str();
  return full;
}

void expectSameResult(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.delivery.queries, b.delivery.queries);
  EXPECT_EQ(a.delivery.metadataDelivered, b.delivery.metadataDelivered);
  EXPECT_EQ(a.delivery.filesDelivered, b.delivery.filesDelivered);
  EXPECT_EQ(a.delivery.metadataRatio, b.delivery.metadataRatio);
  EXPECT_EQ(a.delivery.fileRatio, b.delivery.fileRatio);
  EXPECT_EQ(a.delivery.meanFileDelaySeconds, b.delivery.meanFileDelaySeconds);
  EXPECT_EQ(a.accessDelivery.fileRatio, b.accessDelivery.fileRatio);
  EXPECT_EQ(a.contributorDelivery.fileRatio, b.contributorDelivery.fileRatio);
  EXPECT_EQ(a.totals.contactsProcessed, b.totals.contactsProcessed);
  EXPECT_EQ(a.totals.filesPublished, b.totals.filesPublished);
  EXPECT_EQ(a.totals.queriesGenerated, b.totals.queriesGenerated);
  EXPECT_EQ(a.totals.metadataBroadcasts, b.totals.metadataBroadcasts);
  EXPECT_EQ(a.totals.pieceBroadcasts, b.totals.pieceBroadcasts);
  EXPECT_EQ(a.totals.metadataReceptions, b.totals.metadataReceptions);
  EXPECT_EQ(a.totals.pieceReceptions, b.totals.pieceReceptions);
  EXPECT_EQ(a.totals.faultMessagesDropped, b.totals.faultMessagesDropped);
  EXPECT_EQ(a.totals.faultContactsTruncated, b.totals.faultContactsTruncated);
  EXPECT_EQ(a.totals.faultPiecesRejectedCorrupt,
            b.totals.faultPiecesRejectedCorrupt);
  EXPECT_EQ(a.totals.faultNodeDownIntervals, b.totals.faultNodeDownIntervals);
  EXPECT_EQ(a.totals.recoveryFramesLost, b.totals.recoveryFramesLost);
  EXPECT_EQ(a.totals.recoveryRetransmits, b.totals.recoveryRetransmits);
  EXPECT_EQ(a.totals.recoveryRedeliveries, b.totals.recoveryRedeliveries);
  EXPECT_EQ(a.totals.coordinatorFailovers, b.totals.coordinatorFailovers);
  EXPECT_EQ(a.totals.repairRequests, b.totals.repairRequests);
  EXPECT_EQ(a.totals.metadataEvictions, b.totals.metadataEvictions);
}

/// Saves at step boundary k, restores into a fresh engine, finishes, and
/// checks that prefix + suffix event streams and the final result equal the
/// uninterrupted run.
void checkBoundary(const trace::ContactTrace& trace,
                   const EngineParams& params, const FullRun& full,
                   std::uint64_t k, const std::string& path) {
  SCOPED_TRACE("boundary k=" + std::to_string(k));
  std::ostringstream prefixOut;
  {
    obs::JsonlEventSink sink(prefixOut);
    Engine engine(trace, params);
    engine.setObserver(&sink);
    for (std::uint64_t i = 0; i < k; ++i) ASSERT_TRUE(engine.step());
    engine.saveCheckpoint(path);
  }
  std::ostringstream suffixOut;
  obs::JsonlEventSink sink(suffixOut);
  Engine restored(trace, params);
  restored.restoreCheckpoint(path);
  restored.setObserver(&sink);
  const EngineResult result = restored.finish();
  EXPECT_EQ(prefixOut.str() + suffixOut.str(), full.events);
  expectSameResult(result, full.result);
}

void checkAllBoundaries(const trace::ContactTrace& trace,
                        const EngineParams& params, const char* tag) {
  const FullRun full = uninterrupted(trace, params);
  ASSERT_GT(full.steps, 4u);
  ASSERT_FALSE(full.events.empty());
  const std::string path = ckptPath(tag);
  for (const std::uint64_t k :
       {std::uint64_t{0}, std::uint64_t{1}, full.steps / 2, full.steps}) {
    checkBoundary(trace, params, full, k, path);
  }
}

TEST(Checkpoint, ByteIdenticalNusAllProtocols) {
  const auto trace = nusTrace();
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbt, false), "nus_mbt");
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbtQ, false), "nus_mbtq");
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbtQm, false),
                     "nus_mbtqm");
}

TEST(Checkpoint, ByteIdenticalNusWithFaults) {
  const auto trace = nusTrace();
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbt, true), "nus_mbt_f");
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbtQ, true),
                     "nus_mbtq_f");
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbtQm, true),
                     "nus_mbtqm_f");
}

TEST(Checkpoint, ByteIdenticalDieselNetAllProtocols) {
  const auto trace = dieselTrace();
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbt, false), "dn_mbt");
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbtQ, false), "dn_mbtq");
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbtQm, false),
                     "dn_mbtqm");
}

TEST(Checkpoint, ByteIdenticalDieselNetWithFaults) {
  const auto trace = dieselTrace();
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbt, true), "dn_mbt_f");
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbtQ, true), "dn_mbtq_f");
  checkAllBoundaries(trace, paramsFor(ProtocolKind::kMbtQm, true),
                     "dn_mbtqm_f");
}

EngineParams paramsWithRecovery() {
  EngineParams params = paramsFor(ProtocolKind::kMbtQm, true);
  params.recovery.maxRetries = 2;
  // Deliberately tiny in-contact budget: most noted losses spill into the
  // cross-contact pending queue, so checkpoints routinely carry live
  // retransmission state.
  params.recovery.retransmitBudget = 2;
  params.recovery.repairPerContact = 2;
  params.recovery.coordinatorFailover = true;
  params.nodeMetadataCapacity = 48;
  return params;
}

TEST(Checkpoint, ByteIdenticalWithRecoveryEnabled) {
  const auto trace = nusTrace();
  checkAllBoundaries(trace, paramsWithRecovery(), "nus_mbtqm_rec");
}

TEST(Checkpoint, ResumesMidRetransmissionByteIdentical) {
  // The hard case: the checkpoint is taken at the first boundary where
  // frames are *still queued for retransmission* — the restored engine must
  // serve those exact frames at the exact later contacts the uninterrupted
  // run did.
  const auto trace = nusTrace();
  const auto params = paramsWithRecovery();
  const FullRun full = uninterrupted(trace, params);
  const std::string path = ckptPath("mid_retx");
  std::ostringstream prefixOut;
  {
    obs::JsonlEventSink sink(prefixOut);
    Engine engine(trace, params);
    engine.setObserver(&sink);
    ASSERT_NE(engine.recoveryState(), nullptr);
    bool saved = false;
    while (engine.step()) {
      if (engine.recoveryState()->pendingCount() > 0) {
        engine.saveCheckpoint(path);
        saved = true;
        break;
      }
    }
    ASSERT_TRUE(saved) << "no step boundary left retransmissions pending";
  }
  std::ostringstream suffixOut;
  obs::JsonlEventSink sink(suffixOut);
  Engine restored(trace, params);
  restored.restoreCheckpoint(path);
  ASSERT_NE(restored.recoveryState(), nullptr);
  EXPECT_GT(restored.recoveryState()->pendingCount(), 0u);
  restored.setObserver(&sink);
  const EngineResult result = restored.finish();
  EXPECT_EQ(prefixOut.str() + suffixOut.str(), full.events);
  expectSameResult(result, full.result);
  EXPECT_GT(result.totals.recoveryRetransmits, 0u);
}

EngineParams paramsCoded() {
  EngineParams params = paramsFor(ProtocolKind::kMbtQm, true);
  params.downloadMode = DownloadMode::kCoded;
  params.piecesPerFile = 4;
  params.recovery.maxRetries = 2;
  params.recovery.retransmitBudget = 2;
  return params;
}

TEST(Checkpoint, ByteIdenticalCodedMode) {
  const auto trace = nusTrace();
  checkAllBoundaries(trace, paramsCoded(), "nus_coded");
}

TEST(Checkpoint, ResumesMidGenerationByteIdentical) {
  // The coded hard case: save at the first boundary where some decoder
  // holds partial rank (innovative frames delivered that no completed
  // decode accounts for) — the restored engine must carry every decoder's
  // row space and the coded RNG position byte-for-byte, or the suffix
  // events diverge.
  const auto trace = nusTrace();
  const auto params = paramsCoded();
  const FullRun full = uninterrupted(trace, params);
  ASSERT_GT(full.result.totals.generationsDecoded, 0u);
  const std::string path = ckptPath("mid_gen");
  std::ostringstream prefixOut;
  {
    obs::JsonlEventSink sink(prefixOut);
    Engine engine(trace, params);
    engine.setObserver(&sink);
    bool saved = false;
    while (engine.step()) {
      const EngineTotals t = engine.currentResult().totals;
      // Any innovative frame beyond 4 per decoded generation is rank
      // parked in a live decoder (each decode consumes at most
      // piecesPerFile innovative frames at its own receiver).
      if (t.codedInnovativeFrames >
          t.generationsDecoded * params.piecesPerFile) {
        engine.saveCheckpoint(path);
        saved = true;
        break;
      }
    }
    ASSERT_TRUE(saved) << "no step boundary left a generation mid-decode";
  }
  std::ostringstream suffixOut;
  obs::JsonlEventSink sink(suffixOut);
  Engine restored(trace, params);
  restored.restoreCheckpoint(path);
  restored.setObserver(&sink);
  const EngineResult result = restored.finish();
  EXPECT_EQ(prefixOut.str() + suffixOut.str(), full.events);
  expectSameResult(result, full.result);
  EXPECT_EQ(result.totals.codedBroadcasts,
            full.result.totals.codedBroadcasts);
  EXPECT_EQ(result.totals.codedInnovativeFrames,
            full.result.totals.codedInnovativeFrames);
  EXPECT_EQ(result.totals.codedRedundantFrames,
            full.result.totals.codedRedundantFrames);
  EXPECT_EQ(result.totals.generationsDecoded,
            full.result.totals.generationsDecoded);
  EXPECT_EQ(result.totals.codedDecodeRowOps,
            full.result.totals.codedDecodeRowOps);
}

EngineParams paramsAdversarial() {
  // The robustness hard case: coded download under active Byzantine attack
  // with the full defense armed — the snapshot must carry the adversary's
  // five attack-stream positions and the reputation ledger exactly.
  EngineParams params = paramsCoded();
  params.adversary.byzantineFraction = 0.3;
  params.reputation.defense = true;
  params.recovery.repairPerContact = 2;
  return params;
}

TEST(Checkpoint, ByteIdenticalUnderAdversaryWithDefense) {
  const auto trace = nusTrace();
  checkAllBoundaries(trace, paramsAdversarial(), "nus_adv");
}

TEST(Checkpoint, ResumesMidAttackByteIdentical) {
  // Save at the first boundary after attacks have fired and suspicion has
  // accrued; the resumed run must replay the exact same later attack
  // decisions, rollbacks, and quarantines as the uninterrupted run.
  const auto trace = nusTrace();
  const auto params = paramsAdversarial();
  const FullRun full = uninterrupted(trace, params);
  ASSERT_GT(full.result.totals.adversaryAttacks, 0u);
  ASSERT_GT(full.result.totals.generationsRolledBack, 0u);
  const std::string path = ckptPath("mid_attack");
  std::ostringstream prefixOut;
  {
    obs::JsonlEventSink sink(prefixOut);
    Engine engine(trace, params);
    engine.setObserver(&sink);
    bool saved = false;
    while (engine.step()) {
      const EngineTotals t = engine.currentResult().totals;
      if (t.adversaryAttacks > 0 &&
          t.adversaryAttacks < full.result.totals.adversaryAttacks) {
        engine.saveCheckpoint(path);
        saved = true;
        break;
      }
    }
    ASSERT_TRUE(saved) << "no step boundary fell mid-attack";
  }
  std::ostringstream suffixOut;
  obs::JsonlEventSink sink(suffixOut);
  Engine restored(trace, params);
  restored.restoreCheckpoint(path);
  ASSERT_NE(restored.adversaryPlan(), nullptr);
  ASSERT_NE(restored.reputationTracker(), nullptr);
  restored.setObserver(&sink);
  const EngineResult result = restored.finish();
  EXPECT_EQ(prefixOut.str() + suffixOut.str(), full.events);
  expectSameResult(result, full.result);
  EXPECT_EQ(result.totals.adversaryAttacks,
            full.result.totals.adversaryAttacks);
  EXPECT_EQ(result.totals.pollutionInjected,
            full.result.totals.pollutionInjected);
  EXPECT_EQ(result.totals.pollutionDetected,
            full.result.totals.pollutionDetected);
  EXPECT_EQ(result.totals.generationsRolledBack,
            full.result.totals.generationsRolledBack);
  EXPECT_EQ(result.totals.nodesQuarantined,
            full.result.totals.nodesQuarantined);
  EXPECT_EQ(result.totals.nodesReleased, full.result.totals.nodesReleased);
  EXPECT_EQ(result.totals.falseQuarantines,
            full.result.totals.falseQuarantines);
}

TEST(Checkpoint, FileBytesAreDeterministic) {
  const auto trace = nusTrace();
  const auto params = paramsFor(ProtocolKind::kMbtQm, true);
  Engine engine(trace, params);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(engine.step());
  const std::string pathA = ckptPath("det_a");
  const std::string pathB = ckptPath("det_b");
  engine.saveCheckpoint(pathA);
  engine.saveCheckpoint(pathB);
  std::ifstream a(pathA, std::ios::binary), b(pathB, std::ios::binary);
  const std::string bytesA((std::istreambuf_iterator<char>(a)),
                           std::istreambuf_iterator<char>());
  const std::string bytesB((std::istreambuf_iterator<char>(b)),
                           std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytesA.empty());
  EXPECT_EQ(bytesA, bytesB);
}

TEST(Checkpoint, ReadCheckpointInfoReturnsHeaderAndExtra) {
  const auto trace = nusTrace();
  const auto params = paramsFor(ProtocolKind::kMbt, false);
  Engine engine(trace, params);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(engine.step());
  const std::string path = ckptPath("info");
  engine.saveCheckpoint(path, "driver-cursor-blob");
  const CheckpointInfo info = readCheckpointInfo(path);
  EXPECT_EQ(info.version, kCheckpointVersion);
  EXPECT_EQ(info.executedEvents, 10u);
  EXPECT_EQ(info.clock, engine.now());
  EXPECT_EQ(info.extra, "driver-cursor-blob");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class CheckpointErrors : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_ = nusTrace();
    params_ = paramsFor(ProtocolKind::kMbtQm, false);
    path_ = ckptPath("errors");
    Engine engine(trace_, params_);
    for (int i = 0; i < 20; ++i) ASSERT_TRUE(engine.step());
    engine.saveCheckpoint(path_);
    bytes_ = slurp(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }

  void expectRestoreThrows(const std::string& needle) {
    Engine engine(trace_, params_);
    try {
      engine.restoreCheckpoint(path_);
      FAIL() << "restoreCheckpoint did not throw";
    } catch (const CheckpointError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "actual message: " << e.what();
    }
    // Never a partial restore: the engine is still fresh and finishes to the
    // same result as an untouched run.
    expectSameResult(engine.finish(), runSimulation(trace_, params_));
  }

  trace::ContactTrace trace_;
  EngineParams params_;
  std::string path_;
  std::string bytes_;
};

TEST_F(CheckpointErrors, MissingFile) {
  Engine engine(trace_, params_);
  EXPECT_THROW(engine.restoreCheckpoint(testing::TempDir() + "/nope.ckpt"),
               CheckpointError);
}

TEST_F(CheckpointErrors, BadMagic) {
  std::string mutated = bytes_;
  mutated[0] = 'X';
  spit(path_, mutated);
  expectRestoreThrows("bad magic");
}

TEST_F(CheckpointErrors, TruncatedHeader) {
  spit(path_, bytes_.substr(0, 16));
  expectRestoreThrows("truncated checkpoint");
}

TEST_F(CheckpointErrors, TruncatedPayload) {
  spit(path_, bytes_.substr(0, bytes_.size() - 7));
  expectRestoreThrows("truncated checkpoint");
}

TEST_F(CheckpointErrors, CorruptPayloadFailsChecksum) {
  std::string mutated = bytes_;
  mutated[mutated.size() / 2] ^= 0x40;
  spit(path_, mutated);
  expectRestoreThrows("checksum mismatch");
}

TEST_F(CheckpointErrors, VersionMismatch) {
  std::string mutated = bytes_;
  mutated[8] = 99;  // u32 version lives at offset 8, little-endian
  spit(path_, mutated);
  expectRestoreThrows("unsupported checkpoint version 99");
}

TEST_F(CheckpointErrors, DifferentSeedFailsFingerprint) {
  EngineParams other = params_;
  other.seed += 1;
  Engine engine(trace_, other);
  EXPECT_THROW(engine.restoreCheckpoint(path_), CheckpointError);
}

TEST_F(CheckpointErrors, DifferentProtocolFailsFingerprint) {
  EngineParams other = params_;
  other.protocol.kind = ProtocolKind::kMbt;
  Engine engine(trace_, other);
  try {
    engine.restoreCheckpoint(path_);
    FAIL() << "restoreCheckpoint did not throw";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("different run configuration"),
              std::string::npos);
  }
}

TEST_F(CheckpointErrors, DifferentRecoveryParamsFailFingerprint) {
  EngineParams other = params_;
  other.recovery.maxRetries = 2;
  Engine engine(trace_, other);
  EXPECT_THROW(engine.restoreCheckpoint(path_), CheckpointError);
}

TEST_F(CheckpointErrors, DifferentAdversaryParamsFailFingerprint) {
  EngineParams other = params_;
  other.adversary.byzantineFraction = 0.2;
  Engine engine(trace_, other);
  EXPECT_THROW(engine.restoreCheckpoint(path_), CheckpointError);
}

TEST_F(CheckpointErrors, DifferentDefenseParamsFailFingerprint) {
  EngineParams other = params_;
  other.reputation.defense = true;
  Engine engine(trace_, other);
  EXPECT_THROW(engine.restoreCheckpoint(path_), CheckpointError);
}

TEST_F(CheckpointErrors, DifferentMetadataCapacityFailsFingerprint) {
  EngineParams other = params_;
  other.nodeMetadataCapacity = 32;
  Engine engine(trace_, other);
  EXPECT_THROW(engine.restoreCheckpoint(path_), CheckpointError);
}

TEST_F(CheckpointErrors, DifferentTraceFailsFingerprint) {
  const auto other = dieselTrace();
  Engine engine(other, params_);
  EXPECT_THROW(engine.restoreCheckpoint(path_), CheckpointError);
}

TEST_F(CheckpointErrors, RestoreOnSteppedEngineThrowsLogicError) {
  Engine engine(trace_, params_);
  ASSERT_TRUE(engine.step());
  EXPECT_THROW(engine.restoreCheckpoint(path_), std::logic_error);
}

TEST_F(CheckpointErrors, RestoreWithObserverAttachedThrowsLogicError) {
  obs::CountingObserver counter;
  Engine engine(trace_, params_);
  engine.setObserver(&counter);
  EXPECT_THROW(engine.restoreCheckpoint(path_), std::logic_error);
}

TEST_F(CheckpointErrors, SaveAfterFinishThrowsLogicError) {
  Engine engine(trace_, params_);
  engine.run();
  EXPECT_THROW(engine.saveCheckpoint(ckptPath("late")), std::logic_error);
}

TEST_F(CheckpointErrors, ReadCheckpointInfoRejectsCorruptFiles) {
  std::string mutated = bytes_;
  mutated[mutated.size() - 1] ^= 0x01;
  spit(path_, mutated);
  EXPECT_THROW(readCheckpointInfo(path_), CheckpointError);
}

}  // namespace
}  // namespace hdtn::core
