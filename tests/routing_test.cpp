#include "src/routing/routing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "src/trace/dieselnet.hpp"

namespace hdtn::routing {
namespace {

using trace::Contact;
using trace::ContactTrace;

Contact makeContact(SimTime start, SimTime end,
                    std::initializer_list<std::uint32_t> members) {
  Contact c;
  c.start = start;
  c.end = end;
  for (auto m : members) c.members.emplace_back(m);
  return c;
}

// 0 meets 1 at 10, 1 meets 2 at 30, repeated daily.
ContactTrace lineTrace(int days = 1) {
  ContactTrace t("line", 3);
  for (int d = 0; d < days; ++d) {
    const SimTime base = static_cast<SimTime>(d) * kDay;
    t.addContact(makeContact(base + 10, base + 20, {0, 1}));
    t.addContact(makeContact(base + 30, base + 40, {1, 2}));
  }
  t.sortByStart();
  return t;
}

RoutingMessage makeMessage(std::uint32_t id, std::uint32_t src,
                           std::uint32_t dst, SimTime createdAt,
                           Duration ttl = kTimeInfinity) {
  RoutingMessage m;
  m.id = MessageId(id);
  m.source = NodeId(src);
  m.destination = NodeId(dst);
  m.createdAt = createdAt;
  m.ttl = ttl;
  return m;
}

TEST(Routing, EpidemicRelaysAlongLine) {
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kEpidemic;
  const auto result = simulateRouting(
      lineTrace(), {makeMessage(0, 0, 2, 0)}, params);
  EXPECT_EQ(result.delivered, 1u);
  EXPECT_DOUBLE_EQ(result.meanDelay, 30.0);
  EXPECT_EQ(result.forwards, 2u);  // 0->1 copy, 1->2 delivery
}

TEST(Routing, DirectDeliveryCannotRelay) {
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kDirectDelivery;
  const auto result = simulateRouting(
      lineTrace(), {makeMessage(0, 0, 2, 0)}, params);
  EXPECT_EQ(result.delivered, 0u);
}

TEST(Routing, DirectDeliveryWorksOnDirectContact) {
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kDirectDelivery;
  const auto result = simulateRouting(
      lineTrace(), {makeMessage(0, 0, 1, 0)}, params);
  EXPECT_EQ(result.delivered, 1u);
  EXPECT_DOUBLE_EQ(result.meanDelay, 10.0);
  EXPECT_EQ(result.forwards, 1u);
}

TEST(Routing, TtlExpiresMessages) {
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kEpidemic;
  const auto result = simulateRouting(
      lineTrace(), {makeMessage(0, 0, 2, 0, /*ttl=*/25)}, params);
  // Message reaches node 1 at 10, but expires at 25 < 30.
  EXPECT_EQ(result.delivered, 0u);
}

TEST(Routing, SprayAndWaitRespectsCopyBudget) {
  // Star: source 0 meets relays 1..4, then relay 1 meets destination 5.
  ContactTrace t("star", 6);
  for (std::uint32_t r = 1; r <= 4; ++r) {
    t.addContact(makeContact(10 * r, 10 * r + 5, {0, r}));
  }
  t.addContact(makeContact(100, 110, {1, 5}));
  t.sortByStart();
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kSprayAndWait;
  params.sprayCopies = 2;  // binary spray: only the first relay gets a copy
  const auto result =
      simulateRouting(t, {makeMessage(0, 0, 5, 0)}, params);
  EXPECT_EQ(result.delivered, 1u);
  // forwards: one spray to relay 1, one delivery 1->5.
  EXPECT_EQ(result.forwards, 2u);
}

TEST(Routing, SprayAndWaitWaitPhaseIsDirectOnly) {
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kSprayAndWait;
  params.sprayCopies = 1;  // wait phase from the start
  const auto result = simulateRouting(
      lineTrace(), {makeMessage(0, 0, 2, 0)}, params);
  EXPECT_EQ(result.delivered, 0u);  // source never meets destination
}

TEST(Routing, EpidemicMatchesOracleOnSimpleTrace) {
  const auto trace = lineTrace(3);
  std::vector<RoutingMessage> workload{
      makeMessage(0, 0, 2, 0), makeMessage(1, 0, 1, 0),
      makeMessage(2, 1, 2, 0), makeMessage(3, 2, 0, 0)};
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kEpidemic;
  const auto epidemic = simulateRouting(trace, workload, params);
  const auto oracle = oracleRouting(trace, workload);
  // Epidemic is delay-optimal when transmissions are unconstrained.
  EXPECT_EQ(epidemic.delivered, oracle.delivered);
  EXPECT_DOUBLE_EQ(epidemic.meanDelay, oracle.meanDelay);
}

TEST(Routing, OracleMessage3NeverDeliverable) {
  // Message from 2 to 0 cannot flow backward in time on a single-day line.
  const auto oracle =
      oracleRouting(lineTrace(1), {makeMessage(0, 2, 0, 0)});
  EXPECT_EQ(oracle.delivered, 0u);
}

TEST(ProphetTable, EncounterRaisesPredictability) {
  RoutingParams params;
  ProphetTable table(params);
  EXPECT_DOUBLE_EQ(table.predictability(NodeId(1), 0), 0.0);
  table.onEncounter(NodeId(1), 0);
  EXPECT_DOUBLE_EQ(table.predictability(NodeId(1), 0), 0.75);
  table.onEncounter(NodeId(1), 0);
  EXPECT_DOUBLE_EQ(table.predictability(NodeId(1), 0), 0.75 + 0.25 * 0.75);
}

TEST(ProphetTable, PredictabilityAges) {
  RoutingParams params;  // gamma 0.98 per 600 s
  ProphetTable table(params);
  table.onEncounter(NodeId(1), 0);
  const double fresh = table.predictability(NodeId(1), 0);
  const double aged = table.predictability(NodeId(1), 6000);  // 10 units
  EXPECT_NEAR(aged, fresh * std::pow(0.98, 10.0), 1e-12);
  EXPECT_LT(aged, fresh);
}

TEST(ProphetTable, TransitivityPropagates) {
  RoutingParams params;
  ProphetTable a(params), b(params);
  b.onEncounter(NodeId(2), 0);  // b knows destination 2
  a.onEncounter(NodeId(1), 0);  // a knows b (id 1)
  a.onTransitive(NodeId(1), b, 0);
  // P(a,2) = P(a,1) * P(b,2) * beta = 0.75 * 0.75 * 0.25
  EXPECT_NEAR(a.predictability(NodeId(2), 0), 0.75 * 0.75 * 0.25, 1e-12);
}

TEST(Routing, ProphetForwardsTowardFamiliarNodes) {
  // Warm-up day: node 1 repeatedly meets node 2, building predictability.
  // Then a message from 0 to 2 should be handed to 1 when 0 meets 1.
  ContactTrace t("prophet", 3);
  t.addContact(makeContact(100, 110, {1, 2}));
  t.addContact(makeContact(200, 210, {1, 2}));
  t.addContact(makeContact(300, 310, {0, 1}));
  t.addContact(makeContact(400, 410, {1, 2}));
  t.sortByStart();
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kProphet;
  const auto result =
      simulateRouting(t, {makeMessage(0, 0, 2, 250)}, params);
  EXPECT_EQ(result.delivered, 1u);
  EXPECT_DOUBLE_EQ(result.meanDelay, 150.0);  // delivered at 400
}

TEST(Routing, WorkloadGeneratorProperties) {
  Rng rng(3);
  const auto workload = makeUniformWorkload(200, 10, 1000, 500, rng);
  ASSERT_EQ(workload.size(), 200u);
  for (const auto& m : workload) {
    EXPECT_NE(m.source, m.destination);
    EXPECT_LT(m.source.value, 10u);
    EXPECT_LT(m.destination.value, 10u);
    EXPECT_GE(m.createdAt, 0);
    EXPECT_LT(m.createdAt, 1000);
    EXPECT_EQ(m.ttl, 500);
  }
}

// --- summary vectors --------------------------------------------------------

TEST(Routing, SummaryVectorsPreserveCorrectnessAtLowFpRate) {
  RoutingParams plain;
  plain.algorithm = RoutingAlgorithm::kEpidemic;
  RoutingParams summarized = plain;
  summarized.summaryVectorFalsePositiveRate = 1e-9;  // effectively exact
  const auto trace = lineTrace(2);
  std::vector<RoutingMessage> workload{makeMessage(0, 0, 2, 0),
                                       makeMessage(1, 0, 1, 0)};
  const auto a = simulateRouting(trace, workload, plain);
  const auto b = simulateRouting(trace, workload, summarized);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.forwards, b.forwards);
}

TEST(Routing, HighFalsePositiveSummariesLoseMessages) {
  trace::DieselNetParams p;
  p.buses = 16;
  p.routes = 4;
  p.days = 5;
  p.seed = 31;
  const auto trace = trace::generateDieselNet(p);
  Rng rng(8);
  const auto workload =
      makeUniformWorkload(200, 16, 3 * kDay, 2 * kDay, rng);
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kEpidemic;
  const auto exact = simulateRouting(trace, workload, params);
  params.summaryVectorFalsePositiveRate = 0.5;  // absurdly lossy summaries
  const auto lossy = simulateRouting(trace, workload, params);
  EXPECT_LT(lossy.forwards, exact.forwards);
  EXPECT_LE(lossy.deliveryRatio, exact.deliveryRatio);
}

// --- buffer management ------------------------------------------------------

TEST(Routing, BufferCapacityLimitsCarriedMessages) {
  // Source 0 receives 3 messages but can buffer only 2; with drop-oldest,
  // the earliest-created message is evicted and never delivered.
  ContactTrace t("buffered", 2);
  t.addContact(makeContact(100, 110, {0, 1}));
  std::vector<RoutingMessage> workload{
      makeMessage(0, 0, 1, 0),   // oldest: evicted
      makeMessage(1, 0, 1, 10),
      makeMessage(2, 0, 1, 20),
  };
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kEpidemic;
  params.bufferCapacity = 2;
  params.dropPolicy = DropPolicy::kDropOldest;
  const auto result = simulateRouting(t, workload, params);
  EXPECT_EQ(result.delivered, 2u);
}

TEST(Routing, DropYoungestKeepsOldMessages) {
  ContactTrace t("buffered", 2);
  t.addContact(makeContact(100, 110, {0, 1}));
  std::vector<RoutingMessage> workload{
      makeMessage(0, 0, 1, 0),
      makeMessage(1, 0, 1, 10),
      makeMessage(2, 0, 1, 20),  // youngest: rejected at injection
  };
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kEpidemic;
  params.bufferCapacity = 2;
  params.dropPolicy = DropPolicy::kDropYoungest;
  const auto result = simulateRouting(t, workload, params);
  EXPECT_EQ(result.delivered, 2u);
  // Specifically, messages 0 and 1 got through.
  // (Aggregate counts cannot tell them apart; delay does: mean delay over
  // {100-0, 100-10} = 95 vs drop-oldest's {100-10, 100-20} = 85.)
  EXPECT_DOUBLE_EQ(result.meanDelay, 95.0);
}

TEST(Routing, TightBuffersReduceEpidemicDelivery) {
  trace::DieselNetParams p;
  p.buses = 16;
  p.routes = 4;
  p.days = 6;
  p.seed = 21;
  const auto trace = trace::generateDieselNet(p);
  Rng rng(6);
  const auto workload =
      makeUniformWorkload(200, 16, 4 * kDay, 2 * kDay, rng);
  RoutingParams params;
  params.algorithm = RoutingAlgorithm::kEpidemic;
  const auto unbounded = simulateRouting(trace, workload, params);
  params.bufferCapacity = 3;
  const auto tight = simulateRouting(trace, workload, params);
  EXPECT_LT(tight.deliveryRatio, unbounded.deliveryRatio);
  EXPECT_GT(tight.deliveryRatio, 0.0);
}

// Protocol-family ordering on a realistic trace: epidemic >= spray >=
// direct in delivery; direct has the lowest overhead.
TEST(Routing, ProtocolOrderingOnBusTrace) {
  trace::DieselNetParams p;
  p.buses = 16;
  p.routes = 4;
  p.days = 6;
  p.seed = 9;
  const auto trace = trace::generateDieselNet(p);
  Rng rng(4);
  const auto workload =
      makeUniformWorkload(150, 16, 4 * kDay, 2 * kDay, rng);

  auto runWith = [&](RoutingAlgorithm algorithm) {
    RoutingParams params;
    params.algorithm = algorithm;
    return simulateRouting(trace, workload, params);
  };
  const auto epidemic = runWith(RoutingAlgorithm::kEpidemic);
  const auto spray = runWith(RoutingAlgorithm::kSprayAndWait);
  const auto direct = runWith(RoutingAlgorithm::kDirectDelivery);
  const auto oracle = oracleRouting(trace, workload);

  EXPECT_GE(epidemic.deliveryRatio, spray.deliveryRatio);
  EXPECT_GE(spray.deliveryRatio, direct.deliveryRatio);
  EXPECT_GE(oracle.deliveryRatio, epidemic.deliveryRatio - 1e-9);
  EXPECT_GT(epidemic.forwards, spray.forwards);
  if (direct.delivered > 0) {
    EXPECT_LE(direct.overheadRatio, spray.overheadRatio);
  }
}

}  // namespace
}  // namespace hdtn::routing
