#include "src/core/node_pool.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

NodeOptions roleOptions(bool access, bool freeRider, bool forger) {
  NodeOptions options;
  options.internetAccess = access;
  options.freeRider = freeRider;
  options.forger = forger;
  return options;
}

TEST(NodePool, EmplaceInOrderAndIndex) {
  NodePool pool;
  pool.reset(3);
  EXPECT_TRUE(pool.empty());
  for (std::uint32_t i = 0; i < 3; ++i) {
    Node& node = pool.emplace(NodeId(i), roleOptions(false, false, false));
    EXPECT_EQ(node.id().value, i);
  }
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool[NodeId(2)].id().value, 2u);
}

TEST(NodePool, AddressesStableAcrossEmplace) {
  NodePool pool;
  pool.reset(100);
  const Node* first = &pool.emplace(NodeId(0), roleOptions(false, false, false));
  for (std::uint32_t i = 1; i < 100; ++i) {
    pool.emplace(NodeId(i), roleOptions(false, false, false));
  }
  // reset() reserves full capacity up front: hooks capturing raw Node*
  // depend on no reallocation ever happening.
  EXPECT_EQ(first, &pool[NodeId(0)]);
}

TEST(NodePool, RoleViewsMatchOptions) {
  NodePool pool;
  pool.reset(6);
  pool.emplace(NodeId(0), roleOptions(true, false, false));
  pool.emplace(NodeId(1), roleOptions(false, true, false));
  pool.emplace(NodeId(2), roleOptions(false, false, true));
  pool.emplace(NodeId(3), roleOptions(true, false, false));
  pool.emplace(NodeId(4), roleOptions(false, false, false));
  pool.emplace(NodeId(5), roleOptions(false, false, true));

  EXPECT_EQ(pool.accessIds(), (std::vector<NodeId>{NodeId(0), NodeId(3)}));
  EXPECT_EQ(pool.forgerIds(), (std::vector<NodeId>{NodeId(2), NodeId(5)}));
  EXPECT_EQ(pool.freeRiderCount(), 1u);
  EXPECT_TRUE(pool.isAccess(NodeId(0)));
  EXPECT_FALSE(pool.isAccess(NodeId(1)));
  EXPECT_TRUE(pool.isForger(NodeId(5)));
  EXPECT_FALSE(pool.isForger(NodeId(4)));
}

TEST(NodePool, ResetClearsEverything) {
  NodePool pool;
  pool.reset(2);
  pool.emplace(NodeId(0), roleOptions(true, false, false));
  pool.emplace(NodeId(1), roleOptions(false, false, true));
  pool.reset(1);
  EXPECT_TRUE(pool.empty());
  EXPECT_TRUE(pool.accessIds().empty());
  EXPECT_TRUE(pool.forgerIds().empty());
  pool.emplace(NodeId(0), roleOptions(false, false, false));
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_FALSE(pool.isAccess(NodeId(0)));
}

TEST(NodePool, IterationVisitsIdOrder) {
  NodePool pool;
  pool.reset(5);
  for (std::uint32_t i = 0; i < 5; ++i) {
    pool.emplace(NodeId(i), roleOptions(false, false, false));
  }
  std::uint32_t expected = 0;
  for (const Node& node : pool) {
    EXPECT_EQ(node.id().value, expected++);
  }
  EXPECT_EQ(expected, 5u);
}

}  // namespace
}  // namespace hdtn::core
