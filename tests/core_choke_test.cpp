#include "src/core/choke.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace hdtn::core {
namespace {

std::vector<std::uint8_t> samplePlaintext(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  Rng rng(11);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

TEST(Choke, KeyDerivationDeterministicAndDistinct) {
  const PieceKey a = derivePieceKey("secret", "dtn://fox/f1", 0);
  const PieceKey b = derivePieceKey("secret", "dtn://fox/f1", 0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, derivePieceKey("secret", "dtn://fox/f1", 1));
  EXPECT_NE(a, derivePieceKey("secret", "dtn://fox/f2", 0));
  EXPECT_NE(a, derivePieceKey("other", "dtn://fox/f1", 0));
}

TEST(Choke, CryptIsInvolution) {
  const PieceKey key = derivePieceKey("s", "dtn://a/f0", 0);
  const auto plaintext = samplePlaintext(1000);
  const auto ciphertext = cryptPiece(key, plaintext);
  EXPECT_NE(ciphertext, plaintext);
  EXPECT_EQ(cryptPiece(key, ciphertext), plaintext);
}

TEST(Choke, WrongKeyDoesNotDecrypt) {
  const auto plaintext = samplePlaintext(256);
  const auto ciphertext =
      cryptPiece(derivePieceKey("s", "dtn://a/f0", 0), plaintext);
  const auto garbled =
      cryptPiece(derivePieceKey("s", "dtn://a/f0", 1), ciphertext);
  EXPECT_NE(garbled, plaintext);
}

TEST(Choke, EmptyPayload) {
  const PieceKey key = derivePieceKey("s", "u", 0);
  EXPECT_TRUE(cryptPiece(key, {}).empty());
}

TEST(KeyEscrow, ReleasesKeyOnlyAboveThreshold) {
  KeyEscrow escrow("sender-secret", /*minimumCredit=*/5.0);
  CreditLedger ledger;
  ledger.addCredit(NodeId(1), 10.0);  // contributor
  ledger.addCredit(NodeId(2), 0.5);   // free-rider
  EXPECT_TRUE(
      escrow.requestKey(NodeId(1), ledger, "dtn://a/f0", 0).has_value());
  EXPECT_FALSE(
      escrow.requestKey(NodeId(2), ledger, "dtn://a/f0", 0).has_value());
  EXPECT_FALSE(
      escrow.requestKey(NodeId(3), ledger, "dtn://a/f0", 0).has_value());
}

TEST(KeyEscrow, ExactThresholdReleases) {
  KeyEscrow escrow("s", 5.0);
  CreditLedger ledger;
  ledger.onReceivedRequested(NodeId(1));  // exactly +5
  EXPECT_TRUE(escrow.requestKey(NodeId(1), ledger, "u", 0).has_value());
}

TEST(KeyEscrow, ReleasedKeyDecryptsBroadcast) {
  KeyEscrow escrow("sender-secret", 1.0);
  CreditLedger ledger;
  ledger.addCredit(NodeId(1), 2.0);
  const auto plaintext = samplePlaintext(512);
  const auto ciphertext = escrow.encrypt("dtn://a/f0", 3, plaintext);
  const auto key = escrow.requestKey(NodeId(1), ledger, "dtn://a/f0", 3);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(cryptPiece(*key, ciphertext), plaintext);
}

TEST(CipherVault, DecryptsWhenBothPartsPresent) {
  KeyEscrow escrow("secret", 0.0);
  CreditLedger ledger;
  const auto plaintext = samplePlaintext(128);
  const auto ciphertext = escrow.encrypt("dtn://a/f1", 2, plaintext);

  CipherVault vault;
  EXPECT_FALSE(vault.tryDecrypt("dtn://a/f1", 2).has_value());
  vault.storeCiphertext("dtn://a/f1", 2, ciphertext);
  EXPECT_FALSE(vault.tryDecrypt("dtn://a/f1", 2).has_value());  // no key yet
  EXPECT_EQ(vault.pendingCiphertexts(), 1u);

  vault.storeKey("dtn://a/f1", 2,
                 *escrow.requestKey(NodeId(1), ledger, "dtn://a/f1", 2));
  const auto decrypted = vault.tryDecrypt("dtn://a/f1", 2);
  ASSERT_TRUE(decrypted.has_value());
  EXPECT_EQ(*decrypted, plaintext);
  // Consumed.
  EXPECT_EQ(vault.pendingCiphertexts(), 0u);
  EXPECT_EQ(vault.heldKeys(), 0u);
  EXPECT_FALSE(vault.tryDecrypt("dtn://a/f1", 2).has_value());
}

TEST(CipherVault, SlotsAreIndependent) {
  CipherVault vault;
  vault.storeCiphertext("dtn://a/f1", 0, {1, 2, 3});
  vault.storeKey("dtn://a/f1", 1, derivePieceKey("s", "dtn://a/f1", 1));
  EXPECT_FALSE(vault.tryDecrypt("dtn://a/f1", 0).has_value());
  EXPECT_FALSE(vault.tryDecrypt("dtn://a/f1", 1).has_value());
  EXPECT_EQ(vault.pendingCiphertexts(), 1u);
  EXPECT_EQ(vault.heldKeys(), 1u);
}

// End-to-end choking story: a free-rider overhears every broadcast but can
// decrypt nothing until it contributes.
TEST(Choke, FreeRiderStarvedUntilContributing) {
  KeyEscrow escrow("sender", 5.0);
  CreditLedger senderLedger;  // sender's view of peers
  const auto piece0 = samplePlaintext(64);
  const auto piece1 = samplePlaintext(64);

  CipherVault freeRider;
  freeRider.storeCiphertext("dtn://a/f1", 0,
                            escrow.encrypt("dtn://a/f1", 0, piece0));
  freeRider.storeCiphertext("dtn://a/f1", 1,
                            escrow.encrypt("dtn://a/f1", 1, piece1));
  // No contribution -> no keys -> nothing readable.
  EXPECT_FALSE(escrow.requestKey(NodeId(9), senderLedger, "dtn://a/f1", 0)
                   .has_value());
  EXPECT_EQ(freeRider.pendingCiphertexts(), 2u);

  // The node starts serving the sender's requests; credit accrues.
  senderLedger.onReceivedRequested(NodeId(9));
  auto key0 = escrow.requestKey(NodeId(9), senderLedger, "dtn://a/f1", 0);
  ASSERT_TRUE(key0.has_value());
  freeRider.storeKey("dtn://a/f1", 0, *key0);
  EXPECT_EQ(freeRider.tryDecrypt("dtn://a/f1", 0), piece0);
}

}  // namespace
}  // namespace hdtn::core
