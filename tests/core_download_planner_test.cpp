// Golden-file lock on the download planners: the cooperative, tit-for-tat,
// popularity-only, and pairwise plans over fixed randomized fixtures are
// dumped to text and compared byte-for-byte against checked-in goldens.
// The goldens were captured from the pre-DownloadPlanner free functions, so
// any refactoring of the planner internals (the pluggable-planner registry,
// the span-backed requester lists) must reproduce the exact same plans.
//
// Regenerate after an INTENTIONAL behaviour change with:
//   HDTN_UPDATE_GOLDEN=1 ./build/tests/hdtn_tests
//       --gtest_filter='DownloadPlanGolden.*'   (one command line)
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/credit.hpp"
#include "src/core/download.hpp"
#include "src/core/piece_store.hpp"
#include "src/util/random.hpp"

namespace hdtn::core {
namespace {

// Deterministic planner fixture. `wantedStorage` is populated completely
// before any peer views it, so DownloadPeer::wanted can be either an owning
// vector (legacy) or a span over this storage without the test changing.
struct Fixture {
  std::vector<PieceStore> stores;
  std::vector<CreditLedger> ledgers;
  std::vector<std::vector<FileId>> wantedStorage;
  std::vector<DownloadPeer> peers;
  std::map<FileId, double> popularity;

  Fixture(std::uint64_t seed, std::size_t members, int files,
          std::uint32_t maxPieces) {
    Rng rng(seed);
    std::vector<std::uint32_t> pieceCounts;
    for (int f = 0; f < files; ++f) {
      pieceCounts.push_back(
          1 + static_cast<std::uint32_t>(rng.pickIndex(maxPieces)));
      popularity[FileId(static_cast<std::uint32_t>(f))] = rng.uniform();
    }
    stores.resize(members);
    ledgers.resize(members);
    wantedStorage.resize(members);
    for (std::size_t i = 0; i < members; ++i) {
      for (int f = 0; f < files; ++f) {
        const FileId file(static_cast<std::uint32_t>(f));
        if (rng.chance(0.5)) {
          stores[i].registerFile(file, pieceCounts[f]);
          for (std::uint32_t p = 0; p < pieceCounts[f]; ++p) {
            if (rng.chance(0.6)) stores[i].addPiece(file, p);
          }
        }
        if (rng.chance(0.35)) wantedStorage[i].push_back(file);
      }
      for (std::size_t p = 0; p < members; ++p) {
        ledgers[i].addCredit(NodeId(static_cast<std::uint32_t>(p)),
                             rng.uniform(0.0, 5.0));
      }
    }
    for (std::size_t i = 0; i < members; ++i) {
      DownloadPeer peer;
      peer.id = NodeId(static_cast<std::uint32_t>(i));
      peer.pieces = &stores[i];
      peer.wanted = wantedStorage[i];
      peer.credits = &ledgers[i];
      peer.contributes = rng.chance(0.85);
      peers.push_back(std::move(peer));
    }
  }

  [[nodiscard]] PopularityFn popularityFn() const {
    return [this](FileId f) {
      const auto it = popularity.find(f);
      return it == popularity.end() ? 0.0 : it->second;
    };
  }
};

// Plan dumps are templated on the plan type so the same test covers the
// legacy vector-of-broadcasts and the arena-backed DownloadPlan.
template <typename Plan>
std::string dumpBroadcastPlan(const Plan& plan) {
  std::ostringstream out;
  for (const PieceBroadcast& b : plan) {
    out << "broadcast sender=" << b.sender.value << " file=" << b.file.value
        << " piece=" << b.piece << " phase=" << b.phase << " requesters=[";
    bool first = true;
    for (NodeId r : b.requesters) {
      if (!first) out << ",";
      out << r.value;
      first = false;
    }
    out << "]\n";
  }
  return out.str();
}

template <typename Plan>
std::string dumpTransferPlan(const Plan& plan) {
  std::ostringstream out;
  for (const PieceTransfer& t : plan) {
    out << "transfer sender=" << t.sender.value
        << " receiver=" << t.receiver.value << " file=" << t.file.value
        << " piece=" << t.piece << " requested=" << (t.requested ? 1 : 0)
        << "\n";
  }
  return out.str();
}

struct FixtureSpec {
  std::uint64_t seed;
  std::size_t members;
  int files;
  std::uint32_t maxPieces;
};

constexpr FixtureSpec kFixtures[] = {
    {101, 5, 8, 3}, {202, 8, 12, 1}, {303, 3, 5, 4}, {404, 9, 20, 2}};
constexpr int kBudgets[] = {1, 5, 32};

std::string goldenPath(const std::string& name) {
  return std::string(HDTN_GOLDEN_DIR) + "/" + name + ".txt";
}

void compareOrUpdate(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  if (std::getenv("HDTN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with HDTN_UPDATE_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str()) << "plan drifted from golden " << path;
}

std::string broadcastGolden(Scheduling scheduling, PushOrder order) {
  std::ostringstream out;
  for (const FixtureSpec& spec : kFixtures) {
    for (int budget : kBudgets) {
      Fixture fx(spec.seed, spec.members, spec.files, spec.maxPieces);
      out << "# fixture seed=" << spec.seed << " budget=" << budget << "\n";
      out << dumpBroadcastPlan(planDownload(fx.peers, fx.popularityFn(),
                                            budget, scheduling, order));
    }
  }
  return out.str();
}

TEST(DownloadPlanGolden, Cooperative) {
  compareOrUpdate("download_coop",
                  broadcastGolden(Scheduling::kCooperative,
                                  PushOrder::kPopularity));
}

TEST(DownloadPlanGolden, CooperativeRarestFirst) {
  compareOrUpdate("download_coop_rarest",
                  broadcastGolden(Scheduling::kCooperative,
                                  PushOrder::kRarestFirst));
}

TEST(DownloadPlanGolden, TitForTat) {
  compareOrUpdate("download_tft",
                  broadcastGolden(Scheduling::kTitForTat,
                                  PushOrder::kPopularity));
}

TEST(DownloadPlanGolden, PopularityOnly) {
  compareOrUpdate("download_popularity",
                  broadcastGolden(Scheduling::kPopularityOnly,
                                  PushOrder::kPopularity));
}

TEST(DownloadPlanGolden, Pairwise) {
  std::ostringstream out;
  for (const FixtureSpec& spec : kFixtures) {
    for (int budget : kBudgets) {
      Fixture fx(spec.seed, spec.members, spec.files, spec.maxPieces);
      out << "# fixture seed=" << spec.seed << " budget=" << budget << "\n";
      out << dumpTransferPlan(
          planPairwiseDownload(fx.peers, fx.popularityFn(), budget));
    }
  }
  compareOrUpdate("download_pairwise", out.str());
}

}  // namespace
}  // namespace hdtn::core
