// Crash-tolerant sweep supervision: subprocess execution under a timeout,
// the completed-point journal (including tolerance of half-written lines),
// RESULT-line round-trips, retry-with-resume after a mid-run SIGKILL, and
// runWithCheckpoints producing the same result as an uninterrupted run.
#include "bench/supervisor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/trace/nus.hpp"
#include "src/util/serialize.hpp"

namespace hdtn::bench {
namespace {

namespace fs = std::filesystem;

std::string tempPath(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

struct TempFile {
  explicit TempFile(const std::string& name) : path(tempPath(name)) {
    std::error_code ec;
    fs::remove(path, ec);
  }
  ~TempFile() {
    std::error_code ec;
    fs::remove(path, ec);
  }
  std::string path;
};

TEST(RunSubprocessTest, CapturesStdoutAndExitCode) {
  const SubprocessResult run =
      runSubprocess({"/bin/sh", "-c", "echo hello; exit 0"}, 10.0);
  EXPECT_EQ(run.exitCode, 0);
  EXPECT_FALSE(run.timedOut);
  EXPECT_FALSE(run.signaled);
  EXPECT_EQ(run.output, "hello\n");
}

TEST(RunSubprocessTest, ReportsNonZeroExit) {
  const SubprocessResult run =
      runSubprocess({"/bin/sh", "-c", "exit 3"}, 10.0);
  EXPECT_EQ(run.exitCode, 3);
  EXPECT_FALSE(run.timedOut);
}

TEST(RunSubprocessTest, KillsAChildPastTheDeadline) {
  const auto start = std::chrono::steady_clock::now();
  const SubprocessResult run =
      runSubprocess({"/bin/sh", "-c", "sleep 30"}, 0.3);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_TRUE(run.timedOut);
  EXPECT_TRUE(run.signaled);
  EXPECT_EQ(run.exitCode, -1);
  EXPECT_LT(elapsed, 10.0);
}

TEST(RunSubprocessTest, ReportsASignaledChild) {
  const SubprocessResult run =
      runSubprocess({"/bin/sh", "-c", "kill -9 $$"}, 10.0);
  EXPECT_TRUE(run.signaled);
  EXPECT_FALSE(run.timedOut);
  EXPECT_EQ(run.exitCode, -1);
}

TEST(RunSubprocessTest, DrainsOutputLargerThanThePipeBuffer) {
  // 1 MiB of output would deadlock a parent that reads only after waitpid.
  const SubprocessResult run = runSubprocess(
      {"/bin/sh", "-c", "i=0; while [ $i -lt 16384 ]; do"
                        " echo 0123456789012345678901234567890123456789012345678901234567890123;"
                        " i=$((i+1)); done"},
      30.0);
  EXPECT_EQ(run.exitCode, 0);
  EXPECT_EQ(run.output.size(), 16384u * 65u);
}

TEST(ResultLineTest, RoundTripsThroughFormatAndParse) {
  const std::vector<double> values = {0.123456789012345678, 2.0, -7.5e-12};
  const std::string line = formatResultLine("fig2a:3:1:2", values);
  EXPECT_EQ(line.substr(0, 19), "RESULT fig2a:3:1:2 ");
  std::vector<double> parsed;
  ASSERT_TRUE(parseResultLine("noise\n" + line + "trailing\n",
                              "fig2a:3:1:2", &parsed));
  EXPECT_EQ(parsed, values);
}

TEST(ResultLineTest, IgnoresOtherKeysAndMalformedLines) {
  std::vector<double> parsed;
  EXPECT_FALSE(parseResultLine("RESULT other:0:0:1 1 2\n", "fig:0:0:1",
                               &parsed));
  EXPECT_FALSE(parseResultLine("RESULT fig:0:0:1 \n", "fig:0:0:1", &parsed));
  EXPECT_FALSE(parseResultLine("", "fig:0:0:1", &parsed));
}

TEST(SweepJournalTest, RoundTripsAndSkipsHalfWrittenLines) {
  TempFile file("hdtn_supervisor_journal_test.jsonl");
  {
    SweepJournal journal(file.path);
    journal.load();
    EXPECT_EQ(journal.size(), 0u);
    journal.record("a:0:0:1", {1.5, 2.5});
    journal.record("a:0:1:1", {0.25});
  }
  // A supervisor crash mid-append leaves a torn trailing line; it must not
  // poison the rest of the journal.
  {
    std::ofstream out(file.path, std::ios::app);
    out << "{\"point\":\"a:1:0:1\",\"values\":[0.7";
  }
  SweepJournal reloaded(file.path);
  reloaded.load();
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.contains("a:0:0:1"));
  EXPECT_FALSE(reloaded.contains("a:1:0:1"));
  ASSERT_NE(reloaded.values("a:0:0:1"), nullptr);
  EXPECT_EQ(*reloaded.values("a:0:0:1"), (std::vector<double>{1.5, 2.5}));
  EXPECT_EQ(*reloaded.values("a:0:1:1"), (std::vector<double>{0.25}));
}

TEST(SweepJournalTest, MissingFileIsAnEmptyJournal) {
  SweepJournal journal(tempPath("hdtn_supervisor_no_such_journal.jsonl"));
  journal.load();
  EXPECT_EQ(journal.size(), 0u);
  EXPECT_EQ(journal.values("anything"), nullptr);
}

SupervisorOptions fastOptions(const std::string& journalPath) {
  SupervisorOptions options;
  options.journalPath = journalPath;
  options.pointTimeoutSeconds = 10.0;
  options.maxAttempts = 3;
  options.backoffBaseSeconds = 0.01;
  return options;
}

TEST(SuperviseOnePointTest, JournalHitRunsNothing) {
  TempFile file("hdtn_supervisor_hit_test.jsonl");
  SweepJournal journal(file.path);
  journal.load();
  journal.record("p:0:0:1", {4.0, 5.0});
  std::string error;
  // /bin/false as the child: if the supervisor ran it, the point would fail.
  const auto values =
      superviseOnePoint(fastOptions(file.path), journal, "p:0:0:1",
                        {"/bin/false"}, "", &error);
  ASSERT_TRUE(values.has_value());
  EXPECT_EQ(*values, (std::vector<double>{4.0, 5.0}));
}

TEST(SuperviseOnePointTest, RecoversACrashedPointWithinTheRetryBudget) {
  TempFile journalFile("hdtn_supervisor_retry_test.jsonl");
  TempFile marker("hdtn_supervisor_retry_marker");
  SweepJournal journal(journalFile.path);
  journal.load();
  // First attempt: no marker → create it and die to SIGKILL mid-"run".
  // Second attempt: marker present → print the RESULT line and succeed.
  const std::string script = "if [ ! -f '" + marker.path + "' ]; then "
                             "touch '" + marker.path + "'; kill -9 $$; fi; "
                             "echo 'RESULT p:1:2:3 0.5 0.25'";
  std::string error;
  const auto values =
      superviseOnePoint(fastOptions(journalFile.path), journal, "p:1:2:3",
                        {"/bin/sh", "-c", script}, "", &error);
  ASSERT_TRUE(values.has_value()) << error;
  EXPECT_EQ(*values, (std::vector<double>{0.5, 0.25}));
  // Success is journaled, so a re-supervised point skips the child entirely.
  EXPECT_TRUE(journal.contains("p:1:2:3"));
}

TEST(SuperviseOnePointTest, ExhaustsTheAttemptBudgetAndReportsWhy) {
  TempFile journalFile("hdtn_supervisor_budget_test.jsonl");
  SweepJournal journal(journalFile.path);
  journal.load();
  SupervisorOptions options = fastOptions(journalFile.path);
  options.maxAttempts = 2;
  std::string error;
  const auto values = superviseOnePoint(options, journal, "p:0:0:1",
                                        {"/bin/false"}, "", &error);
  EXPECT_FALSE(values.has_value());
  EXPECT_NE(error.find("p:0:0:1"), std::string::npos);
  EXPECT_NE(error.find("2 attempt(s)"), std::string::npos);
  EXPECT_NE(error.find("exit code 1"), std::string::npos);
  EXPECT_FALSE(journal.contains("p:0:0:1"));
}

TEST(SuperviseOnePointTest, DeletesTheCheckpointBeforeTheFinalAttempt) {
  TempFile journalFile("hdtn_supervisor_ckpt_test.jsonl");
  TempFile checkpoint("hdtn_supervisor_ckpt_test.ckpt");
  {
    std::ofstream out(checkpoint.path);
    out << "pretend checkpoint";
  }
  SweepJournal journal(journalFile.path);
  journal.load();
  SupervisorOptions options = fastOptions(journalFile.path);
  options.maxAttempts = 2;
  // The child succeeds only once the checkpoint is gone — exactly the
  // corrupt-checkpoint-keeps-crashing-the-child situation.
  const std::string script = "if [ -f '" + checkpoint.path + "' ]; then "
                             "exit 9; fi; echo 'RESULT p:0:0:2 1'";
  std::string error;
  const auto values =
      superviseOnePoint(options, journal, "p:0:0:2",
                        {"/bin/sh", "-c", script}, checkpoint.path, &error);
  ASSERT_TRUE(values.has_value()) << error;
  EXPECT_EQ(*values, (std::vector<double>{1.0}));
}

core::EngineParams smallParams() {
  core::EngineParams params;
  params.protocol.kind = core::ProtocolKind::kMbtQm;
  params.internetAccessFraction = 0.3;
  params.newFilesPerDay = 10;
  params.fileTtlDays = 2;
  params.seed = 33;
  params.frequentContactPeriod = kDay;
  params.faults.messageLossRate = 0.1;
  return params;
}

trace::ContactTrace smallTrace() {
  trace::NusParams p;
  p.students = 30;
  p.courses = 6;
  p.coursesPerStudent = 2;
  p.days = 3;
  p.seed = 7;
  return trace::generateNus(p);
}

TEST(RunWithCheckpointsTest, MatchesAnUninterruptedRun) {
  TempFile checkpoint("hdtn_runwithckpt_plain.ckpt");
  const trace::ContactTrace trace = smallTrace();
  const core::EngineParams params = smallParams();
  const core::EngineResult plain = core::runSimulation(trace, params);
  const core::EngineResult checkpointed =
      runWithCheckpoints(trace, params, checkpoint.path, 6 * kHour);
  EXPECT_EQ(plain.delivery.queries, checkpointed.delivery.queries);
  EXPECT_EQ(plain.delivery.filesDelivered,
            checkpointed.delivery.filesDelivered);
  EXPECT_EQ(plain.delivery.fileRatio, checkpointed.delivery.fileRatio);
  EXPECT_EQ(plain.delivery.meanFileDelaySeconds,
            checkpointed.delivery.meanFileDelaySeconds);
  // The final checkpoint is left behind for the supervisor to clean up.
  EXPECT_TRUE(fs::exists(checkpoint.path));
}

TEST(RunWithCheckpointsTest, ResumesFromTheCheckpointLeftByAKilledRun) {
  TempFile checkpoint("hdtn_runwithckpt_resume.ckpt");
  const trace::ContactTrace trace = smallTrace();
  const core::EngineParams params = smallParams();
  const core::EngineResult plain = core::runSimulation(trace, params);
  // Simulate the first attempt dying mid-run: run only to the second
  // checkpoint boundary and save, exactly as the loop in runWithCheckpoints
  // would have before a SIGKILL.
  {
    core::Engine engine(trace, params);
    engine.runUntil(6 * kHour);
    engine.runUntil(12 * kHour);
    Serializer extra;
    extra.i64(18 * kHour);
    engine.saveCheckpoint(checkpoint.path, extra.bytes());
  }
  const core::EngineResult resumed =
      runWithCheckpoints(trace, params, checkpoint.path, 6 * kHour);
  EXPECT_EQ(plain.delivery.queries, resumed.delivery.queries);
  EXPECT_EQ(plain.delivery.filesDelivered, resumed.delivery.filesDelivered);
  EXPECT_EQ(plain.delivery.fileRatio, resumed.delivery.fileRatio);
  EXPECT_EQ(plain.delivery.metadataRatio, resumed.delivery.metadataRatio);
  EXPECT_EQ(plain.delivery.meanFileDelaySeconds,
            resumed.delivery.meanFileDelaySeconds);
  EXPECT_EQ(plain.totals.metadataReceptions, resumed.totals.metadataReceptions);
  EXPECT_EQ(plain.totals.pieceReceptions, resumed.totals.pieceReceptions);
}

TEST(RunWithCheckpointsTest, DeletesAnUnreadableCheckpointAndStartsCold) {
  TempFile checkpoint("hdtn_runwithckpt_corrupt.ckpt");
  {
    std::ofstream out(checkpoint.path);
    out << "this is not a checkpoint";
  }
  const trace::ContactTrace trace = smallTrace();
  const core::EngineParams params = smallParams();
  const core::EngineResult plain = core::runSimulation(trace, params);
  const core::EngineResult recovered =
      runWithCheckpoints(trace, params, checkpoint.path, 6 * kHour);
  EXPECT_EQ(plain.delivery.fileRatio, recovered.delivery.fileRatio);
  EXPECT_EQ(plain.delivery.queries, recovered.delivery.queries);
}

TEST(RunWithCheckpointsTest, EmptyPathRunsWithoutCheckpointing) {
  const trace::ContactTrace trace = smallTrace();
  const core::EngineParams params = smallParams();
  const core::EngineResult plain = core::runSimulation(trace, params);
  const core::EngineResult bare =
      runWithCheckpoints(trace, params, "", 6 * kHour);
  EXPECT_EQ(plain.delivery.fileRatio, bare.delivery.fileRatio);
  EXPECT_EQ(plain.delivery.queries, bare.delivery.queries);
}

}  // namespace
}  // namespace hdtn::bench
