// Self-healing layer: RecoveryParams validation, RecoverySession budget
// arithmetic, RecoveryState bookkeeping, SummaryVector key semantics, and
// the engine-level guarantees — disabled recovery is byte-identical to the
// pre-recovery engine, enabled recovery strictly improves lossy delivery,
// failover fires under clique churn, and bounded metadata stores degrade
// gracefully instead of wedging.
#include "src/core/recovery.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/core/engine.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/events.hpp"
#include "src/trace/nus.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {
namespace {

trace::ContactTrace smallNusTrace(std::uint64_t seed = 3) {
  trace::NusParams p;
  p.students = 40;
  p.courses = 8;
  p.coursesPerStudent = 2;
  p.days = 5;
  p.attendanceRate = 0.9;
  p.seed = seed;
  return trace::generateNus(p);
}

EngineParams baseParams() {
  EngineParams params;
  params.protocol.kind = ProtocolKind::kMbtQm;
  params.internetAccessFraction = 0.3;
  params.newFilesPerDay = 20;
  params.fileTtlDays = 2;
  params.seed = 7;
  params.frequentContactPeriod = kDay;
  return params;
}

RecoveryParams fullRecovery() {
  RecoveryParams recovery;
  recovery.maxRetries = 2;
  recovery.retransmitBudget = 16;
  recovery.repairPerContact = 4;
  recovery.coordinatorFailover = true;
  return recovery;
}

// --- params ----------------------------------------------------------------

TEST(RecoveryParams, DefaultsAreDisabledAndValid) {
  RecoveryParams recovery;
  EXPECT_FALSE(recovery.enabled());
  EXPECT_TRUE(recovery.validate().empty());
}

TEST(RecoveryParams, AnyMechanismEnables) {
  RecoveryParams retries;
  retries.maxRetries = 1;
  EXPECT_TRUE(retries.enabled());
  RecoveryParams repair;
  repair.repairPerContact = 1;
  EXPECT_TRUE(repair.enabled());
  RecoveryParams failover;
  failover.coordinatorFailover = true;
  EXPECT_TRUE(failover.enabled());
}

TEST(RecoveryParams, ValidateCatchesEachViolation) {
  RecoveryParams recovery;
  recovery.maxRetries = -1;
  recovery.repairPerContact = -2;
  recovery.repairQueueLimit = 0;
  EXPECT_EQ(recovery.validate().size(), 3u);
  RecoveryParams budget;
  budget.maxRetries = 1;
  budget.retransmitBudget = 0;
  EXPECT_EQ(budget.validate().size(), 1u);
}

TEST(RecoveryParams, EngineValidatePrefixesRecoveryErrors) {
  auto params = baseParams();
  params.recovery.maxRetries = -3;
  const auto errors = params.validate();
  ASSERT_FALSE(errors.empty());
  bool found = false;
  for (const std::string& error : errors) {
    if (error.rfind("recovery.", 0) == 0) found = true;
  }
  EXPECT_TRUE(found);
}

// --- session ---------------------------------------------------------------

TEST(RecoverySession, AttemptCostDoublesAndSaturates) {
  EXPECT_EQ(RecoverySession::attemptCost(0), 1);
  EXPECT_EQ(RecoverySession::attemptCost(1), 2);
  EXPECT_EQ(RecoverySession::attemptCost(2), 4);
  EXPECT_EQ(RecoverySession::attemptCost(3), 8);
  EXPECT_EQ(RecoverySession::attemptCost(9), 8);  // capped backoff
}

TEST(RecoverySession, FifoReplayChargesBudget) {
  RecoverySession session(2, 3);
  session.noteLoss({NodeId(1), NodeId(2), FileId(10)});
  session.noteLoss({NodeId(1), NodeId(3), FileId(11), 0, true});
  session.noteLoss({NodeId(1), NodeId(4), FileId(12)});
  const auto first = session.nextRetry();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->receiver, NodeId(2));
  EXPECT_EQ(session.budgetLeft(), 2);
  const auto second = session.nextRetry();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->receiver, NodeId(3));
  EXPECT_TRUE(second->requested);
  const auto third = session.nextRetry();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(session.budgetLeft(), 0);
  EXPECT_FALSE(session.nextRetry().has_value());
}

TEST(RecoverySession, UnaffordableHeadStopsReplay) {
  RecoverySession session(5, 3);
  LostFrame expensive{NodeId(1), NodeId(2), FileId(10)};
  expensive.attempts = 2;  // costs 4 slots
  session.noteLoss(expensive);
  EXPECT_FALSE(session.nextRetry().has_value());
  // The frame stays queued for the cross-contact spill.
  EXPECT_EQ(session.drainRemaining().size(), 1u);
  EXPECT_EQ(session.queued(), 0u);
}

TEST(RecoverySession, RequeueDropsExhaustedFrames) {
  RecoverySession session(2, 100);
  LostFrame frame{NodeId(1), NodeId(2), FileId(10)};
  frame.attempts = 1;
  session.requeue(frame);
  EXPECT_EQ(session.queued(), 1u);
  frame.attempts = 2;  // == maxRetries: spent
  session.requeue(frame);
  EXPECT_EQ(session.queued(), 1u);
}

TEST(RecoverySession, DisabledRetriesIgnoreLosses) {
  RecoverySession session(0, 100);
  session.noteLoss({NodeId(1), NodeId(2), FileId(10)});
  EXPECT_EQ(session.queued(), 0u);
  EXPECT_FALSE(session.nextRetry().has_value());
}

// --- cross-contact state ---------------------------------------------------

TEST(RecoveryState, TakePendingFiltersBySenderAndReceiver) {
  RecoveryState state(8);
  state.addPending({NodeId(1), NodeId(2), FileId(10)});
  state.addPending({NodeId(1), NodeId(3), FileId(11)});
  state.addPending({NodeId(1), NodeId(2), FileId(12), 4});
  state.addPending({NodeId(5), NodeId(2), FileId(13)});
  EXPECT_EQ(state.pendingCount(), 4u);
  EXPECT_TRUE(state.hasPending(NodeId(1)));
  const auto taken = state.takePending(NodeId(1), NodeId(2));
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].file, FileId(10));
  EXPECT_EQ(taken[1].file, FileId(12));
  EXPECT_EQ(taken[1].piece, 4u);
  EXPECT_EQ(state.pendingCount(), 2u);
  // Untouched pairs remain.
  EXPECT_TRUE(state.hasPending(NodeId(1)));
  EXPECT_TRUE(state.hasPending(NodeId(5)));
  EXPECT_TRUE(state.takePending(NodeId(1), NodeId(2)).empty());
}

TEST(RecoveryState, AttemptsResetAndOldestShedsAtCap) {
  RecoveryState state(2);
  LostFrame frame{NodeId(1), NodeId(2), FileId(10)};
  frame.attempts = 5;
  state.addPending(frame);
  state.addPending({NodeId(1), NodeId(2), FileId(11)});
  state.addPending({NodeId(1), NodeId(2), FileId(12)});  // sheds FileId(10)
  const auto taken = state.takePending(NodeId(1), NodeId(2));
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_EQ(taken[0].file, FileId(11));
  EXPECT_EQ(taken[1].file, FileId(12));
  EXPECT_EQ(taken[0].attempts, 0);  // retries restart across contacts
  EXPECT_FALSE(state.hasPending(NodeId(1)));
}

TEST(RecoveryState, SaveLoadRoundTripsExactly) {
  RecoveryState state(8);
  state.addPending({NodeId(3), NodeId(2), FileId(10), 7, true});
  state.addPending({NodeId(1), NodeId(4), FileId(11)});
  Serializer out;
  state.saveState(out);
  RecoveryState restored(8);
  Deserializer in(out.bytes());
  restored.loadState(in);
  EXPECT_EQ(restored.pendingCount(), 2u);
  const auto taken = restored.takePending(NodeId(3), NodeId(2));
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].file, FileId(10));
  EXPECT_EQ(taken[0].piece, 7u);
  EXPECT_TRUE(taken[0].requested);
  // Canonical bytes: saving the restored state reproduces the original.
  Serializer again;
  RecoveryState copy(8);
  Deserializer in2(out.bytes());
  copy.loadState(in2);
  copy.saveState(again);
  EXPECT_EQ(out.bytes(), again.bytes());
}

// --- summary vector --------------------------------------------------------

TEST(SummaryVector, NoFalseNegativesAndDistinctKeySpaces) {
  SummaryVector summary(64);
  for (std::uint32_t f = 0; f < 32; ++f) {
    summary.insert(SummaryVector::metadataKey(FileId(f)));
    summary.insert(SummaryVector::pieceKey(FileId(f), f % 4));
  }
  for (std::uint32_t f = 0; f < 32; ++f) {
    EXPECT_TRUE(summary.mayContain(SummaryVector::metadataKey(FileId(f))));
    EXPECT_TRUE(summary.mayContain(SummaryVector::pieceKey(FileId(f), f % 4)));
  }
  // Metadata and piece keys for the same file never collide; nor do the
  // pieces of a file with its neighbors.
  EXPECT_NE(SummaryVector::metadataKey(FileId(7)),
            SummaryVector::pieceKey(FileId(7), 0));
  EXPECT_NE(SummaryVector::pieceKey(FileId(7), 0),
            SummaryVector::pieceKey(FileId(7), 1));
  EXPECT_NE(SummaryVector::pieceKey(FileId(7), 1),
            SummaryVector::pieceKey(FileId(8), 1));
}

// --- engine wiring ---------------------------------------------------------

TEST(EngineRecovery, DisabledRecoveryBuildsNoState) {
  const auto trace = smallNusTrace();
  Engine engine(trace, baseParams());
  EXPECT_EQ(engine.recoveryState(), nullptr);
}

std::string eventStream(const trace::ContactTrace& trace,
                        const EngineParams& params, int mode = 0) {
  std::ostringstream out;
  obs::JsonlEventSink sink(out);
  Engine engine(trace, params);
  engine.setObserver(&sink);
  if (mode == 0) {
    engine.run();
  } else if (mode == 1) {
    while (engine.step()) {
    }
    engine.finish();
  } else {
    for (SimTime t = 0; t < engine.endTime(); t += 6 * kHour) {
      engine.runUntil(t);
    }
    engine.finish();
  }
  return out.str();
}

TEST(EngineRecovery, DisabledRecoveryIsByteIdenticalUnderFaults) {
  // The whole point of the null path: an explicitly default-initialized
  // RecoveryParams must not perturb a faulty run in any way.
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.messageLossRate = 0.2;
  params.faults.contactTruncationRate = 0.2;
  params.faults.pieceCorruptionRate = 0.1;
  params.faults.churnDownFraction = 0.1;
  const std::string baseline = eventStream(trace, params);
  params.recovery = RecoveryParams{};
  const std::string withStruct = eventStream(trace, params);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, withStruct);
}

TEST(EngineRecovery, EventStreamIdenticalAcrossDriveModes) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.messageLossRate = 0.3;
  params.faults.churnDownFraction = 0.15;
  params.recovery = fullRecovery();
  const std::string viaRun = eventStream(trace, params, 0);
  const std::string viaStep = eventStream(trace, params, 1);
  const std::string viaSlices = eventStream(trace, params, 2);
  ASSERT_FALSE(viaRun.empty());
  EXPECT_EQ(viaRun, viaStep);
  EXPECT_EQ(viaRun, viaSlices);
  EXPECT_NE(viaRun.find("\"retransmit\""), std::string::npos);
}

TEST(EngineRecovery, RetransmissionImprovesLossyDelivery) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.messageLossRate = 0.3;
  const auto lossy = runSimulation(trace, params);
  params.recovery = fullRecovery();
  const auto recovered = runSimulation(trace, params);
  EXPECT_GT(recovered.delivery.fileRatio, lossy.delivery.fileRatio);
  EXPECT_GT(recovered.totals.recoveryRetransmits, 0u);
  EXPECT_GT(recovered.totals.recoveryRedeliveries, 0u);
}

TEST(EngineRecovery, RetransmitsCoverLossesWithAmpleBudget) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.messageLossRate = 0.3;
  params.recovery.maxRetries = 3;
  params.recovery.retransmitBudget = 1 << 20;
  obs::CountingObserver counter;
  Engine engine(trace, params);
  engine.setObserver(&counter);
  const auto result = engine.run();
  ASSERT_GT(result.totals.recoveryFramesLost, 0u);
  // Every noted loss gets at least its first resend attempt: retransmits
  // can never undercount the losses that caused them.
  EXPECT_GE(result.totals.recoveryRetransmits,
            result.totals.recoveryFramesLost);
  EXPECT_EQ(counter.count(obs::SimEventType::kRetransmit),
            result.totals.recoveryRetransmits);
}

TEST(EngineRecovery, CoordinatorFailoverFiresUnderChurn) {
  // A bigger clique trace with heavy churn so coordinators do go down
  // mid-contact; failover must fire, be counted, and be evented.
  trace::NusParams p;
  p.students = 60;
  p.courses = 12;
  p.coursesPerStudent = 3;
  p.days = 10;
  p.attendanceRate = 0.9;
  p.seed = 7;
  const auto trace = trace::generateNus(p);
  auto params = baseParams();
  params.faults.churnDownFraction = 0.25;
  params.faults.churnMeanDowntime = 2 * kHour;
  params.recovery.coordinatorFailover = true;
  obs::CountingObserver counter;
  Engine engine(trace, params);
  engine.setObserver(&counter);
  const auto result = engine.run();
  EXPECT_GT(result.totals.coordinatorFailovers, 0u);
  EXPECT_EQ(counter.count(obs::SimEventType::kCoordinatorFailover),
            result.totals.coordinatorFailovers);
}

TEST(EngineRecovery, RepairRecoversFromTruncation) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.contactTruncationRate = 0.5;
  params.faults.truncationKeepMin = 0.0;
  params.faults.truncationKeepMax = 0.3;
  const auto truncated = runSimulation(trace, params);
  params.recovery.repairPerContact = 6;
  obs::CountingObserver counter;
  Engine engine(trace, params);
  engine.setObserver(&counter);
  const auto repaired = engine.run();
  EXPECT_GT(repaired.totals.repairRequests, 0u);
  EXPECT_EQ(counter.count(obs::SimEventType::kRepairRequested),
            repaired.totals.repairRequests);
  EXPECT_GE(repaired.delivery.fileRatio, truncated.delivery.fileRatio);
}

TEST(EngineRecovery, BoundedMetadataStoreEvictsAndStaysBounded) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.nodeMetadataCapacity = 4;
  obs::CountingObserver counter;
  Engine engine(trace, params);
  engine.setObserver(&counter);
  const auto result = engine.run();
  EXPECT_GT(result.totals.metadataEvictions, 0u);
  EXPECT_EQ(counter.count(obs::SimEventType::kMetadataEvicted),
            result.totals.metadataEvictions);
  for (std::size_t i = 0; i < engine.nodeCount(); ++i) {
    EXPECT_LE(
        engine.node(NodeId(static_cast<std::uint32_t>(i))).metadata().size(),
        4u);
  }
  // Degradation, not collapse: queries still get answered.
  EXPECT_GT(result.delivery.fileRatio, 0.0);
}

}  // namespace
}  // namespace hdtn::core
