// Randomized chaos soak for the self-healing layer: 100 independently
// seeded fault mixes (loss x truncation x corruption x churn) with random
// recovery configurations, each run asserting the structural invariants
// that must hold no matter what the fault plan does:
//
//   * churn symmetry     — every node_down is matched by a node_up;
//   * no double delivery — a (node, file, piece) is stored at most once;
//   * retransmit cover   — with an ample budget, retransmission attempts
//                          never undercount the losses that caused them;
//   * bounded stores     — capped metadata stores never exceed capacity;
//   * sane ratios        — delivery ratios stay inside [0, 1].
//
// The mix parameters are drawn from a dedicated Rng (seeded once), so the
// whole soak is deterministic and a failure names its mix index and seed.
// The trace is kept small on purpose: breadth over depth — the sanitizer
// job runs this same binary under ASan/UBSan, which is where decode and
// bookkeeping bugs shaken loose by weird mixes actually get caught.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <tuple>

#include "src/core/engine.hpp"
#include "src/faults/adversary.hpp"
#include "src/obs/events.hpp"
#include "src/trace/nus.hpp"
#include "src/util/random.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {
namespace {

// Records every piece delivery so duplicates are attributable.
class PieceLedger final : public obs::EngineObserver {
 public:
  void onEvent(const obs::SimEvent& event) override {
    if (event.type != obs::SimEventType::kPieceReceived) return;
    ++received_;
    const auto key = std::make_tuple(event.node.value, event.file.value,
                                     event.extra);
    if (!seen_.insert(key).second) ++duplicates_;
  }

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }

 private:
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t>> seen_;
  std::uint64_t received_ = 0;
  std::uint64_t duplicates_ = 0;
};

TEST(ChaosSoak, HundredRandomFaultMixesKeepInvariants) {
  trace::NusParams tp;
  tp.students = 30;
  tp.courses = 6;
  tp.coursesPerStudent = 2;
  tp.days = 3;
  tp.attendanceRate = 0.9;
  tp.seed = 11;
  const auto trace = trace::generateNus(tp);

  Rng mixRng(0xC4A05u);
  for (int mix = 0; mix < 100; ++mix) {
    EngineParams params;
    params.protocol.kind = ProtocolKind::kMbtQm;
    params.internetAccessFraction = 0.3;
    params.newFilesPerDay = 10;
    params.fileTtlDays = 2;
    params.frequentContactPeriod = kDay;
    params.seed = 1000 + static_cast<std::uint64_t>(mix);

    params.faults.messageLossRate = 0.5 * mixRng.uniform();
    params.faults.contactTruncationRate = 0.5 * mixRng.uniform();
    params.faults.pieceCorruptionRate = 0.3 * mixRng.uniform();
    params.faults.churnDownFraction = 0.3 * mixRng.uniform();
    params.faults.churnMeanDowntime = 1 * kHour + static_cast<SimTime>(
        mixRng.pickIndex(8) * kHour);

    params.recovery.maxRetries = 1 + static_cast<int>(mixRng.pickIndex(3));
    // Ample budget: the retransmit-cover invariant only holds when budget
    // exhaustion cannot silently swallow first attempts.
    params.recovery.retransmitBudget = 1 << 20;
    params.recovery.repairPerContact = static_cast<int>(mixRng.pickIndex(9));
    params.recovery.coordinatorFailover = mixRng.chance(0.5);
    params.nodeMetadataCapacity =
        mixRng.chance(0.5) ? 0 : 8 + mixRng.pickIndex(24);

    SCOPED_TRACE("mix " + std::to_string(mix) + " seed " +
                 std::to_string(params.seed) + " loss " +
                 std::to_string(params.faults.messageLossRate) + " trunc " +
                 std::to_string(params.faults.contactTruncationRate) +
                 " corrupt " +
                 std::to_string(params.faults.pieceCorruptionRate) +
                 " churn " + std::to_string(params.faults.churnDownFraction));

    obs::CountingObserver counter;
    PieceLedger ledger;
    obs::MulticastObserver fanout;
    fanout.add(&counter);
    fanout.add(&ledger);
    Engine engine(trace, params);
    engine.setObserver(&fanout);
    const auto result = engine.run();

    // Churn symmetry: the engine closes every down interval it opened.
    EXPECT_EQ(counter.count(obs::SimEventType::kNodeDown),
              counter.count(obs::SimEventType::kNodeUp));
    // No double delivery, even through retransmission + repair paths.
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_EQ(ledger.received(), result.totals.pieceReceptions);
    // Retransmit cover (ample budget).
    EXPECT_GE(result.totals.recoveryRetransmits,
              result.totals.recoveryFramesLost);
    // Bounded stores stay bounded.
    if (params.nodeMetadataCapacity > 0) {
      for (std::size_t i = 0; i < engine.nodeCount(); ++i) {
        EXPECT_LE(engine.node(NodeId(static_cast<std::uint32_t>(i)))
                      .metadata()
                      .size(),
                  params.nodeMetadataCapacity);
      }
    } else {
      EXPECT_EQ(result.totals.metadataEvictions, 0u);
    }
    // Sane ratios.
    EXPECT_GE(result.delivery.fileRatio, 0.0);
    EXPECT_LE(result.delivery.fileRatio, 1.0);
    EXPECT_GE(result.delivery.metadataRatio, 0.0);
    EXPECT_LE(result.delivery.metadataRatio, 1.0);
  }
}

// Coded-mode arm of the soak: the same randomized fault mixes with the
// RLNC download mode (docs/CODING.md) and randomized coding knobs. The
// decoder adds its own invariants on top of the baseline ones:
//
//   * conservation  — every per-receiver coded delivery is either
//                     innovative or redundant, never both or neither;
//   * decode gating — pieces only materialize at full rank, so piece
//                     receptions never exceed what decoded generations
//                     plus initially-held pieces can account for;
//   * work accrual  — innovative frames cost Gauss-Jordan row operations.
TEST(ChaosSoak, CodedModeRandomFaultMixesKeepInvariants) {
  trace::NusParams tp;
  tp.students = 30;
  tp.courses = 6;
  tp.coursesPerStudent = 2;
  tp.days = 3;
  tp.attendanceRate = 0.9;
  tp.seed = 11;
  const auto trace = trace::generateNus(tp);

  Rng mixRng(0xC0DEDu);
  for (int mix = 0; mix < 60; ++mix) {
    EngineParams params;
    params.protocol.kind = ProtocolKind::kMbtQm;
    params.downloadMode = DownloadMode::kCoded;
    params.internetAccessFraction = 0.3;
    params.newFilesPerDay = 10;
    params.fileTtlDays = 2;
    params.piecesPerFile = 1 + static_cast<std::uint32_t>(mixRng.pickIndex(4));
    params.frequentContactPeriod = kDay;
    params.seed = 7000 + static_cast<std::uint64_t>(mix);

    params.coded.redundancy = 1.5 * mixRng.uniform();
    params.coded.sparsity = 0.3 + 0.7 * mixRng.uniform();

    params.faults.messageLossRate = 0.5 * mixRng.uniform();
    params.faults.contactTruncationRate = 0.5 * mixRng.uniform();
    params.faults.pieceCorruptionRate = 0.3 * mixRng.uniform();
    params.faults.churnDownFraction = 0.3 * mixRng.uniform();
    params.faults.churnMeanDowntime = 1 * kHour + static_cast<SimTime>(
        mixRng.pickIndex(8) * kHour);

    params.recovery.maxRetries = static_cast<int>(mixRng.pickIndex(3));
    params.recovery.retransmitBudget = 1 << 20;
    params.recovery.repairPerContact = static_cast<int>(mixRng.pickIndex(9));
    params.recovery.coordinatorFailover = mixRng.chance(0.5);

    SCOPED_TRACE("mix " + std::to_string(mix) + " seed " +
                 std::to_string(params.seed) + " pieces " +
                 std::to_string(params.piecesPerFile) + " redundancy " +
                 std::to_string(params.coded.redundancy) + " loss " +
                 std::to_string(params.faults.messageLossRate) +
                 " corrupt " +
                 std::to_string(params.faults.pieceCorruptionRate));

    obs::CountingObserver counter;
    PieceLedger ledger;
    obs::MulticastObserver fanout;
    fanout.add(&counter);
    fanout.add(&ledger);
    Engine engine(trace, params);
    engine.setObserver(&fanout);
    const auto result = engine.run();

    // Baseline invariants still hold under coding.
    EXPECT_EQ(counter.count(obs::SimEventType::kNodeDown),
              counter.count(obs::SimEventType::kNodeUp));
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_EQ(ledger.received(), result.totals.pieceReceptions);
    if (params.recovery.maxRetries > 0) {
      EXPECT_GE(result.totals.recoveryRetransmits,
                result.totals.recoveryFramesLost);
    }
    EXPECT_GE(result.delivery.fileRatio, 0.0);
    EXPECT_LE(result.delivery.fileRatio, 1.0);

    // Conservation: the observer's per-receiver innovative count matches
    // the totals, and decoded generations emitted exactly one event each.
    EXPECT_EQ(counter.count(obs::SimEventType::kInnovativeFrame),
              result.totals.codedInnovativeFrames);
    EXPECT_EQ(counter.count(obs::SimEventType::kGenerationDecoded),
              result.totals.generationsDecoded);
    EXPECT_EQ(counter.count(obs::SimEventType::kCodedBroadcast),
              result.totals.codedBroadcasts);
    // Decode gating: a generation needs at least `generationSize` (>= 1)
    // innovative frames across its receivers, so decodes cannot outnumber
    // innovative deliveries.
    EXPECT_LE(result.totals.generationsDecoded,
              result.totals.codedInnovativeFrames);
    // Work accrual: folding an innovative frame performs at least one row
    // operation.
    if (result.totals.codedInnovativeFrames > 0) {
      EXPECT_GT(result.totals.codedDecodeRowOps, 0u);
    }
  }
}

// Adversarial arm of the soak: random Byzantine fractions and attack-mask
// subsets on top of random channel faults, defense on. The defense adds
// its own invariants to the baseline set:
//
//   * verified delivery — with the defense armed, no polluted generation
//                         is ever delivered (rollback catches them all);
//   * bounded blame     — distinct quarantined nodes never exceed the
//                         Byzantine population, and under the default
//                         thresholds no honest node is ever quarantined;
//   * event accounting  — every attack/quarantine/release counter matches
//                         its event stream exactly.
TEST(ChaosSoak, AdversarialMixesKeepDefenseInvariants) {
  trace::NusParams tp;
  tp.students = 30;
  tp.courses = 6;
  tp.coursesPerStudent = 2;
  tp.days = 3;
  tp.attendanceRate = 0.9;
  tp.seed = 11;
  const auto trace = trace::generateNus(tp);

  // One bit-subset draw + fraction draw per mix; a zero mask or fraction
  // simply exercises the disabled-adversary path inside the soak.
  Rng mixRng(0xBAD50u);
  for (int mix = 0; mix < 60; ++mix) {
    EngineParams params;
    params.protocol.kind = ProtocolKind::kMbtQm;
    params.downloadMode = DownloadMode::kCoded;
    params.internetAccessFraction = 0.3;
    params.newFilesPerDay = 10;
    params.fileTtlDays = 2;
    params.piecesPerFile = 1 + static_cast<std::uint32_t>(mixRng.pickIndex(4));
    params.frequentContactPeriod = kDay;
    params.seed = 9000 + static_cast<std::uint64_t>(mix);

    params.faults.messageLossRate = 0.4 * mixRng.uniform();
    params.faults.contactTruncationRate = 0.4 * mixRng.uniform();
    params.faults.pieceCorruptionRate = 0.2 * mixRng.uniform();
    params.faults.churnDownFraction = 0.2 * mixRng.uniform();
    params.faults.churnMeanDowntime = 1 * kHour + static_cast<SimTime>(
        mixRng.pickIndex(8) * kHour);

    params.recovery.maxRetries = static_cast<int>(mixRng.pickIndex(3));
    params.recovery.retransmitBudget = 1 << 20;
    params.recovery.repairPerContact = static_cast<int>(mixRng.pickIndex(9));
    params.recovery.coordinatorFailover = mixRng.chance(0.5);

    params.adversary.byzantineFraction = 0.4 * mixRng.uniform();
    params.adversary.attacks = static_cast<std::uint32_t>(
        mixRng.pickIndex(faults::kAllAttacks + 1));
    params.reputation.defense = true;

    SCOPED_TRACE("mix " + std::to_string(mix) + " seed " +
                 std::to_string(params.seed) + " byzantine " +
                 std::to_string(params.adversary.byzantineFraction) +
                 " attacks " +
                 faults::attackMaskName(params.adversary.attacks) + " loss " +
                 std::to_string(params.faults.messageLossRate));

    obs::CountingObserver counter;
    PieceLedger ledger;
    obs::MulticastObserver fanout;
    fanout.add(&counter);
    fanout.add(&ledger);
    Engine engine(trace, params);
    engine.setObserver(&fanout);
    const auto result = engine.run();
    const EngineTotals& t = result.totals;

    // Baseline invariants survive active sabotage.
    EXPECT_EQ(counter.count(obs::SimEventType::kNodeDown),
              counter.count(obs::SimEventType::kNodeUp));
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_EQ(ledger.received(), t.pieceReceptions);
    if (params.recovery.maxRetries > 0) {
      // Spoofed ack claims are deliberately not counted as lost frames, so
      // the retransmit-cover invariant keeps its direction under attack.
      EXPECT_GE(t.recoveryRetransmits, t.recoveryFramesLost);
    }
    EXPECT_GE(result.delivery.fileRatio, 0.0);
    EXPECT_LE(result.delivery.fileRatio, 1.0);

    // Verified delivery: the armed defense never lets a polluted
    // generation complete as a delivery.
    EXPECT_EQ(t.pollutedDeliveries, 0u);
    if (t.pollutionDetected > 0) {
      EXPECT_GT(t.generationsRolledBack, 0u);
    }

    // Event accounting matches the totals exactly.
    EXPECT_EQ(counter.count(obs::SimEventType::kAttackInjected),
              t.adversaryAttacks);
    EXPECT_EQ(t.adversaryAttacks,
              t.pollutionInjected + t.piecesLied + t.summariesForged +
                  t.acksSpoofed + t.broadcastsSuppressed);
    EXPECT_EQ(counter.count(obs::SimEventType::kGenerationRolledBack),
              t.generationsRolledBack);
    EXPECT_EQ(counter.count(obs::SimEventType::kNodeQuarantined),
              t.nodesQuarantined);
    EXPECT_EQ(counter.count(obs::SimEventType::kNodeReleased),
              t.nodesReleased);
    EXPECT_LE(t.nodesReleased, t.nodesQuarantined);

    // Bounded blame under the default thresholds.
    EXPECT_EQ(t.falseQuarantines, 0u);
    if (engine.adversaryPlan() != nullptr) {
      EXPECT_LE(engine.reputationTracker()->quarantinedCount(),
                engine.adversaryPlan()->byzantineCount());
    } else {
      // Disabled adversary (zero fraction or empty mask drawn): the run
      // must look exactly like an honest defended run.
      EXPECT_EQ(t.adversaryAttacks, 0u);
      EXPECT_EQ(t.nodesQuarantined, 0u);
    }
  }
}

}  // namespace
}  // namespace hdtn::core
