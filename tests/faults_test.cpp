// Fault injection: parameter validation, FaultPlan determinism, and the
// engine-level guarantees — clean-path equivalence, identical event streams
// across all three drive modes, and corruption accounting (a corrupt piece
// never enters a store and every rejection is counted and evented).
#include "src/faults/faults.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/core/engine.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/events.hpp"
#include "src/trace/nus.hpp"
#include "src/util/random.hpp"

namespace hdtn::faults {
namespace {

trace::ContactTrace smallNusTrace(std::uint64_t seed = 3) {
  trace::NusParams p;
  p.students = 40;
  p.courses = 8;
  p.coursesPerStudent = 2;
  p.days = 5;
  p.attendanceRate = 0.9;
  p.seed = seed;
  return trace::generateNus(p);
}

core::EngineParams baseParams() {
  core::EngineParams params;
  params.protocol.kind = core::ProtocolKind::kMbtQm;
  params.internetAccessFraction = 0.3;
  params.newFilesPerDay = 20;
  params.fileTtlDays = 2;
  params.seed = 7;
  params.frequentContactPeriod = kDay;
  return params;
}

FaultParams allFaults() {
  FaultParams faults;
  faults.messageLossRate = 0.2;
  faults.contactTruncationRate = 0.3;
  faults.pieceCorruptionRate = 0.1;
  faults.churnDownFraction = 0.15;
  faults.churnMeanDowntime = 4 * kHour;
  return faults;
}

TEST(FaultParams, DefaultsAreDisabledAndValid) {
  FaultParams faults;
  EXPECT_FALSE(faults.enabled());
  EXPECT_TRUE(faults.validate().empty());
}

TEST(FaultParams, AnyPositiveRateEnables) {
  FaultParams faults;
  faults.pieceCorruptionRate = 0.01;
  EXPECT_TRUE(faults.enabled());
}

TEST(FaultParams, ValidateCatchesEachViolation) {
  FaultParams faults;
  faults.messageLossRate = -0.5;
  faults.contactTruncationRate = 2.0;
  faults.churnDownFraction = 1.0;
  faults.truncationKeepMin = 0.8;
  faults.truncationKeepMax = 0.2;
  EXPECT_EQ(faults.validate().size(), 4u);
}

TEST(FaultPlan, SameSeedSameSchedule) {
  const FaultParams faults = allFaults();
  FaultPlan a(faults, Rng(99), 30, 10 * kDay);
  FaultPlan b(faults, Rng(99), 30, 10 * kDay);
  EXPECT_EQ(a.totalDownIntervals(), b.totalDownIntervals());
  for (std::uint32_t i = 0; i < 30; ++i) {
    const auto& ia = a.downIntervals(NodeId(i));
    const auto& ib = b.downIntervals(NodeId(i));
    ASSERT_EQ(ia.size(), ib.size());
    for (std::size_t k = 0; k < ia.size(); ++k) {
      EXPECT_EQ(ia[k].start, ib[k].start);
      EXPECT_EQ(ia[k].end, ib[k].end);
    }
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.dropMessage(), b.dropMessage());
    EXPECT_EQ(a.corruptPiece(), b.corruptPiece());
    EXPECT_EQ(a.contactKeepFactor(), b.contactKeepFactor());
  }
}

TEST(FaultPlan, ZeroRatesDrawNothingAndNeverFire) {
  FaultParams faults;
  faults.churnDownFraction = 0.2;  // enabled, but channel rates are zero
  FaultPlan plan(faults, Rng(5), 10, 5 * kDay);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plan.dropMessage());
    EXPECT_FALSE(plan.corruptPiece());
    EXPECT_EQ(plan.contactKeepFactor(), 1.0);
  }
}

TEST(FaultPlan, ChurnRespectsTargetFraction) {
  FaultParams faults;
  faults.churnDownFraction = 0.25;
  faults.churnMeanDowntime = 2 * kHour;
  const SimTime horizon = 200 * kDay;
  FaultPlan plan(faults, Rng(17), 40, horizon);
  std::int64_t downTotal = 0;
  for (std::uint32_t i = 0; i < 40; ++i) {
    for (const auto& interval : plan.downIntervals(NodeId(i))) {
      EXPECT_GT(interval.end, interval.start);
      EXPECT_LE(interval.end, horizon);
      downTotal += interval.end - interval.start;
    }
  }
  const double fraction =
      static_cast<double>(downTotal) / (40.0 * static_cast<double>(horizon));
  EXPECT_NEAR(fraction, 0.25, 0.03);
}

TEST(FaultPlan, IsDownMatchesIntervalTable) {
  FaultParams faults;
  faults.churnDownFraction = 0.3;
  FaultPlan plan(faults, Rng(23), 8, 20 * kDay);
  ASSERT_GT(plan.totalDownIntervals(), 0u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    for (const auto& interval : plan.downIntervals(NodeId(i))) {
      EXPECT_TRUE(plan.isDown(NodeId(i), interval.start));
      EXPECT_TRUE(plan.isDown(NodeId(i), interval.end - 1));
      EXPECT_FALSE(plan.isDown(NodeId(i), interval.end));
    }
    EXPECT_FALSE(plan.isDown(NodeId(i), -1));
  }
  EXPECT_FALSE(plan.isDown(NodeId(1000), kDay));  // out of range: always up
}

TEST(EngineFaults, DisabledFaultsBuildNoPlan) {
  const auto trace = smallNusTrace();
  core::Engine engine(trace, baseParams());
  EXPECT_EQ(engine.faultPlan(), nullptr);
}

TEST(EngineFaults, CleanRunIdenticalWithAndWithoutFaultStruct) {
  // All-zero fault rates must not perturb the run in any way.
  const auto trace = smallNusTrace();
  auto params = baseParams();
  const auto baseline = core::runSimulation(trace, params);
  params.faults = FaultParams{};  // explicitly reset, still disabled
  const auto again = core::runSimulation(trace, params);
  EXPECT_EQ(baseline.delivery.filesDelivered, again.delivery.filesDelivered);
  EXPECT_EQ(baseline.totals.pieceBroadcasts, again.totals.pieceBroadcasts);
  EXPECT_EQ(again.totals.faultMessagesDropped, 0u);
  EXPECT_EQ(again.totals.faultContactsTruncated, 0u);
}

std::string eventStream(const trace::ContactTrace& trace,
                        const core::EngineParams& params, int mode) {
  std::ostringstream out;
  obs::JsonlEventSink sink(out);
  core::Engine engine(trace, params);
  engine.setObserver(&sink);
  if (mode == 0) {
    engine.run();
  } else if (mode == 1) {
    while (engine.step()) {
    }
    engine.finish();
  } else {
    for (SimTime t = 0; t < engine.endTime(); t += 6 * kHour) {
      engine.runUntil(t);
    }
    engine.finish();
  }
  return out.str();
}

TEST(EngineFaults, EventStreamIdenticalAcrossDriveModes) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults = allFaults();
  const std::string viaRun = eventStream(trace, params, 0);
  const std::string viaStep = eventStream(trace, params, 1);
  const std::string viaSlices = eventStream(trace, params, 2);
  ASSERT_FALSE(viaRun.empty());
  EXPECT_EQ(viaRun, viaStep);
  EXPECT_EQ(viaRun, viaSlices);
  EXPECT_NE(viaRun.find("\"fault_injected\""), std::string::npos);
  EXPECT_NE(viaRun.find("\"node_down\""), std::string::npos);
}

TEST(EngineFaults, CertainCorruptionRejectsEveryPiece) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.pieceCorruptionRate = 1.0;
  obs::CountingObserver counter;
  core::Engine engine(trace, params);
  engine.setObserver(&counter);
  const auto result = engine.run();
  // Every DTN piece transmission was corrupted in flight: nothing passed
  // its checksum, nothing entered a store.
  EXPECT_EQ(result.totals.pieceReceptions, 0u);
  EXPECT_EQ(counter.count(obs::SimEventType::kPieceReceived), 0u);
  EXPECT_GT(result.totals.faultPiecesRejectedCorrupt, 0u);
  EXPECT_EQ(counter.count(obs::SimEventType::kPieceRejectedCorrupt),
            result.totals.faultPiecesRejectedCorrupt);
  // Files still reach access nodes through the Internet path.
  EXPECT_GT(result.accessDelivery.fileRatio, 0.9);
}

TEST(EngineFaults, LossReducesDeliveryAndIsCounted) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  const auto clean = core::runSimulation(trace, params);
  params.faults.messageLossRate = 0.9;
  const auto lossy = core::runSimulation(trace, params);
  EXPECT_GT(lossy.totals.faultMessagesDropped, 0u);
  EXPECT_LT(lossy.delivery.filesDelivered, clean.delivery.filesDelivered);
}

TEST(EngineFaults, TruncationShrinksTraffic) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  const auto clean = core::runSimulation(trace, params);
  params.faults.contactTruncationRate = 1.0;
  params.faults.truncationKeepMin = 0.0;
  params.faults.truncationKeepMax = 0.2;
  const auto truncated = core::runSimulation(trace, params);
  EXPECT_GT(truncated.totals.faultContactsTruncated, 0u);
  EXPECT_LT(truncated.totals.pieceBroadcasts, clean.totals.pieceBroadcasts);
}

// --- boundary rates and degenerate churn -----------------------------------

TEST(FaultParams, BoundaryRatesAreValid) {
  FaultParams faults;
  faults.messageLossRate = 1.0;
  faults.contactTruncationRate = 1.0;
  faults.pieceCorruptionRate = 1.0;
  faults.truncationKeepMin = 0.0;
  faults.truncationKeepMax = 0.0;
  faults.churnDownFraction = 0.999;
  EXPECT_TRUE(faults.validate().empty()) << faults.validate().front();
  faults.truncationKeepMin = 1.0;
  faults.truncationKeepMax = 1.0;
  EXPECT_TRUE(faults.validate().empty()) << faults.validate().front();
}

TEST(FaultPlan, CertainRatesAlwaysFire) {
  FaultParams faults;
  faults.messageLossRate = 1.0;
  faults.pieceCorruptionRate = 1.0;
  faults.contactTruncationRate = 1.0;
  faults.truncationKeepMin = 0.5;
  faults.truncationKeepMax = 0.5;
  FaultPlan plan(faults, Rng(17), 10, 5 * kDay);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(plan.dropMessage());
    EXPECT_TRUE(plan.corruptPiece());
    EXPECT_EQ(plan.contactKeepFactor(), 0.5);
  }
}

TEST(FaultPlan, ChurnIntervalsAreClampedOrderedAndNeverZeroLength) {
  FaultParams faults;
  // High down fraction + short downtimes make start-at-zero and
  // clamped-at-horizon intervals near-certain across 1000 nodes, so the
  // boundary semantics below are exercised, not just vacuously true.
  faults.churnDownFraction = 0.9;
  faults.churnMeanDowntime = 600;
  const SimTime horizon = kDay;
  const std::uint32_t nodes = 1000;
  FaultPlan plan(faults, Rng(23), nodes, horizon);
  bool someStartsAtZero = false;
  bool someEndsAtHorizon = false;
  bool someBackToBack = false;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const auto& intervals = plan.downIntervals(NodeId(n));
    for (std::size_t k = 0; k < intervals.size(); ++k) {
      const auto& iv = intervals[k];
      EXPECT_GE(iv.start, 0);
      EXPECT_GT(iv.end, iv.start);  // zero-length intervals never emitted
      EXPECT_LE(iv.end, horizon);   // clamped to the run horizon
      // Ordered and non-overlapping; a sub-second up-gap truncates to zero,
      // so adjacent intervals may touch (the node goes straight back down).
      const bool touchesNext =
          k + 1 < intervals.size() && intervals[k + 1].start == iv.end;
      if (k + 1 < intervals.size()) {
        EXPECT_GE(intervals[k + 1].start, iv.end);
      }
      someBackToBack = someBackToBack || touchesNext;
      // isDown matches the table at both edges: start inclusive, end
      // exclusive — unless the next down interval begins at that instant.
      EXPECT_TRUE(plan.isDown(NodeId(n), iv.start));
      EXPECT_EQ(plan.isDown(NodeId(n), iv.end), touchesNext);
      if (iv.start == 0) someStartsAtZero = true;
      if (iv.end == horizon) someEndsAtHorizon = true;
    }
  }
  // The parameters above make every boundary shape actually occur: a node
  // already down at t=0, a node still down at the trace end, and
  // back-to-back intervals from a truncated-to-zero up gap.
  EXPECT_TRUE(someStartsAtZero);
  EXPECT_TRUE(someEndsAtHorizon);
  EXPECT_TRUE(someBackToBack);
  EXPECT_FALSE(plan.isDown(NodeId(0), horizon));
}

TEST(EngineFaults, TotalLossDeliversNothingOverTheDtn) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.messageLossRate = 1.0;
  const auto result = core::runSimulation(trace, params);
  EXPECT_EQ(result.totals.metadataReceptions, 0u);
  EXPECT_EQ(result.totals.pieceReceptions, 0u);
  EXPECT_GT(result.totals.faultMessagesDropped, 0u);
  EXPECT_EQ(result.delivery.fileRatio, 0.0);
}

TEST(EngineFaults, TotalTruncationWithZeroKeepStopsAllContactTraffic) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.contactTruncationRate = 1.0;
  params.faults.truncationKeepMin = 0.0;
  params.faults.truncationKeepMax = 0.0;
  const auto result = core::runSimulation(trace, params);
  EXPECT_EQ(result.totals.faultContactsTruncated,
            result.totals.contactsProcessed);
  EXPECT_EQ(result.totals.metadataBroadcasts, 0u);
  EXPECT_EQ(result.totals.pieceBroadcasts, 0u);
  EXPECT_EQ(result.totals.metadataReceptions, 0u);
  EXPECT_EQ(result.totals.pieceReceptions, 0u);
}

TEST(EngineFaults, ChurnEventsBalanceAndMatchTotals) {
  const auto trace = smallNusTrace();
  auto params = baseParams();
  params.faults.churnDownFraction = 0.3;
  params.faults.churnMeanDowntime = 6 * kHour;
  obs::CountingObserver counter;
  core::Engine engine(trace, params);
  engine.setObserver(&counter);
  ASSERT_NE(engine.faultPlan(), nullptr);
  const std::size_t planned = engine.faultPlan()->totalDownIntervals();
  ASSERT_GT(planned, 0u);
  const auto result = engine.run();
  EXPECT_EQ(result.totals.faultNodeDownIntervals, planned);
  EXPECT_EQ(counter.count(obs::SimEventType::kNodeDown), planned);
  EXPECT_EQ(counter.count(obs::SimEventType::kNodeUp), planned);
}

TEST(FaultKindNames, AreStable) {
  EXPECT_STREQ(faultKindName(FaultKind::kMessageLoss), "message_loss");
  EXPECT_STREQ(faultKindName(FaultKind::kContactTruncation),
               "contact_truncation");
  EXPECT_STREQ(faultKindName(FaultKind::kPieceCorruption),
               "piece_corruption");
  EXPECT_STREQ(faultKindName(FaultKind::kNodeChurn), "node_churn");
}

}  // namespace
}  // namespace hdtn::faults
