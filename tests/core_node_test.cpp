#include "src/core/node.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

Metadata makeMetadata(std::uint32_t id, const std::string& name,
                      std::uint32_t pieces, double popularity) {
  Metadata md;
  md.file = FileId(id);
  md.name = name;
  md.publisher = "pub";
  md.uri = "dtn://pub/f" + std::to_string(id);
  md.popularity = popularity;
  md.publishedAt = 0;
  md.ttl = 10 * kDay;
  md.pieceChecksums.assign(pieces, Sha1Digest{});
  md.rebuildKeywords();
  return md;
}

Query makeQuery(std::uint32_t id, std::uint32_t owner,
                const std::string& text, std::uint32_t target) {
  Query q;
  q.id = QueryId(id);
  q.owner = NodeId(owner);
  q.text = text;
  q.target = FileId(target);
  q.issuedAt = 0;
  q.ttl = 3 * kDay;
  return q;
}

TEST(Node, QueryAdvertisedUntilMetadataFound) {
  Node node(NodeId(1), {});
  node.addQuery(makeQuery(0, 1, "fox news ep1", 10));
  EXPECT_EQ(node.activeQueryTexts(0),
            (std::vector<std::string>{"fox news ep1"}));
  const auto selected =
      node.acceptMetadata(makeMetadata(10, "fox news ep1", 2, 0.5), 100);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], QueryId(0));
  EXPECT_TRUE(node.activeQueryTexts(100).empty());
}

TEST(Node, WantedFilesTrackQueryLifecycle) {
  Node node(NodeId(1), {});
  node.addQuery(makeQuery(0, 1, "fox news ep1", 10));
  EXPECT_TRUE(node.wantedFiles(0).empty());  // no metadata yet
  node.acceptMetadata(makeMetadata(10, "fox news ep1", 2, 0.5), 10);
  EXPECT_EQ(node.wantedFiles(10), (std::vector<FileId>{FileId(10)}));
  node.acceptPiece(FileId(10), 0, 2, 20);
  EXPECT_EQ(node.wantedFiles(20), (std::vector<FileId>{FileId(10)}));
  const auto satisfied = node.acceptPiece(FileId(10), 1, 2, 30);
  ASSERT_EQ(satisfied.size(), 1u);
  EXPECT_TRUE(node.wantedFiles(30).empty());
}

TEST(Node, ExpiredQueriesNeitherAdvertisedNorWanted) {
  Node node(NodeId(1), {});
  node.addQuery(makeQuery(0, 1, "fox news ep1", 10));
  EXPECT_TRUE(node.activeQueryTexts(4 * kDay).empty());
  node.acceptMetadata(makeMetadata(10, "fox news ep1", 1, 0.5), 10);
  EXPECT_TRUE(node.wantedFiles(4 * kDay).empty());
}

TEST(Node, ExpiredMetadataNotAccepted) {
  Node node(NodeId(1), {});
  node.addQuery(makeQuery(0, 1, "fox news ep1", 10));
  Metadata md = makeMetadata(10, "fox news ep1", 1, 0.5);
  const auto selected = node.acceptMetadata(md, md.expiresAt());
  EXPECT_TRUE(selected.empty());
  EXPECT_FALSE(node.metadata().has(FileId(10)));
}

TEST(Node, MultipleQueriesSatisfiedByOneMetadata) {
  Node node(NodeId(1), {});
  node.addQuery(makeQuery(0, 1, "fox news", 10));
  node.addQuery(makeQuery(1, 1, "news ep1", 10));
  const auto selected =
      node.acceptMetadata(makeMetadata(10, "fox news ep1", 1, 0.5), 5);
  EXPECT_EQ(selected.size(), 2u);
}

TEST(Node, AnyQueryMatchesRespectsState) {
  Node node(NodeId(1), {});
  node.addQuery(makeQuery(0, 1, "fox news ep1", 10));
  const Metadata md = makeMetadata(10, "fox news ep1", 1, 0.5);
  EXPECT_TRUE(node.anyQueryMatches(md, 0));
  node.acceptMetadata(md, 0);
  EXPECT_FALSE(node.anyQueryMatches(md, 1));  // already satisfied
}

TEST(Node, AcceptPieceRegistersUnknownFile) {
  // MBT-QM: pushed pieces arrive without prior metadata.
  Node node(NodeId(1), {});
  node.acceptPiece(FileId(7), 0, 3, 10);
  EXPECT_TRUE(node.pieces().isRegistered(FileId(7)));
  EXPECT_EQ(node.pieces().piecesHeld(FileId(7)), 1u);
}

TEST(Node, FrequentContactQueriesStoredOnlyForFrequentPeers) {
  Node node(NodeId(1), {});
  node.setFrequentContacts({NodeId(2), NodeId(4)});
  EXPECT_TRUE(node.isFrequentContact(NodeId(2)));
  EXPECT_FALSE(node.isFrequentContact(NodeId(3)));
  node.storePeerQueries(NodeId(2), {"drama ep5"}, 0);
  node.storePeerQueries(NodeId(3), {"ignored"}, 0);
  EXPECT_EQ(node.proxiedQueryTexts(0),
            (std::vector<std::string>{"drama ep5"}));
}

TEST(Node, ProxiedQueriesDedupedAcrossPeers) {
  Node node(NodeId(1), {});
  node.setFrequentContacts({NodeId(2), NodeId(3)});
  node.storePeerQueries(NodeId(2), {"drama ep5", "news ep1"}, 0);
  node.storePeerQueries(NodeId(3), {"drama ep5"}, 0);
  EXPECT_EQ(node.proxiedQueryTexts(0),
            (std::vector<std::string>{"drama ep5", "news ep1"}));
}

TEST(Node, ProxiedQueriesExpireWithCooperativeTtl) {
  Node node(NodeId(1), {});
  node.setFrequentContacts({NodeId(2)});
  node.setCooperativeStateTtl(kDay);
  node.storePeerQueries(NodeId(2), {"drama ep5"}, 0);
  EXPECT_FALSE(node.proxiedQueryTexts(kDay).empty());
  EXPECT_TRUE(node.proxiedQueryTexts(kDay + 1).empty());
}

TEST(Node, ReplacingPeerQueriesKeepsLatest) {
  Node node(NodeId(1), {});
  node.setFrequentContacts({NodeId(2)});
  node.storePeerQueries(NodeId(2), {"old"}, 0);
  node.storePeerQueries(NodeId(2), {"new"}, 10);
  EXPECT_EQ(node.proxiedQueryTexts(10), (std::vector<std::string>{"new"}));
}

TEST(Node, PeerWantsStoredAndExpire) {
  Node node(NodeId(1), {});
  node.setCooperativeStateTtl(kDay);
  node.storePeerWants({"dtn://a/f1", "dtn://a/f2"}, 0);
  node.storePeerWants({"dtn://a/f1"}, kHour);  // refresh f1
  EXPECT_EQ(node.peerWantedUris(0).size(), 2u);
  // After a day, only the refreshed URI survives.
  const auto fresh = node.peerWantedUris(kDay + kMinute);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0], "dtn://a/f1");
}

TEST(Node, ExpirePurgesMetadataAndCooperativeState) {
  Node node(NodeId(1), {});
  node.setFrequentContacts({NodeId(2)});
  node.setCooperativeStateTtl(kDay);
  Metadata md = makeMetadata(10, "short lived", 1, 0.5);
  md.ttl = kHour;
  node.acceptMetadata(md, 0);
  node.storePeerQueries(NodeId(2), {"q"}, 0);
  node.storePeerWants({"dtn://a/f1"}, 0);
  node.expire(2 * kDay);
  EXPECT_FALSE(node.metadata().has(FileId(10)));
  EXPECT_TRUE(node.proxiedQueryTexts(2 * kDay).empty());
  EXPECT_TRUE(node.peerWantedUris(2 * kDay).empty());
}

TEST(Node, OptionsAndContributes) {
  Node rider(NodeId(1), {.internetAccess = false, .freeRider = true});
  EXPECT_FALSE(rider.contributes());
  Node normal(NodeId(2), {.internetAccess = true, .freeRider = false});
  EXPECT_TRUE(normal.contributes());
  EXPECT_TRUE(normal.options().internetAccess);
}

TEST(Node, QueryStatesExposeProgress) {
  Node node(NodeId(1), {});
  node.addQuery(makeQuery(0, 1, "fox news ep1", 10));
  node.acceptMetadata(makeMetadata(10, "fox news ep1", 1, 0.5), 5);
  node.acceptPiece(FileId(10), 0, 1, 6);
  const auto& states = node.queryStates();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(states[0].metadataFound);
  EXPECT_TRUE(states[0].fileFound);
  EXPECT_EQ(states[0].chosenFile, FileId(10));
}

}  // namespace
}  // namespace hdtn::core
