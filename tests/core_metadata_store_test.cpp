#include "src/core/metadata_store.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

Metadata makeMetadata(std::uint32_t id, double popularity, SimTime published,
                      Duration ttl) {
  Metadata md;
  md.file = FileId(id);
  md.name = "file " + std::to_string(id);
  md.publisher = "pub";
  md.uri = "dtn://pub/f" + std::to_string(id);
  md.popularity = popularity;
  md.publishedAt = published;
  md.ttl = ttl;
  md.rebuildKeywords();
  return md;
}

TEST(MetadataStore, AddAndGet) {
  MetadataStore store;
  EXPECT_TRUE(store.add(makeMetadata(1, 0.5, 0, 100)));
  EXPECT_FALSE(store.add(makeMetadata(1, 0.5, 0, 100)));  // duplicate
  EXPECT_TRUE(store.has(FileId(1)));
  EXPECT_FALSE(store.has(FileId(2)));
  ASSERT_NE(store.get(FileId(1)), nullptr);
  EXPECT_EQ(store.get(FileId(1))->popularity, 0.5);
  EXPECT_EQ(store.get(FileId(9)), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(MetadataStore, RefreshKeepsHigherPopularity) {
  MetadataStore store;
  store.add(makeMetadata(1, 0.3, 0, 100));
  store.add(makeMetadata(1, 0.8, 0, 100));  // popularity rose
  EXPECT_DOUBLE_EQ(store.get(FileId(1))->popularity, 0.8);
  store.add(makeMetadata(1, 0.1, 0, 100));  // stale snapshot ignored
  EXPECT_DOUBLE_EQ(store.get(FileId(1))->popularity, 0.8);
}

TEST(MetadataStore, ExpireDropsOldRecords) {
  MetadataStore store;
  store.add(makeMetadata(1, 0.5, 0, 100));
  store.add(makeMetadata(2, 0.5, 50, 100));
  EXPECT_EQ(store.expire(100), 1u);  // file 1 expires exactly at 100
  EXPECT_FALSE(store.has(FileId(1)));
  EXPECT_TRUE(store.has(FileId(2)));
  EXPECT_EQ(store.expire(100), 0u);  // idempotent
}

TEST(MetadataStore, RemoveSpecific) {
  MetadataStore store;
  store.add(makeMetadata(1, 0.5, 0, 100));
  store.remove(FileId(1));
  EXPECT_TRUE(store.empty());
}

TEST(MetadataStore, AllSortedByFileId) {
  MetadataStore store;
  store.add(makeMetadata(5, 0.1, 0, 100));
  store.add(makeMetadata(1, 0.9, 0, 100));
  store.add(makeMetadata(3, 0.5, 0, 100));
  const auto all = store.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->file, FileId(1));
  EXPECT_EQ(all[1]->file, FileId(3));
  EXPECT_EQ(all[2]->file, FileId(5));
}

TEST(MetadataStore, ByPopularityDescendingWithIdTiebreak) {
  MetadataStore store;
  store.add(makeMetadata(5, 0.5, 0, 100));
  store.add(makeMetadata(1, 0.9, 0, 100));
  store.add(makeMetadata(3, 0.5, 0, 100));
  const auto sorted = store.byPopularity();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0]->file, FileId(1));
  EXPECT_EQ(sorted[1]->file, FileId(3));  // tie broken by smaller id
  EXPECT_EQ(sorted[2]->file, FileId(5));
}

}  // namespace
}  // namespace hdtn::core
