#include "src/core/metadata_store.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

Metadata makeMetadata(std::uint32_t id, double popularity, SimTime published,
                      Duration ttl) {
  Metadata md;
  md.file = FileId(id);
  md.name = "file " + std::to_string(id);
  md.publisher = "pub";
  md.uri = "dtn://pub/f" + std::to_string(id);
  md.popularity = popularity;
  md.publishedAt = published;
  md.ttl = ttl;
  md.rebuildKeywords();
  return md;
}

TEST(MetadataStore, AddAndGet) {
  MetadataStore store;
  EXPECT_TRUE(store.add(makeMetadata(1, 0.5, 0, 100)));
  EXPECT_FALSE(store.add(makeMetadata(1, 0.5, 0, 100)));  // duplicate
  EXPECT_TRUE(store.has(FileId(1)));
  EXPECT_FALSE(store.has(FileId(2)));
  ASSERT_NE(store.get(FileId(1)), nullptr);
  EXPECT_EQ(store.get(FileId(1))->popularity, 0.5);
  EXPECT_EQ(store.get(FileId(9)), nullptr);
  EXPECT_EQ(store.size(), 1u);
}

TEST(MetadataStore, RefreshKeepsHigherPopularity) {
  MetadataStore store;
  store.add(makeMetadata(1, 0.3, 0, 100));
  store.add(makeMetadata(1, 0.8, 0, 100));  // popularity rose
  EXPECT_DOUBLE_EQ(store.get(FileId(1))->popularity, 0.8);
  store.add(makeMetadata(1, 0.1, 0, 100));  // stale snapshot ignored
  EXPECT_DOUBLE_EQ(store.get(FileId(1))->popularity, 0.8);
}

TEST(MetadataStore, ExpireDropsOldRecords) {
  MetadataStore store;
  store.add(makeMetadata(1, 0.5, 0, 100));
  store.add(makeMetadata(2, 0.5, 50, 100));
  EXPECT_EQ(store.expire(100), 1u);  // file 1 expires exactly at 100
  EXPECT_FALSE(store.has(FileId(1)));
  EXPECT_TRUE(store.has(FileId(2)));
  EXPECT_EQ(store.expire(100), 0u);  // idempotent
}

TEST(MetadataStore, RemoveSpecific) {
  MetadataStore store;
  store.add(makeMetadata(1, 0.5, 0, 100));
  store.remove(FileId(1));
  EXPECT_TRUE(store.empty());
}

TEST(MetadataStore, AllSortedByFileId) {
  MetadataStore store;
  store.add(makeMetadata(5, 0.1, 0, 100));
  store.add(makeMetadata(1, 0.9, 0, 100));
  store.add(makeMetadata(3, 0.5, 0, 100));
  const auto all = store.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->file, FileId(1));
  EXPECT_EQ(all[1]->file, FileId(3));
  EXPECT_EQ(all[2]->file, FileId(5));
}

TEST(MetadataStore, ByPopularityDescendingWithIdTiebreak) {
  MetadataStore store;
  store.add(makeMetadata(5, 0.5, 0, 100));
  store.add(makeMetadata(1, 0.9, 0, 100));
  store.add(makeMetadata(3, 0.5, 0, 100));
  const auto sorted = store.byPopularity();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0]->file, FileId(1));
  EXPECT_EQ(sorted[1]->file, FileId(3));  // tie broken by smaller id
  EXPECT_EQ(sorted[2]->file, FileId(5));
}

TEST(MetadataStore, BoundedStoreEvictsLowestPopularity) {
  MetadataStore store(2);
  std::vector<FileId> shed;
  store.setEvictionHook([&](const Metadata& md) { shed.push_back(md.file); });
  EXPECT_TRUE(store.add(makeMetadata(1, 0.2, 0, 100)));
  EXPECT_TRUE(store.add(makeMetadata(2, 0.5, 0, 100)));
  // A more popular record displaces the least-popular stored one.
  EXPECT_TRUE(store.add(makeMetadata(3, 0.9, 0, 100)));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.has(FileId(1)));
  EXPECT_TRUE(store.has(FileId(2)));
  EXPECT_TRUE(store.has(FileId(3)));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], FileId(1));
}

TEST(MetadataStore, BoundedStoreShedsIncomingWhenLeastPopular) {
  MetadataStore store(2);
  std::vector<FileId> shed;
  store.setEvictionHook([&](const Metadata& md) { shed.push_back(md.file); });
  store.add(makeMetadata(1, 0.5, 0, 100));
  store.add(makeMetadata(2, 0.7, 0, 100));
  // The incoming record is the victim: admission refused, store unchanged.
  EXPECT_FALSE(store.add(makeMetadata(3, 0.1, 0, 100)));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_FALSE(store.has(FileId(3)));
  EXPECT_TRUE(store.has(FileId(1)));
  EXPECT_TRUE(store.has(FileId(2)));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], FileId(3));
}

TEST(MetadataStore, BoundedEvictionTiesBreakOldestFirst) {
  MetadataStore store(2);
  std::vector<FileId> shed;
  store.setEvictionHook([&](const Metadata& md) { shed.push_back(md.file); });
  store.add(makeMetadata(5, 0.4, 0, 100));  // oldest at the tied popularity
  store.add(makeMetadata(2, 0.4, 0, 100));
  store.add(makeMetadata(9, 0.8, 0, 100));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], FileId(5));  // insertion order, not file id
  EXPECT_TRUE(store.has(FileId(2)));
}

TEST(MetadataStore, BoundedRefreshNeverEvicts) {
  MetadataStore store(2);
  bool fired = false;
  store.setEvictionHook([&](const Metadata&) { fired = true; });
  store.add(makeMetadata(1, 0.3, 0, 100));
  store.add(makeMetadata(2, 0.6, 0, 100));
  // Refreshing a held record is not an insertion: no capacity pressure.
  EXPECT_FALSE(store.add(makeMetadata(1, 0.9, 0, 100)));
  EXPECT_FALSE(fired);
  EXPECT_DOUBLE_EQ(store.get(FileId(1))->popularity, 0.9);
}

TEST(MetadataStore, BoundedSaveLoadRoundTripKeepsEvictionOrder) {
  MetadataStore store(3);
  store.add(makeMetadata(1, 0.5, 0, 100));
  store.add(makeMetadata(2, 0.5, 0, 100));
  store.add(makeMetadata(3, 0.9, 0, 100));
  Serializer out;
  store.saveState(out);
  MetadataStore restored(3);
  Deserializer in(out.bytes());
  restored.loadState(in);
  EXPECT_EQ(restored.size(), 3u);
  // The restored store must evict the same victim the original would:
  // insertion seq survives the round trip.
  std::vector<FileId> shed;
  restored.setEvictionHook([&](const Metadata& md) { shed.push_back(md.file); });
  restored.add(makeMetadata(4, 0.8, 0, 100));
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], FileId(1));  // tied with 2 on popularity, but older
}

}  // namespace
}  // namespace hdtn::core
