// End-to-end scenario and trend tests of the full system.
#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "src/core/engine.hpp"
#include "src/graph/clique.hpp"
#include "src/graph/space_time.hpp"
#include "src/net/hello.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/nus.hpp"

namespace hdtn::core {
namespace {

trace::ContactTrace nusTrace(std::uint64_t seed, double attendance = 0.9) {
  trace::NusParams p;
  p.students = 60;
  p.courses = 12;
  p.coursesPerStudent = 3;
  p.days = 6;
  p.attendanceRate = attendance;
  p.seed = seed;
  return trace::generateNus(p);
}

EngineParams mbtParams(std::uint64_t seed) {
  EngineParams params;
  params.protocol.kind = ProtocolKind::kMbt;
  params.internetAccessFraction = 0.3;
  params.newFilesPerDay = 20;
  params.fileTtlDays = 2;
  params.frequentContactPeriod = kDay;
  params.seed = seed;
  return params;
}

// A three-node line: node 0 (Internet access) repeatedly meets node 1; node
// 1 repeatedly meets node 2; nodes 0 and 2 never meet. Any file reaching
// node 2 proves multi-hop store-carry-forward relay through node 1,
// including the cooperative chain: 2 advertises a wanted URI, 1 relays the
// request, 0 fetches the file from the Internet and hands it to 1, which
// carries it to 2.
trace::ContactTrace lineTrace(int days) {
  trace::ContactTrace t("line", 3);
  for (int day = 0; day < days; ++day) {
    const SimTime base = static_cast<SimTime>(day) * kDay;
    for (SimTime hour : {15, 17, 19, 21}) {
      trace::Contact c;
      c.start = base + hour * kHour;
      c.end = c.start + 10 * kMinute;
      c.members = {NodeId(0), NodeId(1)};
      t.addContact(c);
    }
    for (SimTime hour : {16, 18, 20, 22}) {
      trace::Contact c;
      c.start = base + hour * kHour;
      c.end = c.start + 10 * kMinute;
      c.members = {NodeId(1), NodeId(2)};
      t.addContact(c);
    }
  }
  t.sortByStart();
  return t;
}

TEST(Integration, MultiHopRelayDeliversToIsolatedNode) {
  const auto trace = lineTrace(6);
  EngineParams params = mbtParams(11);
  params.explicitAccessNodes = {NodeId(0)};
  params.newFilesPerDay = 20;
  params.metadataPerContact = 10;
  params.filesPerContact = 4;
  Engine engine(trace, params);
  engine.run();
  // Node 2 never meets the access node, yet some of its queries must have
  // been served through node 1.
  std::size_t node2Queries = 0, node2Files = 0;
  for (const auto& record : engine.metrics().records()) {
    if (record.owner != NodeId(2)) continue;
    ++node2Queries;
    if (record.fileAt) ++node2Files;
  }
  ASSERT_GT(node2Queries, 0u);
  EXPECT_GT(node2Files, 0u);
}

TEST(Integration, DiscoveryProtocolBeatsPurePushOnLine) {
  const auto trace = lineTrace(6);
  EngineParams params = mbtParams(11);
  params.explicitAccessNodes = {NodeId(0)};
  params.metadataPerContact = 10;
  params.filesPerContact = 4;
  const auto mbt = runSimulation(trace, params);
  params.protocol.kind = ProtocolKind::kMbtQm;
  const auto mbtQm = runSimulation(trace, params);
  EXPECT_GE(mbt.delivery.fileRatio, mbtQm.delivery.fileRatio);
  EXPECT_GT(mbt.delivery.metadataRatio, mbtQm.delivery.metadataRatio);
}

double meanFileRatio(double accessFraction, int ttlDays, int mdBudget,
                     int fileBudget) {
  double sum = 0.0;
  const int seeds = 3;
  for (int seed = 1; seed <= seeds; ++seed) {
    EngineParams params = mbtParams(static_cast<std::uint64_t>(seed) * 101);
    params.internetAccessFraction = accessFraction;
    params.fileTtlDays = ttlDays;
    params.metadataPerContact = mdBudget;
    params.filesPerContact = fileBudget;
    sum += runSimulation(nusTrace(static_cast<std::uint64_t>(seed)), params)
               .delivery.fileRatio;
  }
  return sum / seeds;
}

TEST(Integration, MoreAccessNodesImproveFileDelivery) {
  EXPECT_GT(meanFileRatio(0.7, 2, 5, 2), meanFileRatio(0.15, 2, 5, 2));
}

TEST(Integration, LongerTtlImprovesFileDelivery) {
  EXPECT_GT(meanFileRatio(0.3, 4, 5, 2), meanFileRatio(0.3, 1, 5, 2));
}

TEST(Integration, BiggerMetadataBudgetImprovesDelivery) {
  EXPECT_GT(meanFileRatio(0.3, 2, 10, 2), meanFileRatio(0.3, 2, 1, 2));
}

TEST(Integration, BiggerFileBudgetImprovesDelivery) {
  EXPECT_GT(meanFileRatio(0.3, 2, 5, 8), meanFileRatio(0.3, 2, 5, 1));
}

TEST(Integration, HigherAttendanceImprovesDelivery) {
  double low = 0.0, high = 0.0;
  for (int seed = 1; seed <= 3; ++seed) {
    const EngineParams params = mbtParams(static_cast<std::uint64_t>(seed));
    low += runSimulation(nusTrace(static_cast<std::uint64_t>(seed), 0.5),
                         params)
               .delivery.fileRatio;
    high += runSimulation(nusTrace(static_cast<std::uint64_t>(seed), 1.0),
                          params)
                .delivery.fileRatio;
  }
  EXPECT_GT(high, low);
}

TEST(Integration, MoreFilesPerDayReduceDeliveryRatio) {
  double few = 0.0, many = 0.0;
  for (int seed = 1; seed <= 3; ++seed) {
    EngineParams params = mbtParams(static_cast<std::uint64_t>(seed));
    params.newFilesPerDay = 10;
    few += runSimulation(nusTrace(static_cast<std::uint64_t>(seed)), params)
               .delivery.fileRatio;
    params.newFilesPerDay = 80;
    many += runSimulation(nusTrace(static_cast<std::uint64_t>(seed)), params)
                .delivery.fileRatio;
  }
  EXPECT_GT(few, many);
}

TEST(Integration, ReceptionsBoundDeliveries) {
  const auto trace = nusTrace(5);
  const auto result = runSimulation(trace, mbtParams(5));
  // Every non-access file delivery requires at least one piece reception
  // (piecesPerFile = 1) and every non-access metadata delivery that is not
  // subsumed by a file requires a metadata reception.
  EXPECT_GE(result.totals.pieceReceptions,
            static_cast<std::uint64_t>(result.delivery.filesDelivered));
  EXPECT_GE(result.totals.metadataReceptions +
                result.totals.pieceReceptions,
            static_cast<std::uint64_t>(result.delivery.metadataDelivered));
}

TEST(Integration, NonAccessRatiosStayBelowAccess) {
  const auto trace = nusTrace(7);
  const auto result = runSimulation(trace, mbtParams(7));
  EXPECT_LE(result.delivery.fileRatio, result.accessDelivery.fileRatio);
  EXPECT_LE(result.delivery.metadataRatio,
            result.accessDelivery.metadataRatio);
}

TEST(Integration, DieselNetEndToEnd) {
  trace::DieselNetParams p;
  p.buses = 20;
  p.routes = 4;
  p.days = 8;
  p.seed = 2;
  const auto trace = trace::generateDieselNet(p);
  EngineParams params = mbtParams(3);
  params.frequentContactPeriod = 3 * kDay;
  params.fileTtlDays = 3;
  const auto result = runSimulation(trace, params);
  EXPECT_GT(result.delivery.fileRatio, 0.05);
  EXPECT_GT(result.delivery.metadataRatio, result.delivery.fileRatio - 1e-9);
}

TEST(Integration, DeliveryNeverBeatsSpaceTimeOracle) {
  // Files enter the DTN only through Internet-access nodes, so no query of
  // a non-access node can be file-served earlier than the foremost journey
  // from the nearest access node starting at the query's issue time — the
  // space-time graph gives a hard lower bound the protocol must respect.
  const auto trace = nusTrace(13);
  EngineParams params = mbtParams(13);
  Engine engine(trace, params);
  engine.run();
  const graph::SpaceTimeGraph stg(trace);
  const auto access = engine.accessNodes();
  // Cache oracle arrivals per (access node, issue time).
  std::map<std::pair<NodeId, SimTime>, std::vector<SimTime>> cache;
  int checked = 0;
  for (const auto& record : engine.metrics().records()) {
    if (!record.fileAt) continue;
    const Node& owner = engine.node(record.owner);
    if (owner.options().internetAccess) continue;
    SimTime bound = kTimeInfinity;
    for (NodeId a : access) {
      auto key = std::make_pair(a, record.issuedAt);
      auto it = cache.find(key);
      if (it == cache.end()) {
        it = cache.emplace(key, stg.earliestArrivals(a, record.issuedAt))
                 .first;
      }
      bound = std::min(bound, it->second[record.owner.value]);
    }
    ASSERT_NE(bound, kTimeInfinity);
    EXPECT_GE(*record.fileAt, bound);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(Integration, BoundedStorageDegradesGracefully) {
  const auto trace = nusTrace(17);
  EngineParams params = mbtParams(17);
  const auto unbounded = runSimulation(trace, params);
  params.nodePieceCapacity = 3;  // severe squeeze
  const auto bounded = runSimulation(trace, params);
  EXPECT_GT(bounded.delivery.fileRatio, 0.0);
  EXPECT_LE(bounded.delivery.fileRatio,
            unbounded.delivery.fileRatio + 1e-9);
  EXPECT_DOUBLE_EQ(bounded.accessDelivery.metadataRatio, 1.0);
}

TEST(Integration, HelloExchangeYieldsBroadcastCliques) {
  // The Section-V pipeline outside the engine's shortcut: nodes beacon
  // hellos, each derives its neighbor set, the union graph is partitioned
  // into broadcast cliques. Two radio groups {0,1,2} and {3,4} that cannot
  // hear each other must come out as exactly those cliques.
  const std::vector<std::vector<std::uint32_t>> radioGroups{{0, 1, 2},
                                                            {3, 4}};
  std::vector<net::HelloState> states;
  for (std::uint32_t i = 0; i < 5; ++i) states.emplace_back(NodeId(i));

  const SimTime now = 1000;
  for (const auto& group : radioGroups) {
    for (std::uint32_t sender : group) {
      const net::HelloMessage hello =
          states[sender].makeHello(now, {}, {});
      for (std::uint32_t receiver : group) {
        if (receiver != sender) states[receiver].onHello(now, hello);
      }
    }
  }
  AdjacencyGraph graph;
  for (auto& state : states) {
    graph.addNode(state.self());
    for (NodeId neighbor : state.activeNeighbors(now + 1)) {
      graph.addEdge(state.self(), neighbor);
    }
  }
  const auto cliques = partitionIntoCliques(graph);
  ASSERT_EQ(cliques.size(), 2u);
  EXPECT_EQ(cliques[0],
            (std::vector<NodeId>{NodeId(0), NodeId(1), NodeId(2)}));
  EXPECT_EQ(cliques[1], (std::vector<NodeId>{NodeId(3), NodeId(4)}));
}

TEST(Integration, DelaysPositiveAndBounded) {
  const auto trace = nusTrace(9);
  EngineParams params = mbtParams(9);
  Engine engine(trace, params);
  engine.run();
  for (const auto& record : engine.metrics().records()) {
    if (record.metadataAt) {
      EXPECT_GE(*record.metadataAt, record.issuedAt);
      EXPECT_LT(*record.metadataAt, record.expiresAt());
    }
    if (record.fileAt) {
      EXPECT_GE(*record.fileAt, record.issuedAt);
      EXPECT_LT(*record.fileAt, record.expiresAt());
    }
  }
}

}  // namespace
}  // namespace hdtn::core
