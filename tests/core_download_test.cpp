#include "src/core/download.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace hdtn::core {
namespace {

struct Fixture {
  std::vector<PieceStore> stores;
  std::vector<CreditLedger> ledgers;
  std::vector<std::vector<FileId>> wantedStorage;
  std::vector<DownloadPeer> peers;
  std::map<FileId, double> popularity;

  explicit Fixture(std::size_t n) : stores(n), ledgers(n), wantedStorage(n) {
    for (std::size_t i = 0; i < n; ++i) {
      DownloadPeer peer;
      peer.id = NodeId(static_cast<std::uint32_t>(i));
      peer.pieces = &stores[i];
      peer.credits = &ledgers[i];
      peers.push_back(peer);
    }
  }

  void give(std::size_t peer, std::uint32_t file, std::uint32_t pieceCount,
            std::initializer_list<std::uint32_t> pieces, double pop) {
    stores[peer].registerFile(FileId(file), pieceCount);
    for (auto p : pieces) stores[peer].addPiece(FileId(file), p);
    popularity[FileId(file)] = pop;
  }

  // DownloadPeer::wanted is a view; the fixture owns the backing storage.
  void want(std::size_t peer, std::initializer_list<std::uint32_t> files) {
    for (auto f : files) wantedStorage[peer].push_back(FileId(f));
    peers[peer].wanted = wantedStorage[peer];
  }

  PopularityFn popularityFn() const {
    return [this](FileId f) {
      auto it = popularity.find(f);
      return it == popularity.end() ? 0.0 : it->second;
    };
  }
};

TEST(PlanDownload, EmptyCases) {
  Fixture f(2);
  EXPECT_TRUE(
      planDownload(f.peers, f.popularityFn(), 0, Scheduling::kCooperative)
          .empty());
  std::vector<DownloadPeer> solo{f.peers[0]};
  EXPECT_TRUE(
      planDownload(solo, f.popularityFn(), 5, Scheduling::kCooperative)
          .empty());
  EXPECT_TRUE(
      planDownload(f.peers, f.popularityFn(), 5, Scheduling::kCooperative)
          .empty());  // nothing held
}

TEST(PlanDownload, RequestedPiecesFirst) {
  Fixture f(2);
  f.give(0, 1, 1, {0}, 0.05);  // wanted by peer 1
  f.give(0, 2, 1, {0}, 0.95);  // unwanted but popular
  f.want(1, {1});
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 2, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].file, FileId(1));
  EXPECT_EQ(plan[0].phase, 1);
  EXPECT_EQ(std::vector<NodeId>(plan[0].requesters.begin(),
                                plan[0].requesters.end()),
            (std::vector<NodeId>{NodeId(1)}));
  EXPECT_EQ(plan[1].file, FileId(2));
  EXPECT_EQ(plan[1].phase, 2);
}

TEST(PlanDownload, MoreRequestersWinWithinPhaseOne) {
  Fixture f(3);
  f.give(0, 1, 1, {0}, 0.9);
  f.give(0, 2, 1, {0}, 0.1);
  f.want(1, {2});
  f.want(2, {2});
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 1, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].file, FileId(2));
}

TEST(PlanDownload, PiecesOfFileFlowInIndexOrder) {
  Fixture f(2);
  f.give(0, 1, 3, {0, 1, 2}, 0.5);
  f.want(1, {1});
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 3, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].piece, 0u);
  EXPECT_EQ(plan[1].piece, 1u);
  EXPECT_EQ(plan[2].piece, 2u);
}

TEST(PlanDownload, OnlyMissingPiecesBroadcast) {
  Fixture f(2);
  f.give(0, 1, 2, {0, 1}, 0.5);
  f.give(1, 1, 2, {0}, 0.5);  // receiver already has piece 0
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 5, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].piece, 1u);
}

TEST(PlanDownload, SenderIsLowestIdHolder) {
  Fixture f(3);
  f.give(1, 1, 1, {0}, 0.5);
  f.give(2, 1, 1, {0}, 0.5);
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 1, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].sender, NodeId(1));
}

TEST(PlanDownload, FreeRiderHoldingsUnavailable) {
  Fixture f(2);
  f.give(0, 1, 1, {0}, 0.9);
  f.peers[0].contributes = false;
  EXPECT_TRUE(
      planDownload(f.peers, f.popularityFn(), 5, Scheduling::kCooperative)
          .empty());
}

TEST(PlanDownload, TitForTatWeighsRequesterCredit) {
  Fixture f(3);
  f.give(0, 1, 1, {0}, 0.5);
  f.give(0, 2, 1, {0}, 0.5);
  f.want(1, {1});
  f.want(2, {2});
  f.ledgers[0].addCredit(NodeId(2), 100.0);
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 1, Scheduling::kTitForTat);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].file, FileId(2));  // high-credit requester served first
}

TEST(PlanDownload, TitForTatRotatesThroughContributors) {
  Fixture f(3);
  f.give(0, 1, 1, {0}, 0.5);
  f.give(1, 2, 1, {0}, 0.5);
  f.give(2, 3, 1, {0}, 0.5);
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 3, Scheduling::kTitForTat);
  ASSERT_EQ(plan.size(), 3u);
  std::set<NodeId> senders;
  for (const auto& b : plan) senders.insert(b.sender);
  EXPECT_EQ(senders.size(), 3u);
}

TEST(PlanDownload, PopularityOnlyIgnoresRequests) {
  Fixture f(2);
  f.give(0, 1, 1, {0}, 0.1);
  f.give(0, 2, 1, {0}, 0.9);
  f.want(1, {1});
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 1,
                   Scheduling::kPopularityOnly);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].file, FileId(2));
}

TEST(PlanDownload, RarestFirstPushOrder) {
  Fixture f(3);
  // File 1: popular but held by two members; file 2: unpopular, one holder.
  f.give(0, 1, 1, {0}, 0.9);
  f.give(1, 1, 1, {0}, 0.9);
  f.give(0, 2, 1, {0}, 0.1);
  const auto popularityPlan = planDownload(
      f.peers, f.popularityFn(), 1, Scheduling::kCooperative,
      PushOrder::kPopularity);
  ASSERT_EQ(popularityPlan.size(), 1u);
  EXPECT_EQ(popularityPlan[0].file, FileId(1));
  const auto rarestPlan = planDownload(
      f.peers, f.popularityFn(), 1, Scheduling::kCooperative,
      PushOrder::kRarestFirst);
  ASSERT_EQ(rarestPlan.size(), 1u);
  EXPECT_EQ(rarestPlan[0].file, FileId(2));  // fewest holders wins
}

TEST(PlanDownload, RarestFirstDoesNotOverrideRequestPhase) {
  Fixture f(3);
  f.give(0, 1, 1, {0}, 0.5);  // requested by peer 2
  f.give(0, 2, 1, {0}, 0.5);  // rarer? same holders; unrequested
  f.give(1, 2, 1, {0}, 0.5);  // file 2 now has MORE holders
  f.want(2, {1});
  const auto plan = planDownload(f.peers, f.popularityFn(), 1,
                                 Scheduling::kCooperative,
                                 PushOrder::kRarestFirst);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].file, FileId(1));  // requests still come first
}

// --- pairwise baseline ----------------------------------------------------

TEST(PlanPairwiseDownload, PairsExchangeMutuallyMissingPieces) {
  Fixture f(2);
  f.give(0, 1, 1, {0}, 0.5);
  f.give(1, 2, 1, {0}, 0.5);
  const auto plan = planPairwiseDownload(f.peers, f.popularityFn(), 4);
  ASSERT_EQ(plan.size(), 2u);
  std::set<NodeId> senders;
  for (const auto& t : plan) senders.insert(t.sender);
  EXPECT_EQ(senders.size(), 2u);
}

TEST(PlanPairwiseDownload, RequestedFirstPerPair) {
  Fixture f(2);
  f.give(0, 1, 1, {0}, 0.05);
  f.give(0, 2, 1, {0}, 0.95);
  f.want(1, {1});
  const auto plan = planPairwiseDownload(f.peers, f.popularityFn(), 1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].file, FileId(1));
  EXPECT_TRUE(plan[0].requested);
}

TEST(PlanPairwiseDownload, OddMemberIdles) {
  Fixture f(3);
  f.give(0, 1, 1, {0}, 0.5);
  f.give(1, 2, 1, {0}, 0.5);
  f.give(2, 3, 1, {0}, 0.5);
  const auto plan = planPairwiseDownload(f.peers, f.popularityFn(), 10);
  // Members 0 and 1 pair up; member 2 has no link.
  for (const auto& t : plan) {
    EXPECT_NE(t.sender, NodeId(2));
    EXPECT_NE(t.receiver, NodeId(2));
  }
}

TEST(PlanPairwiseDownload, BudgetPerPair) {
  Fixture f(2);
  f.give(0, 1, 5, {0, 1, 2, 3, 4}, 0.5);
  const auto plan = planPairwiseDownload(f.peers, f.popularityFn(), 2);
  EXPECT_EQ(plan.size(), 2u);
}

// Broadcast efficiency property: with one holder and k receivers, broadcast
// needs 1 transmission where pairwise needs at least k.
class BroadcastAdvantageSweep : public ::testing::TestWithParam<int> {};

TEST_P(BroadcastAdvantageSweep, OneTransmissionServesAllReceivers) {
  const int receivers = GetParam();
  Fixture f(static_cast<std::size_t>(receivers) + 1);
  f.give(0, 1, 1, {0}, 0.5);
  for (int i = 1; i <= receivers; ++i) {
    f.want(static_cast<std::size_t>(i), {1});
  }
  const auto plan =
      planDownload(f.peers, f.popularityFn(), 100, Scheduling::kCooperative);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].requesters.size(), static_cast<std::size_t>(receivers));
}

INSTANTIATE_TEST_SUITE_P(Receivers, BroadcastAdvantageSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace hdtn::core
