#include "src/util/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/util/stats.hpp"

namespace hdtn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng parent1(99), parent2(99);
  Rng childA = parent1.fork(1);
  Rng childB = parent2.fork(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(childA(), childB());
  }
  Rng parent3(99);
  Rng childC = parent3.fork(2);
  Rng parent4(99);
  Rng childD = parent4.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (childC() == childD()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniformInt(3, 9);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.uniformInt(5, 5), 5);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(42.0));
  EXPECT_NEAR(stats.mean(), 42.0, 1.0);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, PickIndexInBounds) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.pickIndex(13), 13u);
  }
}

// --- paper's popularity distribution ------------------------------------

TEST(Popularity, SamplesAreProbabilities) {
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) {
    const double p = samplePopularity(rng, 20.0);
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
  }
}

TEST(Popularity, MeanApproximatelyInverseLambda) {
  // The paper chooses lambda = n/2 so that n * E[p] ~= 2 queries per node
  // per day. Check E[p] ~= 1/lambda for a representative lambda.
  Rng rng(43);
  const double lambda = 20.0;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(samplePopularity(rng, lambda));
  // Exact mean of the truncated-exponential inverse CDF is close to
  // 1/lambda for lambda >> 1.
  EXPECT_NEAR(stats.mean(), 1.0 / lambda, 0.01);
}

TEST(Popularity, LambdaRuleGivesTwoQueriesPerNodePerDay) {
  for (int filesPerDay : {10, 40, 100}) {
    const double lambda = popularityLambdaForFilesPerDay(filesPerDay);
    EXPECT_DOUBLE_EQ(lambda, filesPerDay / 2.0);
    Rng rng(47);
    double expectedQueries = 0.0;
    for (int i = 0; i < filesPerDay; ++i) {
      expectedQueries += samplePopularity(rng, lambda);
    }
    // n draws of mean ~1/lambda each -> ~2, loose tolerance for small n.
    EXPECT_NEAR(expectedQueries, 2.0, 1.5);
  }
}

TEST(Popularity, InverseCdfMatchesClosedForm) {
  // p = -log(1 - x(1 - e^-lambda)) / lambda evaluated at known x.
  const double lambda = 10.0;
  // x = 0 -> p = 0; x -> 1 gives p -> 1.
  Rng zero(0);
  // Direct check of the formula at x = 0.5 via a tiny shim: sample many and
  // verify the median matches the closed form at x = 0.5.
  Rng rng(53);
  SampleSet samples;
  for (int i = 0; i < 100001; ++i) samples.add(samplePopularity(rng, lambda));
  const double expectedMedian =
      -std::log(1.0 - 0.5 * (1.0 - std::exp(-lambda))) / lambda;
  EXPECT_NEAR(samples.median(), expectedMedian, 0.005);
}

// --- cyclic order ---------------------------------------------------------

TEST(CyclicOrder, SamePermutationForSameMembers) {
  const std::vector<NodeId> a{NodeId(3), NodeId(1), NodeId(7)};
  const std::vector<NodeId> b{NodeId(7), NodeId(3), NodeId(1)};  // reordered
  EXPECT_EQ(cyclicOrder(a), cyclicOrder(b));
}

TEST(CyclicOrder, IsPermutationOfMembers) {
  const std::vector<NodeId> members{NodeId(2), NodeId(4), NodeId(9),
                                    NodeId(12), NodeId(40)};
  auto order = cyclicOrder(members);
  ASSERT_EQ(order.size(), members.size());
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  auto expected = members;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST(CyclicOrder, DifferentCliquesGetDifferentOrders) {
  // Not guaranteed for every pair, but for these sets the seeds (id sums)
  // differ, and with 8 elements a coincidental identical permutation is
  // vanishingly unlikely.
  std::vector<NodeId> a, b;
  for (std::uint32_t i = 0; i < 8; ++i) a.emplace_back(i);
  for (std::uint32_t i = 1; i < 9; ++i) b.emplace_back(i);
  const auto orderA = cyclicOrder(a);
  const auto orderB = cyclicOrder(b);
  std::vector<std::uint32_t> rawA, rawB;
  for (auto n : orderA) rawA.push_back(n.value);
  for (auto n : orderB) rawB.push_back(n.value - 1);
  EXPECT_NE(rawA, rawB);
}

// Parameterized sweep: uniformInt stays unbiased across ranges.
class UniformIntSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(UniformIntSweep, MeanIsCenterOfRange) {
  const std::int64_t hi = GetParam();
  Rng rng(61);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.add(static_cast<double>(rng.uniformInt(0, hi)));
  }
  const double expected = static_cast<double>(hi) / 2.0;
  EXPECT_NEAR(stats.mean(), expected, std::max(0.05, expected * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Ranges, UniformIntSweep,
                         ::testing::Values<std::int64_t>(1, 2, 7, 100, 1000,
                                                         1 << 20));

}  // namespace
}  // namespace hdtn
