// The resident sweep service end to end, against real hdtn_sim workers:
// submit/status/cancel over the socket, invalid-scenario rejection,
// backpressure, fail-fast on validation errors, SIGKILL-crash retry with
// byte-identical outputs, priority preemption, and a daemon restart
// mid-queue that loses nothing (docs/SERVICE.md).
#include <gtest/gtest.h>

#include <signal.h>

#include <filesystem>
#include <string>

#include "service_test_util.hpp"
#include "src/service/queue.hpp"

namespace hdtn::service {
namespace {

namespace fs = std::filesystem;
using namespace testutil;

TEST(ServiceDaemonTest, RunsSubmittedJobsToDoneAndReportsResults) {
  DaemonHarness harness(testConfig("basic"));
  ASSERT_EQ(harness.start(), "");
  std::string error;
  const std::uint64_t first =
      submitJob(harness.socketPath(), "quick-1", 0, quickScenario(1), &error);
  ASSERT_NE(first, 0u) << error;
  const std::uint64_t second =
      submitJob(harness.socketPath(), "quick-2", 0, quickScenario(2), &error);
  ASSERT_NE(second, 0u) << error;
  ASSERT_TRUE(harness.waitForDrain(60.0));

  const FlatObject job = statusJob(harness.socketPath(), first);
  EXPECT_EQ(getString(job, "state"), "done");
  EXPECT_EQ(getInt(job, "attempts"), 1);
  // The worker's CSV result row is captured into the job record.
  EXPECT_NE(getString(job, "result").find("mbt-qm"), std::string::npos);
  EXPECT_EQ(getString(statusJob(harness.socketPath(), second), "state"),
            "done");
  // The service wires each job's obs stream into its job directory.
  const std::string events =
      harness.config().stateDir + "/jobs/" + std::to_string(first) +
      "/events.jsonl";
  EXPECT_TRUE(fs::exists(events));
  EXPECT_GT(fs::file_size(events), 0u);
  FlatObject top;
  (void)statusJobs(harness.socketPath(), &top);
  EXPECT_EQ(getInt(top, "done"), 2);
  EXPECT_GT(getInt(top, "journal_bytes_written"), 0);
  EXPECT_GT(getInt(top, "output_bytes_written"), 0);
}

TEST(ServiceDaemonTest, RejectsAnInvalidScenarioAtSubmitTime) {
  DaemonHarness harness(testConfig("reject"));
  ASSERT_EQ(harness.start(), "");
  std::string error;
  EXPECT_EQ(submitJob(harness.socketPath(), "bad", 0,
                      "no-such-key = 1\n", &error),
            0u);
  EXPECT_NE(error.find("invalid scenario"), std::string::npos);
  // Nothing was accepted, so nothing is pending.
  FlatObject top;
  (void)statusJobs(harness.socketPath(), &top);
  EXPECT_EQ(getInt(top, "pending", -1), 0);
}

TEST(ServiceDaemonTest, ShedsSubmissionsPastTheQueueDepth) {
  DaemonConfig config = testConfig("backpressure", /*workers=*/1);
  config.queueLimits.maxDepth = 2;
  DaemonHarness harness(config);
  ASSERT_EQ(harness.start(), "");
  std::string error;
  ASSERT_NE(submitJob(harness.socketPath(), "s1", 0, slowScenario(1)), 0u);
  ASSERT_NE(submitJob(harness.socketPath(), "s2", 0, quickScenario(2)), 0u);
  EXPECT_EQ(
      submitJob(harness.socketPath(), "s3", 0, quickScenario(3), &error),
      0u);
  EXPECT_NE(error.find("queue full"), std::string::npos);
}

TEST(ServiceDaemonTest, CleanValidationExitFailsFastWithoutRetries) {
  // The scenario parses (so submit accepts it) but names an unreadable
  // trace file, which the worker reports as a validation error (exit 2).
  DaemonHarness harness(testConfig("failfast"));
  ASSERT_EQ(harness.start(), "");
  const std::string scenario =
      "trace = /no/such/trace/file\nfiles-per-day = 10\n";
  std::string error;
  const std::uint64_t id =
      submitJob(harness.socketPath(), "doomed", 0, scenario, &error);
  ASSERT_NE(id, 0u) << error;
  ASSERT_TRUE(harness.waitForDrain(30.0));
  const FlatObject job = statusJob(harness.socketPath(), id);
  EXPECT_EQ(getString(job, "state"), "failed");
  // Fail fast: exactly one attempt, and the error says why.
  EXPECT_EQ(getInt(job, "attempts"), 1);
  EXPECT_NE(getString(job, "error").find("not retried"), std::string::npos);
}

TEST(ServiceDaemonTest, CancelsAWaitingJob) {
  DaemonConfig config = testConfig("cancel", /*workers=*/1);
  DaemonHarness harness(config);
  ASSERT_EQ(harness.start(), "");
  ASSERT_NE(submitJob(harness.socketPath(), "busy", 0, slowScenario(1)), 0u);
  const std::uint64_t waiting =
      submitJob(harness.socketPath(), "waiting", 0, quickScenario(2));
  ASSERT_NE(waiting, 0u);
  std::string reply;
  ASSERT_TRUE(roundTrip(harness.socketPath(),
                        "{\"cmd\":\"cancel\",\"id\":" +
                            std::to_string(waiting) + "}",
                        &reply));
  FlatObject fields;
  ASSERT_TRUE(parseFlatObject(reply, &fields, nullptr));
  EXPECT_TRUE(getBool(fields, "ok"));
  ASSERT_TRUE(harness.waitForDrain(60.0));
  EXPECT_EQ(getString(statusJob(harness.socketPath(), waiting), "state"),
            "cancelled");
}

TEST(ServiceDaemonTest, SigkilledWorkerRetriesAndProducesIdenticalOutputs) {
  DaemonHarness harness(testConfig("crash"));
  ASSERT_EQ(harness.start(), "");
  // Two identical jobs: one runs undisturbed, the other is SIGKILLed
  // mid-run. Checkpoint v5 resume makes their outputs byte-identical.
  const std::uint64_t reference =
      submitJob(harness.socketPath(), "reference", 0, slowScenario(9));
  ASSERT_NE(reference, 0u);
  const std::uint64_t victim =
      submitJob(harness.socketPath(), "victim", 0, slowScenario(9));
  ASSERT_NE(victim, 0u);

  // Wait until the victim is visibly running, then SIGKILL its worker.
  pid_t pid = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const FlatObject job = statusJob(harness.socketPath(), victim);
    if (getString(job, "state") == "running" && getInt(job, "pid") > 0) {
      pid = static_cast<pid_t>(getInt(job, "pid"));
      break;
    }
    ASSERT_NE(getString(job, "state"), "done")
        << "victim finished before it could be killed; slowScenario is "
           "too fast for this machine";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(pid, 0);
  ASSERT_EQ(kill(pid, SIGKILL), 0);

  ASSERT_TRUE(harness.waitForDrain(120.0));
  const FlatObject victimJob = statusJob(harness.socketPath(), victim);
  EXPECT_EQ(getString(victimJob, "state"), "done");
  EXPECT_GE(getInt(victimJob, "attempts"), 2);
  const FlatObject referenceJob = statusJob(harness.socketPath(), reference);
  EXPECT_EQ(getString(referenceJob, "state"), "done");
  EXPECT_EQ(getInt(referenceJob, "attempts"), 1);

  const std::string stateDir = harness.config().stateDir;
  const std::string referenceEvents =
      readFile(stateDir + "/jobs/" + std::to_string(reference) +
               "/events.jsonl");
  const std::string victimEvents = readFile(
      stateDir + "/jobs/" + std::to_string(victim) + "/events.jsonl");
  ASSERT_FALSE(referenceEvents.empty());
  EXPECT_EQ(referenceEvents, victimEvents);
  EXPECT_EQ(getString(referenceJob, "result"),
            getString(victimJob, "result"));
}

TEST(ServiceDaemonTest, HigherPriorityPreemptsTheRunningJob) {
  DaemonConfig config = testConfig("preempt", /*workers=*/1);
  DaemonHarness harness(config);
  ASSERT_EQ(harness.start(), "");
  const std::uint64_t low =
      submitJob(harness.socketPath(), "low", 0, slowScenario(3));
  ASSERT_NE(low, 0u);
  // Let the low-priority job get a worker first.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline &&
         getString(statusJob(harness.socketPath(), low), "state") !=
             "running") {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(getString(statusJob(harness.socketPath(), low), "state"),
            "running");
  const std::uint64_t high =
      submitJob(harness.socketPath(), "high", 5, quickScenario(4));
  ASSERT_NE(high, 0u);
  ASSERT_TRUE(harness.waitForDrain(120.0));
  const FlatObject lowJob = statusJob(harness.socketPath(), low);
  EXPECT_EQ(getString(lowJob, "state"), "done");
  EXPECT_GE(getInt(lowJob, "preemptions"), 1);
  EXPECT_EQ(getString(statusJob(harness.socketPath(), high), "state"),
            "done");
}

TEST(ServiceDaemonTest, RestartMidQueueLosesNothing) {
  DaemonConfig config = testConfig("restart", /*workers=*/1);
  const std::string stateDir = config.stateDir;
  std::uint64_t ids[3] = {0, 0, 0};
  {
    DaemonHarness harness(config);
    ASSERT_EQ(harness.start(), "");
    ids[0] = submitJob(harness.socketPath(), "r1", 0, slowScenario(5));
    ids[1] = submitJob(harness.socketPath(), "r2", 0, quickScenario(6));
    ids[2] = submitJob(harness.socketPath(), "r3", 0, quickScenario(7));
    ASSERT_NE(ids[0], 0u);
    ASSERT_NE(ids[1], 0u);
    ASSERT_NE(ids[2], 0u);
    // Shut down while the first job is mid-run: it checkpoints and the
    // other two never started.
    harness.stop();
  }
  // The durable queue brings all three back; the interrupted one resumes.
  DaemonHarness second(config);
  ASSERT_EQ(second.start(), "");
  ASSERT_TRUE(second.waitForDrain(120.0));
  for (const std::uint64_t id : ids) {
    const FlatObject job = statusJob(second.socketPath(), id);
    EXPECT_EQ(getString(job, "state"), "done")
        << "job " << id << ": " << getString(job, "error");
  }
}

}  // namespace
}  // namespace hdtn::service
