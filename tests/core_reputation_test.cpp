// ReputationTracker: evidence weights, deterministic linear decay,
// quarantine threshold with hysteresis (enter at the threshold, release
// only under half of it, no per-contact flapping), and state serialization.
#include "src/core/reputation.hpp"

#include <gtest/gtest.h>

#include <string>

#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {
namespace {

ReputationParams defenseParams() {
  ReputationParams params;
  params.defense = true;
  return params;
}

TEST(ReputationParams, DefaultsAreDisabledAndValid) {
  ReputationParams params;
  EXPECT_FALSE(params.enabled());
  EXPECT_TRUE(params.validate().empty());
  EXPECT_TRUE(defenseParams().enabled());
}

TEST(ReputationParams, ValidateRejectsBadThresholdWeightsAndDecay) {
  auto expectSingle = [](const ReputationParams& params, const char* field) {
    const auto errors = params.validate();
    ASSERT_EQ(errors.size(), 1u) << field;
    EXPECT_NE(errors.front().find(field), std::string::npos)
        << "actual: " << errors.front();
  };
  ReputationParams params = defenseParams();
  params.quarantineThreshold = 0.0;
  expectSingle(params, "quarantineThreshold");
  params = defenseParams();
  params.failedVerificationWeight = -1.0;
  expectSingle(params, "failedVerificationWeight");
  params = defenseParams();
  params.summaryMismatchWeight = -0.5;
  expectSingle(params, "summaryMismatchWeight");
  params = defenseParams();
  params.ackAnomalyWeight = -0.1;
  expectSingle(params, "ackAnomalyWeight");
  params = defenseParams();
  params.broadcastSuppressedWeight = -2.0;
  expectSingle(params, "broadcastSuppressedWeight");
  params = defenseParams();
  params.decayPerDay = -1.0;
  expectSingle(params, "decayPerDay");
}

TEST(ReputationTracker, EvidenceAccumulatesByKindWeight) {
  ReputationTracker tracker(defenseParams());
  const NodeId node{4};
  EXPECT_EQ(tracker.suspicion(node, 0), 0.0);
  EXPECT_FALSE(tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0));
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, 0), 1.0);
  EXPECT_FALSE(tracker.addEvidence(node, EvidenceKind::kSummaryMismatch, 0));
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, 0), 1.5);
  EXPECT_FALSE(tracker.addEvidence(node, EvidenceKind::kAckAnomaly, 0));
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, 0), 1.65);
  EXPECT_FALSE(
      tracker.addEvidence(node, EvidenceKind::kBroadcastSuppressed, 0));
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, 0), 2.15);
  // Other nodes are untouched.
  EXPECT_EQ(tracker.suspicion(NodeId{5}, 0), 0.0);
}

TEST(ReputationTracker, SuspicionDecaysLinearlyAndClampsAtZero) {
  ReputationTracker tracker(defenseParams());  // decayPerDay = 1.0
  const NodeId node{1};
  (void)tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0);
  (void)tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0);
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, 0), 2.0);
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, kDay / 2), 1.5);
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, kDay), 1.0);
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, 3 * kDay), 0.0);
  // suspicion() is const: querying the future must not advance the entry.
  EXPECT_DOUBLE_EQ(tracker.suspicion(node, kDay), 1.0);
}

TEST(ReputationTracker, QuarantineTriggersExactlyAtThreshold) {
  ReputationTracker tracker(defenseParams());  // threshold 3.0, weight 1.0
  const NodeId node{9};
  EXPECT_FALSE(tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0));
  EXPECT_FALSE(tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0));
  EXPECT_FALSE(tracker.isQuarantined(node, 0));
  // The crossing evidence reports the quarantine exactly once.
  EXPECT_TRUE(tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0));
  EXPECT_TRUE(tracker.isQuarantined(node, 0));
  EXPECT_EQ(tracker.quarantinedCount(), 1u);
  // Further evidence while quarantined never re-reports.
  EXPECT_FALSE(tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0));
  EXPECT_TRUE(tracker.isQuarantined(node, 0));
}

TEST(ReputationTracker, HysteresisReleasesOnlyUnderHalfThreshold) {
  ReputationTracker tracker(defenseParams());
  const NodeId node{2};
  for (int i = 0; i < 3; ++i) {
    (void)tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0);
  }
  ASSERT_TRUE(tracker.isQuarantined(node, 0));
  // One day of decay brings suspicion to 2.0 — under the entry threshold
  // but above the release level (1.5): still quarantined, no flapping.
  bool released = false;
  EXPECT_TRUE(tracker.isQuarantined(node, kDay, &released));
  EXPECT_FALSE(released);
  // At 1.4 days suspicion is 1.6: still held.
  EXPECT_TRUE(tracker.isQuarantined(node, kDay + 2 * kDay / 5, &released));
  EXPECT_FALSE(released);
  // At 1.6 days suspicion is 1.4 < 1.5: released, reported exactly once.
  EXPECT_FALSE(tracker.isQuarantined(node, kDay + 3 * kDay / 5, &released));
  EXPECT_TRUE(released);
  released = false;
  EXPECT_FALSE(tracker.isQuarantined(node, 2 * kDay, &released));
  EXPECT_FALSE(released);
  EXPECT_EQ(tracker.quarantinedCount(), 0u);
}

TEST(ReputationTracker, ReleasedNodeNeedsFullThresholdToReenter) {
  ReputationTracker tracker(defenseParams());
  const NodeId node{3};
  for (int i = 0; i < 3; ++i) {
    (void)tracker.addEvidence(node, EvidenceKind::kFailedVerification, 0);
  }
  ASSERT_TRUE(tracker.isQuarantined(node, 0));
  ASSERT_FALSE(tracker.isQuarantined(node, 2 * kDay));  // decayed to 1.0
  // A weak anomaly after release must not flip the node straight back.
  EXPECT_FALSE(tracker.addEvidence(node, EvidenceKind::kAckAnomaly, 2 * kDay));
  EXPECT_FALSE(tracker.isQuarantined(node, 2 * kDay));
  // Only a fresh climb to the full threshold re-quarantines.
  EXPECT_FALSE(
      tracker.addEvidence(node, EvidenceKind::kFailedVerification, 2 * kDay));
  EXPECT_TRUE(
      tracker.addEvidence(node, EvidenceKind::kFailedVerification, 2 * kDay));
  EXPECT_TRUE(tracker.isQuarantined(node, 2 * kDay));
}

TEST(ReputationTracker, UnknownNodesAreCleanAndFree) {
  ReputationTracker tracker(defenseParams());
  EXPECT_EQ(tracker.suspicion(NodeId{123}, kDay), 0.0);
  EXPECT_FALSE(tracker.isQuarantined(NodeId{123}, kDay));
  EXPECT_EQ(tracker.quarantinedCount(), 0u);
}

TEST(ReputationTracker, SaveLoadRoundTripsEntriesExactly) {
  ReputationTracker original(defenseParams());
  (void)original.addEvidence(NodeId{1}, EvidenceKind::kSummaryMismatch, kDay);
  for (int i = 0; i < 3; ++i) {
    (void)original.addEvidence(NodeId{6}, EvidenceKind::kFailedVerification,
                               kDay);
  }
  (void)original.addEvidence(NodeId{8}, EvidenceKind::kAckAnomaly, 2 * kDay);
  ASSERT_TRUE(original.isQuarantined(NodeId{6}, kDay));

  Serializer out;
  original.saveState(out);
  ReputationTracker restored(defenseParams());
  Deserializer in(out.bytes());
  restored.loadState(in);
  EXPECT_TRUE(in.done());

  for (std::uint32_t id : {1u, 6u, 8u, 99u}) {
    const NodeId node{id};
    EXPECT_DOUBLE_EQ(restored.suspicion(node, 2 * kDay),
                     original.suspicion(node, 2 * kDay))
        << "node " << id;
    EXPECT_EQ(restored.isQuarantined(node, 2 * kDay),
              original.isQuarantined(node, 2 * kDay))
        << "node " << id;
  }
  EXPECT_EQ(restored.quarantinedCount(), original.quarantinedCount());
  // Decay continues identically after restore.
  EXPECT_EQ(restored.isQuarantined(NodeId{6}, 4 * kDay),
            original.isQuarantined(NodeId{6}, 4 * kDay));
}

}  // namespace
}  // namespace hdtn::core
