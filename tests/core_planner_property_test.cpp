// Property-based tests of the discovery and download planners: invariants
// that must hold for ANY node state, checked over randomized fixtures.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "src/core/discovery.hpp"
#include "src/core/download.hpp"
#include "src/core/internet.hpp"
#include "src/net/codec.hpp"
#include "src/util/random.hpp"

namespace hdtn::core {
namespace {

struct RandomFixture {
  InternetServices internet;
  std::vector<MetadataStore> metadataStores;
  std::vector<PieceStore> pieceStores;
  std::vector<CreditLedger> ledgers;
  std::vector<std::vector<FileId>> wantedStorage;
  std::vector<DiscoveryPeer> discoveryPeers;
  std::vector<DownloadPeer> downloadPeers;

  RandomFixture(std::uint64_t seed, std::size_t members, int files) {
    Rng rng(seed);
    SyntheticBatchParams batch;
    batch.count = files;
    batch.publishedAt = 0;
    batch.ttl = 3 * kDay;
    batch.lambda = files / 2.0;
    publishSyntheticBatch(internet, batch, rng);

    metadataStores.resize(members);
    pieceStores.resize(members);
    ledgers.resize(members);
    wantedStorage.resize(members);
    for (std::size_t i = 0; i < members; ++i) {
      for (FileId f : internet.catalog().allFiles()) {
        if (rng.chance(0.5)) {
          metadataStores[i].add(internet.catalog().metadataFor(f));
        }
        if (rng.chance(0.4)) {
          pieceStores[i].registerFile(f, 1);
          pieceStores[i].addPiece(f, 0);
        }
      }
      DiscoveryPeer dp;
      dp.id = NodeId(static_cast<std::uint32_t>(i));
      dp.store = &metadataStores[i];
      dp.credits = &ledgers[i];
      dp.contributes = rng.chance(0.8);
      DownloadPeer lp;
      lp.id = dp.id;
      lp.pieces = &pieceStores[i];
      lp.credits = &ledgers[i];
      lp.contributes = dp.contributes;
      // Random queries / wants targeting real files.
      const int queries = static_cast<int>(rng.uniformInt(0, 3));
      for (int q = 0; q < queries; ++q) {
        const FileId target(
            static_cast<std::uint32_t>(rng.pickIndex(
                static_cast<std::size_t>(files))));
        dp.queries.push_back(
            canonicalQueryText(*internet.catalog().find(target)));
        wantedStorage[i].push_back(target);
      }
      lp.wanted = wantedStorage[i];
      for (std::size_t p = 0; p < members; ++p) {
        ledgers[i].addCredit(NodeId(static_cast<std::uint32_t>(p)),
                             rng.uniform(0.0, 10.0));
      }
      discoveryPeers.push_back(std::move(dp));
      downloadPeers.push_back(std::move(lp));
    }
  }

  [[nodiscard]] PopularityFn popularityFn() const {
    return [this](FileId f) {
      const FileInfo* info = internet.catalog().find(f);
      return info == nullptr ? 0.0 : info->popularity;
    };
  }
};

struct PropertyCase {
  std::uint64_t seed;
  Scheduling scheduling;
};

class PlannerPropertySweep : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(PlannerPropertySweep, DiscoveryInvariants) {
  const PropertyCase param = GetParam();
  RandomFixture fx(param.seed, 8, 40);
  const int budget = 12;
  const auto plan =
      planDiscovery(fx.discoveryPeers, budget, param.scheduling);

  EXPECT_LE(plan.size(), static_cast<std::size_t>(budget));
  std::set<FileId> seen;
  bool sawPhase2 = false;
  for (const MetadataBroadcast& b : plan) {
    // Each record at most once.
    EXPECT_TRUE(seen.insert(b.metadata->file).second);
    // The sender holds what it sends and contributes.
    const auto& sender = fx.discoveryPeers[b.sender.value];
    EXPECT_TRUE(sender.store->has(b.metadata->file));
    EXPECT_TRUE(sender.contributes);
    // Some receiver lacks the record.
    bool someoneLacks = false;
    for (const auto& peer : fx.discoveryPeers) {
      if (!peer.store->has(b.metadata->file)) someoneLacks = true;
    }
    EXPECT_TRUE(someoneLacks);
    // Requesters really lack it (they cannot request what they hold).
    for (NodeId r : b.requesters) {
      EXPECT_FALSE(fx.discoveryPeers[r.value].store->has(b.metadata->file));
    }
    // Phase flags consistent with requesters.
    EXPECT_EQ(b.phase, b.requesters.empty() ? 2 : 1);
    // Cooperative scheduling: once the push phase starts, no requested
    // record may follow.
    if (param.scheduling == Scheduling::kCooperative) {
      if (b.phase == 2) sawPhase2 = true;
      if (sawPhase2) {
        EXPECT_EQ(b.phase, 2);
      }
    }
  }
}

TEST_P(PlannerPropertySweep, DownloadInvariants) {
  const PropertyCase param = GetParam();
  RandomFixture fx(param.seed, 8, 40);
  const int budget = 10;
  const auto plan = planDownload(fx.downloadPeers, fx.popularityFn(), budget,
                                 param.scheduling);

  EXPECT_LE(plan.size(), static_cast<std::size_t>(budget));
  std::set<std::pair<FileId, std::uint32_t>> seen;
  for (const PieceBroadcast& b : plan) {
    EXPECT_TRUE(seen.insert({b.file, b.piece}).second);
    const auto& sender = fx.downloadPeers[b.sender.value];
    EXPECT_TRUE(sender.pieces->hasPiece(b.file, b.piece));
    EXPECT_TRUE(sender.contributes);
    for (NodeId r : b.requesters) {
      const auto& peer = fx.downloadPeers[r.value];
      EXPECT_FALSE(peer.pieces->hasPiece(b.file, b.piece));
      EXPECT_NE(std::find(peer.wanted.begin(), peer.wanted.end(), b.file),
                peer.wanted.end());
    }
  }
}

TEST_P(PlannerPropertySweep, PairwiseInvariants) {
  const PropertyCase param = GetParam();
  RandomFixture fx(param.seed, 9, 40);  // odd member count
  const auto plan =
      planPairwiseDownload(fx.downloadPeers, fx.popularityFn(), 5);
  std::map<NodeId, std::set<NodeId>> partners;
  for (const PieceTransfer& t : plan) {
    EXPECT_NE(t.sender, t.receiver);
    const auto& sender = fx.downloadPeers[t.sender.value];
    const auto& receiver = fx.downloadPeers[t.receiver.value];
    EXPECT_TRUE(sender.pieces->hasPiece(t.file, t.piece));
    EXPECT_FALSE(receiver.pieces->hasPiece(t.file, t.piece));
    partners[t.sender].insert(t.receiver);
    partners[t.receiver].insert(t.sender);
  }
  // Matching is disjoint: every node exchanges with at most one partner.
  for (const auto& [node, peers] : partners) {
    EXPECT_LE(peers.size(), 1u) << "node " << node.value;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Randomized, PlannerPropertySweep,
    ::testing::Values(PropertyCase{1, Scheduling::kCooperative},
                      PropertyCase{2, Scheduling::kCooperative},
                      PropertyCase{3, Scheduling::kCooperative},
                      PropertyCase{4, Scheduling::kTitForTat},
                      PropertyCase{5, Scheduling::kTitForTat},
                      PropertyCase{6, Scheduling::kTitForTat},
                      PropertyCase{7, Scheduling::kPopularityOnly},
                      PropertyCase{8, Scheduling::kPopularityOnly}));

// The optimized discovery planner (indexed candidates, per-sender heaps)
// must be indistinguishable from the naive reference transcription: same
// broadcasts, same order, same requester lists, byte for byte.
void expectPlansIdentical(const std::vector<MetadataBroadcast>& optimized,
                          const std::vector<MetadataBroadcast>& reference) {
  ASSERT_EQ(optimized.size(), reference.size());
  for (std::size_t i = 0; i < optimized.size(); ++i) {
    EXPECT_EQ(optimized[i].sender, reference[i].sender) << "broadcast " << i;
    EXPECT_EQ(optimized[i].metadata, reference[i].metadata) << "broadcast "
                                                            << i;
    EXPECT_EQ(optimized[i].requesters, reference[i].requesters)
        << "broadcast " << i;
    EXPECT_EQ(optimized[i].phase, reference[i].phase) << "broadcast " << i;
  }
}

class PlannerEquivalenceSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PlannerEquivalenceSweep, OptimizedMatchesReferenceAllSchedulings) {
  const std::uint64_t seed = GetParam();
  for (const Scheduling scheduling :
       {Scheduling::kCooperative, Scheduling::kTitForTat,
        Scheduling::kPopularityOnly}) {
    RandomFixture fx(seed, 10, 50);
    for (const int budget : {1, 5, 12, 1000}) {
      expectPlansIdentical(
          planDiscovery(fx.discoveryPeers, budget, scheduling),
          planDiscoveryReference(fx.discoveryPeers, budget, scheduling));
    }
  }
}

TEST_P(PlannerEquivalenceSweep, OptimizedMatchesReferenceWithRefusals) {
  const std::uint64_t seed = GetParam();
  RandomFixture fx(seed, 8, 40);
  // Random refusals and distrust to exercise the planner's exclusion rules.
  Rng rng(seed * 977 + 13);
  std::vector<std::unordered_set<FileId>> rejected(fx.discoveryPeers.size());
  std::vector<std::unordered_set<NodeId>> distrusted(
      fx.discoveryPeers.size());
  for (std::size_t i = 0; i < fx.discoveryPeers.size(); ++i) {
    for (FileId f : fx.internet.catalog().allFiles()) {
      if (rng.chance(0.1)) rejected[i].insert(f);
    }
    for (std::size_t p = 0; p < fx.discoveryPeers.size(); ++p) {
      if (rng.chance(0.15)) {
        distrusted[i].insert(NodeId(static_cast<std::uint32_t>(p)));
      }
    }
    fx.discoveryPeers[i].rejected = &rejected[i];
    fx.discoveryPeers[i].distrustedSenders = &distrusted[i];
  }
  for (const Scheduling scheduling :
       {Scheduling::kCooperative, Scheduling::kTitForTat,
        Scheduling::kPopularityOnly}) {
    expectPlansIdentical(
        planDiscovery(fx.discoveryPeers, 15, scheduling),
        planDiscoveryReference(fx.discoveryPeers, 15, scheduling));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerEquivalenceSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// Codec round-trip over randomized hello messages.
class CodecRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CodecRoundTripSweep, RandomHellosSurvive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    net::HelloMessage hello;
    hello.sender = NodeId(static_cast<std::uint32_t>(rng.uniformInt(0, 1 << 20)));
    const int neighbors = static_cast<int>(rng.uniformInt(0, 10));
    for (int i = 0; i < neighbors; ++i) {
      hello.heardNeighbors.emplace_back(
          static_cast<std::uint32_t>(rng.uniformInt(0, 1 << 16)));
    }
    const int queries = static_cast<int>(rng.uniformInt(0, 5));
    for (int i = 0; i < queries; ++i) {
      std::string q;
      const int len = static_cast<int>(rng.uniformInt(0, 40));
      for (int c = 0; c < len; ++c) {
        q.push_back(static_cast<char>(rng.uniformInt(32, 126)));
      }
      hello.queries.push_back(std::move(q));
    }
    const auto decoded = net::decodeHello(net::encodeHello(hello));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->sender, hello.sender);
    EXPECT_EQ(decoded->heardNeighbors, hello.heardNeighbors);
    EXPECT_EQ(decoded->queries, hello.queries);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTripSweep,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace hdtn::core
