#include "src/core/query.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

Metadata makeMetadata(std::uint32_t id, const std::string& name,
                      const std::string& publisher,
                      const std::string& description, double popularity) {
  Metadata md;
  md.file = FileId(id);
  md.name = name;
  md.publisher = publisher;
  md.description = description;
  md.uri = "dtn://" + publisher + "/f" + std::to_string(id);
  md.popularity = popularity;
  md.ttl = 1000;
  md.rebuildKeywords();
  return md;
}

TEST(QueryMatches, AllKeywordsMustAppear) {
  const Metadata md =
      makeMetadata(1, "fox news daily ep1", "fox", "breaking stories", 0.5);
  EXPECT_TRUE(queryMatches("news ep1", md));
  EXPECT_TRUE(queryMatches("fox", md));
  EXPECT_TRUE(queryMatches("breaking daily", md));  // across fields
  EXPECT_FALSE(queryMatches("news ep2", md));
  EXPECT_FALSE(queryMatches("cnn", md));
}

TEST(QueryMatches, CaseAndPunctuationInsensitive) {
  const Metadata md = makeMetadata(1, "Fox NEWS: daily-EP1", "fox", "", 0.5);
  EXPECT_TRUE(queryMatches("FOX news", md));
  EXPECT_TRUE(queryMatches("daily, ep1!", md));
}

TEST(QueryMatches, EmptyQueryMatchesNothing) {
  const Metadata md = makeMetadata(1, "fox news", "fox", "", 0.5);
  EXPECT_FALSE(queryMatches("", md));
  EXPECT_FALSE(queryMatches("   ", md));
}

TEST(QueryMatches, WorksWithoutPrecomputedKeywords) {
  Metadata md = makeMetadata(1, "fox news", "fox", "", 0.5);
  md.keywords.clear();  // hand-built metadata; falls back to tokenizing
  EXPECT_TRUE(queryMatches("news", md));
  EXPECT_FALSE(queryMatches("drama", md));
}

TEST(QueryTokensMatch, PretokenizedEquivalent) {
  const Metadata md = makeMetadata(1, "fox news daily ep1", "fox", "", 0.5);
  EXPECT_TRUE(queryTokensMatch({"news", "ep1"}, md));
  EXPECT_FALSE(queryTokensMatch({"news", "ep2"}, md));
  EXPECT_FALSE(queryTokensMatch({}, md));
}

TEST(RankMatches, FiltersAndSortsByPopularity) {
  const Metadata a = makeMetadata(1, "fox news ep1", "fox", "", 0.2);
  const Metadata b = makeMetadata(2, "fox news ep2", "fox", "", 0.9);
  const Metadata c = makeMetadata(3, "abc drama ep3", "abc", "", 0.99);
  const auto ranked = rankMatches("fox news", {&a, &b, &c});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].metadata->file, FileId(2));  // more popular first
  EXPECT_EQ(ranked[1].metadata->file, FileId(1));
}

TEST(RankMatches, SpecificityBreaksPopularityTies) {
  // Same popularity; the record whose keyword set is smaller (the query
  // describes it more completely) ranks first.
  const Metadata precise = makeMetadata(1, "fox news", "fox", "", 0.5);
  const Metadata vague = makeMetadata(
      2, "fox news extra bonus content special edition", "fox", "", 0.5);
  const auto ranked = rankMatches("fox news", {&vague, &precise});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].metadata->file, FileId(1));
}

TEST(RankMatches, IgnoresNullCandidates) {
  const Metadata a = makeMetadata(1, "fox news", "fox", "", 0.5);
  const auto ranked = rankMatches("news", {nullptr, &a});
  ASSERT_EQ(ranked.size(), 1u);
}

TEST(BestMatch, FromStore) {
  MetadataStore store;
  store.add(makeMetadata(1, "fox news ep1", "fox", "", 0.2));
  store.add(makeMetadata(2, "fox news ep2", "fox", "", 0.8));
  const Metadata* best = bestMatch("fox news", store);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->file, FileId(2));
  EXPECT_EQ(bestMatch("nonexistent", store), nullptr);
}

TEST(Query, ExpiryBoundaries) {
  Query q;
  q.issuedAt = 100;
  q.ttl = 50;
  EXPECT_FALSE(q.expired(100));
  EXPECT_FALSE(q.expired(149));
  EXPECT_TRUE(q.expired(150));
  EXPECT_EQ(q.expiresAt(), 150);
}

// Fake-file scenario from the paper's motivation: same name, different
// publisher. Both match the name query; ranking by popularity steers the
// user to the established file, and authentication (tested elsewhere)
// exposes the forgery.
TEST(RankMatches, FakeFilesRankBelowPopularOriginals) {
  const Metadata real = makeMetadata(1, "fox news ep7", "fox", "", 0.7);
  const Metadata fake = makeMetadata(2, "fox news ep7", "faux", "", 0.01);
  const auto ranked = rankMatches("fox news ep7", {&fake, &real});
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].metadata->file, FileId(1));
}

}  // namespace
}  // namespace hdtn::core
