// GF(2^8) field arithmetic and RLNC encoder/decoder tests: exhaustive
// field laws, table-vs-bitwise cross-check, decoder round-trips under
// random erasures, rank monotonicity, recoding, and checkpoint state.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/coding.hpp"
#include "src/util/random.hpp"
#include "src/util/serialize.hpp"
#include "src/util/sha1.hpp"

namespace hdtn::core::coding {
namespace {

TEST(GfArithmetic, MulMatchesBitwiseForAllPairs) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(gfMul(static_cast<std::uint8_t>(a),
                      static_cast<std::uint8_t>(b)),
                gfMulSlow(static_cast<std::uint8_t>(a),
                          static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(GfArithmetic, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = gfInv(static_cast<std::uint8_t>(a));
    ASSERT_EQ(gfMul(static_cast<std::uint8_t>(a), inv), 1) << a;
    ASSERT_EQ(gfDiv(static_cast<std::uint8_t>(a),
                    static_cast<std::uint8_t>(a)),
              1);
  }
}

TEST(GfArithmetic, IdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto v = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gfMul(v, 1), v);
    EXPECT_EQ(gfMul(v, 0), 0);
    EXPECT_EQ(gfAdd(v, v), 0);  // characteristic 2
  }
}

TEST(GfArithmetic, DistributivityOnSampledTriples) {
  // a*(b+c) == a*b + a*c, sampled densely (full 256^3 is needlessly slow).
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      for (int c = 0; c < 256; c += 7) {
        const auto aa = static_cast<std::uint8_t>(a);
        const auto bb = static_cast<std::uint8_t>(b);
        const auto cc = static_cast<std::uint8_t>(c);
        ASSERT_EQ(gfMul(aa, gfAdd(bb, cc)),
                  gfAdd(gfMul(aa, bb), gfMul(aa, cc)))
            << a << " " << b << " " << c;
      }
    }
  }
}

TEST(GfArithmetic, MulIsAssociativeAndCommutativeOnSamples) {
  for (int a = 1; a < 256; a += 11) {
    for (int b = 1; b < 256; b += 13) {
      const auto aa = static_cast<std::uint8_t>(a);
      const auto bb = static_cast<std::uint8_t>(b);
      ASSERT_EQ(gfMul(aa, bb), gfMul(bb, aa));
      for (int c = 1; c < 256; c += 17) {
        const auto cc = static_cast<std::uint8_t>(c);
        ASSERT_EQ(gfMul(gfMul(aa, bb), cc), gfMul(aa, gfMul(bb, cc)));
      }
    }
  }
}

TEST(SparseCoefficients, DeterministicAndNeverAllZero) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const auto a = sparseCoefficients(8, seed, 0.3);
    const auto b = sparseCoefficients(8, seed, 0.3);
    EXPECT_EQ(a, b);
    bool any = false;
    for (std::uint8_t c : a) any |= (c != 0);
    EXPECT_TRUE(any) << "seed " << seed;
  }
  // Degenerate sparsity values clamp to dense rather than throwing.
  const auto dense = sparseCoefficients(4, 7, 0.0);
  EXPECT_EQ(dense.size(), 4u);
}

TEST(SparseCoefficients, SparsityControlsDensity) {
  std::size_t sparseNonZero = 0;
  std::size_t denseNonZero = 0;
  for (std::uint64_t seed = 0; seed < 500; ++seed) {
    for (std::uint8_t c : sparseCoefficients(16, seed, 0.2)) {
      sparseNonZero += (c != 0);
    }
    for (std::uint8_t c : sparseCoefficients(16, seed, 0.9)) {
      denseNonZero += (c != 0);
    }
  }
  EXPECT_LT(sparseNonZero * 2, denseNonZero);
}

std::vector<std::vector<std::uint8_t>> randomPieces(Rng& rng,
                                                    std::uint32_t k,
                                                    std::uint32_t bytes) {
  std::vector<std::vector<std::uint8_t>> pieces(k);
  for (auto& piece : pieces) {
    piece.resize(bytes);
    for (auto& byte : piece) {
      byte = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    }
  }
  return pieces;
}

TEST(GenerationDecoder, RoundTripsUnderRandomErasures) {
  Rng rng(0xC0DE01u);
  for (int trial = 0; trial < 40; ++trial) {
    const auto k = static_cast<std::uint32_t>(rng.uniformInt(1, 12));
    const auto bytes = static_cast<std::uint32_t>(rng.uniformInt(1, 64));
    const double sparsity = rng.uniform(0.2, 1.0);
    const double lossRate = rng.uniform(0.0, 0.6);
    const auto pieces = randomPieces(rng, k, bytes);
    CodedEncoder encoder(pieces);
    GenerationDecoder decoder(k, bytes);
    std::uint64_t seed = rng();
    int sent = 0;
    // Any k innovative frames decode, no matter which frames the channel
    // erased; the cap only guards against a broken decoder looping.
    while (!decoder.complete() && sent < 4000) {
      const auto frame = encoder.frame(seed++, sparsity);
      ++sent;
      if (rng.chance(lossRate)) continue;  // erased on the channel
      decoder.addFrame(frame.coefficients, frame.payload);
    }
    ASSERT_TRUE(decoder.complete())
        << "trial " << trial << " k=" << k << " loss=" << lossRate;
    EXPECT_EQ(decoder.decode(), pieces) << "trial " << trial;
  }
}

TEST(GenerationDecoder, RankIsMonotoneAndCapped) {
  Rng rng(0xC0DE02u);
  const std::uint32_t k = 6;
  const auto pieces = randomPieces(rng, k, 8);
  CodedEncoder encoder(pieces);
  GenerationDecoder decoder(k, 8);
  std::uint32_t lastRank = 0;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto frame = encoder.frame(seed, 0.5);
    const bool innovative = decoder.addFrame(frame.coefficients,
                                             frame.payload);
    if (innovative) {
      EXPECT_EQ(decoder.rank(), lastRank + 1);
    } else {
      EXPECT_EQ(decoder.rank(), lastRank);
    }
    lastRank = decoder.rank();
    ASSERT_LE(decoder.rank(), k);
  }
  EXPECT_TRUE(decoder.complete());
  // Further frames are all redundant at full rank.
  const auto extra = encoder.frame(999, 0.5);
  EXPECT_FALSE(decoder.addFrame(extra.coefficients, extra.payload));
  EXPECT_GT(decoder.rowOps(), 0u);
}

TEST(GenerationDecoder, SourcePiecesCountTowardRank) {
  Rng rng(0xC0DE03u);
  const std::uint32_t k = 5;
  const auto pieces = randomPieces(rng, k, 16);
  CodedEncoder encoder(pieces);
  GenerationDecoder decoder(k, 16);
  EXPECT_TRUE(decoder.addSourcePiece(2, pieces[2]));
  EXPECT_FALSE(decoder.addSourcePiece(2, pieces[2]));  // duplicate
  std::uint64_t seed = 10;
  while (!decoder.complete()) {
    const auto frame = encoder.frame(seed++, 0.7);
    decoder.addFrame(frame.coefficients, frame.payload);
  }
  EXPECT_EQ(decoder.decode(), pieces);
}

TEST(GenerationDecoder, RecodedFramesFromPartialHoldersAreUseful) {
  // Relay topology: source -> relay (partial) -> sink. The relay never
  // holds a named piece, only rank, yet its recoded frames decode at the
  // sink — the property that lets partial holders contribute in coded mode.
  Rng rng(0xC0DE04u);
  const std::uint32_t k = 6;
  const auto pieces = randomPieces(rng, k, 24);
  CodedEncoder encoder(pieces);
  GenerationDecoder relay(k, 24);
  std::uint64_t seed = 1;
  while (relay.rank() < 4) {
    const auto frame = encoder.frame(seed++, 0.6);
    relay.addFrame(frame.coefficients, frame.payload);
  }
  GenerationDecoder sink(k, 24);
  std::uint32_t innovativeFromRelay = 0;
  for (std::uint64_t s = 100; s < 140; ++s) {
    std::vector<std::uint8_t> payload;
    const auto coeffs = relay.recodeCoefficients(s, 0.6, &payload);
    if (sink.addFrame(coeffs, payload)) ++innovativeFromRelay;
  }
  // The relay spans a 4-dimensional subspace; the sink extracts all of it.
  EXPECT_EQ(innovativeFromRelay, 4u);
  EXPECT_EQ(sink.rank(), 4u);
  while (!sink.complete()) {
    const auto frame = encoder.frame(seed++, 0.6);
    sink.addFrame(frame.coefficients, frame.payload);
  }
  EXPECT_EQ(sink.decode(), pieces);
}

TEST(GenerationDecoder, SaveLoadResumesByteIdentically) {
  Rng rng(0xC0DE05u);
  const std::uint32_t k = 7;
  const auto pieces = randomPieces(rng, k, 12);
  CodedEncoder encoder(pieces);
  GenerationDecoder decoder(k, 12);
  std::uint64_t seed = 1;
  while (decoder.rank() < 4) {
    const auto frame = encoder.frame(seed++, 0.5);
    decoder.addFrame(frame.coefficients, frame.payload);
  }
  Serializer out;
  decoder.saveState(out);

  GenerationDecoder restored;
  Deserializer in(out.bytes());
  restored.loadState(in);
  EXPECT_TRUE(in.done());
  EXPECT_EQ(restored.rank(), decoder.rank());
  EXPECT_EQ(restored.rowOps(), decoder.rowOps());

  // Both copies must evolve identically from here on.
  for (std::uint64_t s = seed; s < seed + 32; ++s) {
    const auto frame = encoder.frame(s, 0.5);
    EXPECT_EQ(decoder.addFrame(frame.coefficients, frame.payload),
              restored.addFrame(frame.coefficients, frame.payload));
    EXPECT_EQ(decoder.rank(), restored.rank());
    std::vector<std::uint8_t> pa;
    std::vector<std::uint8_t> pb;
    EXPECT_EQ(decoder.recodeCoefficients(s, 0.5, &pa),
              restored.recodeCoefficients(s, 0.5, &pb));
    EXPECT_EQ(pa, pb);
  }
  EXPECT_EQ(decoder.decode(), restored.decode());
  EXPECT_EQ(restored.decode(), pieces);
}

TEST(GenerationDecoder, CoefficientOnlyModeTracksRank) {
  GenerationDecoder decoder(4);  // payloadBytes == 0: rank bookkeeping only
  EXPECT_TRUE(decoder.addFrame(sparseCoefficients(4, 1, 0.8)));
  EXPECT_TRUE(decoder.addSourcePiece(0));
  EXPECT_LE(decoder.rank(), 4u);
  EXPECT_THROW(decoder.decode(), std::logic_error);
}

TEST(GenerationDecoder, RejectsMalformedInput) {
  EXPECT_THROW(GenerationDecoder(0), std::invalid_argument);
  GenerationDecoder decoder(4, 8);
  std::vector<std::uint8_t> shortCoeffs(3, 1);
  std::vector<std::uint8_t> payload(8, 0);
  EXPECT_THROW(decoder.addFrame(shortCoeffs, payload),
               std::invalid_argument);
  std::vector<std::uint8_t> coeffs(4, 1);
  std::vector<std::uint8_t> shortPayload(5, 0);
  EXPECT_THROW(decoder.addFrame(coeffs, shortPayload),
               std::invalid_argument);
  EXPECT_THROW(decoder.addSourcePiece(4, payload), std::invalid_argument);
  EXPECT_THROW(CodedEncoder({}), std::invalid_argument);
  EXPECT_THROW(CodedEncoder({{1, 2}, {1}}), std::invalid_argument);
}

TEST(GenerationDecoder, DegenerateFramesAreRejectedAndCounted) {
  GenerationDecoder decoder(4, 8);
  const std::vector<std::uint8_t> payload(8, 0);
  // All-zero coefficient vectors can never raise the rank: rejected before
  // any row operation, counted, never stored.
  const std::vector<std::uint8_t> zeros(4, 0);
  EXPECT_FALSE(decoder.addFrame(zeros, payload));
  EXPECT_EQ(decoder.degenerateFrames(), 1u);
  // Over-length rows are degenerate input from a malformed or hostile
  // encoder, not a caller bug.
  const std::vector<std::uint8_t> overLength(5, 1);
  EXPECT_FALSE(decoder.addFrame(overLength, payload));
  EXPECT_EQ(decoder.degenerateFrames(), 2u);
  EXPECT_EQ(decoder.rank(), 0u);
  EXPECT_EQ(decoder.rowOps(), 0u);
  // A valid frame after the junk still works.
  const std::vector<std::uint8_t> unit = {1, 0, 0, 0};
  EXPECT_TRUE(decoder.addFrame(unit, payload));
  EXPECT_EQ(decoder.degenerateFrames(), 2u);
}

TEST(GenerationDecoder, HonestFullRankIsNeverTainted) {
  Rng rng(0xC0DE07u);
  const std::uint32_t k = 5;
  const auto pieces = randomPieces(rng, k, 12);
  CodedEncoder encoder(pieces);
  GenerationDecoder decoder(k, 12);
  std::uint64_t seed = 1;
  while (!decoder.complete()) {
    const auto frame = encoder.frame(seed++, 0.6);
    decoder.addFrame(frame.coefficients, frame.payload);
  }
  EXPECT_FALSE(decoder.tainted());
  EXPECT_EQ(decoder.pollutedRows(), 0u);
  EXPECT_TRUE(decoder.pollutedOrigins().empty());
}

TEST(GenerationDecoder, PollutedFramesTaintTheGeneration) {
  Rng rng(0xC0DE08u);
  const std::uint32_t k = 4;
  const auto pieces = randomPieces(rng, k, 8);
  CodedEncoder encoder(pieces);
  GenerationDecoder decoder(k, 8);
  // One polluted frame from attacker 7, then honest frames to full rank.
  const auto bad = encoder.frame(100, 1.0);
  std::vector<std::uint8_t> junk(8, 0xAB);
  ASSERT_TRUE(decoder.addFrame(bad.coefficients, junk, true, 7));
  EXPECT_TRUE(decoder.tainted());
  EXPECT_EQ(decoder.pollutedRows(), 1u);
  std::uint64_t seed = 1;
  while (!decoder.complete()) {
    const auto frame = encoder.frame(seed++, 0.7);
    decoder.addFrame(frame.coefficients, frame.payload);
  }
  // Full rank does not launder the poison: the generation stays tainted
  // and blame points at the polluting origin.
  EXPECT_TRUE(decoder.tainted());
  EXPECT_EQ(decoder.pollutedRows(), 1u);
  EXPECT_EQ(decoder.pollutedOrigins(), std::vector<std::uint32_t>{7u});
}

TEST(GenerationDecoder, PollutedOriginsAreSortedUniqueAndSkipNoOrigin) {
  Rng rng(0xC0DE09u);
  const std::uint32_t k = 6;
  const auto pieces = randomPieces(rng, k, 8);
  CodedEncoder encoder(pieces);
  GenerationDecoder decoder(k, 8);
  const std::vector<std::uint8_t> junk(8, 0xEE);
  std::uint64_t seed = 50;
  auto addPolluted = [&](std::uint32_t origin) {
    for (;;) {
      const auto frame = encoder.frame(seed++, 1.0);
      if (decoder.addFrame(frame.coefficients, junk, true, origin)) return;
    }
  };
  addPolluted(9);
  addPolluted(3);
  addPolluted(9);  // duplicate attacker
  // A relayed recode of tainted rows arrives polluted without a known
  // attacker: counted as a polluted row, excluded from blame.
  addPolluted(GenerationDecoder::kNoOrigin);
  EXPECT_EQ(decoder.pollutedRows(), 4u);
  EXPECT_EQ(decoder.pollutedOrigins(), (std::vector<std::uint32_t>{3u, 9u}));
}

TEST(GenerationDecoder, RecodeReportsTaintedMixes) {
  Rng rng(0xC0DE0Au);
  const std::uint32_t k = 4;
  const auto pieces = randomPieces(rng, k, 8);
  CodedEncoder encoder(pieces);

  GenerationDecoder honest(k, 8);
  honest.addFrame(encoder.frame(1, 0.8).coefficients,
                  encoder.frame(1, 0.8).payload);
  std::vector<std::uint8_t> payload;
  bool tainted = true;
  (void)honest.recodeCoefficients(11, 1.0, &payload, &tainted);
  EXPECT_FALSE(tainted);

  GenerationDecoder poisoned(k, 8);
  const auto bad = encoder.frame(2, 1.0);
  const std::vector<std::uint8_t> junk(8, 0x5A);
  ASSERT_TRUE(poisoned.addFrame(bad.coefficients, junk, true, 4));
  tainted = false;
  // A dense recode over a poisoned row space must flag the output frame.
  (void)poisoned.recodeCoefficients(12, 1.0, &payload, &tainted);
  EXPECT_TRUE(tainted);
}

TEST(GenerationDecoder, SaveLoadPreservesTaintAndDegenerateCounts) {
  Rng rng(0xC0DE0Bu);
  const std::uint32_t k = 4;
  const auto pieces = randomPieces(rng, k, 8);
  CodedEncoder encoder(pieces);
  GenerationDecoder decoder(k, 8);
  const std::vector<std::uint8_t> junk(8, 0x11);
  const auto bad = encoder.frame(5, 1.0);
  ASSERT_TRUE(decoder.addFrame(bad.coefficients, junk, true, 2));
  const std::vector<std::uint8_t> zeros(4, 0);
  EXPECT_FALSE(decoder.addFrame(zeros, junk));

  Serializer out;
  decoder.saveState(out);
  GenerationDecoder restored(k, 8);
  Deserializer in(out.bytes());
  restored.loadState(in);
  EXPECT_EQ(restored.tainted(), decoder.tainted());
  EXPECT_EQ(restored.pollutedRows(), decoder.pollutedRows());
  EXPECT_EQ(restored.pollutedOrigins(), decoder.pollutedOrigins());
  EXPECT_EQ(restored.degenerateFrames(), decoder.degenerateFrames());
}

TEST(GenerationDecoder, DecodedBytesHashMatchSource) {
  // The chaos-arm invariant at codec level: whatever subset of frames
  // survives, the decoded generation hashes to the source digest.
  Rng rng(0xC0DE06u);
  for (int trial = 0; trial < 10; ++trial) {
    const auto k = static_cast<std::uint32_t>(rng.uniformInt(2, 10));
    const auto pieces = randomPieces(rng, k, 100);
    Sha1 source;
    for (const auto& piece : pieces) source.update(piece);
    CodedEncoder encoder(pieces);
    GenerationDecoder decoder(k, 100);
    std::uint64_t seed = rng();
    while (!decoder.complete()) {
      const auto frame = encoder.frame(seed++, 0.4);
      if (rng.chance(0.5)) continue;
      decoder.addFrame(frame.coefficients, frame.payload);
    }
    Sha1 decoded;
    for (const auto& piece : decoder.decode()) decoded.update(piece);
    EXPECT_EQ(decoded.finish(), source.finish()) << "trial " << trial;
  }
}

}  // namespace
}  // namespace hdtn::core::coding
