#include "src/core/internet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace hdtn::core {
namespace {

FileCatalog::PublishRequest request(const std::string& name,
                                    const std::string& publisher,
                                    double popularity, SimTime at,
                                    Duration ttl) {
  FileCatalog::PublishRequest req;
  req.name = name;
  req.publisher = publisher;
  req.description = "about " + name;
  req.sizeBytes = 1024;
  req.pieceSizeBytes = 1024;
  req.popularity = popularity;
  req.publishedAt = at;
  req.ttl = ttl;
  return req;
}

TEST(PopularityTable, ObservedCountsDistinctRequestersInWindow) {
  PopularityTable table(kDay);
  table.recordRequest(FileId(1), NodeId(1), 0);
  table.recordRequest(FileId(1), NodeId(1), 10);  // same requester
  table.recordRequest(FileId(1), NodeId(2), 20);
  EXPECT_DOUBLE_EQ(table.observed(FileId(1), 100, 10), 0.2);
  EXPECT_DOUBLE_EQ(table.observed(FileId(1), 100, 0), 0.0);
  EXPECT_DOUBLE_EQ(table.observed(FileId(9), 100, 10), 0.0);
  EXPECT_EQ(table.totalRequests(FileId(1)), 3u);
}

TEST(PopularityTable, WindowSlides) {
  PopularityTable table(kDay);
  table.recordRequest(FileId(1), NodeId(1), 0);
  table.recordRequest(FileId(1), NodeId(2), kDay);
  // At t = kDay the first request is exactly window-old and excluded.
  EXPECT_DOUBLE_EQ(table.observed(FileId(1), kDay, 10), 0.1);
  EXPECT_DOUBLE_EQ(table.observed(FileId(1), kDay - 1, 10), 0.1);
}

TEST(InternetServices, PublishRegistersPublisherAndSigns) {
  InternetServices internet;
  const FileId id =
      internet.publish(request("fox news ep0", "fox", 0.5, 0, kDay));
  const Metadata& md = internet.catalog().metadataFor(id);
  EXPECT_TRUE(internet.registry().verify(md));
}

TEST(InternetServices, SearchFindsAliveRankedByPopularity) {
  InternetServices internet;
  internet.publish(request("fox news ep0", "fox", 0.2, 0, kDay));
  internet.publish(request("fox news ep1", "fox", 0.8, 0, kDay));
  internet.publish(request("abc drama ep2", "abc", 0.9, 0, kDay));
  const auto matches = internet.search("fox news", 100);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].metadata->file, FileId(1));
  EXPECT_EQ(matches[1].metadata->file, FileId(0));
}

TEST(InternetServices, SearchExcludesExpired) {
  InternetServices internet;
  internet.publish(request("fox news ep0", "fox", 0.5, 0, 100));
  EXPECT_EQ(internet.search("fox news", 50).size(), 1u);
  EXPECT_TRUE(internet.search("fox news", 100).empty());
}

TEST(InternetServices, TopPopularLimited) {
  InternetServices internet;
  for (int i = 0; i < 10; ++i) {
    internet.publish(request("file ep" + std::to_string(i), "fox",
                             0.1 * i, 0, kDay));
  }
  const auto top = internet.topPopular(10, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0]->file, FileId(9));
  EXPECT_EQ(top[1]->file, FileId(8));
  EXPECT_EQ(top[2]->file, FileId(7));
}

TEST(InternetServices, MetadataForUri) {
  InternetServices internet;
  const FileId id =
      internet.publish(request("fox news ep0", "fox", 0.5, 0, kDay));
  const Uri uri = internet.catalog().find(id)->uri;
  ASSERT_NE(internet.metadataForUri(uri), nullptr);
  EXPECT_EQ(internet.metadataForUri(uri)->file, id);
  EXPECT_EQ(internet.metadataForUri("dtn://nope/f0"), nullptr);
}

TEST(SyntheticBatch, PublishesRequestedCount) {
  InternetServices internet;
  SyntheticBatchParams params;
  params.count = 25;
  params.publishedAt = kDailyPublishHour;
  params.ttl = 3 * kDay;
  params.lambda = 12.5;
  Rng rng(3);
  const auto files = publishSyntheticBatch(internet, params, rng);
  EXPECT_EQ(files.size(), 25u);
  EXPECT_EQ(internet.catalog().size(), 25u);
  for (FileId id : files) {
    const FileInfo& info = *internet.catalog().find(id);
    EXPECT_GE(info.popularity, 0.0);
    EXPECT_LE(info.popularity, 1.0);
    EXPECT_EQ(info.publishedAt, kDailyPublishHour);
    EXPECT_TRUE(internet.registry().verify(
        internet.catalog().metadataFor(id)));
  }
}

TEST(SyntheticBatch, CanonicalQueryUniquelyIdentifiesFile) {
  InternetServices internet;
  SyntheticBatchParams params;
  params.count = 60;
  params.publishedAt = 0;
  params.ttl = kDay;
  params.lambda = 30.0;
  Rng rng(9);
  const auto files = publishSyntheticBatch(internet, params, rng);
  for (FileId id : files) {
    const FileInfo& info = *internet.catalog().find(id);
    const auto matches = internet.search(canonicalQueryText(info), 10);
    ASSERT_EQ(matches.size(), 1u) << "query: " << canonicalQueryText(info);
    EXPECT_EQ(matches[0].metadata->file, id);
  }
}

TEST(SyntheticBatch, EpisodeTokensAreUniqueAcrossBatches) {
  InternetServices internet;
  SyntheticBatchParams params;
  params.count = 10;
  params.publishedAt = 0;
  params.ttl = kDay;
  params.lambda = 5.0;
  Rng rng(1);
  publishSyntheticBatch(internet, params, rng);
  params.publishedAt = kDay;
  publishSyntheticBatch(internet, params, rng);
  std::set<std::string> queries;
  for (FileId id : internet.catalog().allFiles()) {
    queries.insert(canonicalQueryText(*internet.catalog().find(id)));
  }
  EXPECT_EQ(queries.size(), 20u);
}

}  // namespace
}  // namespace hdtn::core
