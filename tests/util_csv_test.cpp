#include "src/util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hdtn {
namespace {

TEST(Table, CsvEscaping) {
  Table t({"name", "value"});
  t.addRow({"plain", "1"});
  t.addRow({"with,comma", "2"});
  t.addRow({"with\"quote", "3"});
  std::ostringstream out;
  t.writeCsv(out);
  EXPECT_EQ(out.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",2\n"
            "\"with\"\"quote\",3\n");
}

TEST(Table, AlignedOutputHasHeaderRule) {
  Table t({"x", "longer_header"});
  t.addRow({"1", "2"});
  std::ostringstream out;
  t.writeAligned(out);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find("x | longer_header"), std::string::npos);
  EXPECT_NE(rendered.find("---"), std::string::npos);
}

TEST(Table, DoubleRowsFormatting) {
  Table t({"a", "b"});
  t.addRow({1.0, 0.12345}, 3);
  EXPECT_EQ(t.row(0)[0], "1.0");
  EXPECT_EQ(t.row(0)[1], "0.123");
}

TEST(Table, FormatDoubleTrimsTrailingZeros) {
  EXPECT_EQ(Table::formatDouble(1.5000, 4), "1.5");
  EXPECT_EQ(Table::formatDouble(2.0, 4), "2.0");
  EXPECT_EQ(Table::formatDouble(0.25, 2), "0.25");
  EXPECT_EQ(Table::formatDouble(-3.14159, 3), "-3.142");
}

TEST(Table, RowAndColumnCounts) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.addRow({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.row(0)[2], "3");
}

}  // namespace
}  // namespace hdtn
