#include "src/core/metrics.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

TEST(Metrics, RegisterAndReport) {
  MetricsCollector m;
  const QueryId a = m.registerQuery(NodeId(1), FileId(10), 0, 100, false,
                                    false);
  m.registerQuery(NodeId(2), FileId(11), 0, 100, false, false);
  m.markMetadataDelivered(a, 10);
  m.markFileDelivered(a, 20);
  const auto report = m.report(MetricScope::kNonAccess);
  EXPECT_EQ(report.queries, 2u);
  EXPECT_EQ(report.metadataDelivered, 1u);
  EXPECT_EQ(report.filesDelivered, 1u);
  EXPECT_DOUBLE_EQ(report.metadataRatio, 0.5);
  EXPECT_DOUBLE_EQ(report.fileRatio, 0.5);
  EXPECT_DOUBLE_EQ(report.meanMetadataDelaySeconds, 10.0);
  EXPECT_DOUBLE_EQ(report.meanFileDelaySeconds, 20.0);
}

TEST(Metrics, LateDeliveryIgnored) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.markMetadataDelivered(a, 100);  // at expiry: too late
  m.markFileDelivered(a, 150);
  const auto report = m.report(MetricScope::kNonAccess);
  EXPECT_EQ(report.metadataDelivered, 0u);
  EXPECT_EQ(report.filesDelivered, 0u);
}

TEST(Metrics, FirstDeliveryWins) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.markMetadataDelivered(a, 10);
  m.markMetadataDelivered(a, 20);
  EXPECT_EQ(*m.record(a).metadataAt, 10);
}

TEST(Metrics, FileDeliveryImpliesMetadataDelivery) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.markFileDelivered(a, 30);
  EXPECT_EQ(*m.record(a).metadataAt, 30);
  EXPECT_EQ(*m.record(a).fileAt, 30);
}

TEST(Metrics, OnNodeEventsMatchOwnerAndTarget) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.registerQuery(NodeId(2), FileId(10), 0, 100, false, false);
  m.onNodeGotMetadata(NodeId(1), FileId(10), 5);
  EXPECT_TRUE(m.record(a).metadataAt.has_value());
  EXPECT_FALSE(m.record(QueryId(1)).metadataAt.has_value());
  m.onNodeCompletedFile(NodeId(2), FileId(10), 7);
  EXPECT_TRUE(m.record(QueryId(1)).fileAt.has_value());
  EXPECT_FALSE(m.record(a).fileAt.has_value());
  // Events for unknown (owner, target) pairs are safely ignored.
  m.onNodeGotMetadata(NodeId(9), FileId(99), 5);
}

TEST(Metrics, DuplicateQuerySameTargetBothMarked) {
  MetricsCollector m;
  m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.registerQuery(NodeId(1), FileId(10), 10, 100, false, false);
  m.onNodeGotMetadata(NodeId(1), FileId(10), 50);
  EXPECT_TRUE(m.record(QueryId(0)).metadataAt.has_value());
  EXPECT_TRUE(m.record(QueryId(1)).metadataAt.has_value());
}

TEST(Metrics, ScopesPartitionQueries) {
  MetricsCollector m;
  m.registerQuery(NodeId(1), FileId(1), 0, 100, true, false);   // access
  m.registerQuery(NodeId(2), FileId(2), 0, 100, false, false);  // contributor
  m.registerQuery(NodeId(3), FileId(3), 0, 100, false, true);   // free rider
  EXPECT_EQ(m.report(MetricScope::kAll).queries, 3u);
  EXPECT_EQ(m.report(MetricScope::kAccess).queries, 1u);
  EXPECT_EQ(m.report(MetricScope::kNonAccess).queries, 2u);
  EXPECT_EQ(m.report(MetricScope::kNonAccessContributors).queries, 1u);
  EXPECT_EQ(m.report(MetricScope::kNonAccessFreeRiders).queries, 1u);
}

TEST(Metrics, ScopeSlicesCountOnlyTheirOwnDeliveries) {
  // A query matrix over (access, free-rider) with distinct outcomes per
  // slice, so a mis-scoped record would shift some slice's counters.
  MetricsCollector m;
  // Two access queries, both metadata-delivered, one file-delivered.
  const QueryId acc1 =
      m.registerQuery(NodeId(1), FileId(1), 0, 1000, true, false);
  const QueryId acc2 =
      m.registerQuery(NodeId(1), FileId(2), 0, 1000, true, false);
  m.markFileDelivered(acc1, 10);
  m.markMetadataDelivered(acc2, 20);
  // Three contributor queries: delivered file / delivered metadata / nothing.
  const QueryId con1 =
      m.registerQuery(NodeId(2), FileId(3), 0, 1000, false, false);
  const QueryId con2 =
      m.registerQuery(NodeId(3), FileId(4), 0, 1000, false, false);
  m.registerQuery(NodeId(2), FileId(5), 0, 1000, false, false);
  m.markFileDelivered(con1, 100);
  m.markMetadataDelivered(con2, 60);
  // One free-rider query, metadata only.
  const QueryId fr1 =
      m.registerQuery(NodeId(4), FileId(6), 0, 1000, false, true);
  m.markMetadataDelivered(fr1, 40);

  const auto all = m.report(MetricScope::kAll);
  EXPECT_EQ(all.queries, 6u);
  EXPECT_EQ(all.metadataDelivered, 5u);
  EXPECT_EQ(all.filesDelivered, 2u);

  const auto access = m.report(MetricScope::kAccess);
  EXPECT_EQ(access.queries, 2u);
  EXPECT_EQ(access.metadataDelivered, 2u);
  EXPECT_EQ(access.filesDelivered, 1u);
  EXPECT_DOUBLE_EQ(access.metadataRatio, 1.0);
  EXPECT_DOUBLE_EQ(access.fileRatio, 0.5);
  EXPECT_DOUBLE_EQ(access.meanMetadataDelaySeconds, 15.0);  // (10 + 20) / 2

  const auto nonAccess = m.report(MetricScope::kNonAccess);
  EXPECT_EQ(nonAccess.queries, 4u);
  EXPECT_EQ(nonAccess.metadataDelivered, 3u);
  EXPECT_EQ(nonAccess.filesDelivered, 1u);
  EXPECT_DOUBLE_EQ(nonAccess.fileRatio, 0.25);

  const auto contributors = m.report(MetricScope::kNonAccessContributors);
  EXPECT_EQ(contributors.queries, 3u);
  EXPECT_EQ(contributors.metadataDelivered, 2u);
  EXPECT_EQ(contributors.filesDelivered, 1u);
  EXPECT_DOUBLE_EQ(contributors.meanMetadataDelaySeconds, 80.0);
  EXPECT_DOUBLE_EQ(contributors.meanFileDelaySeconds, 100.0);

  const auto freeRiders = m.report(MetricScope::kNonAccessFreeRiders);
  EXPECT_EQ(freeRiders.queries, 1u);
  EXPECT_EQ(freeRiders.metadataDelivered, 1u);
  EXPECT_EQ(freeRiders.filesDelivered, 0u);
  EXPECT_DOUBLE_EQ(freeRiders.metadataRatio, 1.0);
  EXPECT_DOUBLE_EQ(freeRiders.fileRatio, 0.0);
  EXPECT_DOUBLE_EQ(freeRiders.meanMetadataDelaySeconds, 40.0);

  // The two non-access slices partition kNonAccess, and kAccess+kNonAccess
  // partition kAll — for the delivered counts, not just the query counts.
  EXPECT_EQ(contributors.queries + freeRiders.queries, nonAccess.queries);
  EXPECT_EQ(contributors.metadataDelivered + freeRiders.metadataDelivered,
            nonAccess.metadataDelivered);
  EXPECT_EQ(contributors.filesDelivered + freeRiders.filesDelivered,
            nonAccess.filesDelivered);
  EXPECT_EQ(access.queries + nonAccess.queries, all.queries);
  EXPECT_EQ(access.metadataDelivered + nonAccess.metadataDelivered,
            all.metadataDelivered);
  EXPECT_EQ(access.filesDelivered + nonAccess.filesDelivered,
            all.filesDelivered);
}

TEST(Metrics, AccessFreeRiderCombinationStaysOutOfFreeRiderSlice) {
  // ownerIsFreeRider on an *access* query: the non-access slices must not
  // pick it up (free-rider reporting is defined over non-access nodes).
  MetricsCollector m;
  m.registerQuery(NodeId(1), FileId(1), 0, 100, true, true);
  EXPECT_EQ(m.report(MetricScope::kAccess).queries, 1u);
  EXPECT_EQ(m.report(MetricScope::kNonAccess).queries, 0u);
  EXPECT_EQ(m.report(MetricScope::kNonAccessFreeRiders).queries, 0u);
  EXPECT_EQ(m.report(MetricScope::kNonAccessContributors).queries, 0u);
  EXPECT_EQ(m.report(MetricScope::kAll).queries, 1u);
}

TEST(Metrics, EmptyReportIsZeroed) {
  MetricsCollector m;
  const auto report = m.report(MetricScope::kNonAccess);
  EXPECT_EQ(report.queries, 0u);
  EXPECT_DOUBLE_EQ(report.metadataRatio, 0.0);
  EXPECT_DOUBLE_EQ(report.fileRatio, 0.0);
}

TEST(Metrics, MeanDelaysAverageOnlyDelivered) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(1), 0, 1000, false, false);
  const QueryId b =
      m.registerQuery(NodeId(1), FileId(2), 100, 1000, false, false);
  m.registerQuery(NodeId(1), FileId(3), 0, 1000, false, false);  // undelivered
  m.markMetadataDelivered(a, 10);
  m.markMetadataDelivered(b, 130);  // delay 30
  const auto report = m.report(MetricScope::kNonAccess);
  EXPECT_DOUBLE_EQ(report.meanMetadataDelaySeconds, 20.0);
}

}  // namespace
}  // namespace hdtn::core
