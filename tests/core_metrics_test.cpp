#include "src/core/metrics.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

TEST(Metrics, RegisterAndReport) {
  MetricsCollector m;
  const QueryId a = m.registerQuery(NodeId(1), FileId(10), 0, 100, false,
                                    false);
  m.registerQuery(NodeId(2), FileId(11), 0, 100, false, false);
  m.markMetadataDelivered(a, 10);
  m.markFileDelivered(a, 20);
  const auto report = m.report(MetricScope::kNonAccess);
  EXPECT_EQ(report.queries, 2u);
  EXPECT_EQ(report.metadataDelivered, 1u);
  EXPECT_EQ(report.filesDelivered, 1u);
  EXPECT_DOUBLE_EQ(report.metadataRatio, 0.5);
  EXPECT_DOUBLE_EQ(report.fileRatio, 0.5);
  EXPECT_DOUBLE_EQ(report.meanMetadataDelaySeconds, 10.0);
  EXPECT_DOUBLE_EQ(report.meanFileDelaySeconds, 20.0);
}

TEST(Metrics, LateDeliveryIgnored) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.markMetadataDelivered(a, 100);  // at expiry: too late
  m.markFileDelivered(a, 150);
  const auto report = m.report(MetricScope::kNonAccess);
  EXPECT_EQ(report.metadataDelivered, 0u);
  EXPECT_EQ(report.filesDelivered, 0u);
}

TEST(Metrics, FirstDeliveryWins) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.markMetadataDelivered(a, 10);
  m.markMetadataDelivered(a, 20);
  EXPECT_EQ(*m.record(a).metadataAt, 10);
}

TEST(Metrics, FileDeliveryImpliesMetadataDelivery) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.markFileDelivered(a, 30);
  EXPECT_EQ(*m.record(a).metadataAt, 30);
  EXPECT_EQ(*m.record(a).fileAt, 30);
}

TEST(Metrics, OnNodeEventsMatchOwnerAndTarget) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.registerQuery(NodeId(2), FileId(10), 0, 100, false, false);
  m.onNodeGotMetadata(NodeId(1), FileId(10), 5);
  EXPECT_TRUE(m.record(a).metadataAt.has_value());
  EXPECT_FALSE(m.record(QueryId(1)).metadataAt.has_value());
  m.onNodeCompletedFile(NodeId(2), FileId(10), 7);
  EXPECT_TRUE(m.record(QueryId(1)).fileAt.has_value());
  EXPECT_FALSE(m.record(a).fileAt.has_value());
  // Events for unknown (owner, target) pairs are safely ignored.
  m.onNodeGotMetadata(NodeId(9), FileId(99), 5);
}

TEST(Metrics, DuplicateQuerySameTargetBothMarked) {
  MetricsCollector m;
  m.registerQuery(NodeId(1), FileId(10), 0, 100, false, false);
  m.registerQuery(NodeId(1), FileId(10), 10, 100, false, false);
  m.onNodeGotMetadata(NodeId(1), FileId(10), 50);
  EXPECT_TRUE(m.record(QueryId(0)).metadataAt.has_value());
  EXPECT_TRUE(m.record(QueryId(1)).metadataAt.has_value());
}

TEST(Metrics, ScopesPartitionQueries) {
  MetricsCollector m;
  m.registerQuery(NodeId(1), FileId(1), 0, 100, true, false);   // access
  m.registerQuery(NodeId(2), FileId(2), 0, 100, false, false);  // contributor
  m.registerQuery(NodeId(3), FileId(3), 0, 100, false, true);   // free rider
  EXPECT_EQ(m.report(MetricScope::kAll).queries, 3u);
  EXPECT_EQ(m.report(MetricScope::kAccess).queries, 1u);
  EXPECT_EQ(m.report(MetricScope::kNonAccess).queries, 2u);
  EXPECT_EQ(m.report(MetricScope::kNonAccessContributors).queries, 1u);
  EXPECT_EQ(m.report(MetricScope::kNonAccessFreeRiders).queries, 1u);
}

TEST(Metrics, EmptyReportIsZeroed) {
  MetricsCollector m;
  const auto report = m.report(MetricScope::kNonAccess);
  EXPECT_EQ(report.queries, 0u);
  EXPECT_DOUBLE_EQ(report.metadataRatio, 0.0);
  EXPECT_DOUBLE_EQ(report.fileRatio, 0.0);
}

TEST(Metrics, MeanDelaysAverageOnlyDelivered) {
  MetricsCollector m;
  const QueryId a =
      m.registerQuery(NodeId(1), FileId(1), 0, 1000, false, false);
  const QueryId b =
      m.registerQuery(NodeId(1), FileId(2), 100, 1000, false, false);
  m.registerQuery(NodeId(1), FileId(3), 0, 1000, false, false);  // undelivered
  m.markMetadataDelivered(a, 10);
  m.markMetadataDelivered(b, 130);  // delay 30
  const auto report = m.report(MetricScope::kNonAccess);
  EXPECT_DOUBLE_EQ(report.meanMetadataDelaySeconds, 20.0);
}

}  // namespace
}  // namespace hdtn::core
