#include "src/trace/dieselnet.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "src/trace/trace_stats.hpp"

namespace hdtn::trace {
namespace {

DieselNetParams smallParams() {
  DieselNetParams p;
  p.buses = 12;
  p.routes = 4;
  p.days = 6;
  p.seed = 5;
  return p;
}

TEST(DieselNet, StrictlyPairwise) {
  const auto trace = generateDieselNet(smallParams());
  EXPECT_TRUE(trace.isPairwiseOnly());
  EXPECT_GT(trace.contactCount(), 0u);
}

TEST(DieselNet, DeterministicInSeed) {
  const auto a = generateDieselNet(smallParams());
  const auto b = generateDieselNet(smallParams());
  ASSERT_EQ(a.contactCount(), b.contactCount());
  for (std::size_t i = 0; i < a.contactCount(); ++i) {
    EXPECT_EQ(a.contacts()[i], b.contacts()[i]);
  }
  DieselNetParams other = smallParams();
  other.seed = 6;
  const auto c = generateDieselNet(other);
  EXPECT_NE(a.contactCount(), c.contactCount());
}

TEST(DieselNet, ContactsWithinOperatingWindow) {
  const DieselNetParams p = smallParams();
  const auto trace = generateDieselNet(p);
  for (const Contact& c : trace.contacts()) {
    const SimTime dayOffset = c.start % kDay;
    EXPECT_GE(dayOffset, p.dayStart);
    EXPECT_LT(dayOffset, p.dayEnd);
    EXPECT_GE(c.duration(), 5);
  }
}

TEST(DieselNet, NodeCountMatchesBuses) {
  const auto trace = generateDieselNet(smallParams());
  EXPECT_EQ(trace.nodeCount(), 12u);
}

TEST(DieselNet, SameRoutePairsMeetMoreOften) {
  DieselNetParams p;
  p.buses = 16;
  p.routes = 4;
  p.days = 10;
  p.seed = 11;
  const auto trace = generateDieselNet(p);
  const auto counts = pairContactCounts(trace);
  double sameRouteTotal = 0, sameRoutePairs = 0;
  double otherTotal = 0, otherPairs = 0;
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = a + 1; b < 16; ++b) {
      const auto it = counts.find(makePair(NodeId(a), NodeId(b)));
      const double n =
          it == counts.end() ? 0.0 : static_cast<double>(it->second);
      if (dieselNetRouteOf(p, NodeId(a)) == dieselNetRouteOf(p, NodeId(b))) {
        sameRouteTotal += n;
        ++sameRoutePairs;
      } else {
        otherTotal += n;
        ++otherPairs;
      }
    }
  }
  EXPECT_GT(sameRouteTotal / sameRoutePairs, otherTotal / otherPairs);
}

TEST(DieselNet, MeetingRateApproximatesParameter) {
  DieselNetParams p;
  p.buses = 2;
  p.routes = 1;  // both buses on the same route
  p.days = 200;
  p.sameRouteMeetingsPerDay = 3.0;
  p.seed = 13;
  const auto trace = generateDieselNet(p);
  const double perDay =
      static_cast<double>(trace.contactCount()) / p.days;
  EXPECT_NEAR(perDay, 3.0, 0.3);
}

TEST(DieselNet, FrequentPairsAtThreeDayPeriodIncludeSameRoute) {
  DieselNetParams p;
  p.buses = 8;
  p.routes = 2;
  p.days = 12;
  p.seed = 17;
  const auto trace = generateDieselNet(p);
  const auto pairs = frequentContactPairs(trace, kDieselNetFrequentPeriod);
  // With 2 same-route meetings/day, same-route pairs all qualify.
  std::size_t sameRouteFrequent = 0;
  for (const auto& [a, b] : pairs) {
    if (dieselNetRouteOf(p, a) == dieselNetRouteOf(p, b)) {
      ++sameRouteFrequent;
    }
  }
  // 2 routes x C(4,2) = 12 same-route pairs in total.
  EXPECT_GE(sameRouteFrequent, 10u);
}

TEST(DieselNet, ZeroBackgroundRateIsolatesUnrelatedPairs) {
  DieselNetParams p;
  p.buses = 8;
  p.routes = 4;
  p.days = 4;
  p.backgroundMeetingsPerDay = 0.0;
  p.connectedRouteMeetingsPerDay = 0.0;
  p.seed = 19;
  const auto trace = generateDieselNet(p);
  for (const Contact& c : trace.contacts()) {
    EXPECT_EQ(dieselNetRouteOf(p, c.members[0]),
              dieselNetRouteOf(p, c.members[1]));
  }
}

// --- native meeting-log import --------------------------------------------

TEST(DieselNetImport, ParsesMeetingsWithOptionalByteCounts) {
  std::istringstream in(
      "# bus-a bus-b start duration bytes\n"
      "0 1 100 50 12345\n"
      "3 2 10.5 0.25\n"
      "\n"
      "1 2 400 90\n");
  std::string error;
  const auto trace = readDieselNetLog(in, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->contactCount(), 3u);
  EXPECT_EQ(trace->nodeCount(), 4u);
  EXPECT_TRUE(trace->isPairwiseOnly());
  // Sub-second meeting rounded up to one second, ids sorted.
  EXPECT_EQ(trace->contacts()[0].start, 10);
  EXPECT_EQ(trace->contacts()[0].end, 11);
  EXPECT_EQ(trace->contacts()[0].members,
            (std::vector<NodeId>{NodeId(2), NodeId(3)}));
}

TEST(DieselNetImport, MalformedRecordIsALineNumberedError) {
  std::istringstream in(
      "0 1 100 50\n"
      "0 one 200 50\n");
  std::string error;
  EXPECT_FALSE(readDieselNetLog(in, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("malformed meeting record"), std::string::npos);
}

TEST(DieselNetImport, BusMeetingItselfRejected) {
  std::istringstream in("4 4 100 50\n");
  std::string error;
  EXPECT_FALSE(readDieselNetLog(in, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_NE(error.find("cannot meet itself"), std::string::npos);
}

TEST(DieselNetImport, NegativeStartAndNonPositiveDurationRejected) {
  std::string error;
  std::istringstream negative("0 1 -5 50\n");
  EXPECT_FALSE(readDieselNetLog(negative, &error).has_value());
  EXPECT_NE(error.find("negative meeting start"), std::string::npos);
  std::istringstream zero("0 1 5 0\n");
  EXPECT_FALSE(readDieselNetLog(zero, &error).has_value());
  EXPECT_NE(error.find("non-positive meeting duration"), std::string::npos);
}

TEST(DieselNetImport, TrailingJunkRejected) {
  std::istringstream in("0 1 100 50 12345 extra\n");
  std::string error;
  EXPECT_FALSE(readDieselNetLog(in, &error).has_value());
  EXPECT_NE(error.find("trailing field"), std::string::npos);
}

}  // namespace
}  // namespace hdtn::trace
