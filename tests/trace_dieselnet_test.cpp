#include "src/trace/dieselnet.hpp"

#include <gtest/gtest.h>

#include <map>

#include "src/trace/trace_stats.hpp"

namespace hdtn::trace {
namespace {

DieselNetParams smallParams() {
  DieselNetParams p;
  p.buses = 12;
  p.routes = 4;
  p.days = 6;
  p.seed = 5;
  return p;
}

TEST(DieselNet, StrictlyPairwise) {
  const auto trace = generateDieselNet(smallParams());
  EXPECT_TRUE(trace.isPairwiseOnly());
  EXPECT_GT(trace.contactCount(), 0u);
}

TEST(DieselNet, DeterministicInSeed) {
  const auto a = generateDieselNet(smallParams());
  const auto b = generateDieselNet(smallParams());
  ASSERT_EQ(a.contactCount(), b.contactCount());
  for (std::size_t i = 0; i < a.contactCount(); ++i) {
    EXPECT_EQ(a.contacts()[i], b.contacts()[i]);
  }
  DieselNetParams other = smallParams();
  other.seed = 6;
  const auto c = generateDieselNet(other);
  EXPECT_NE(a.contactCount(), c.contactCount());
}

TEST(DieselNet, ContactsWithinOperatingWindow) {
  const DieselNetParams p = smallParams();
  const auto trace = generateDieselNet(p);
  for (const Contact& c : trace.contacts()) {
    const SimTime dayOffset = c.start % kDay;
    EXPECT_GE(dayOffset, p.dayStart);
    EXPECT_LT(dayOffset, p.dayEnd);
    EXPECT_GE(c.duration(), 5);
  }
}

TEST(DieselNet, NodeCountMatchesBuses) {
  const auto trace = generateDieselNet(smallParams());
  EXPECT_EQ(trace.nodeCount(), 12u);
}

TEST(DieselNet, SameRoutePairsMeetMoreOften) {
  DieselNetParams p;
  p.buses = 16;
  p.routes = 4;
  p.days = 10;
  p.seed = 11;
  const auto trace = generateDieselNet(p);
  const auto counts = pairContactCounts(trace);
  double sameRouteTotal = 0, sameRoutePairs = 0;
  double otherTotal = 0, otherPairs = 0;
  for (std::uint32_t a = 0; a < 16; ++a) {
    for (std::uint32_t b = a + 1; b < 16; ++b) {
      const auto it = counts.find(makePair(NodeId(a), NodeId(b)));
      const double n =
          it == counts.end() ? 0.0 : static_cast<double>(it->second);
      if (dieselNetRouteOf(p, NodeId(a)) == dieselNetRouteOf(p, NodeId(b))) {
        sameRouteTotal += n;
        ++sameRoutePairs;
      } else {
        otherTotal += n;
        ++otherPairs;
      }
    }
  }
  EXPECT_GT(sameRouteTotal / sameRoutePairs, otherTotal / otherPairs);
}

TEST(DieselNet, MeetingRateApproximatesParameter) {
  DieselNetParams p;
  p.buses = 2;
  p.routes = 1;  // both buses on the same route
  p.days = 200;
  p.sameRouteMeetingsPerDay = 3.0;
  p.seed = 13;
  const auto trace = generateDieselNet(p);
  const double perDay =
      static_cast<double>(trace.contactCount()) / p.days;
  EXPECT_NEAR(perDay, 3.0, 0.3);
}

TEST(DieselNet, FrequentPairsAtThreeDayPeriodIncludeSameRoute) {
  DieselNetParams p;
  p.buses = 8;
  p.routes = 2;
  p.days = 12;
  p.seed = 17;
  const auto trace = generateDieselNet(p);
  const auto pairs = frequentContactPairs(trace, kDieselNetFrequentPeriod);
  // With 2 same-route meetings/day, same-route pairs all qualify.
  std::size_t sameRouteFrequent = 0;
  for (const auto& [a, b] : pairs) {
    if (dieselNetRouteOf(p, a) == dieselNetRouteOf(p, b)) {
      ++sameRouteFrequent;
    }
  }
  // 2 routes x C(4,2) = 12 same-route pairs in total.
  EXPECT_GE(sameRouteFrequent, 10u);
}

TEST(DieselNet, ZeroBackgroundRateIsolatesUnrelatedPairs) {
  DieselNetParams p;
  p.buses = 8;
  p.routes = 4;
  p.days = 4;
  p.backgroundMeetingsPerDay = 0.0;
  p.connectedRouteMeetingsPerDay = 0.0;
  p.seed = 19;
  const auto trace = generateDieselNet(p);
  for (const Contact& c : trace.contacts()) {
    EXPECT_EQ(dieselNetRouteOf(p, c.members[0]),
              dieselNetRouteOf(p, c.members[1]));
  }
}

}  // namespace
}  // namespace hdtn::trace
