// Observability layer: event-stream invariants against the engine totals,
// the JSONL sink, multicast fan-out, and the time-series sampler.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>

#include "src/core/engine.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/events.hpp"
#include "src/obs/timeseries.hpp"
#include "src/trace/nus.hpp"

namespace hdtn::obs {
namespace {

using core::Engine;
using core::EngineParams;
using core::EngineResult;
using core::ProtocolKind;

trace::ContactTrace smallTrace(std::uint64_t seed = 3) {
  trace::NusParams p;
  p.students = 40;
  p.courses = 8;
  p.coursesPerStudent = 2;
  p.days = 5;
  p.attendanceRate = 0.9;
  p.seed = seed;
  return trace::generateNus(p);
}

EngineParams baseParams(ProtocolKind kind = ProtocolKind::kMbt) {
  EngineParams params;
  params.protocol.kind = kind;
  params.internetAccessFraction = 0.3;
  params.newFilesPerDay = 20;
  params.fileTtlDays = 2;
  params.seed = 7;
  params.frequentContactPeriod = kDay;
  return params;
}

void expectResultsIdentical(const EngineResult& a, const EngineResult& b) {
  EXPECT_EQ(a.delivery.queries, b.delivery.queries);
  EXPECT_EQ(a.delivery.metadataDelivered, b.delivery.metadataDelivered);
  EXPECT_EQ(a.delivery.filesDelivered, b.delivery.filesDelivered);
  EXPECT_EQ(a.delivery.metadataRatio, b.delivery.metadataRatio);
  EXPECT_EQ(a.delivery.fileRatio, b.delivery.fileRatio);
  EXPECT_EQ(a.delivery.meanMetadataDelaySeconds,
            b.delivery.meanMetadataDelaySeconds);
  EXPECT_EQ(a.delivery.meanFileDelaySeconds,
            b.delivery.meanFileDelaySeconds);
  EXPECT_EQ(a.accessDelivery.queries, b.accessDelivery.queries);
  EXPECT_EQ(a.accessDelivery.fileRatio, b.accessDelivery.fileRatio);
  EXPECT_EQ(a.totals.contactsProcessed, b.totals.contactsProcessed);
  EXPECT_EQ(a.totals.filesPublished, b.totals.filesPublished);
  EXPECT_EQ(a.totals.queriesGenerated, b.totals.queriesGenerated);
  EXPECT_EQ(a.totals.metadataBroadcasts, b.totals.metadataBroadcasts);
  EXPECT_EQ(a.totals.pieceBroadcasts, b.totals.pieceBroadcasts);
  EXPECT_EQ(a.totals.metadataReceptions, b.totals.metadataReceptions);
  EXPECT_EQ(a.totals.pieceReceptions, b.totals.pieceReceptions);
  EXPECT_EQ(a.totals.forgeriesCrafted, b.totals.forgeriesCrafted);
  EXPECT_EQ(a.totals.forgeriesAccepted, b.totals.forgeriesAccepted);
  EXPECT_EQ(a.totals.forgeriesRejected, b.totals.forgeriesRejected);
}

void expectEventCountsMatchTotals(const CountingObserver& counter,
                                  const core::EngineTotals& totals) {
  EXPECT_EQ(counter.count(SimEventType::kContactBegin),
            totals.contactsProcessed);
  EXPECT_EQ(counter.count(SimEventType::kContactEnd),
            totals.contactsProcessed);
  EXPECT_EQ(counter.count(SimEventType::kCliqueFormed),
            totals.contactsProcessed);
  EXPECT_EQ(counter.count(SimEventType::kFilePublished),
            totals.filesPublished);
  EXPECT_EQ(counter.count(SimEventType::kMetadataBroadcast),
            totals.metadataBroadcasts);
  EXPECT_EQ(counter.count(SimEventType::kMetadataAccepted) +
                counter.count(SimEventType::kMetadataRejected),
            totals.metadataReceptions);
  EXPECT_EQ(counter.count(SimEventType::kPieceBroadcast),
            totals.pieceBroadcasts);
  EXPECT_EQ(counter.count(SimEventType::kPieceReceived),
            totals.pieceReceptions);
  EXPECT_EQ(counter.count(SimEventType::kForgeryCrafted),
            totals.forgeriesCrafted);
  EXPECT_EQ(counter.count(SimEventType::kForgeryAccepted),
            totals.forgeriesAccepted);
}

TEST(Observer, EventCountsMatchEngineTotals) {
  const auto trace = smallTrace();
  Engine engine(trace, baseParams());
  CountingObserver counter;
  engine.setObserver(&counter);
  const EngineResult result = engine.run();
  EXPECT_GT(counter.total(), 0u);
  expectEventCountsMatchTotals(counter, result.totals);
  // Every contact plans a discovery and a download phase under MBT.
  EXPECT_EQ(counter.count(SimEventType::kDiscoveryPlanned),
            result.totals.contactsProcessed);
  EXPECT_EQ(counter.count(SimEventType::kDownloadPlanned),
            result.totals.contactsProcessed);
}

TEST(Observer, MbtQmSkipsDiscoveryEntirely) {
  // MBT-QM distributes no metadata: the discovery phase never runs, which
  // the plan events make directly visible.
  const auto trace = smallTrace();
  Engine engine(trace, baseParams(ProtocolKind::kMbtQm));
  CountingObserver counter;
  engine.setObserver(&counter);
  const EngineResult result = engine.run();
  expectEventCountsMatchTotals(counter, result.totals);
  EXPECT_EQ(counter.count(SimEventType::kDiscoveryPlanned), 0u);
  EXPECT_EQ(counter.count(SimEventType::kMetadataBroadcast), 0u);
  EXPECT_EQ(counter.count(SimEventType::kDownloadPlanned),
            result.totals.contactsProcessed);
}

TEST(Observer, EventCountsMatchTotalsWithForgersAndVerification) {
  const auto trace = smallTrace();
  auto params = baseParams();
  params.forgerFraction = 0.2;
  params.forgeriesPerForgerPerDay = 3;
  params.verifyMetadata = true;
  Engine engine(trace, params);
  CountingObserver counter;
  engine.setObserver(&counter);
  const EngineResult result = engine.run();
  ASSERT_GT(result.totals.forgeriesCrafted, 0u);
  expectEventCountsMatchTotals(counter, result.totals);
  // Verification on: forged records are rejected at reception, never stored.
  EXPECT_EQ(counter.count(SimEventType::kForgeryAccepted), 0u);
  EXPECT_GT(counter.count(SimEventType::kMetadataRejected), 0u);
}

TEST(Observer, PairwiseModeKeepsBroadcastInvariant) {
  const auto trace = smallTrace();
  auto params = baseParams();
  params.downloadMode = core::DownloadMode::kPairwise;
  Engine engine(trace, params);
  CountingObserver counter;
  engine.setObserver(&counter);
  const EngineResult result = engine.run();
  expectEventCountsMatchTotals(counter, result.totals);
}

TEST(Observer, AttachedObserverDoesNotChangeResults) {
  const auto trace = smallTrace();
  const EngineResult bare = core::runSimulation(trace, baseParams());
  Engine engine(trace, baseParams());
  NullObserver sink;
  engine.setObserver(&sink);
  expectResultsIdentical(bare, engine.run());
}

TEST(Observer, MulticastFansOutToEverySink) {
  const auto trace = smallTrace();
  CountingObserver a, b;
  MulticastObserver fan;
  fan.add(&a);
  fan.add(nullptr);  // optional sinks compose without guards
  fan.add(&b);
  EXPECT_EQ(fan.sinkCount(), 2u);
  Engine engine(trace, baseParams());
  engine.setObserver(&fan);
  engine.run();
  EXPECT_GT(a.total(), 0u);
  EXPECT_EQ(a.total(), b.total());
  for (std::size_t i = 0; i < kSimEventTypeCount; ++i) {
    EXPECT_EQ(a.count(static_cast<SimEventType>(i)),
              b.count(static_cast<SimEventType>(i)));
  }
}

TEST(JsonlEventSink, OneWellFormedObjectPerEvent) {
  const auto trace = smallTrace();
  std::ostringstream out;
  JsonlEventSink sink(out);
  CountingObserver counter;
  MulticastObserver fan;
  fan.add(&sink);
  fan.add(&counter);
  Engine engine(trace, baseParams());
  engine.setObserver(&fan);
  engine.run();
  EXPECT_EQ(sink.eventsWritten(), counter.total());

  std::set<std::string> knownTypes;
  for (std::size_t i = 0; i < kSimEventTypeCount; ++i) {
    knownTypes.insert(simEventTypeName(static_cast<SimEventType>(i)));
  }
  std::istringstream lines(out.str());
  std::string line;
  std::uint64_t parsed = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.substr(0, 5), "{\"t\":") << line;
    EXPECT_EQ(line.back(), '}') << line;
    const auto typePos = line.find("\"type\":\"");
    ASSERT_NE(typePos, std::string::npos) << line;
    const auto nameStart = typePos + 8;
    const auto nameEnd = line.find('"', nameStart);
    ASSERT_NE(nameEnd, std::string::npos) << line;
    EXPECT_TRUE(
        knownTypes.contains(line.substr(nameStart, nameEnd - nameStart)))
        << line;
    ++parsed;
  }
  EXPECT_EQ(parsed, sink.eventsWritten());
}

TEST(TimeSeries, FinalSampleEqualsEndOfRunReport) {
  const auto trace = smallTrace();
  const EngineResult bare = core::runSimulation(trace, baseParams());
  Engine engine(trace, baseParams());
  TimeSeries series;
  const EngineResult sampled = runSampled(engine, 6 * kHour, series);
  // The sampled drive mode is byte-identical to run()...
  expectResultsIdentical(bare, sampled);
  // ...and the last sample is the end-of-run report itself, exactly.
  ASSERT_FALSE(series.empty());
  const TimeSeriesSample& last = series.samples().back();
  EXPECT_EQ(last.time, engine.endTime());
  expectResultsIdentical(sampled, last.result);
  // Samples are strictly ordered and cover the run at the cadence.
  SimTime prev = 0;
  for (const TimeSeriesSample& s : series.samples()) {
    EXPECT_GT(s.time, prev);
    prev = s.time;
  }
  EXPECT_GE(series.samples().size(),
            static_cast<std::size_t>(engine.endTime() / (6 * kHour)));
}

TEST(TimeSeries, SampledTotalsAreMonotone) {
  const auto trace = smallTrace();
  Engine engine(trace, baseParams());
  TimeSeries series;
  runSampled(engine, 12 * kHour, series);
  std::uint64_t contacts = 0, receptions = 0;
  for (const TimeSeriesSample& s : series.samples()) {
    EXPECT_GE(s.result.totals.contactsProcessed, contacts);
    EXPECT_GE(s.result.totals.metadataReceptions, receptions);
    contacts = s.result.totals.contactsProcessed;
    receptions = s.result.totals.metadataReceptions;
  }
}

TEST(TimeSeries, CsvAndJsonSerializeEverySample) {
  const auto trace = smallTrace();
  Engine engine(trace, baseParams());
  TimeSeries series;
  runSampled(engine, kDay, series);
  std::ostringstream csv;
  series.writeCsv(csv);
  std::istringstream lines(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, TimeSeries::csvHeader());
  const std::string header = line;
  const auto columns = static_cast<std::size_t>(
      std::count(header.begin(), header.end(), ',') + 1);
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',') + 1),
              columns)
        << line;
    ++rows;
  }
  EXPECT_EQ(rows, series.samples().size());

  std::ostringstream json;
  series.writeJson(json);
  const std::string text = json.str();
  EXPECT_EQ(text.find("{\"samples\":["), 0u);
  std::size_t sampleObjects = 0;
  for (std::size_t pos = text.find("\"time_s\":"); pos != std::string::npos;
       pos = text.find("\"time_s\":", pos + 1)) {
    ++sampleObjects;
  }
  EXPECT_EQ(sampleObjects, series.samples().size());
}

TEST(TimeSeries, RunSampledRejectsBadInputs) {
  const auto trace = smallTrace();
  Engine engine(trace, baseParams());
  TimeSeries series;
  EXPECT_THROW(runSampled(engine, 0, series), std::invalid_argument);
  EXPECT_THROW(runSampled(engine, -5, series), std::invalid_argument);
  engine.run();
  EXPECT_THROW(runSampled(engine, kHour, series), std::logic_error);
  EXPECT_TRUE(series.empty());
}

}  // namespace
}  // namespace hdtn::obs
