#include "src/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hdtn::trace {
namespace {

ContactTrace sampleTrace() {
  ContactTrace t("campus", 5);
  Contact a;
  a.start = 0;
  a.end = 100;
  a.members = {NodeId(0), NodeId(1)};
  t.addContact(a);
  Contact b;
  b.start = 50;
  b.end = 200;
  b.members = {NodeId(1), NodeId(2), NodeId(4)};
  t.addContact(b);
  t.sortByStart();
  return t;
}

TEST(TraceIo, RoundTrip) {
  const ContactTrace original = sampleTrace();
  std::stringstream stream;
  writeTrace(original, stream);
  std::string error;
  const auto loaded = readTrace(stream, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->name(), "campus");
  EXPECT_EQ(loaded->nodeCount(), 5u);
  ASSERT_EQ(loaded->contactCount(), original.contactCount());
  for (std::size_t i = 0; i < original.contactCount(); ++i) {
    EXPECT_EQ(loaded->contacts()[i], original.contacts()[i]);
  }
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "trace t 3\n"
      "  # indented comment\n"
      "c 0 10 0 1\n");
  std::string error;
  const auto loaded = readTrace(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->contactCount(), 1u);
}

TEST(TraceIo, HeaderOptionalNodeCountInferred) {
  std::istringstream in("c 0 10 0 6\n");
  std::string error;
  const auto loaded = readTrace(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->nodeCount(), 7u);
}

TEST(TraceIo, MalformedTimesRejected) {
  std::istringstream in("c zero 10 0 1\n");
  std::string error;
  EXPECT_FALSE(readTrace(in, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
}

TEST(TraceIo, UnknownRecordRejected) {
  std::istringstream in("contact 0 10 0 1\n");
  std::string error;
  EXPECT_FALSE(readTrace(in, &error).has_value());
  EXPECT_NE(error.find("unknown record"), std::string::npos);
}

TEST(TraceIo, InvalidContactRejected) {
  std::istringstream in("c 10 5 0 1\n");  // end < start
  std::string error;
  EXPECT_FALSE(readTrace(in, &error).has_value());
}

TEST(TraceIo, MalformedMemberRejected) {
  std::istringstream in("c 0 10 0 xyz\n");
  std::string error;
  EXPECT_FALSE(readTrace(in, &error).has_value());
}

TEST(TraceIo, ReadSortsByStart) {
  std::istringstream in(
      "c 50 60 0 1\n"
      "c 0 10 1 2\n");
  std::string error;
  const auto loaded = readTrace(in, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->contacts()[0].start, 0);
  EXPECT_EQ(loaded->contacts()[1].start, 50);
}

TEST(TraceIo, FileRoundTrip) {
  const ContactTrace original = sampleTrace();
  const std::string path = ::testing::TempDir() + "/hdtn_trace_io_test.txt";
  std::string error;
  ASSERT_TRUE(saveTraceFile(original, path, &error)) << error;
  const auto loaded = loadTraceFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->contactCount(), original.contactCount());
  EXPECT_FALSE(loadTraceFile(path + ".missing", &error).has_value());
}

TEST(TraceIo, DuplicateHeaderRejected) {
  std::istringstream in(
      "trace t 3\n"
      "trace t 4\n");
  std::string error;
  EXPECT_FALSE(readTrace(in, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("duplicate trace header"), std::string::npos);
}

TEST(TraceIo, HeaderAfterContactsRejected) {
  std::istringstream in(
      "c 0 10 0 1\n"
      "trace t 3\n");
  std::string error;
  EXPECT_FALSE(readTrace(in, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("must precede"), std::string::npos);
}

TEST(TraceIo, MemberOutsideDeclaredUniverseRejected) {
  std::istringstream in(
      "trace t 3\n"
      "c 0 10 0 7\n");
  std::string error;
  EXPECT_FALSE(readTrace(in, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("member id 7"), std::string::npos);
  EXPECT_NE(error.find("node count 3"), std::string::npos);
}

TEST(TraceIo, TrailingJunkInHeaderRejected) {
  std::istringstream in("trace t 3 junk\n");
  std::string error;
  EXPECT_FALSE(readTrace(in, &error).has_value());
  EXPECT_NE(error.find("unexpected field"), std::string::npos);
}

// --- ONE simulator connectivity import ------------------------------------

TEST(OneImport, PairsOpenAndClose) {
  std::istringstream in(
      "10 CONN 0 1 up\n"
      "25 CONN 0 1 down\n"
      "30 CONN 2 3 up\n"
      "31 CONN 2 3 down\n");
  std::string error;
  const auto trace = readOneTrace(in, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->contactCount(), 2u);
  EXPECT_EQ(trace->contacts()[0].start, 10);
  EXPECT_EQ(trace->contacts()[0].end, 25);
  EXPECT_EQ(trace->contacts()[1].members,
            (std::vector<NodeId>{NodeId(2), NodeId(3)}));
}

TEST(OneImport, StillOpenPairsClosedAtEnd) {
  std::istringstream in(
      "5 CONN 0 1 up\n"
      "50 CONN 2 3 up\n"
      "60 CONN 2 3 down\n");
  std::string error;
  const auto trace = readOneTrace(in, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->contactCount(), 2u);
  // Pair (0,1) closed at latest event time + 1.
  EXPECT_EQ(trace->contacts()[0].start, 5);
  EXPECT_EQ(trace->contacts()[0].end, 61);
}

TEST(OneImport, ReversedIdsMatch) {
  std::istringstream in(
      "10 CONN 5 2 up\n"
      "20 CONN 2 5 down\n");
  std::string error;
  const auto trace = readOneTrace(in, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  ASSERT_EQ(trace->contactCount(), 1u);
  EXPECT_EQ(trace->contacts()[0].members,
            (std::vector<NodeId>{NodeId(2), NodeId(5)}));
}

TEST(OneImport, UnmatchedDownIgnored) {
  std::istringstream in("10 CONN 0 1 down\n");
  std::string error;
  const auto trace = readOneTrace(in, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->contactCount(), 0u);
}

TEST(OneImport, NonConnEventsSkipped) {
  std::istringstream in(
      "1 CREATE M1 0 5\n"
      "10 CONN 0 1 up\n"
      "20 CONN 0 1 down\n");
  std::string error;
  const auto trace = readOneTrace(in, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->contactCount(), 1u);
}

TEST(OneImport, MalformedRejected) {
  std::istringstream bad("10 CONN 0 1 sideways\n");
  std::string error;
  EXPECT_FALSE(readOneTrace(bad, &error).has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos);
  std::istringstream bad2("x CONN 0 1 up\n");
  EXPECT_FALSE(readOneTrace(bad2, &error).has_value());
}

TEST(OneImport, FractionalTimesTruncated) {
  std::istringstream in(
      "10.75 CONN 0 1 up\n"
      "20.25 CONN 0 1 down\n");
  std::string error;
  const auto trace = readOneTrace(in, &error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->contacts()[0].start, 10);
  EXPECT_EQ(trace->contacts()[0].end, 20);
}

}  // namespace
}  // namespace hdtn::trace
