#include "src/core/piece_store.hpp"

#include <gtest/gtest.h>

namespace hdtn::core {
namespace {

TEST(PieceStore, RegisterAndAdd) {
  PieceStore store;
  EXPECT_TRUE(store.registerFile(FileId(1), 3));
  EXPECT_TRUE(store.isRegistered(FileId(1)));
  EXPECT_FALSE(store.isRegistered(FileId(2)));
  EXPECT_TRUE(store.addPiece(FileId(1), 0));
  EXPECT_FALSE(store.addPiece(FileId(1), 0));  // duplicate
  EXPECT_TRUE(store.hasPiece(FileId(1), 0));
  EXPECT_FALSE(store.hasPiece(FileId(1), 1));
  EXPECT_EQ(store.piecesHeld(FileId(1)), 1u);
  EXPECT_EQ(store.pieceCount(FileId(1)), 3u);
  EXPECT_EQ(store.totalPiecesHeld(), 1u);
}

TEST(PieceStore, RegisterIdempotentSameCount) {
  PieceStore store;
  EXPECT_TRUE(store.registerFile(FileId(1), 3));
  EXPECT_TRUE(store.registerFile(FileId(1), 3));
  EXPECT_FALSE(store.registerFile(FileId(1), 4));  // conflicting count
}

TEST(PieceStore, CompletionDetection) {
  PieceStore store;
  store.registerFile(FileId(5), 2);
  EXPECT_FALSE(store.isComplete(FileId(5)));
  store.addPiece(FileId(5), 1);
  EXPECT_FALSE(store.isComplete(FileId(5)));
  store.addPiece(FileId(5), 0);
  EXPECT_TRUE(store.isComplete(FileId(5)));
  EXPECT_EQ(store.completeFiles(), (std::vector<FileId>{FileId(5)}));
}

TEST(PieceStore, MissingPieces) {
  PieceStore store;
  store.registerFile(FileId(2), 4);
  store.addPiece(FileId(2), 1);
  store.addPiece(FileId(2), 3);
  EXPECT_EQ(store.missingPieces(FileId(2)),
            (std::vector<std::uint32_t>{0, 2}));
  EXPECT_TRUE(store.missingPieces(FileId(9)).empty());
}

TEST(PieceStore, AddWholeFile) {
  PieceStore store;
  store.registerFile(FileId(3), 5);
  store.addPiece(FileId(3), 2);
  EXPECT_EQ(store.addWholeFile(FileId(3)), 4u);
  EXPECT_TRUE(store.isComplete(FileId(3)));
  EXPECT_EQ(store.addWholeFile(FileId(3)), 0u);
}

TEST(PieceStore, RemoveFile) {
  PieceStore store;
  store.registerFile(FileId(1), 2);
  store.addWholeFile(FileId(1));
  store.registerFile(FileId(2), 2);
  store.addPiece(FileId(2), 0);
  store.removeFile(FileId(1));
  EXPECT_FALSE(store.isRegistered(FileId(1)));
  EXPECT_EQ(store.totalPiecesHeld(), 1u);
  store.removeFile(FileId(42));  // unknown: no-op
}

TEST(PieceStore, FilesSorted) {
  PieceStore store;
  store.registerFile(FileId(9), 1);
  store.registerFile(FileId(2), 1);
  store.registerFile(FileId(5), 1);
  EXPECT_EQ(store.files(),
            (std::vector<FileId>{FileId(2), FileId(5), FileId(9)}));
}

TEST(PieceStore, UnregisteredQueriesAreSafe) {
  PieceStore store;
  EXPECT_FALSE(store.hasPiece(FileId(1), 0));
  EXPECT_FALSE(store.isComplete(FileId(1)));
  EXPECT_EQ(store.piecesHeld(FileId(1)), 0u);
  EXPECT_EQ(store.pieceCount(FileId(1)), 0u);
}

TEST(PieceStore, BoundedStoreEvictsLowestPriorityIncomplete) {
  PieceStore store(2);  // capacity: 2 pieces
  store.registerFile(FileId(1), 2);
  store.setPriority(FileId(1), 0.9);
  store.registerFile(FileId(2), 2);
  store.setPriority(FileId(2), 0.1);
  store.addPiece(FileId(1), 0);
  store.addPiece(FileId(2), 0);
  EXPECT_EQ(store.totalPiecesHeld(), 2u);
  // Adding a third piece evicts from the low-priority incomplete file 2.
  store.addPiece(FileId(1), 1);
  EXPECT_EQ(store.totalPiecesHeld(), 2u);
  EXPECT_EQ(store.piecesHeld(FileId(2)), 0u);
  EXPECT_TRUE(store.isComplete(FileId(1)));
}

TEST(PieceStore, BoundedStorePrefersEvictingIncompleteOverComplete) {
  PieceStore store(3);
  store.registerFile(FileId(1), 2);
  store.setPriority(FileId(1), 0.05);  // complete but lowest priority
  store.addWholeFile(FileId(1));
  store.registerFile(FileId(2), 2);
  store.setPriority(FileId(2), 0.5);
  store.addPiece(FileId(2), 0);
  store.registerFile(FileId(3), 1);
  store.setPriority(FileId(3), 0.8);
  store.addPiece(FileId(3), 0);  // store full: evicts incomplete file 2
  EXPECT_TRUE(store.isComplete(FileId(1)));
  EXPECT_EQ(store.piecesHeld(FileId(2)), 0u);
  EXPECT_TRUE(store.hasPiece(FileId(3), 0));
}

TEST(PieceStore, BoundedStoreFallsBackToCompleteFiles) {
  PieceStore store(1);
  store.registerFile(FileId(1), 1);
  store.setPriority(FileId(1), 0.2);
  store.addPiece(FileId(1), 0);
  store.registerFile(FileId(2), 1);
  store.setPriority(FileId(2), 0.7);
  store.addPiece(FileId(2), 0);  // only candidate is the complete file 1
  EXPECT_EQ(store.piecesHeld(FileId(1)), 0u);
  EXPECT_TRUE(store.isComplete(FileId(2)));
  EXPECT_EQ(store.totalPiecesHeld(), 1u);
}

TEST(PieceStore, BoundedEvictionTieBreaksByInsertionOrder) {
  // At equal priority the victim is the *oldest registration*, regardless
  // of file id or hash-map iteration order. Register in descending-id
  // order so an id-based or map-order tie-break would pick differently.
  PieceStore store(2);
  store.registerFile(FileId(9), 1);  // oldest
  store.setPriority(FileId(9), 0.4);
  store.registerFile(FileId(1), 1);
  store.setPriority(FileId(1), 0.4);
  store.addPiece(FileId(9), 0);
  store.addPiece(FileId(1), 0);
  store.registerFile(FileId(5), 1);
  store.setPriority(FileId(5), 0.9);
  store.addPiece(FileId(5), 0);  // full: evicts the tied pair's oldest
  EXPECT_EQ(store.piecesHeld(FileId(9)), 0u);
  EXPECT_TRUE(store.hasPiece(FileId(1), 0));
  EXPECT_TRUE(store.hasPiece(FileId(5), 0));
  EXPECT_EQ(store.totalPiecesHeld(), 2u);
}

TEST(PieceStore, EvictionTieBreakSurvivesSaveLoad) {
  PieceStore store(2);
  store.registerFile(FileId(9), 1);
  store.setPriority(FileId(9), 0.4);
  store.registerFile(FileId(1), 1);
  store.setPriority(FileId(1), 0.4);
  store.addPiece(FileId(9), 0);
  store.addPiece(FileId(1), 0);
  Serializer out;
  store.saveState(out);
  PieceStore restored(2);
  Deserializer in(out.bytes());
  restored.loadState(in);
  restored.registerFile(FileId(5), 1);
  restored.setPriority(FileId(5), 0.9);
  restored.addPiece(FileId(5), 0);
  // Same victim as the live store would choose: registration order is
  // checkpoint state, not an accident of the session.
  EXPECT_EQ(restored.piecesHeld(FileId(9)), 0u);
  EXPECT_TRUE(restored.hasPiece(FileId(1), 0));
}

TEST(PieceStore, ArenaReusesFreedBlocks) {
  PieceStore store;
  store.registerFile(FileId(1), 64);
  store.registerFile(FileId(2), 64);
  const std::size_t words = store.arenaWords();
  // Register/remove churn of same-sized bitmaps must recycle arena blocks
  // instead of growing the arena.
  for (int round = 0; round < 20; ++round) {
    store.removeFile(FileId(1));
    store.registerFile(FileId(1), 64);
    store.addPiece(FileId(1), 63);
  }
  EXPECT_EQ(store.arenaWords(), words);
  EXPECT_TRUE(store.hasPiece(FileId(1), 63));
  EXPECT_FALSE(store.hasPiece(FileId(1), 0));  // freed blocks come back zeroed
}

TEST(PieceStore, ArenaBlocksAreZeroedOnReuse) {
  PieceStore store;
  store.registerFile(FileId(1), 128);
  for (std::uint32_t p = 0; p < 128; ++p) store.addPiece(FileId(1), p);
  store.removeFile(FileId(1));
  store.registerFile(FileId(2), 128);  // reuses the freed block
  EXPECT_EQ(store.piecesHeld(FileId(2)), 0u);
  for (std::uint32_t p = 0; p < 128; ++p) {
    EXPECT_FALSE(store.hasPiece(FileId(2), p));
  }
}

}  // namespace
}  // namespace hdtn::core
