// The service's minimal flat-JSON plumbing: escaping, strict parsing with
// reasons, typed getters, and the quote-aware array helpers the status
// client uses.
#include "src/service/jsonio.hpp"

#include <gtest/gtest.h>

namespace hdtn::service {
namespace {

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("line1\nline2\t."), "line1\\nline2\\t.");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ParseFlatObjectTest, ParsesStringsNumbersBoolsAndNull) {
  FlatObject fields;
  std::string error;
  ASSERT_TRUE(parseFlatObject(
      "{\"name\":\"p30\",\"priority\":-2,\"ratio\":0.75,"
      "\"resume\":true,\"note\":null}",
      &fields, &error))
      << error;
  EXPECT_EQ(getString(fields, "name"), "p30");
  EXPECT_EQ(getInt(fields, "priority"), -2);
  EXPECT_EQ(getString(fields, "ratio"), "0.75");
  EXPECT_TRUE(getBool(fields, "resume"));
  EXPECT_EQ(getString(fields, "note"), "");
  EXPECT_EQ(getInt(fields, "missing", 7), 7);
}

TEST(ParseFlatObjectTest, RoundTripsEscapedStrings) {
  const std::string original = "a \"quoted\" line\nwith\ttabs \\ and \x02";
  FlatObject fields;
  ASSERT_TRUE(parseFlatObject(
      "{\"text\":\"" + jsonEscape(original) + "\"}", &fields, nullptr));
  EXPECT_EQ(getString(fields, "text"), original);
}

TEST(ParseFlatObjectTest, RejectsMalformedInputWithAReason) {
  FlatObject fields;
  std::string error;
  // Truncated object — exactly what a torn WAL tail looks like.
  EXPECT_FALSE(parseFlatObject("{\"op\":\"submit\",\"id\":3", &fields,
                               &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(parseFlatObject("{\"a\":{\"nested\":1}}", &fields, &error));
  EXPECT_FALSE(parseFlatObject("{\"a\":\"bad\\q\"}", &fields, &error));
  EXPECT_FALSE(parseFlatObject("not json at all", &fields, &error));
  EXPECT_FALSE(parseFlatObject("{\"a\":1} trailing", &fields, &error));
}

TEST(ArrayHelpersTest, SplitsObjectsRespectingQuotedBraces) {
  const std::string body =
      "{\"id\":1,\"name\":\"has,comma\"},{\"id\":2,\"name\":\"has}brace\"}";
  const std::vector<std::string> parts = splitObjectArray(body);
  ASSERT_EQ(parts.size(), 2u);
  FlatObject first;
  ASSERT_TRUE(parseFlatObject(parts[0], &first, nullptr));
  EXPECT_EQ(getString(first, "name"), "has,comma");
  FlatObject second;
  ASSERT_TRUE(parseFlatObject(parts[1], &second, nullptr));
  EXPECT_EQ(getString(second, "name"), "has}brace");
}

TEST(ArrayHelpersTest, ExtractsAndStripsArrayFields) {
  const std::string reply =
      "{\"ok\":true,\"pending\":2,\"jobs\":[{\"id\":1},{\"id\":2}]}";
  EXPECT_EQ(extractArrayBody(reply, "jobs"), "{\"id\":1},{\"id\":2}");
  EXPECT_EQ(extractArrayBody(reply, "absent"), "");
  FlatObject flat;
  std::string error;
  ASSERT_TRUE(parseFlatObject(stripArrayFields(reply), &flat, &error))
      << error;
  EXPECT_TRUE(getBool(flat, "ok"));
  EXPECT_EQ(getInt(flat, "pending"), 2);
}

}  // namespace
}  // namespace hdtn::service
