#include "src/trace/contact_trace.hpp"

#include <gtest/gtest.h>

namespace hdtn::trace {
namespace {

Contact makeContact(SimTime start, SimTime end,
                    std::initializer_list<std::uint32_t> members) {
  Contact c;
  c.start = start;
  c.end = end;
  for (auto m : members) c.members.emplace_back(m);
  return c;
}

TEST(ContactTrace, AddContactSortsAndDedupsMembers) {
  ContactTrace t("t", 0);
  ASSERT_TRUE(t.addContact(makeContact(0, 10, {3, 1, 3, 2})));
  const Contact& c = t.contacts()[0];
  EXPECT_EQ(c.members,
            (std::vector<NodeId>{NodeId(1), NodeId(2), NodeId(3)}));
}

TEST(ContactTrace, RejectsDegenerateContacts) {
  ContactTrace t("t", 0);
  EXPECT_FALSE(t.addContact(makeContact(0, 10, {5})));       // one member
  EXPECT_FALSE(t.addContact(makeContact(0, 10, {5, 5})));    // dup only
  EXPECT_FALSE(t.addContact(makeContact(10, 10, {1, 2})));   // zero length
  EXPECT_FALSE(t.addContact(makeContact(10, 5, {1, 2})));    // negative
  EXPECT_EQ(t.contactCount(), 0u);
}

TEST(ContactTrace, NodeCountGrowsWithMembers) {
  ContactTrace t("t", 2);
  t.addContact(makeContact(0, 5, {0, 7}));
  EXPECT_EQ(t.nodeCount(), 8u);
  EXPECT_EQ(t.allNodes().size(), 8u);
}

TEST(ContactTrace, SortByStartOrdersContacts) {
  ContactTrace t("t", 4);
  t.addContact(makeContact(50, 60, {0, 1}));
  t.addContact(makeContact(10, 20, {2, 3}));
  t.addContact(makeContact(10, 15, {0, 2}));
  t.sortByStart();
  EXPECT_EQ(t.contacts()[0].end, 15);
  EXPECT_EQ(t.contacts()[1].end, 20);
  EXPECT_EQ(t.contacts()[2].start, 50);
}

TEST(ContactTrace, EndTimeAndEmpty) {
  ContactTrace t("t", 2);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.endTime(), 0);
  t.addContact(makeContact(5, 25, {0, 1}));
  t.addContact(makeContact(0, 10, {0, 1}));
  EXPECT_EQ(t.endTime(), 25);
}

TEST(ContactTrace, PairwiseOnlyDetection) {
  ContactTrace t("t", 3);
  t.addContact(makeContact(0, 10, {0, 1}));
  EXPECT_TRUE(t.isPairwiseOnly());
  t.addContact(makeContact(0, 10, {0, 1, 2}));
  EXPECT_FALSE(t.isPairwiseOnly());
}

TEST(ContactTrace, DurationAndPairwiseAccessors) {
  const Contact c = makeContact(10, 45, {1, 2});
  EXPECT_EQ(c.duration(), 35);
  EXPECT_TRUE(c.isPairwise());
}

TEST(ContactTrace, SliceClipsAndFilters) {
  ContactTrace t("t", 4);
  t.addContact(makeContact(0, 10, {0, 1}));    // before window end, kept
  t.addContact(makeContact(20, 40, {1, 2}));   // straddles, clipped
  t.addContact(makeContact(100, 110, {2, 3})); // after window, dropped
  const ContactTrace sliced = t.slice(5, 30);
  ASSERT_EQ(sliced.contactCount(), 2u);
  EXPECT_EQ(sliced.contacts()[0].start, 5);
  EXPECT_EQ(sliced.contacts()[0].end, 10);
  EXPECT_EQ(sliced.contacts()[1].start, 20);
  EXPECT_EQ(sliced.contacts()[1].end, 30);
}

}  // namespace
}  // namespace hdtn::trace
