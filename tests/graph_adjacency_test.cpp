#include "src/graph/adjacency.hpp"

#include <gtest/gtest.h>

namespace hdtn {
namespace {

TEST(AdjacencyGraph, AddNodesAndEdges) {
  AdjacencyGraph g;
  g.addEdge(NodeId(1), NodeId(2));
  EXPECT_TRUE(g.hasNode(NodeId(1)));
  EXPECT_TRUE(g.hasNode(NodeId(2)));
  EXPECT_TRUE(g.hasEdge(NodeId(1), NodeId(2)));
  EXPECT_TRUE(g.hasEdge(NodeId(2), NodeId(1)));
  EXPECT_EQ(g.nodeCount(), 2u);
  EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(AdjacencyGraph, EdgeIdempotent) {
  AdjacencyGraph g;
  g.addEdge(NodeId(1), NodeId(2));
  g.addEdge(NodeId(2), NodeId(1));
  EXPECT_EQ(g.edgeCount(), 1u);
}

TEST(AdjacencyGraph, SelfLoopIgnored) {
  AdjacencyGraph g;
  g.addEdge(NodeId(1), NodeId(1));
  EXPECT_EQ(g.edgeCount(), 0u);
  EXPECT_FALSE(g.hasNode(NodeId(1)));
}

TEST(AdjacencyGraph, RemoveEdge) {
  AdjacencyGraph g;
  g.addEdge(NodeId(1), NodeId(2));
  g.removeEdge(NodeId(2), NodeId(1));
  EXPECT_FALSE(g.hasEdge(NodeId(1), NodeId(2)));
  EXPECT_EQ(g.edgeCount(), 0u);
  EXPECT_TRUE(g.hasNode(NodeId(1)));  // nodes survive edge removal
  g.removeEdge(NodeId(1), NodeId(9));  // no-op on unknown edge
}

TEST(AdjacencyGraph, RemoveNodeDropsIncidentEdges) {
  AdjacencyGraph g;
  g.addEdge(NodeId(1), NodeId(2));
  g.addEdge(NodeId(1), NodeId(3));
  g.addEdge(NodeId(2), NodeId(3));
  g.removeNode(NodeId(1));
  EXPECT_FALSE(g.hasNode(NodeId(1)));
  EXPECT_EQ(g.edgeCount(), 1u);
  EXPECT_TRUE(g.hasEdge(NodeId(2), NodeId(3)));
  EXPECT_EQ(g.degree(NodeId(2)), 1u);
}

TEST(AdjacencyGraph, NeighborsSorted) {
  AdjacencyGraph g;
  g.addEdge(NodeId(5), NodeId(9));
  g.addEdge(NodeId(5), NodeId(2));
  g.addEdge(NodeId(5), NodeId(7));
  EXPECT_EQ(g.neighbors(NodeId(5)),
            (std::vector<NodeId>{NodeId(2), NodeId(7), NodeId(9)}));
  EXPECT_TRUE(g.neighbors(NodeId(100)).empty());
}

TEST(AdjacencyGraph, DegreeOfUnknownNodeIsZero) {
  AdjacencyGraph g;
  EXPECT_EQ(g.degree(NodeId(4)), 0u);
}

TEST(AdjacencyGraph, ConnectedComponents) {
  AdjacencyGraph g;
  g.addEdge(NodeId(1), NodeId(2));
  g.addEdge(NodeId(2), NodeId(3));
  g.addEdge(NodeId(10), NodeId(11));
  g.addNode(NodeId(20));
  const auto components = g.connectedComponents();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0],
            (std::vector<NodeId>{NodeId(1), NodeId(2), NodeId(3)}));
  EXPECT_EQ(components[1], (std::vector<NodeId>{NodeId(10), NodeId(11)}));
  EXPECT_EQ(components[2], (std::vector<NodeId>{NodeId(20)}));
}

TEST(AdjacencyGraph, NodesSorted) {
  AdjacencyGraph g;
  g.addNode(NodeId(9));
  g.addNode(NodeId(1));
  g.addNode(NodeId(5));
  EXPECT_EQ(g.nodes(), (std::vector<NodeId>{NodeId(1), NodeId(5), NodeId(9)}));
}

}  // namespace
}  // namespace hdtn
