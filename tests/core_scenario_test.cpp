// Scenario: the declarative run configuration. Covers key application
// (file keys == CLI flags, one semantics), the `key = value` parser with
// line-numbered errors, the fluent builder, trace building for every
// family, and runScenario() matching a hand-wired engine run.
#include "src/core/scenario.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/core/checkpoint.hpp"
#include "src/core/download_planner.hpp"
#include "src/faults/adversary.hpp"

namespace hdtn::core {
namespace {

TEST(ScenarioApply, DownloadModeRoundTripsThroughRegistry) {
  // parse -> format must be the identity for every registered mode name:
  // applying "download-mode" and reading the name back via the registry
  // returns the exact string that was applied.
  for (const DownloadModeInfo& info : downloadModeRegistry()) {
    Scenario s;
    EXPECT_EQ(s.apply("download-mode", info.name), "") << info.name;
    EXPECT_EQ(s.params.downloadMode, info.mode) << info.name;
    EXPECT_EQ(s.params.protocol.scheduling, info.scheduling) << info.name;
    EXPECT_STREQ(downloadModeName(s.params.downloadMode,
                                  s.params.protocol.scheduling),
                 info.name)
        << info.name;
  }
  Scenario s;
  EXPECT_NE(s.apply("download-mode", "rateless"), "");
}

TEST(ScenarioApply, CodedKnobsReachEngineParams) {
  Scenario s;
  EXPECT_EQ(s.apply("download-mode", "coded"), "");
  EXPECT_EQ(s.apply("coded-redundancy", "1.25"), "");
  EXPECT_EQ(s.apply("coded-sparsity", "0.4"), "");
  EXPECT_EQ(s.params.downloadMode, DownloadMode::kCoded);
  EXPECT_EQ(s.params.coded.redundancy, 1.25);
  EXPECT_EQ(s.params.coded.sparsity, 0.4);
  EXPECT_NE(s.apply("coded-redundancy", "up"), "");
}

TEST(ScenarioApply, AdversaryKnobsReachEngineParams) {
  Scenario s;
  EXPECT_EQ(s.apply("adversary-fraction", "0.2"), "");
  EXPECT_EQ(s.apply("adversary-attacks", "pollution,ack-spoof"), "");
  EXPECT_EQ(s.apply("defense", ""), "");  // bare switch
  EXPECT_EQ(s.apply("quarantine-threshold", "2.5"), "");
  EXPECT_EQ(s.params.adversary.byzantineFraction, 0.2);
  EXPECT_EQ(s.params.adversary.attacks,
            static_cast<std::uint32_t>(faults::AttackKind::kPollution) |
                static_cast<std::uint32_t>(faults::AttackKind::kAckSpoof));
  EXPECT_TRUE(s.params.reputation.defense);
  EXPECT_EQ(s.params.reputation.quarantineThreshold, 2.5);
  // Every alias the docs promise round-trips.
  EXPECT_EQ(s.apply("adversary-attacks", "all"), "");
  EXPECT_EQ(s.params.adversary.attacks, faults::kAllAttacks);
  EXPECT_EQ(s.apply("adversary-attacks", "none"), "");
  EXPECT_EQ(s.params.adversary.attacks, 0u);
  EXPECT_EQ(s.apply("defense", "false"), "");
  EXPECT_FALSE(s.params.reputation.defense);
}

TEST(ScenarioApply, AdversaryKnobsRejectBadValues) {
  Scenario s;
  EXPECT_NE(s.apply("adversary-fraction", "lots"), "");
  const std::string maskError = s.apply("adversary-attacks", "rateless");
  EXPECT_NE(maskError, "");
  // The rejection names the offending token and the accepted vocabulary.
  EXPECT_NE(maskError.find("rateless"), std::string::npos);
  EXPECT_NE(maskError.find("pollution"), std::string::npos);
  EXPECT_NE(s.apply("defense", "maybe"), "");
  EXPECT_NE(s.apply("quarantine-threshold", "steep"), "");
}

TEST(ScenarioBuilder, DownloadModeMethodsWork) {
  const Scenario s = ScenarioBuilder()
                         .nusTrace(30, 6, 3)
                         .protocol(ProtocolKind::kMbt)
                         .downloadMode("coded")
                         .codedRedundancy(0.75)
                         .codedSparsity(0.5)
                         .build();
  EXPECT_EQ(s.params.downloadMode, DownloadMode::kCoded);
  EXPECT_EQ(s.params.coded.redundancy, 0.75);
  EXPECT_THROW((void)ScenarioBuilder()
                   .nusTrace(30, 6, 3)
                   .downloadMode("bogus")
                   .build(),
               std::invalid_argument);
}

TEST(ScenarioApply, SetsEngineAndFaultAndTraceFields) {
  Scenario s;
  EXPECT_EQ(s.apply("protocol", "mbt-q"), "");
  EXPECT_EQ(s.apply("scheduling", "tft"), "");
  EXPECT_EQ(s.apply("access", "0.5"), "");
  EXPECT_EQ(s.apply("files-per-day", "10"), "");
  EXPECT_EQ(s.apply("frequent-days", "1"), "");
  EXPECT_EQ(s.apply("loss-rate", "0.25"), "");
  EXPECT_EQ(s.apply("churn-fraction", "0.1"), "");
  EXPECT_EQ(s.apply("churn-downtime-hours", "2"), "");
  EXPECT_EQ(s.apply("trace-family", "dieselnet"), "");
  EXPECT_EQ(s.apply("trace-buses", "12"), "");
  EXPECT_EQ(s.params.protocol.kind, ProtocolKind::kMbtQ);
  EXPECT_EQ(s.params.protocol.scheduling, Scheduling::kTitForTat);
  EXPECT_EQ(s.params.internetAccessFraction, 0.5);
  EXPECT_EQ(s.params.newFilesPerDay, 10);
  EXPECT_EQ(s.params.frequentContactPeriod, kDay);
  EXPECT_EQ(s.params.faults.messageLossRate, 0.25);
  EXPECT_EQ(s.params.faults.churnDownFraction, 0.1);
  EXPECT_EQ(s.params.faults.churnMeanDowntime, 2 * kHour);
  EXPECT_EQ(s.trace.family, "dieselnet");
  EXPECT_EQ(s.trace.buses, 12);
}

TEST(ScenarioApply, BareSwitchMeansTrue) {
  Scenario s;
  EXPECT_EQ(s.apply("observed-popularity", ""), "");
  EXPECT_TRUE(s.params.useObservedPopularity);
  EXPECT_EQ(s.apply("observed-popularity", "false"), "");
  EXPECT_FALSE(s.params.useObservedPopularity);
}

TEST(ScenarioApply, RejectsUnknownKeysAndBadValues) {
  Scenario s;
  EXPECT_NE(s.apply("no-such-key", "1"), "");
  EXPECT_NE(s.apply("protocol", "flooding"), "");
  EXPECT_NE(s.apply("access", "lots"), "");
  EXPECT_NE(s.apply("files-per-day", "3.5"), "");
  EXPECT_NE(s.apply("churn-downtime-hours", "-1"), "");
}

TEST(ScenarioApply, EveryKnownKeyIsAccepted) {
  // knownKeys() is what the CLI override loop iterates; a key present
  // there but rejected by apply() would make a valid flag unusable.
  for (const std::string& key : Scenario::knownKeys()) {
    Scenario s;
    const std::string numeric = s.apply(key, "1");
    const std::string text = s.apply(key, "mbt");
    // scheduling, download-mode, and adversary-attacks only take their
    // registry/attack names, which overlap with neither probe value.
    EXPECT_TRUE(numeric.empty() || text.empty() || key == "scheduling" ||
                key == "download-mode" || key == "adversary-attacks")
        << "key '" << key << "' rejects both '1' and 'mbt'";
    if (key == "download-mode") {
      EXPECT_EQ(s.apply(key, "coop"), "");
    }
    if (key == "adversary-attacks") {
      EXPECT_EQ(s.apply(key, "all"), "");
    }
  }
}

TEST(ScenarioParse, ReadsFileFormatWithCommentsAndBlanks) {
  std::istringstream in(
      "# lossy campus run\n"
      "name = lossy-nus   # trailing comment\n"
      "\n"
      "trace-family = nus\n"
      "trace-students = 24\n"
      "protocol     = mbt-qm\n"
      "loss-rate    = 0.15\n");
  std::vector<std::string> errors;
  const auto scenario = Scenario::parse(in, &errors);
  ASSERT_TRUE(scenario.has_value()) << (errors.empty() ? "" : errors.front());
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(scenario->name, "lossy-nus");
  EXPECT_EQ(scenario->trace.family, "nus");
  EXPECT_EQ(scenario->trace.students, 24);
  EXPECT_EQ(scenario->params.protocol.kind, ProtocolKind::kMbtQm);
  EXPECT_EQ(scenario->params.faults.messageLossRate, 0.15);
}

TEST(ScenarioParse, ReportsLineNumberedErrors) {
  std::istringstream in(
      "protocol = mbt\n"
      "this line has no equals\n"
      "losss-rate = 0.1\n"
      "access = high\n");
  std::vector<std::string> errors;
  const auto scenario = Scenario::parse(in, &errors);
  EXPECT_FALSE(scenario.has_value());
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_NE(errors[0].find("line 2"), std::string::npos);
  EXPECT_NE(errors[1].find("line 3"), std::string::npos);
  EXPECT_NE(errors[1].find("losss-rate"), std::string::npos);
  EXPECT_NE(errors[2].find("line 4"), std::string::npos);
}

TEST(ScenarioFromFile, MissingFileIsAnError) {
  std::vector<std::string> errors;
  EXPECT_FALSE(
      Scenario::fromFile("/nonexistent/p.scenario", &errors).has_value());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("cannot read"), std::string::npos);
}

TEST(ScenarioValidate, CatchesTraceParamAndOutputProblems) {
  Scenario s;  // family "file" with no path
  EXPECT_FALSE(s.validate().empty());
  s.trace.family = "nus";
  EXPECT_TRUE(s.validate().empty());
  s.params.newFilesPerDay = 0;
  s.sampleEvery = 0;
  EXPECT_EQ(s.validate().size(), 2u);
}

TEST(TraceSpec, BuildsEveryFamily) {
  for (const char* family : {"nus", "dieselnet", "rwp"}) {
    TraceSpec spec;
    spec.family = family;
    spec.days = 2;
    spec.students = 20;
    spec.courses = 4;
    spec.buses = 8;
    spec.routes = 2;
    spec.nodes = 10;
    spec.hours = 2.0;
    std::string error;
    const auto trace = spec.build(&error);
    ASSERT_TRUE(trace.has_value()) << family << ": " << error;
    EXPECT_GT(trace->nodeCount(), 0u) << family;
  }
}

TEST(TraceSpec, RejectsUnknownFamilyAndMissingPath) {
  TraceSpec spec;
  spec.family = "warp";
  std::string error;
  EXPECT_FALSE(spec.build(&error).has_value());
  EXPECT_NE(error.find("trace-family"), std::string::npos);
  spec = TraceSpec{};  // family "file", empty path
  EXPECT_FALSE(spec.build(&error).has_value());
}

TEST(ScenarioBuilder, FluentConstructionRoundTrips) {
  const Scenario s = ScenarioBuilder()
                         .name("builder-run")
                         .nusTrace(24, 6, 3)
                         .traceSeed(9)
                         .protocol(ProtocolKind::kMbtQ)
                         .accessFraction(0.4)
                         .filesPerDay(8)
                         .ttlDays(2)
                         .frequentContactDays(1)
                         .seed(11)
                         .messageLossRate(0.1)
                         .churn(0.2, 3 * kHour)
                         .build();
  EXPECT_EQ(s.name, "builder-run");
  EXPECT_EQ(s.trace.family, "nus");
  EXPECT_EQ(s.trace.students, 24);
  EXPECT_EQ(s.params.faults.messageLossRate, 0.1);
  EXPECT_EQ(s.params.faults.churnDownFraction, 0.2);
}

TEST(ScenarioBuilder, BuildThrowsListingEveryProblem) {
  ScenarioBuilder builder;
  builder.nusTrace(24, 6, 3).filesPerDay(0).set("no-such-key", "1");
  try {
    (void)builder.build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-key"), std::string::npos);
    EXPECT_NE(what.find("newFilesPerDay"), std::string::npos);
  }
}

TEST(RunScenario, MatchesHandWiredEngineRun) {
  const Scenario s = ScenarioBuilder()
                         .name("equivalence")
                         .nusTrace(24, 6, 3)
                         .protocol(ProtocolKind::kMbtQm)
                         .frequentContactDays(1)
                         .messageLossRate(0.2)
                         .build();
  std::string error;
  const auto trace = s.trace.build(&error);
  ASSERT_TRUE(trace.has_value()) << error;
  const auto outcome = runScenario(s, *trace, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  const EngineResult direct = runSimulation(*trace, s.params);
  EXPECT_EQ(outcome->result.delivery.filesDelivered,
            direct.delivery.filesDelivered);
  EXPECT_EQ(outcome->result.totals.faultMessagesDropped,
            direct.totals.faultMessagesDropped);
}

TEST(RunScenario, ConvenienceOverloadBuildsTheTrace) {
  const Scenario s = ScenarioBuilder()
                         .name("one-call")
                         .nusTrace(20, 4, 2)
                         .frequentContactDays(1)
                         .build();
  std::string error;
  const auto outcome = runScenario(s, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_GT(outcome->result.totals.contactsProcessed, 0u);
}

TEST(RunScenario, InvalidScenarioFailsWithMessage) {
  Scenario s;
  s.trace.family = "nus";
  s.params.fileTtlDays = 0;
  std::string error;
  EXPECT_FALSE(runScenario(s, &error).has_value());
  EXPECT_NE(error.find("fileTtlDays"), std::string::npos);
}

// --- checkpointed/resumed runs ----------------------------------------------

std::string readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// A small checkpointing scenario whose sample and checkpoint cadences are
/// deliberately misaligned (6 h vs 8 h), so boundaries of all three kinds
/// (sample-only, checkpoint-only, shared at 24 h) occur.
Scenario resumableScenario(const std::string& dir, bool resume) {
  Scenario s = ScenarioBuilder()
                   .name("resumable")
                   .nusTrace(30, 6, 3)
                   .protocol(ProtocolKind::kMbtQm)
                   .filesPerDay(10)
                   .frequentContactDays(1)
                   .messageLossRate(0.1)
                   .eventsOut(dir + "/events.jsonl")
                   .timeseriesOut(dir + "/series.csv", 6 * kHour)
                   .build();
  s.checkpointOut = dir + "/run.ckpt";
  s.checkpointEvery = 8 * kHour;
  s.resume = resume;
  return s;
}

TEST(RunScenarioCheckpoint, CheckpointedRunMatchesPlainRun) {
  const std::string dir = testing::TempDir() + "/sc_plain";
  std::filesystem::remove_all(dir);  // leftovers from a prior ctest run
  std::filesystem::create_directories(dir);
  std::string error;
  // Reference: same scenario with checkpointing off.
  Scenario plain = resumableScenario(dir, false);
  plain.checkpointOut.clear();
  plain.eventsOut = dir + "/ref_events.jsonl";
  plain.timeseriesOut = dir + "/ref_series.csv";
  const auto ref = runScenario(plain, &error);
  ASSERT_TRUE(ref.has_value()) << error;

  const Scenario ckpt = resumableScenario(dir, false);
  const auto outcome = runScenario(ckpt, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_FALSE(outcome->resumed);
  EXPECT_EQ(outcome->eventsWritten, ref->eventsWritten);
  EXPECT_EQ(readAll(ckpt.eventsOut), readAll(plain.eventsOut));
  EXPECT_EQ(readAll(ckpt.timeseriesOut), readAll(plain.timeseriesOut));
  // The last periodic checkpoint is left behind and is a valid file.
  const CheckpointInfo info = readCheckpointInfo(ckpt.checkpointOut);
  EXPECT_EQ(info.version, kCheckpointVersion);
  EXPECT_GT(info.executedEvents, 0u);
}

TEST(RunScenarioCheckpoint, ResumeReproducesOutputsByteIdentically) {
  const std::string dir = testing::TempDir() + "/sc_resume";
  std::filesystem::remove_all(dir);  // leftovers from a prior ctest run
  std::filesystem::create_directories(dir);
  std::string error;
  const Scenario first = resumableScenario(dir, false);
  const auto full = runScenario(first, &error);
  ASSERT_TRUE(full.has_value()) << error;
  const std::string wantEvents = readAll(first.eventsOut);
  const std::string wantSeries = readAll(first.timeseriesOut);

  // Simulate a crash after the last checkpoint: the outputs carry a garbage
  // tail the checkpoint knows nothing about. Resume must truncate it back
  // to the recorded offsets and finish byte-identically.
  {
    std::ofstream events(first.eventsOut, std::ios::app);
    events << "{\"t\":GARBAGE half-written line";
    std::ofstream series(first.timeseriesOut, std::ios::app);
    series << "999999,partial row";
  }
  const Scenario again = resumableScenario(dir, true);
  const auto resumed = runScenario(again, &error);
  ASSERT_TRUE(resumed.has_value()) << error;
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->eventsWritten, full->eventsWritten);
  EXPECT_EQ(readAll(again.eventsOut), wantEvents);
  EXPECT_EQ(readAll(again.timeseriesOut), wantSeries);
  EXPECT_EQ(resumed->result.delivery.filesDelivered,
            full->result.delivery.filesDelivered);
  EXPECT_EQ(resumed->result.totals.pieceBroadcasts,
            full->result.totals.pieceBroadcasts);
}

TEST(RunScenarioCheckpoint, ResumeWithoutCheckpointColdStarts) {
  const std::string dir = testing::TempDir() + "/sc_cold";
  std::filesystem::remove_all(dir);  // leftovers from a prior ctest run
  std::filesystem::create_directories(dir);
  std::string error;
  const Scenario s = resumableScenario(dir, true);  // nothing to resume yet
  const auto outcome = runScenario(s, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_FALSE(outcome->resumed);
  EXPECT_GT(outcome->eventsWritten, 0u);
}

TEST(RunScenarioCheckpoint, ResumeWithMissingOutputFailsLoudly) {
  const std::string dir = testing::TempDir() + "/sc_missing";
  std::filesystem::remove_all(dir);  // leftovers from a prior ctest run
  std::filesystem::create_directories(dir);
  std::string error;
  const Scenario first = resumableScenario(dir, false);
  ASSERT_TRUE(runScenario(first, &error).has_value()) << error;
  std::filesystem::remove(first.eventsOut);
  const Scenario again = resumableScenario(dir, true);
  EXPECT_FALSE(runScenario(again, &error).has_value());
  EXPECT_NE(error.find("missing"), std::string::npos) << error;
}

TEST(RunScenarioCheckpoint, ValidationCatchesBadCheckpointConfig) {
  Scenario s;
  s.trace.family = "nus";
  s.resume = true;  // without checkpoint-out
  std::string error;
  EXPECT_FALSE(runScenario(s, &error).has_value());
  EXPECT_NE(error.find("resume requires checkpoint-out"), std::string::npos);

  Scenario t;
  t.trace.family = "nus";
  t.checkpointOut = "x.ckpt";
  t.checkpointEvery = 0;
  EXPECT_FALSE(runScenario(t, &error).has_value());
  EXPECT_NE(error.find("checkpoint-every"), std::string::npos);
}

}  // namespace
}  // namespace hdtn::core
