// Scenario: the declarative run configuration. Covers key application
// (file keys == CLI flags, one semantics), the `key = value` parser with
// line-numbered errors, the fluent builder, trace building for every
// family, and runScenario() matching a hand-wired engine run.
#include "src/core/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace hdtn::core {
namespace {

TEST(ScenarioApply, SetsEngineAndFaultAndTraceFields) {
  Scenario s;
  EXPECT_EQ(s.apply("protocol", "mbt-q"), "");
  EXPECT_EQ(s.apply("scheduling", "tft"), "");
  EXPECT_EQ(s.apply("access", "0.5"), "");
  EXPECT_EQ(s.apply("files-per-day", "10"), "");
  EXPECT_EQ(s.apply("frequent-days", "1"), "");
  EXPECT_EQ(s.apply("loss-rate", "0.25"), "");
  EXPECT_EQ(s.apply("churn-fraction", "0.1"), "");
  EXPECT_EQ(s.apply("churn-downtime-hours", "2"), "");
  EXPECT_EQ(s.apply("trace-family", "dieselnet"), "");
  EXPECT_EQ(s.apply("trace-buses", "12"), "");
  EXPECT_EQ(s.params.protocol.kind, ProtocolKind::kMbtQ);
  EXPECT_EQ(s.params.protocol.scheduling, Scheduling::kTitForTat);
  EXPECT_EQ(s.params.internetAccessFraction, 0.5);
  EXPECT_EQ(s.params.newFilesPerDay, 10);
  EXPECT_EQ(s.params.frequentContactPeriod, kDay);
  EXPECT_EQ(s.params.faults.messageLossRate, 0.25);
  EXPECT_EQ(s.params.faults.churnDownFraction, 0.1);
  EXPECT_EQ(s.params.faults.churnMeanDowntime, 2 * kHour);
  EXPECT_EQ(s.trace.family, "dieselnet");
  EXPECT_EQ(s.trace.buses, 12);
}

TEST(ScenarioApply, BareSwitchMeansTrue) {
  Scenario s;
  EXPECT_EQ(s.apply("observed-popularity", ""), "");
  EXPECT_TRUE(s.params.useObservedPopularity);
  EXPECT_EQ(s.apply("observed-popularity", "false"), "");
  EXPECT_FALSE(s.params.useObservedPopularity);
}

TEST(ScenarioApply, RejectsUnknownKeysAndBadValues) {
  Scenario s;
  EXPECT_NE(s.apply("no-such-key", "1"), "");
  EXPECT_NE(s.apply("protocol", "flooding"), "");
  EXPECT_NE(s.apply("access", "lots"), "");
  EXPECT_NE(s.apply("files-per-day", "3.5"), "");
  EXPECT_NE(s.apply("churn-downtime-hours", "-1"), "");
}

TEST(ScenarioApply, EveryKnownKeyIsAccepted) {
  // knownKeys() is what the CLI override loop iterates; a key present
  // there but rejected by apply() would make a valid flag unusable.
  for (const std::string& key : Scenario::knownKeys()) {
    Scenario s;
    const std::string numeric = s.apply(key, "1");
    const std::string text = s.apply(key, "mbt");
    EXPECT_TRUE(numeric.empty() || text.empty() || key == "scheduling")
        << "key '" << key << "' rejects both '1' and 'mbt'";
  }
}

TEST(ScenarioParse, ReadsFileFormatWithCommentsAndBlanks) {
  std::istringstream in(
      "# lossy campus run\n"
      "name = lossy-nus   # trailing comment\n"
      "\n"
      "trace-family = nus\n"
      "trace-students = 24\n"
      "protocol     = mbt-qm\n"
      "loss-rate    = 0.15\n");
  std::vector<std::string> errors;
  const auto scenario = Scenario::parse(in, &errors);
  ASSERT_TRUE(scenario.has_value()) << (errors.empty() ? "" : errors.front());
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(scenario->name, "lossy-nus");
  EXPECT_EQ(scenario->trace.family, "nus");
  EXPECT_EQ(scenario->trace.students, 24);
  EXPECT_EQ(scenario->params.protocol.kind, ProtocolKind::kMbtQm);
  EXPECT_EQ(scenario->params.faults.messageLossRate, 0.15);
}

TEST(ScenarioParse, ReportsLineNumberedErrors) {
  std::istringstream in(
      "protocol = mbt\n"
      "this line has no equals\n"
      "losss-rate = 0.1\n"
      "access = high\n");
  std::vector<std::string> errors;
  const auto scenario = Scenario::parse(in, &errors);
  EXPECT_FALSE(scenario.has_value());
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_NE(errors[0].find("line 2"), std::string::npos);
  EXPECT_NE(errors[1].find("line 3"), std::string::npos);
  EXPECT_NE(errors[1].find("losss-rate"), std::string::npos);
  EXPECT_NE(errors[2].find("line 4"), std::string::npos);
}

TEST(ScenarioFromFile, MissingFileIsAnError) {
  std::vector<std::string> errors;
  EXPECT_FALSE(
      Scenario::fromFile("/nonexistent/p.scenario", &errors).has_value());
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors.front().find("cannot read"), std::string::npos);
}

TEST(ScenarioValidate, CatchesTraceParamAndOutputProblems) {
  Scenario s;  // family "file" with no path
  EXPECT_FALSE(s.validate().empty());
  s.trace.family = "nus";
  EXPECT_TRUE(s.validate().empty());
  s.params.newFilesPerDay = 0;
  s.sampleEvery = 0;
  EXPECT_EQ(s.validate().size(), 2u);
}

TEST(TraceSpec, BuildsEveryFamily) {
  for (const char* family : {"nus", "dieselnet", "rwp"}) {
    TraceSpec spec;
    spec.family = family;
    spec.days = 2;
    spec.students = 20;
    spec.courses = 4;
    spec.buses = 8;
    spec.routes = 2;
    spec.nodes = 10;
    spec.hours = 2.0;
    std::string error;
    const auto trace = spec.build(&error);
    ASSERT_TRUE(trace.has_value()) << family << ": " << error;
    EXPECT_GT(trace->nodeCount(), 0u) << family;
  }
}

TEST(TraceSpec, RejectsUnknownFamilyAndMissingPath) {
  TraceSpec spec;
  spec.family = "warp";
  std::string error;
  EXPECT_FALSE(spec.build(&error).has_value());
  EXPECT_NE(error.find("trace-family"), std::string::npos);
  spec = TraceSpec{};  // family "file", empty path
  EXPECT_FALSE(spec.build(&error).has_value());
}

TEST(ScenarioBuilder, FluentConstructionRoundTrips) {
  const Scenario s = ScenarioBuilder()
                         .name("builder-run")
                         .nusTrace(24, 6, 3)
                         .traceSeed(9)
                         .protocol(ProtocolKind::kMbtQ)
                         .accessFraction(0.4)
                         .filesPerDay(8)
                         .ttlDays(2)
                         .frequentContactDays(1)
                         .seed(11)
                         .messageLossRate(0.1)
                         .churn(0.2, 3 * kHour)
                         .build();
  EXPECT_EQ(s.name, "builder-run");
  EXPECT_EQ(s.trace.family, "nus");
  EXPECT_EQ(s.trace.students, 24);
  EXPECT_EQ(s.params.faults.messageLossRate, 0.1);
  EXPECT_EQ(s.params.faults.churnDownFraction, 0.2);
}

TEST(ScenarioBuilder, BuildThrowsListingEveryProblem) {
  ScenarioBuilder builder;
  builder.nusTrace(24, 6, 3).filesPerDay(0).set("no-such-key", "1");
  try {
    (void)builder.build();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-key"), std::string::npos);
    EXPECT_NE(what.find("newFilesPerDay"), std::string::npos);
  }
}

TEST(RunScenario, MatchesHandWiredEngineRun) {
  const Scenario s = ScenarioBuilder()
                         .name("equivalence")
                         .nusTrace(24, 6, 3)
                         .protocol(ProtocolKind::kMbtQm)
                         .frequentContactDays(1)
                         .messageLossRate(0.2)
                         .build();
  std::string error;
  const auto trace = s.trace.build(&error);
  ASSERT_TRUE(trace.has_value()) << error;
  const auto outcome = runScenario(s, *trace, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  const EngineResult direct = runSimulation(*trace, s.params);
  EXPECT_EQ(outcome->result.delivery.filesDelivered,
            direct.delivery.filesDelivered);
  EXPECT_EQ(outcome->result.totals.faultMessagesDropped,
            direct.totals.faultMessagesDropped);
}

TEST(RunScenario, ConvenienceOverloadBuildsTheTrace) {
  const Scenario s = ScenarioBuilder()
                         .name("one-call")
                         .nusTrace(20, 4, 2)
                         .frequentContactDays(1)
                         .build();
  std::string error;
  const auto outcome = runScenario(s, &error);
  ASSERT_TRUE(outcome.has_value()) << error;
  EXPECT_GT(outcome->result.totals.contactsProcessed, 0u);
}

TEST(RunScenario, InvalidScenarioFailsWithMessage) {
  Scenario s;
  s.trace.family = "nus";
  s.params.fileTtlDays = 0;
  std::string error;
  EXPECT_FALSE(runScenario(s, &error).has_value());
  EXPECT_NE(error.find("fileTtlDays"), std::string::npos);
}

}  // namespace
}  // namespace hdtn::core
