#include "src/trace/streaming.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/trace/dieselnet.hpp"
#include "src/trace/nus.hpp"

namespace hdtn::trace {
namespace {

// A deliberately messy NUS session log: comments, blanks, unsorted starts,
// ties that only differ in members, and a one-student session (well-formed
// but contact-less).
const char* kNusLog =
    "# NUS session log\n"
    "1 28800 3600 4 2 9\n"
    "\n"
    "0 28800 3600 1 2 3\n"
    "0 28800 3600 0 5\n"
    "0 50400 1800 7\n"
    "   # indented comment\n"
    "0 28800 3600 1 2 4\n"
    "2 0 120 8 9\n";

// DieselNet meeting log: optional byte counts, duplicate pair at a tie.
const char* kDieselLog =
    "# bus meetings\n"
    "3 1 7200 300 1048576\n"
    "0 1 3600 600\n"
    "2 4 3600 600 99\n"
    "1 0 86400 60\n";

std::vector<Contact> drain(ContactStream& stream) {
  std::vector<Contact> out;
  stream.reset();
  while (std::optional<Contact> c = stream.next()) out.push_back(*c);
  return out;
}

void expectStreamEqualsTrace(ContactStream& stream, const ContactTrace& t) {
  const std::vector<Contact> streamed = drain(stream);
  ASSERT_EQ(streamed.size(), t.contactCount());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], t.contacts()[i]) << "contact " << i;
  }
  EXPECT_EQ(stream.nodeCount(), t.nodeCount());
  EXPECT_EQ(stream.endTime(), t.endTime());
}

TEST(Streaming, NusStreamMatchesMaterializedReader) {
  std::istringstream materializedInput(kNusLog);
  std::string error;
  const auto materialized = readNusSessions(materializedInput, &error);
  ASSERT_TRUE(materialized.has_value()) << error;

  std::istringstream streamInput(kNusLog);
  const auto stream = openNusSessionStream(streamInput, &error);
  ASSERT_NE(stream, nullptr) << error;
  expectStreamEqualsTrace(*stream, *materialized);
}

TEST(Streaming, DieselNetStreamMatchesMaterializedReader) {
  std::istringstream materializedInput(kDieselLog);
  std::string error;
  const auto materialized = readDieselNetLog(materializedInput, &error);
  ASSERT_TRUE(materialized.has_value()) << error;

  std::istringstream streamInput(kDieselLog);
  const auto stream = openDieselNetStream(streamInput, &error);
  ASSERT_NE(stream, nullptr) << error;
  expectStreamEqualsTrace(*stream, *materialized);
}

TEST(Streaming, GeneratedNusRoundTripsThroughLogStream) {
  NusParams p;
  p.students = 30;
  p.courses = 6;
  p.coursesPerStudent = 2;
  p.days = 3;
  p.attendanceRate = 0.8;
  p.seed = 5;
  const ContactTrace trace = generateNus(p);

  // Re-serialize the generated trace as a session log (the trace is clique
  // sessions, so every contact is one log line).
  std::ostringstream log;
  for (const Contact& c : trace.contacts()) {
    log << c.start / kDay << ' ' << c.start % kDay << ' ' << c.duration();
    for (const NodeId m : c.members) log << ' ' << m.value;
    log << '\n';
  }
  std::istringstream input(log.str());
  std::string error;
  const auto stream = openNusSessionStream(input, &error);
  ASSERT_NE(stream, nullptr) << error;
  const std::vector<Contact> streamed = drain(*stream);
  ASSERT_EQ(streamed.size(), trace.contactCount());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], trace.contacts()[i]) << "contact " << i;
  }
}

TEST(Streaming, StreamErrorsMatchMaterializedReaderErrors) {
  const char* bad = "0 28800 3600 1 2\nnot a record\n";
  std::istringstream materializedInput(bad);
  std::string materializedError;
  EXPECT_FALSE(
      readNusSessions(materializedInput, &materializedError).has_value());

  std::istringstream streamInput(bad);
  std::string streamError;
  EXPECT_EQ(openNusSessionStream(streamInput, &streamError), nullptr);
  EXPECT_EQ(streamError, materializedError);
  EXPECT_NE(streamError.find("line 2"), std::string::npos) << streamError;
}

TEST(Streaming, DieselNetStreamRejectsSelfMeeting) {
  const char* bad = "1 1 3600 600\n";
  std::istringstream input(bad);
  std::string error;
  EXPECT_EQ(openDieselNetStream(input, &error), nullptr);
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(Streaming, ResetReplaysIdenticalSequence) {
  std::istringstream input(kNusLog);
  std::string error;
  const auto stream = openNusSessionStream(input, &error);
  ASSERT_NE(stream, nullptr) << error;
  const std::vector<Contact> first = drain(*stream);
  const std::vector<Contact> second = drain(*stream);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Streaming, MaterializedStreamAdaptsSortedTrace) {
  DieselNetParams p;
  p.buses = 10;
  p.routes = 2;
  p.days = 2;
  p.seed = 9;
  const ContactTrace trace = generateDieselNet(p);
  MaterializedStream stream(trace);
  expectStreamEqualsTrace(stream, trace);
}

TEST(Streaming, MaterializeRebuildsTheTrace) {
  std::istringstream input(kDieselLog);
  std::string error;
  const auto stream = openDieselNetStream(input, &error);
  ASSERT_NE(stream, nullptr) << error;
  const ContactTrace rebuilt = materialize(*stream);

  std::istringstream materializedInput(kDieselLog);
  const auto direct = readDieselNetLog(materializedInput, &error);
  ASSERT_TRUE(direct.has_value());
  ASSERT_EQ(rebuilt.contactCount(), direct->contactCount());
  for (std::size_t i = 0; i < rebuilt.contactCount(); ++i) {
    EXPECT_EQ(rebuilt.contacts()[i], direct->contacts()[i]);
  }
  EXPECT_EQ(rebuilt.nodeCount(), direct->nodeCount());
}

TEST(Streaming, PartitionHintDefaultsToEmpty) {
  std::istringstream input(kDieselLog);
  std::string error;
  const auto stream = openDieselNetStream(input, &error);
  ASSERT_NE(stream, nullptr) << error;
  EXPECT_TRUE(stream->partitionHint().empty());
}

}  // namespace
}  // namespace hdtn::trace
