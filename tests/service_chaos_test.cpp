// Graceful-degradation chaos run for the sweep service: a grid of jobs is
// submitted, workers are SIGKILLed at random, and the daemon itself is
// restarted mid-queue. The durability contract (docs/SERVICE.md) requires
// exactly-once completion — every job reaches done, none is lost or
// duplicated — and byte-identical outputs: a job that was crashed,
// preempted, and resumed produces the same bytes as one that ran
// undisturbed.
#include <gtest/gtest.h>

#include <signal.h>

#include <filesystem>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "service_test_util.hpp"

namespace hdtn::service {
namespace {

namespace fs = std::filesystem;
using namespace testutil;

TEST(ServiceChaosTest, KillsRestartsAndStillCompletesEveryJobIdentically) {
  DaemonConfig config = testConfig("chaos");
  config.retry.maxAttempts = 8;  // chaos murders more often than real life
  const std::string stateDir = config.stateDir;

  auto harness = std::make_unique<DaemonHarness>(config);
  ASSERT_EQ(harness->start(), "");

  // Three distinct scenarios, each submitted twice: the twin pairs must end
  // byte-identical no matter which twin the chaos hits.
  std::map<std::uint64_t, int> jobSeed;
  std::set<std::uint64_t> ids;
  for (const int seed : {11, 12, 13}) {
    for (int twin = 0; twin < 2; ++twin) {
      std::string error;
      const std::uint64_t id = submitJob(
          harness->socketPath(),
          "chaos-" + std::to_string(seed) + "-" + std::to_string(twin), 0,
          slowScenario(seed), &error);
      ASSERT_NE(id, 0u) << error;
      EXPECT_TRUE(ids.insert(id).second) << "duplicate job id " << id;
      jobSeed[id] = seed;
    }
  }
  ASSERT_EQ(ids.size(), 6u);

  // Chaos loop: SIGKILL random running workers, and restart the daemon
  // once mid-queue. Deterministically seeded so failures reproduce.
  std::mt19937 rng(2026);
  int kills = 0;
  bool restarted = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(300);
  while (std::chrono::steady_clock::now() < deadline) {
    FlatObject top;
    const std::vector<FlatObject> jobs =
        statusJobs(harness->socketPath(), &top);
    if (!top.empty() && getInt(top, "pending", -1) == 0) break;

    std::vector<pid_t> runningPids;
    for (const FlatObject& job : jobs) {
      if (getString(job, "state") == "running" && getInt(job, "pid") > 0) {
        runningPids.push_back(static_cast<pid_t>(getInt(job, "pid")));
      }
    }
    if (kills < 4 && !runningPids.empty() && rng() % 3 == 0) {
      const pid_t pid = runningPids[rng() % runningPids.size()];
      if (kill(pid, SIGKILL) == 0) ++kills;
    } else if (!restarted && kills >= 2) {
      // Bounce the daemon mid-queue: running jobs are preempted with
      // checkpoints, waiting jobs stay durable, and the restarted daemon
      // picks all of them back up from the WAL.
      harness->stop();
      restarted = true;
      harness = std::make_unique<DaemonHarness>(config);
      ASSERT_EQ(harness->start(), "");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_GE(kills, 2) << "chaos never landed a kill; jobs finish too fast "
                         "for this machine";
  EXPECT_TRUE(restarted);
  ASSERT_TRUE(harness->waitForDrain(120.0));

  // Exactly-once: every submitted job is done, no extras appeared.
  const std::vector<FlatObject> finalJobs = statusJobs(harness->socketPath());
  ASSERT_EQ(finalJobs.size(), ids.size());
  bool sawDisturbedJob = false;
  for (const FlatObject& job : finalJobs) {
    const auto id = static_cast<std::uint64_t>(getInt(job, "id"));
    EXPECT_EQ(ids.count(id), 1u) << "unexpected job " << id;
    EXPECT_EQ(getString(job, "state"), "done")
        << "job " << id << ": " << getString(job, "error");
    if (getInt(job, "attempts") > 1 || getInt(job, "preemptions") > 0) {
      sawDisturbedJob = true;
    }
  }
  EXPECT_TRUE(sawDisturbedJob);

  // Byte-identity: each twin pair produced the same event stream and the
  // same result row.
  std::map<int, std::vector<std::uint64_t>> twins;
  for (const auto& [id, seed] : jobSeed) twins[seed].push_back(id);
  for (const auto& [seed, pair] : twins) {
    ASSERT_EQ(pair.size(), 2u);
    const std::string eventsA = readFile(
        stateDir + "/jobs/" + std::to_string(pair[0]) + "/events.jsonl");
    const std::string eventsB = readFile(
        stateDir + "/jobs/" + std::to_string(pair[1]) + "/events.jsonl");
    ASSERT_FALSE(eventsA.empty()) << "seed " << seed;
    EXPECT_EQ(eventsA, eventsB) << "seed " << seed << " diverged";
    EXPECT_EQ(getString(statusJob(harness->socketPath(), pair[0]), "result"),
              getString(statusJob(harness->socketPath(), pair[1]), "result"))
        << "seed " << seed;
  }

  // The queue journal never lost an acknowledged submit: the daemon's own
  // durable record agrees with what we submitted.
  harness->stop();
  WorkQueue queue(stateDir, config.queueLimits);
  std::string error;
  std::vector<std::string> warnings;
  ASSERT_TRUE(queue.open(&error, &warnings)) << error;
  EXPECT_EQ(queue.jobs().size(), ids.size());
  for (const std::uint64_t id : ids) {
    const JobRecord* job = queue.find(id);
    ASSERT_NE(job, nullptr) << "job " << id << " lost from the queue";
    EXPECT_EQ(job->state, JobState::kDone);
  }
}

}  // namespace
}  // namespace hdtn::service
