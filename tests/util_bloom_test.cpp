#include "src/util/bloom.hpp"

#include <gtest/gtest.h>

#include "src/util/random.hpp"

namespace hdtn {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter filter(1024, 4);
  for (std::uint64_t k = 0; k < 50; ++k) filter.insert(k * 977);
  for (std::uint64_t k = 0; k < 50; ++k) {
    EXPECT_TRUE(filter.mayContain(k * 977));
  }
}

TEST(BloomFilter, EmptyContainsNothing) {
  BloomFilter filter(256, 3);
  for (std::uint64_t k = 1; k < 100; ++k) {
    EXPECT_FALSE(filter.mayContain(k));
  }
}

TEST(BloomFilter, FalsePositiveRateNearDesign) {
  const double target = 0.02;
  const std::size_t n = 1000;
  BloomFilter filter = BloomFilter::forCapacity(n, target);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) filter.insert(rng());
  int falsePositives = 0;
  const int probes = 100000;
  for (int i = 0; i < probes; ++i) {
    // Fresh keys from an independent stream (collision chance ~ 0).
    if (filter.mayContain(rng() | (1ull << 63))) ++falsePositives;
  }
  const double rate = static_cast<double>(falsePositives) / probes;
  EXPECT_LT(rate, target * 2.0);
  EXPECT_GT(rate, target / 10.0);  // not degenerate either
}

TEST(BloomFilter, ClearResets) {
  BloomFilter filter(256, 3);
  filter.insert(42);
  EXPECT_TRUE(filter.mayContain(42));
  filter.clear();
  EXPECT_FALSE(filter.mayContain(42));
  EXPECT_EQ(filter.insertions(), 0u);
  EXPECT_DOUBLE_EQ(filter.load(), 0.0);
}

TEST(BloomFilter, LoadGrowsWithInsertions) {
  BloomFilter filter(512, 4);
  const double empty = filter.load();
  for (std::uint64_t k = 0; k < 40; ++k) filter.insert(k);
  EXPECT_GT(filter.load(), empty);
  EXPECT_LE(filter.load(), 1.0);
}

TEST(BloomFilter, MergeIsUnion) {
  BloomFilter a(512, 4), b(512, 4);
  a.insert(1);
  b.insert(2);
  a.merge(b);
  EXPECT_TRUE(a.mayContain(1));
  EXPECT_TRUE(a.mayContain(2));
  EXPECT_EQ(a.insertions(), 2u);
}

TEST(BloomFilter, ForCapacityGeometryReasonable) {
  const BloomFilter filter = BloomFilter::forCapacity(1000, 0.01);
  // Optimal: ~9585 bits, ~7 hashes.
  EXPECT_NEAR(static_cast<double>(filter.bitCount()), 9585.0, 100.0);
  EXPECT_EQ(filter.hashCount(), 7);
}

}  // namespace
}  // namespace hdtn
