// Stable discrete-event queue.
//
// Events at equal times are delivered in insertion order (a strict FIFO
// tiebreak), which keeps simulations bit-for-bit deterministic regardless of
// heap internals.
//
// Storage discipline (this showed up in BM_EngineNusRun profiles): handler
// slots are pooled and reused — a popped (or cancelled) slot goes onto a
// free list and backs the next schedule() call — so the handler table stays
// proportional to the number of *pending* events instead of growing one
// slot per event ever scheduled. reserve() pre-sizes both the slot pool and
// the heap so a bulk schedule (the engine schedules every trace contact up
// front) performs no reallocation. EventIds carry a per-slot generation so
// a stale id can never cancel the slot's next tenant.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/util/types.hpp"

namespace hdtn::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Pre-sizes internal storage for `events` pending events.
  void reserve(std::size_t events);

  /// Schedules `fn` at absolute time `when`; returns a handle usable with
  /// cancel(). `when` must not precede the last popped event's time.
  EventId schedule(SimTime when, EventFn fn);

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed (stale ids are rejected by the slot
  /// generation, so a reused slot cannot be cancelled by its previous
  /// tenant's id). O(1); the heap entry is dropped lazily on pop.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Slots currently allocated (pending + reusable); tests assert reuse.
  [[nodiscard]] std::size_t slotCapacity() const { return slots_.size(); }

  /// Time of the next pending event; kTimeInfinity when empty.
  [[nodiscard]] SimTime nextTime() const;

  /// Pops and runs the next event; returns false when the queue is empty.
  bool runNext();

  /// Pops the next event and drops its handler without invoking it, still
  /// advancing now() to the event's time. Checkpoint restore rebuilds the
  /// deterministic schedule and uses this to skip the prefix the snapshot
  /// already covers. Returns false when the queue is empty.
  bool discardNext();

  /// Time of the most recently executed (or peeked) event.
  [[nodiscard]] SimTime now() const { return now_; }

 private:
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
  };
  struct Entry {
    SimTime when;
    std::uint64_t seq;  ///< insertion order: the FIFO tiebreak at equal when
    std::uint32_t slot;
    std::uint32_t gen;
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  /// True when the heap entry still addresses its live scheduled event.
  [[nodiscard]] bool liveEntry(const Entry& e) const {
    return slots_[e.slot].gen == e.gen && slots_[e.slot].fn != nullptr;
  }
  void skipCancelled() const;
  void popTop() const;
  /// Retires the slot behind a popped entry: clears the handler, bumps the
  /// generation (invalidating outstanding ids), and recycles the slot.
  EventFn takeAndRecycle(const Entry& e);

  // Min-heap over Entry (std::push_heap/pop_heap with operator>); a plain
  // vector so reserve() can pre-size it, unlike std::priority_queue.
  mutable std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> freeSlots_;
  std::uint64_t nextSeq_ = 0;
  std::size_t live_ = 0;
  SimTime now_ = 0;
};

}  // namespace hdtn::sim
