// Stable discrete-event queue.
//
// Events at equal times are delivered in insertion order (a strict FIFO
// tiebreak), which keeps simulations bit-for-bit deterministic regardless of
// heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/types.hpp"

namespace hdtn::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  /// Schedules `fn` at absolute time `when`; returns a handle usable with
  /// cancel(). `when` must not precede the last popped event's time.
  EventId schedule(SimTime when, EventFn fn);

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or never existed. O(1); the slot is dropped lazily on pop.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the next pending event; kTimeInfinity when empty.
  [[nodiscard]] SimTime nextTime() const;

  /// Pops and runs the next event; returns false when the queue is empty.
  bool runNext();

  /// Pops the next event and drops its handler without invoking it, still
  /// advancing now() to the event's time. Checkpoint restore rebuilds the
  /// deterministic schedule and uses this to skip the prefix the snapshot
  /// already covers. Returns false when the queue is empty.
  bool discardNext();

  /// Time of the most recently executed (or peeked) event.
  [[nodiscard]] SimTime now() const { return now_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  void skipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
      heap_;
  std::vector<EventFn> handlers_;  // indexed by EventId; empty == cancelled
  std::size_t live_ = 0;
  SimTime now_ = 0;
};

}  // namespace hdtn::sim
