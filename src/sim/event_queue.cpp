#include "src/sim/event_queue.hpp"

#include <cassert>

namespace hdtn::sim {

EventId EventQueue::schedule(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  assert(fn && "event handler must be callable");
  const EventId id = handlers_.size();
  handlers_.push_back(std::move(fn));
  heap_.push(Entry{when, id});
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id >= handlers_.size() || !handlers_[id]) return false;
  handlers_[id] = nullptr;
  --live_;
  return true;
}

void EventQueue::skipCancelled() const {
  while (!heap_.empty() && !handlers_[heap_.top().id]) heap_.pop();
}

bool EventQueue::empty() const {
  skipCancelled();
  return heap_.empty();
}

SimTime EventQueue::nextTime() const {
  skipCancelled();
  return heap_.empty() ? kTimeInfinity : heap_.top().when;
}

bool EventQueue::runNext() {
  skipCancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.when;
  EventFn fn = std::move(handlers_[entry.id]);
  handlers_[entry.id] = nullptr;
  --live_;
  fn();
  return true;
}

bool EventQueue::discardNext() {
  skipCancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.when;
  handlers_[entry.id] = nullptr;
  --live_;
  return true;
}

}  // namespace hdtn::sim
