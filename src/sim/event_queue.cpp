#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace hdtn::sim {

namespace {
constexpr std::uint64_t kGenShift = 32;
constexpr std::uint64_t kSlotMask = 0xffffffffull;
}  // namespace

void EventQueue::reserve(std::size_t events) {
  heap_.reserve(heap_.size() + events);
  slots_.reserve(std::max(slots_.size(), live_ + events));
}

EventId EventQueue::schedule(SimTime when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  assert(fn && "event handler must be callable");
  std::uint32_t slot;
  if (!freeSlots_.empty()) {
    slot = freeSlots_.back();
    freeSlots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  heap_.push_back(Entry{when, nextSeq_++, slot, slots_[slot].gen});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  ++live_;
  return (static_cast<EventId>(slots_[slot].gen) << kGenShift) | slot;
}

bool EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  const auto gen = static_cast<std::uint32_t>(id >> kGenShift);
  if (slot >= slots_.size() || slots_[slot].gen != gen || !slots_[slot].fn) {
    return false;
  }
  // Recycle the slot immediately; the heap entry goes stale (its generation
  // no longer matches) and is dropped lazily on pop.
  slots_[slot].fn = nullptr;
  ++slots_[slot].gen;
  freeSlots_.push_back(slot);
  --live_;
  return true;
}

void EventQueue::popTop() const {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  heap_.pop_back();
}

void EventQueue::skipCancelled() const {
  while (!heap_.empty() && !liveEntry(heap_.front())) popTop();
}

bool EventQueue::empty() const {
  skipCancelled();
  return heap_.empty();
}

SimTime EventQueue::nextTime() const {
  skipCancelled();
  return heap_.empty() ? kTimeInfinity : heap_.front().when;
}

EventFn EventQueue::takeAndRecycle(const Entry& e) {
  Slot& slot = slots_[e.slot];
  EventFn fn = std::move(slot.fn);
  slot.fn = nullptr;
  ++slot.gen;  // outstanding ids for this tenancy go stale
  freeSlots_.push_back(e.slot);
  return fn;
}

bool EventQueue::runNext() {
  skipCancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.front();
  popTop();
  now_ = entry.when;
  EventFn fn = takeAndRecycle(entry);
  --live_;
  fn();
  return true;
}

bool EventQueue::discardNext() {
  skipCancelled();
  if (heap_.empty()) return false;
  const Entry entry = heap_.front();
  popTop();
  now_ = entry.when;
  takeAndRecycle(entry);
  --live_;
  return true;
}

}  // namespace hdtn::sim
