#include "src/sim/simulator.hpp"

#include <memory>

namespace hdtn::sim {

EventId Simulator::at(SimTime when, EventFn fn) {
  return queue_.schedule(when, std::move(fn));
}

EventId Simulator::after(Duration delay, EventFn fn) {
  return queue_.schedule(now() + delay, std::move(fn));
}

EventId Simulator::every(SimTime first, Duration period,
                         std::function<void(SimTime)> fn) {
  // The recurring closure reschedules itself while within the run horizon.
  auto task = std::make_shared<std::function<void(SimTime)>>(std::move(fn));
  struct Recur {
    Simulator* sim;
    std::shared_ptr<std::function<void(SimTime)>> task;
    Duration period;
    void operator()() const {
      (*task)(sim->now());
      const SimTime next = sim->now() + period;
      if (next < sim->horizon_) {
        sim->queue_.schedule(next, Recur{sim, task, period});
      }
    }
  };
  return queue_.schedule(first, Recur{this, task, period});
}

bool Simulator::runOne() {
  if (queue_.empty()) return false;
  queue_.runNext();
  ++executed_;
  return true;
}

bool Simulator::skipOne() {
  if (!queue_.discardNext()) return false;
  ++executed_;
  return true;
}

void Simulator::runUntil(SimTime horizon) {
  horizon_ = horizon;
  while (!queue_.empty() && queue_.nextTime() < horizon) {
    queue_.runNext();
    ++executed_;
  }
  horizon_ = kTimeInfinity;
}

}  // namespace hdtn::sim
