// Simulation driver: a clock over an EventQueue with run-until semantics and
// periodic tasks. The file-sharing engine (core/engine) layers the protocol
// logic on top of this.
#pragma once

#include <functional>

#include "src/sim/event_queue.hpp"
#include "src/util/types.hpp"

namespace hdtn::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime now() const { return queue_.now(); }

  /// Pre-sizes the queue for a known bulk schedule (the engine schedules
  /// every trace contact up front).
  void reserve(std::size_t events) { queue_.reserve(events); }

  /// Schedules at an absolute time.
  EventId at(SimTime when, EventFn fn);

  /// Schedules `delay` seconds from now.
  EventId after(Duration delay, EventFn fn);

  /// Schedules `fn(now)` every `period` seconds, starting at `first`, until
  /// the horizon passed to run(). Returns the id of the first occurrence.
  EventId every(SimTime first, Duration period,
                std::function<void(SimTime)> fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs events until the queue drains or the next event is at or after
  /// `horizon`. The clock finishes at min(horizon, time of last event run).
  void runUntil(SimTime horizon);

  /// Runs everything.
  void run() { runUntil(kTimeInfinity); }

  /// Runs exactly one event. Returns false when the queue is empty (nothing
  /// ran). Recurring tasks scheduled with every() reschedule against an
  /// infinite horizon here, as in run().
  bool runOne();

  /// Discards the next event without executing it, advancing the clock to
  /// its scheduled time and counting it as executed. Checkpoint restore
  /// replays the deterministic schedule and skips the prefix the snapshot
  /// already covers. Returns false when the queue is empty.
  bool skipOne();

  [[nodiscard]] std::size_t pendingEvents() const { return queue_.size(); }
  /// Time of the next pending event; kTimeInfinity when the queue is empty.
  [[nodiscard]] SimTime nextEventTime() const { return queue_.nextTime(); }
  [[nodiscard]] std::uint64_t executedEvents() const { return executed_; }

 private:
  EventQueue queue_;
  std::uint64_t executed_ = 0;
  SimTime horizon_ = kTimeInfinity;
};

}  // namespace hdtn::sim
