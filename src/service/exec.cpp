#include "src/service/exec.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

namespace hdtn::service {

namespace {

void sleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

double monotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string describeOutcome(const ChildOutcome& outcome,
                            double timeoutSeconds) {
  switch (outcome.cause) {
    case ExitCause::kTimedOut:
      return "timed out after " + std::to_string(timeoutSeconds) + " s";
    case ExitCause::kSignaled:
      return "killed by signal " + std::to_string(outcome.signal);
    case ExitCause::kCleanExit:
      if (outcome.exitCode == kPreemptedExitCode) {
        return "preempted (checkpoint saved)";
      }
      return "exit code " + std::to_string(outcome.exitCode);
  }
  return "unknown outcome";
}

ChildProcess::~ChildProcess() {
  if (pid_ > 0 && !reaped_) {
    kill(pid_, SIGKILL);
    waitpid(pid_, &status_, 0);
  }
  if (stdoutFd_ >= 0) close(stdoutFd_);
}

bool ChildProcess::start(const std::vector<std::string>& argv,
                         const std::string& stdoutPath, std::string* error) {
  int pipeFds[2] = {-1, -1};
  int logFd = -1;
  if (stdoutPath.empty()) {
    if (pipe(pipeFds) != 0) {
      if (error != nullptr) *error = "pipe() failed";
      return false;
    }
  } else {
    logFd = open(stdoutPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (logFd < 0) {
      if (error != nullptr) *error = "cannot open log file " + stdoutPath;
      return false;
    }
  }

  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    args.push_back(const_cast<char*>(a.c_str()));
  }
  args.push_back(nullptr);

  const pid_t pid = fork();
  if (pid < 0) {
    if (pipeFds[0] >= 0) close(pipeFds[0]);
    if (pipeFds[1] >= 0) close(pipeFds[1]);
    if (logFd >= 0) close(logFd);
    if (error != nullptr) *error = "fork() failed";
    return false;
  }
  if (pid == 0) {
    // Child: stdout → pipe or log file, then exec. _exit(127) on exec
    // failure keeps the failure visible as a distinct exit code.
    if (logFd >= 0) {
      dup2(logFd, STDOUT_FILENO);
      dup2(logFd, STDERR_FILENO);
      close(logFd);
    } else {
      close(pipeFds[0]);
      dup2(pipeFds[1], STDOUT_FILENO);
      close(pipeFds[1]);
    }
    execvp(args[0], args.data());
    _exit(127);
  }
  if (logFd >= 0) close(logFd);
  if (pipeFds[1] >= 0) close(pipeFds[1]);
  if (pipeFds[0] >= 0) {
    // Non-blocking reads so the poll loop can watch the clock while
    // draining the pipe (a child that fills the pipe buffer would
    // otherwise deadlock against a parent that only reads after waitpid).
    fcntl(pipeFds[0], F_SETFL, O_NONBLOCK);
    stdoutFd_ = pipeFds[0];
  }
  pid_ = pid;
  reaped_ = false;
  timedOut_ = false;
  captured_.clear();
  startSeconds_ = monotonicSeconds();
  return true;
}

void ChildProcess::drainPipe() {
  if (stdoutFd_ < 0) return;
  char buf[4096];
  ssize_t n;
  while ((n = read(stdoutFd_, buf, sizeof(buf))) > 0) {
    captured_.append(buf, static_cast<std::size_t>(n));
  }
}

bool ChildProcess::poll() {
  if (pid_ <= 0 || reaped_) return false;
  drainPipe();
  const pid_t waited = waitpid(pid_, &status_, WNOHANG);
  if (waited == pid_) {
    reaped_ = true;
    drainPipe();
    return false;
  }
  return true;
}

void ChildProcess::requestStop() {
  if (pid_ > 0 && !reaped_) kill(pid_, SIGTERM);
}

void ChildProcess::forceKill(bool countAsTimeout) {
  if (pid_ > 0 && !reaped_) {
    if (countAsTimeout) timedOut_ = true;
    kill(pid_, SIGKILL);
  }
}

ChildOutcome ChildProcess::wait() {
  ChildOutcome outcome;
  if (pid_ <= 0) return outcome;
  if (!reaped_) {
    drainPipe();
    waitpid(pid_, &status_, 0);
    reaped_ = true;
  }
  drainPipe();
  if (stdoutFd_ >= 0) {
    close(stdoutFd_);
    stdoutFd_ = -1;
  }
  if (timedOut_) {
    outcome.cause = ExitCause::kTimedOut;
  } else if (WIFEXITED(status_)) {
    outcome.cause = ExitCause::kCleanExit;
    outcome.exitCode = WEXITSTATUS(status_);
  } else if (WIFSIGNALED(status_)) {
    outcome.cause = ExitCause::kSignaled;
    outcome.signal = WTERMSIG(status_);
  }
  outcome.output = std::move(captured_);
  captured_.clear();
  return outcome;
}

double ChildProcess::elapsedSeconds() const {
  return monotonicSeconds() - startSeconds_;
}

ChildOutcome runChild(const std::vector<std::string>& argv,
                      double timeoutSeconds) {
  ChildProcess child;
  std::string error;
  if (!child.start(argv, "", &error)) {
    ChildOutcome failed;
    failed.cause = ExitCause::kCleanExit;
    failed.exitCode = 127;
    failed.output = error;
    return failed;
  }
  while (child.poll()) {
    if (child.elapsedSeconds() >= timeoutSeconds) {
      child.forceKill(/*countAsTimeout=*/true);
      break;
    }
    sleepSeconds(0.01);
  }
  return child.wait();
}

RetryDecision classifyOutcome(const ChildOutcome& outcome,
                              const RetryPolicy& policy) {
  switch (outcome.cause) {
    case ExitCause::kTimedOut:
    case ExitCause::kSignaled:
      return RetryDecision::kRetry;
    case ExitCause::kCleanExit:
      if (outcome.exitCode == 0) return RetryDecision::kSuccess;
      if (outcome.exitCode == kPreemptedExitCode) {
        return RetryDecision::kPreempted;
      }
      if (std::find(policy.failFastExitCodes.begin(),
                    policy.failFastExitCodes.end(),
                    outcome.exitCode) != policy.failFastExitCodes.end()) {
        return RetryDecision::kFailFast;
      }
      return RetryDecision::kRetry;
  }
  return RetryDecision::kRetry;
}

double backoffSeconds(const RetryPolicy& policy, int nextAttempt) {
  if (nextAttempt <= 1) return 0.0;
  const int shift = std::min(nextAttempt - 2, 16);
  return policy.backoffBaseSeconds * static_cast<double>(1u << shift);
}

}  // namespace hdtn::service
