// Durable work queue for the resident sweep service (docs/SERVICE.md).
//
// Accepted jobs are persisted before they are acknowledged: every submit
// and every state transition appends one flat-JSON line to a write-ahead
// log that is fsync'd line by line, so a daemon crash (or SIGKILL) can
// never lose or duplicate an accepted job. Restart replays the snapshot
// and then the WAL; jobs that were running when the process died requeue
// with resume=true and pick their checkpoints back up.
//
// Replay is hardened the same way the sweep journal is: a torn final line
// (crash mid-append) is dropped with a warning, and genuinely malformed
// entries are reported with line numbers — neither poisons the rest of the
// journal. When the WAL outgrows its byte bound the queue compacts: the
// live state is written to a snapshot (atomic tmp + rename) and the WAL is
// truncated, so a week-long soak cannot fill the disk.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hdtn::service {

enum class JobState {
  kQueued,     ///< waiting for a worker slot
  kRunning,    ///< a worker subprocess is executing it
  kPreempted,  ///< checkpointed and stopped for a higher-priority job
  kRetrying,   ///< failed attempt; waiting out the backoff
  kDone,       ///< completed successfully (terminal)
  kFailed,     ///< attempt budget exhausted or validation failure (terminal)
  kCancelled,  ///< cancelled before completion (terminal)
};

[[nodiscard]] const char* jobStateName(JobState state);

/// What the submitter provided.
struct JobSpec {
  std::uint64_t id = 0;
  std::string name;
  /// Higher runs first; a strictly higher priority may preempt a running
  /// lower-priority job when no worker slot is free.
  int priority = 0;
  /// The scenario file contents (key = value lines; docs/FAULTS.md).
  std::string scenarioText;
};

/// A job's full lifecycle record.
struct JobRecord {
  JobSpec spec;
  JobState state = JobState::kQueued;
  /// Started attempts (preemptions do not count against the budget).
  int attempts = 0;
  int preemptions = 0;
  /// True when the next attempt should resume from the job checkpoint.
  bool resume = false;
  /// Last failure description (retries and terminal failures).
  std::string error;
  /// The worker's one-line CSV result, captured at completion.
  std::string result;
  /// Monotonic eligibility time for retry backoff; not persisted — a
  /// restart retries immediately, which is what an operator wants anyway.
  double notBeforeSeconds = 0.0;

  [[nodiscard]] bool terminal() const {
    return state == JobState::kDone || state == JobState::kFailed ||
           state == JobState::kCancelled;
  }
  [[nodiscard]] bool waiting() const {
    return state == JobState::kQueued || state == JobState::kPreempted ||
           state == JobState::kRetrying;
  }
};

struct QueueLimits {
  /// Maximum jobs in flight (waiting + running). Submissions past this are
  /// shed with an error instead of accepted unboundedly.
  std::size_t maxDepth = 256;
  /// WAL size that triggers snapshot compaction.
  std::uint64_t maxWalBytes = 1 << 20;
  /// Terminal jobs kept through a compaction (newest first); older ones
  /// are pruned from the snapshot (their output directories remain).
  std::size_t keepTerminal = 128;
};

class WorkQueue {
 public:
  /// `dir` holds queue.wal and queue.snapshot; created if missing.
  WorkQueue(std::string dir, QueueLimits limits);
  ~WorkQueue();
  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Loads snapshot + WAL and opens the WAL for appending. Replay issues
  /// (torn tail, malformed lines) are collected into *warnings; only an
  /// unopenable directory or WAL is a hard failure.
  [[nodiscard]] bool open(std::string* error,
                          std::vector<std::string>* warnings);

  /// Durably accepts a job: the WAL line is written and fsync'd before the
  /// id is returned. Returns 0 with *error set when the queue is full.
  [[nodiscard]] std::uint64_t submit(const std::string& name, int priority,
                                     const std::string& scenarioText,
                                     std::string* error);

  /// Cancels a waiting job (running jobs are stopped by the daemon first).
  [[nodiscard]] bool cancel(std::uint64_t id, std::string* error);

  [[nodiscard]] JobRecord* find(std::uint64_t id);
  [[nodiscard]] const JobRecord* find(std::uint64_t id) const;

  /// The highest-priority eligible waiting job (FIFO by id within a
  /// priority); nullptr when none is eligible at `nowSeconds`.
  [[nodiscard]] JobRecord* nextRunnable(double nowSeconds);

  // State transitions; each appends one durable WAL line.
  void markRunning(std::uint64_t id);
  void markPreempted(std::uint64_t id);
  void markRetrying(std::uint64_t id, const std::string& why,
                    double notBeforeSeconds);
  void markDone(std::uint64_t id, const std::string& result);
  void markFailed(std::uint64_t id, const std::string& why);
  void markCancelled(std::uint64_t id);

  [[nodiscard]] const std::map<std::uint64_t, JobRecord>& jobs() const {
    return jobs_;
  }
  [[nodiscard]] std::size_t countInState(JobState state) const;
  /// Waiting + running — the depth the backpressure bound applies to.
  [[nodiscard]] std::size_t activeDepth() const;

  // Durability counters for the service status output.
  [[nodiscard]] std::uint64_t walBytes() const { return walBytes_; }
  [[nodiscard]] std::uint64_t bytesWritten() const { return bytesWritten_; }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }
  [[nodiscard]] std::uint64_t prunedJobs() const { return pruned_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  /// Snapshot + truncate when the WAL exceeds its bound (also callable
  /// explicitly, e.g. at shutdown).
  void compact();

 private:
  void append(const std::string& line);
  void appendState(const JobRecord& job);
  void applyLine(const std::string& source, int lineNumber,
                 const std::string& line, std::vector<std::string>* warnings);
  [[nodiscard]] bool replayFile(const std::string& path,
                                const std::string& source,
                                std::vector<std::string>* warnings);
  [[nodiscard]] std::string encodeSubmit(const JobSpec& spec) const;
  [[nodiscard]] std::string encodeState(const JobRecord& job) const;

  std::string dir_;
  QueueLimits limits_;
  int walFd_ = -1;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::uint64_t nextId_ = 1;
  std::uint64_t walBytes_ = 0;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t pruned_ = 0;
};

}  // namespace hdtn::service
