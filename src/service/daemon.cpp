#include "src/service/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/core/scenario.hpp"
#include "src/service/jsonio.hpp"

namespace hdtn::service {

namespace fs = std::filesystem;

namespace {

/// Reads the last non-empty line of a file without loading it whole (the
/// worker's CSV result row, or the tail of an event stream).
std::string lastLine(const std::string& path, std::size_t tailBytes = 4096) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  in.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  const auto start =
      size > tailBytes ? size - static_cast<std::uint64_t>(tailBytes) : 0;
  in.seekg(static_cast<std::streamoff>(start));
  std::string tail((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  while (!tail.empty() && (tail.back() == '\n' || tail.back() == '\r')) {
    tail.pop_back();
  }
  const std::size_t nl = tail.find_last_of('\n');
  return nl == std::string::npos ? tail : tail.substr(nl + 1);
}

std::uint64_t fileSizeOrZero(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

std::string errorReply(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + jsonEscape(message) + "\"}\n";
}

}  // namespace

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {}

Daemon::~Daemon() {
  for (Client& client : clients_) {
    if (client.fd >= 0) close(client.fd);
  }
  if (listenFd_ >= 0) close(listenFd_);
  // WorkerSlot's ChildProcess destructor SIGKILLs anything still running;
  // a graceful stop goes through runLoop()/finishShutdown() instead.
}

std::string Daemon::jobDir(std::uint64_t id) const {
  return config_.stateDir + "/jobs/" + std::to_string(id);
}

bool Daemon::start(std::string* error) {
  queue_ = std::make_unique<WorkQueue>(config_.stateDir,
                                       config_.queueLimits);
  std::vector<std::string> warnings;
  if (!queue_->open(error, &warnings)) return false;
  for (const std::string& warning : warnings) {
    std::fprintf(stderr, "service: queue replay: %s\n", warning.c_str());
  }

  listenFd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) {
    if (error != nullptr) *error = "socket() failed";
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socketPath.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path too long: " + config_.socketPath;
    }
    return false;
  }
  std::strncpy(addr.sun_path, config_.socketPath.c_str(),
               sizeof(addr.sun_path) - 1);
  // A daemon that died to SIGKILL leaves its socket file behind; a fresh
  // bind needs it gone. Two live daemons on one state dir is operator
  // error the WAL's append-only format at least keeps non-corrupting.
  unlink(config_.socketPath.c_str());
  if (bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) {
      *error = "cannot bind " + config_.socketPath + ": " +
               std::strerror(errno);
    }
    return false;
  }
  if (listen(listenFd_, 16) != 0) {
    if (error != nullptr) *error = "listen() failed";
    return false;
  }
  fcntl(listenFd_, F_SETFL, O_NONBLOCK);
  writeStatusFile();
  return true;
}

void Daemon::runLoop() {
  while (step(0.05)) {
  }
}

bool Daemon::step(double waitSeconds) {
  if (stopped_) return false;
  if (externalShutdown_.load()) shuttingDown_ = true;
  pollSockets(waitSeconds);
  reapWorkers();
  watchdog();
  if (shuttingDown_) {
    // Stop every worker via checkpoint preemption; once the pool is empty
    // the queue state is compacted and the daemon exits. Waiting jobs stay
    // durable and resume on the next start.
    for (WorkerSlot& slot : workers_) {
      if (!slot.stopping) stopWorker(slot, /*cancelling=*/false);
    }
    if (workers_.empty()) {
      finishShutdown();
      return false;
    }
  } else {
    preemptForPriority();
    launchEligible();
  }
  const double now = monotonicSeconds();
  if (now >= nextStatusWrite_) {
    writeStatusFile();
    nextStatusWrite_ = now + 1.0;
  }
  return true;
}

void Daemon::finishShutdown() {
  queue_->compact();
  for (Client& client : clients_) {
    if (client.fd >= 0) close(client.fd);
  }
  clients_.clear();
  if (listenFd_ >= 0) {
    close(listenFd_);
    listenFd_ = -1;
  }
  unlink(config_.socketPath.c_str());
  writeStatusFile();
  stopped_ = true;
}

void Daemon::pollSockets(double waitSeconds) {
  std::vector<pollfd> fds;
  fds.reserve(clients_.size() + 1);
  if (listenFd_ >= 0) {
    fds.push_back({listenFd_, POLLIN, 0});
  }
  for (const Client& client : clients_) {
    short events = POLLIN;
    if (!client.outbuf.empty()) events |= POLLOUT;
    fds.push_back({client.fd, events, 0});
  }
  const int timeoutMs =
      std::max(0, static_cast<int>(waitSeconds * 1000.0));
  if (poll(fds.data(), fds.size(), timeoutMs) < 0) return;

  std::size_t index = 0;
  if (listenFd_ >= 0) {
    if ((fds[index].revents & POLLIN) != 0) {
      while (true) {
        const int fd = accept(listenFd_, nullptr, nullptr);
        if (fd < 0) break;
        fcntl(fd, F_SETFL, O_NONBLOCK);
        Client client;
        client.fd = fd;
        clients_.push_back(std::move(client));
      }
    }
    ++index;
  }
  for (std::size_t i = 0; i < clients_.size() && index + i < fds.size();
       ++i) {
    Client& client = clients_[i];
    const short revents = fds[index + i].revents;
    if ((revents & POLLIN) != 0) {
      char buf[4096];
      while (true) {
        const ssize_t n = recv(client.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          client.inbuf.append(buf, static_cast<std::size_t>(n));
          continue;
        }
        if (n == 0) client.closing = true;
        break;
      }
      std::size_t nl;
      while ((nl = client.inbuf.find('\n')) != std::string::npos) {
        const std::string line = client.inbuf.substr(0, nl);
        client.inbuf.erase(0, nl + 1);
        if (!line.empty()) client.outbuf += handleCommand(line);
      }
    }
    if ((revents & (POLLERR | POLLHUP)) != 0) client.closing = true;
    if (!client.outbuf.empty()) {
      const ssize_t n = send(client.fd, client.outbuf.data(),
                             client.outbuf.size(), MSG_NOSIGNAL);
      if (n > 0) client.outbuf.erase(0, static_cast<std::size_t>(n));
      if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        client.closing = true;
      }
    }
  }
  clients_.erase(
      std::remove_if(clients_.begin(), clients_.end(),
                     [](Client& client) {
                       if (client.closing && client.outbuf.empty()) {
                         close(client.fd);
                         return true;
                       }
                       return false;
                     }),
      clients_.end());
}

std::string Daemon::handleCommand(const std::string& line) {
  FlatObject request;
  std::string why;
  if (!parseFlatObject(line, &request, &why)) {
    return errorReply("malformed request: " + why);
  }
  const std::string cmd = getString(request, "cmd");
  if (cmd == "ping") {
    return "{\"ok\":true}\n";
  }
  if (cmd == "submit") {
    if (draining_ || shuttingDown_) {
      return errorReply(shuttingDown_ ? "shutting down" : "draining");
    }
    const std::string scenarioText = getString(request, "scenario");
    // Validate before accepting: a scenario that cannot even parse would
    // only fail fast in a worker; rejecting it here keeps the queue clean.
    std::vector<std::string> errors;
    std::istringstream in(scenarioText);
    const auto parsed = core::Scenario::parse(in, &errors);
    if (parsed) {
      for (std::string& problem : parsed->validate()) {
        errors.push_back(std::move(problem));
      }
    }
    if (!errors.empty()) {
      std::string joined = "invalid scenario";
      for (const std::string& e : errors) joined += "; " + e;
      return errorReply(joined);
    }
    std::string error;
    const std::uint64_t id = queue_->submit(
        getString(request, "name"),
        static_cast<int>(getInt(request, "priority")), scenarioText, &error);
    if (id == 0) return errorReply(error);
    return "{\"ok\":true,\"id\":" + std::to_string(id) + "}\n";
  }
  if (cmd == "status") {
    return statusJson();
  }
  if (cmd == "cancel") {
    const auto id = static_cast<std::uint64_t>(getInt(request, "id"));
    JobRecord* job = queue_->find(id);
    if (job == nullptr) {
      return errorReply("no such job " + std::to_string(id));
    }
    if (job->terminal()) {
      return errorReply("job " + std::to_string(id) + " already " +
                        jobStateName(job->state));
    }
    if (job->state == JobState::kRunning) {
      for (WorkerSlot& slot : workers_) {
        if (slot.jobId == id) stopWorker(slot, /*cancelling=*/true);
      }
    }
    queue_->markCancelled(id);
    return "{\"ok\":true}\n";
  }
  if (cmd == "drain") {
    draining_ = true;
    return "{\"ok\":true,\"draining\":true}\n";
  }
  if (cmd == "shutdown") {
    shuttingDown_ = true;
    return "{\"ok\":true,\"shutting_down\":true}\n";
  }
  return errorReply("unknown command '" + cmd + "'");
}

void Daemon::launch(JobRecord& job) {
  const std::string dir = jobDir(job.spec.id);
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string scenarioPath = dir + "/scenario.txt";
  {
    std::ofstream out(scenarioPath);
    out << job.spec.scenarioText;
    if (!job.spec.scenarioText.empty() &&
        job.spec.scenarioText.back() != '\n') {
      out << "\n";
    }
    // Later keys win in the scenario format, so appending pins the
    // service-managed outputs regardless of what the submitter set.
    out << "# --- service-managed overrides (hdtn_sim --serve) ---\n";
    out << "events-out = " << dir << "/events.jsonl\n";
    out << "checkpoint-out = " << dir << "/job.ckpt\n";
    out << "checkpoint-every = " << config_.checkpointEverySimSeconds
        << "\n";
    out << "resume = " << (job.resume ? "true" : "false") << "\n";
  }
  WorkerSlot slot;
  slot.jobId = job.spec.id;
  slot.child = std::make_unique<ChildProcess>();
  std::string error;
  if (!slot.child->start(
          {config_.workerExe, "--scenario=" + scenarioPath, "--csv"},
          dir + "/stdout.log", &error)) {
    queue_->markFailed(job.spec.id, "cannot start worker: " + error);
    return;
  }
  queue_->markRunning(job.spec.id);
  workers_.push_back(std::move(slot));
}

void Daemon::stopWorker(WorkerSlot& slot, bool cancelling) {
  slot.stopping = true;
  slot.cancelling = cancelling;
  slot.stopDeadline = monotonicSeconds() + config_.graceSeconds;
  slot.child->requestStop();
}

void Daemon::watchdog() {
  const double now = monotonicSeconds();
  for (WorkerSlot& slot : workers_) {
    if (slot.stopping) {
      if (now >= slot.stopDeadline) slot.child->forceKill();
    } else if (slot.child->elapsedSeconds() >= config_.jobTimeoutSeconds) {
      // Hung worker: the watchdog reaps it and the retry policy treats it
      // as a timeout (retry with resume).
      slot.child->forceKill(/*countAsTimeout=*/true);
    }
  }
}

void Daemon::reapWorkers() {
  for (std::size_t i = 0; i < workers_.size();) {
    WorkerSlot& slot = workers_[i];
    if (slot.child->poll()) {
      ++i;
      continue;
    }
    const ChildOutcome outcome = slot.child->wait();
    const std::uint64_t id = slot.jobId;
    const bool stopping = slot.stopping;
    const bool cancelling = slot.cancelling;
    workers_.erase(workers_.begin() + static_cast<std::ptrdiff_t>(i));

    JobRecord* job = queue_->find(id);
    if (job == nullptr) continue;
    if (cancelling || job->state == JobState::kCancelled) {
      terminalOutputBytes_ += jobOutputBytes(id);
      continue;  // already marked cancelled by handleCommand
    }
    const RetryDecision decision = classifyOutcome(outcome, config_.retry);
    const std::string what =
        describeOutcome(outcome, config_.jobTimeoutSeconds);
    switch (decision) {
      case RetryDecision::kSuccess: {
        queue_->markDone(id,
                         lastLine(jobDir(id) + "/stdout.log").substr(0, 512));
        terminalOutputBytes_ += jobOutputBytes(id);
        break;
      }
      case RetryDecision::kPreempted:
        queue_->markPreempted(id);
        break;
      case RetryDecision::kFailFast:
        queue_->markFailed(id, "validation failure (" + what +
                                   "); not retried");
        terminalOutputBytes_ += jobOutputBytes(id);
        break;
      case RetryDecision::kRetry: {
        if (stopping) {
          // We killed it past the grace period; the last periodic
          // checkpoint stands in for the one it failed to write.
          queue_->markPreempted(id);
          break;
        }
        if (job->attempts >= config_.retry.maxAttempts) {
          queue_->markFailed(id, what + " after " +
                                     std::to_string(job->attempts) +
                                     " attempt(s)");
          terminalOutputBytes_ += jobOutputBytes(id);
        } else {
          queue_->markRetrying(
              id, what,
              monotonicSeconds() +
                  backoffSeconds(config_.retry, job->attempts + 1));
        }
        break;
      }
    }
  }
}

void Daemon::launchEligible() {
  const double now = monotonicSeconds();
  while (workers_.size() < config_.workers) {
    JobRecord* job = queue_->nextRunnable(now);
    if (job == nullptr) break;
    launch(*job);
    if (job->state != JobState::kRunning &&
        job->state != JobState::kFailed) {
      break;  // launch failed without a state change; avoid spinning
    }
  }
}

void Daemon::preemptForPriority() {
  if (workers_.size() < config_.workers) return;
  JobRecord* candidate = queue_->nextRunnable(monotonicSeconds());
  if (candidate == nullptr) return;
  WorkerSlot* victim = nullptr;
  int victimPriority = 0;
  for (WorkerSlot& slot : workers_) {
    if (slot.stopping) return;  // a preemption is already in flight
    const JobRecord* running = queue_->find(slot.jobId);
    if (running == nullptr) continue;
    if (victim == nullptr || running->spec.priority < victimPriority) {
      victim = &slot;
      victimPriority = running->spec.priority;
    }
  }
  if (victim != nullptr && candidate->spec.priority > victimPriority) {
    stopWorker(*victim, /*cancelling=*/false);
  }
}

std::uint64_t Daemon::jobOutputBytes(std::uint64_t id) const {
  const std::string dir = jobDir(id);
  std::uint64_t bytes = 0;
  for (const char* name :
       {"/stdout.log", "/events.jsonl", "/job.ckpt", "/scenario.txt",
        "/timeseries.csv"}) {
    bytes += fileSizeOrZero(dir + name);
  }
  return bytes;
}

std::int64_t Daemon::jobProgressSimSeconds(std::uint64_t id) const {
  // The worker's obs JSONL stream carries the simulation clock in every
  // event; the tail of the file is the cheapest live progress signal.
  const std::string line = lastLine(jobDir(id) + "/events.jsonl", 1024);
  const std::string tag = "\"t\":";
  const std::size_t pos = line.find(tag);
  if (pos == std::string::npos) return 0;
  try {
    return std::stoll(line.substr(pos + tag.size()));
  } catch (...) {
    return 0;
  }
}

std::string Daemon::statusJson() const {
  std::uint64_t liveBytes = 0;
  std::string jobsJson;
  for (const auto& [id, job] : queue_->jobs()) {
    if (!jobsJson.empty()) jobsJson += ",";
    pid_t pid = 0;
    for (const WorkerSlot& slot : workers_) {
      if (slot.jobId == id) pid = slot.child->pid();
    }
    std::int64_t progress = 0;
    if (job.state == JobState::kRunning) {
      progress = jobProgressSimSeconds(id);
      liveBytes += jobOutputBytes(id);
    }
    jobsJson += "{\"id\":" + std::to_string(id) + ",\"name\":\"" +
                jsonEscape(job.spec.name) + "\",\"state\":\"" +
                jobStateName(job.state) +
                "\",\"priority\":" + std::to_string(job.spec.priority) +
                ",\"attempts\":" + std::to_string(job.attempts) +
                ",\"preemptions\":" + std::to_string(job.preemptions) +
                ",\"pid\":" + std::to_string(pid) +
                ",\"progress_t\":" + std::to_string(progress) +
                ",\"error\":\"" + jsonEscape(job.error) +
                "\",\"result\":\"" + jsonEscape(job.result) + "\"}";
  }
  const std::size_t pending =
      queue_->countInState(JobState::kQueued) +
      queue_->countInState(JobState::kPreempted) +
      queue_->countInState(JobState::kRetrying) +
      queue_->countInState(JobState::kRunning);
  std::string out = "{\"ok\":true";
  out += ",\"draining\":" + std::string(draining_ ? "true" : "false");
  out += ",\"shutting_down\":" +
         std::string(shuttingDown_ ? "true" : "false");
  out += ",\"workers\":" + std::to_string(config_.workers);
  out += ",\"running\":" +
         std::to_string(queue_->countInState(JobState::kRunning));
  out += ",\"queued\":" +
         std::to_string(queue_->countInState(JobState::kQueued));
  out += ",\"preempted\":" +
         std::to_string(queue_->countInState(JobState::kPreempted));
  out += ",\"retrying\":" +
         std::to_string(queue_->countInState(JobState::kRetrying));
  out += ",\"done\":" + std::to_string(queue_->countInState(JobState::kDone));
  out += ",\"failed\":" +
         std::to_string(queue_->countInState(JobState::kFailed));
  out += ",\"cancelled\":" +
         std::to_string(queue_->countInState(JobState::kCancelled));
  out += ",\"pending\":" + std::to_string(pending);
  out += ",\"wal_bytes\":" + std::to_string(queue_->walBytes());
  out += ",\"journal_bytes_written\":" +
         std::to_string(queue_->bytesWritten());
  out += ",\"compactions\":" + std::to_string(queue_->compactions());
  out += ",\"pruned_jobs\":" + std::to_string(queue_->prunedJobs());
  out += ",\"output_bytes_written\":" +
         std::to_string(terminalOutputBytes_ + liveBytes);
  out += ",\"jobs\":[" + jobsJson + "]}\n";
  return out;
}

void Daemon::writeStatusFile() {
  // Atomic rewrite: the status file never grows, and a reader never sees a
  // torn write.
  const std::string path = config_.stateDir + "/status.json";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return;
    out << statusJson();
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
}

}  // namespace hdtn::service
