#include "src/service/queue.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/service/jsonio.hpp"

namespace hdtn::service {

namespace fs = std::filesystem;

const char* jobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kPreempted: return "preempted";
    case JobState::kRetrying: return "retrying";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

namespace {

bool parseStateName(const std::string& name, JobState* out) {
  for (const JobState state :
       {JobState::kQueued, JobState::kRunning, JobState::kPreempted,
        JobState::kRetrying, JobState::kDone, JobState::kFailed,
        JobState::kCancelled}) {
    if (name == jobStateName(state)) {
      *out = state;
      return true;
    }
  }
  return false;
}

}  // namespace

WorkQueue::WorkQueue(std::string dir, QueueLimits limits)
    : dir_(std::move(dir)), limits_(limits) {}

WorkQueue::~WorkQueue() {
  if (walFd_ >= 0) close(walFd_);
}

bool WorkQueue::open(std::string* error, std::vector<std::string>* warnings) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create queue directory " + dir_ + ": " + ec.message();
    }
    return false;
  }
  jobs_.clear();
  nextId_ = 1;
  const std::string snapshotPath = dir_ + "/queue.snapshot";
  const std::string walPath = dir_ + "/queue.wal";
  if (fs::exists(snapshotPath) &&
      !replayFile(snapshotPath, "queue.snapshot", warnings)) {
    // A snapshot we cannot open at all (unlike one with bad lines, which
    // replayFile tolerates) means the directory is unusable.
    if (error != nullptr) *error = "cannot read " + snapshotPath;
    return false;
  }
  if (fs::exists(walPath) && !replayFile(walPath, "queue.wal", warnings)) {
    if (error != nullptr) *error = "cannot read " + walPath;
    return false;
  }
  // Jobs that were running when the previous daemon died have no worker
  // anymore; requeue them to resume from their checkpoints. The attempt
  // that was interrupted stays counted.
  for (auto& [id, job] : jobs_) {
    if (job.state == JobState::kRunning) {
      job.state = JobState::kQueued;
      job.resume = true;
    }
  }
  walFd_ = ::open(walPath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (walFd_ < 0) {
    if (error != nullptr) {
      *error = "cannot open " + walPath + ": " + std::strerror(errno);
    }
    return false;
  }
  walBytes_ = fs::exists(walPath) ? fs::file_size(walPath, ec) : 0;
  return true;
}

bool WorkQueue::replayFile(const std::string& path, const std::string& source,
                           std::vector<std::string>* warnings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  const bool endsWithNewline =
      !content.empty() && content.back() == '\n';
  std::size_t pos = 0;
  int lineNumber = 0;
  while (pos < content.size()) {
    ++lineNumber;
    std::size_t end = content.find('\n', pos);
    const bool lastAndTorn = end == std::string::npos;
    if (lastAndTorn) end = content.size();
    const std::string line = content.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    if (lastAndTorn && !endsWithNewline) {
      // Crash mid-append: the final line never got its newline. Drop it —
      // the operation it recorded was never acknowledged.
      FlatObject probe;
      std::string why;
      if (!parseFlatObject(line, &probe, &why)) {
        if (warnings != nullptr) {
          warnings->push_back(source + " line " +
                              std::to_string(lineNumber) +
                              ": dropped truncated final line "
                              "(crash mid-write)");
        }
        break;
      }
      // It parses in full despite the missing newline; apply it.
    }
    applyLine(source, lineNumber, line, warnings);
  }
  return true;
}

void WorkQueue::applyLine(const std::string& source, int lineNumber,
                          const std::string& line,
                          std::vector<std::string>* warnings) {
  const auto warn = [&](const std::string& why) {
    if (warnings != nullptr) {
      warnings->push_back(source + " line " + std::to_string(lineNumber) +
                          ": " + why);
    }
  };
  FlatObject record;
  std::string why;
  if (!parseFlatObject(line, &record, &why)) {
    warn("malformed entry (" + why + ")");
    return;
  }
  const std::string op = getString(record, "op");
  const auto id = static_cast<std::uint64_t>(getInt(record, "id"));
  if (id == 0) {
    warn("entry without a job id");
    return;
  }
  if (op == "submit") {
    JobRecord job;
    job.spec.id = id;
    job.spec.name = getString(record, "name");
    job.spec.priority = static_cast<int>(getInt(record, "priority"));
    job.spec.scenarioText = getString(record, "scenario");
    jobs_[id] = std::move(job);
    if (id >= nextId_) nextId_ = id + 1;
    return;
  }
  if (op == "state") {
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      warn("state update for unknown job " + std::to_string(id));
      return;
    }
    JobState state = JobState::kQueued;
    if (!parseStateName(getString(record, "state"), &state)) {
      warn("unknown state '" + getString(record, "state") + "'");
      return;
    }
    it->second.state = state;
    it->second.attempts = static_cast<int>(getInt(record, "attempts"));
    it->second.preemptions =
        static_cast<int>(getInt(record, "preemptions"));
    it->second.resume = getBool(record, "resume");
    it->second.error = getString(record, "error");
    it->second.result = getString(record, "result");
    return;
  }
  warn("unknown op '" + op + "'");
}

std::string WorkQueue::encodeSubmit(const JobSpec& spec) const {
  return "{\"op\":\"submit\",\"id\":" + std::to_string(spec.id) +
         ",\"name\":\"" + jsonEscape(spec.name) +
         "\",\"priority\":" + std::to_string(spec.priority) +
         ",\"scenario\":\"" + jsonEscape(spec.scenarioText) + "\"}\n";
}

std::string WorkQueue::encodeState(const JobRecord& job) const {
  return "{\"op\":\"state\",\"id\":" + std::to_string(job.spec.id) +
         ",\"state\":\"" + jobStateName(job.state) +
         "\",\"attempts\":" + std::to_string(job.attempts) +
         ",\"preemptions\":" + std::to_string(job.preemptions) +
         ",\"resume\":" + (job.resume ? "true" : "false") +
         ",\"error\":\"" + jsonEscape(job.error) + "\",\"result\":\"" +
         jsonEscape(job.result) + "\"}\n";
}

void WorkQueue::append(const std::string& line) {
  if (walFd_ < 0) return;
  // One full line per write, fsync'd before the caller proceeds: the
  // durability contract is that an acknowledged operation survives any
  // crash. A torn write can only be the final line, which replay drops.
  ssize_t off = 0;
  while (off < static_cast<ssize_t>(line.size())) {
    const ssize_t n = write(walFd_, line.data() + off, line.size() - off);
    if (n <= 0) break;
    off += n;
  }
  fsync(walFd_);
  walBytes_ += line.size();
  bytesWritten_ += line.size();
  if (walBytes_ > limits_.maxWalBytes) compact();
}

void WorkQueue::appendState(const JobRecord& job) {
  append(encodeState(job));
}

std::uint64_t WorkQueue::submit(const std::string& name, int priority,
                                const std::string& scenarioText,
                                std::string* error) {
  if (activeDepth() >= limits_.maxDepth) {
    if (error != nullptr) {
      *error = "queue full (depth " + std::to_string(limits_.maxDepth) +
               "); resubmit after it drains";
    }
    return 0;
  }
  JobRecord job;
  job.spec.id = nextId_++;
  job.spec.name = name.empty() ? "job-" + std::to_string(job.spec.id) : name;
  job.spec.priority = priority;
  job.spec.scenarioText = scenarioText;
  append(encodeSubmit(job.spec));
  const std::uint64_t id = job.spec.id;
  jobs_[id] = std::move(job);
  return id;
}

bool WorkQueue::cancel(std::uint64_t id, std::string* error) {
  JobRecord* job = find(id);
  if (job == nullptr) {
    if (error != nullptr) *error = "no such job " + std::to_string(id);
    return false;
  }
  if (job->terminal()) {
    if (error != nullptr) {
      *error = "job " + std::to_string(id) + " already " +
               jobStateName(job->state);
    }
    return false;
  }
  markCancelled(id);
  return true;
}

JobRecord* WorkQueue::find(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

const JobRecord* WorkQueue::find(std::uint64_t id) const {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : &it->second;
}

JobRecord* WorkQueue::nextRunnable(double nowSeconds) {
  JobRecord* best = nullptr;
  for (auto& [id, job] : jobs_) {
    if (!job.waiting()) continue;
    if (job.state == JobState::kRetrying &&
        job.notBeforeSeconds > nowSeconds) {
      continue;
    }
    if (best == nullptr || job.spec.priority > best->spec.priority) {
      best = &job;
    }
  }
  return best;
}

void WorkQueue::markRunning(std::uint64_t id) {
  JobRecord* job = find(id);
  if (job == nullptr) return;
  job->state = JobState::kRunning;
  ++job->attempts;
  appendState(*job);
}

void WorkQueue::markPreempted(std::uint64_t id) {
  JobRecord* job = find(id);
  if (job == nullptr) return;
  job->state = JobState::kPreempted;
  ++job->preemptions;
  job->resume = true;
  appendState(*job);
}

void WorkQueue::markRetrying(std::uint64_t id, const std::string& why,
                             double notBeforeSeconds) {
  JobRecord* job = find(id);
  if (job == nullptr) return;
  job->state = JobState::kRetrying;
  job->error = why;
  job->resume = true;
  job->notBeforeSeconds = notBeforeSeconds;
  appendState(*job);
}

void WorkQueue::markDone(std::uint64_t id, const std::string& result) {
  JobRecord* job = find(id);
  if (job == nullptr) return;
  job->state = JobState::kDone;
  job->error.clear();
  job->result = result;
  appendState(*job);
}

void WorkQueue::markFailed(std::uint64_t id, const std::string& why) {
  JobRecord* job = find(id);
  if (job == nullptr) return;
  job->state = JobState::kFailed;
  job->error = why;
  appendState(*job);
}

void WorkQueue::markCancelled(std::uint64_t id) {
  JobRecord* job = find(id);
  if (job == nullptr) return;
  job->state = JobState::kCancelled;
  appendState(*job);
}

std::size_t WorkQueue::countInState(JobState state) const {
  std::size_t count = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == state) ++count;
  }
  return count;
}

std::size_t WorkQueue::activeDepth() const {
  std::size_t count = 0;
  for (const auto& [id, job] : jobs_) {
    if (!job.terminal()) ++count;
  }
  return count;
}

void WorkQueue::compact() {
  if (walFd_ < 0) return;
  // Prune the oldest terminal jobs past the keep bound; their output
  // directories stay on disk, only the queue records go.
  std::vector<std::uint64_t> terminal;
  for (const auto& [id, job] : jobs_) {
    if (job.terminal()) terminal.push_back(id);
  }
  if (terminal.size() > limits_.keepTerminal) {
    const std::size_t drop = terminal.size() - limits_.keepTerminal;
    for (std::size_t i = 0; i < drop; ++i) {
      jobs_.erase(terminal[i]);
      ++pruned_;
    }
  }
  const std::string snapshotPath = dir_ + "/queue.snapshot";
  const std::string tmpPath = snapshotPath + ".tmp";
  {
    const int fd =
        ::open(tmpPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return;
    std::string content;
    for (const auto& [id, job] : jobs_) {
      content += encodeSubmit(job.spec);
      content += encodeState(job);
    }
    ssize_t off = 0;
    while (off < static_cast<ssize_t>(content.size())) {
      const ssize_t n =
          write(fd, content.data() + off, content.size() - off);
      if (n <= 0) break;
      off += n;
    }
    fsync(fd);
    close(fd);
    bytesWritten_ += content.size();
  }
  std::error_code ec;
  fs::rename(tmpPath, snapshotPath, ec);
  if (ec) return;
  // The snapshot now carries everything; the WAL can restart empty.
  if (ftruncate(walFd_, 0) == 0) {
    walBytes_ = 0;
  }
  ++compactions_;
}

}  // namespace hdtn::service
