#include "src/service/jsonio.hpp"

#include <cctype>
#include <cstdio>

namespace hdtn::service {

namespace {

void fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

/// Skips spaces and tabs (the only whitespace our writers emit).
void skipSpace(std::string_view text, std::size_t* pos) {
  while (*pos < text.size() &&
         (text[*pos] == ' ' || text[*pos] == '\t')) {
    ++*pos;
  }
}

/// Parses a quoted string starting at the opening quote; leaves *pos one
/// past the closing quote.
bool parseQuoted(std::string_view text, std::size_t* pos, std::string* out,
                 std::string* error) {
  if (*pos >= text.size() || text[*pos] != '"') {
    fail(error, "expected '\"' at offset " + std::to_string(*pos));
    return false;
  }
  ++*pos;
  out->clear();
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c == '\\') {
      if (*pos + 1 >= text.size()) break;
      const char esc = text[*pos + 1];
      *pos += 2;
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (*pos + 4 > text.size()) {
            fail(error, "truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[*pos + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(error, "bad \\u escape digit");
              return false;
            }
          }
          *pos += 4;
          // Our writers only emit \u00XX (control characters); decode the
          // low byte and reject anything wider rather than mis-decode it.
          if (code > 0xff) {
            fail(error, "unsupported \\u escape beyond \\u00ff");
            return false;
          }
          out->push_back(static_cast<char>(code));
          break;
        }
        default:
          fail(error, std::string("unknown escape '\\") + esc + "'");
          return false;
      }
      continue;
    }
    out->push_back(c);
    ++*pos;
  }
  fail(error, "unterminated string");
  return false;
}

/// Parses an unquoted scalar (number / true / false / null) verbatim.
bool parseScalar(std::string_view text, std::size_t* pos, std::string* out,
                 std::string* error) {
  const std::size_t start = *pos;
  while (*pos < text.size()) {
    const char c = text[*pos];
    if (c == ',' || c == '}' || c == ' ' || c == '\t') break;
    if (c == '{' || c == '[') {
      fail(error, "nested values are not supported");
      return false;
    }
    ++*pos;
  }
  if (*pos == start) {
    fail(error, "empty value at offset " + std::to_string(start));
    return false;
  }
  *out = std::string(text.substr(start, *pos - start));
  if (*out == "null") out->clear();
  return true;
}

}  // namespace

std::string jsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

bool parseFlatObject(std::string_view line, FlatObject* out,
                     std::string* error) {
  out->clear();
  std::size_t pos = 0;
  skipSpace(line, &pos);
  if (pos >= line.size() || line[pos] != '{') {
    fail(error, "expected '{'");
    return false;
  }
  ++pos;
  skipSpace(line, &pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      skipSpace(line, &pos);
      std::string key;
      if (!parseQuoted(line, &pos, &key, error)) return false;
      skipSpace(line, &pos);
      if (pos >= line.size() || line[pos] != ':') {
        fail(error, "expected ':' after key '" + key + "'");
        return false;
      }
      ++pos;
      skipSpace(line, &pos);
      std::string value;
      if (pos < line.size() && line[pos] == '"') {
        if (!parseQuoted(line, &pos, &value, error)) return false;
      } else {
        if (!parseScalar(line, &pos, &value, error)) return false;
      }
      (*out)[key] = std::move(value);
      skipSpace(line, &pos);
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      fail(error, "expected ',' or '}' at offset " + std::to_string(pos));
      return false;
    }
  }
  skipSpace(line, &pos);
  // Tolerate one trailing newline (journal lines arrive with it).
  if (pos < line.size() && line[pos] == '\n') ++pos;
  if (pos != line.size()) {
    fail(error, "trailing bytes after '}'");
    return false;
  }
  return true;
}

std::string getString(const FlatObject& object, const std::string& key,
                      const std::string& fallback) {
  const auto it = object.find(key);
  return it == object.end() ? fallback : it->second;
}

std::int64_t getInt(const FlatObject& object, const std::string& key,
                    std::int64_t fallback) {
  const auto it = object.find(key);
  if (it == object.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

bool getBool(const FlatObject& object, const std::string& key,
             bool fallback) {
  const auto it = object.find(key);
  if (it == object.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

std::vector<std::string> splitObjectArray(std::string_view arrayBody) {
  std::vector<std::string> objects;
  int depth = 0;
  bool inString = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < arrayBody.size(); ++i) {
    const char c = arrayBody[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') {
      inString = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) {
        objects.emplace_back(arrayBody.substr(start, i - start + 1));
      }
    }
  }
  return objects;
}

std::string extractArrayBody(std::string_view objectText,
                             const std::string& key) {
  const std::string tag = "\"" + key + "\":[";
  bool inString = false;
  for (std::size_t i = 0; i < objectText.size(); ++i) {
    const char c = objectText[i];
    if (inString) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') {
      if (objectText.compare(i, tag.size(), tag) == 0) {
        const std::size_t bodyStart = i + tag.size();
        int depth = 1;
        bool bodyString = false;
        for (std::size_t j = bodyStart; j < objectText.size(); ++j) {
          const char b = objectText[j];
          if (bodyString) {
            if (b == '\\') {
              ++j;
            } else if (b == '"') {
              bodyString = false;
            }
            continue;
          }
          if (b == '"') {
            bodyString = true;
          } else if (b == '[') {
            ++depth;
          } else if (b == ']') {
            if (--depth == 0) {
              return std::string(objectText.substr(bodyStart, j - bodyStart));
            }
          }
        }
        return "";
      }
      inString = true;
    }
  }
  return "";
}

std::string stripArrayFields(std::string_view objectText) {
  std::string out;
  out.reserve(objectText.size());
  bool inString = false;
  for (std::size_t i = 0; i < objectText.size(); ++i) {
    const char c = objectText[i];
    if (inString) {
      out.push_back(c);
      if (c == '\\' && i + 1 < objectText.size()) {
        out.push_back(objectText[++i]);
      } else if (c == '"') {
        inString = false;
      }
      continue;
    }
    if (c == '"') {
      // Peek: is this the start of `"key":[`? If so, skip the whole field
      // (and one adjacent comma).
      std::size_t j = i + 1;
      while (j < objectText.size() && objectText[j] != '"') {
        if (objectText[j] == '\\') ++j;
        ++j;
      }
      std::size_t k = j + 1;
      while (k < objectText.size() &&
             (objectText[k] == ' ' || objectText[k] == ':')) {
        ++k;
      }
      if (j < objectText.size() && k < objectText.size() &&
          objectText[k] == '[' && objectText[j] == '"' &&
          objectText[k - 1] == ':') {
        int depth = 0;
        bool s = false;
        std::size_t end = k;
        for (; end < objectText.size(); ++end) {
          const char b = objectText[end];
          if (s) {
            if (b == '\\') {
              ++end;
            } else if (b == '"') {
              s = false;
            }
            continue;
          }
          if (b == '"') {
            s = true;
          } else if (b == '[') {
            ++depth;
          } else if (b == ']') {
            if (--depth == 0) break;
          }
        }
        i = end;  // lands on ']'
        // Swallow one separating comma (either the one ahead, or the one
        // we already emitted behind).
        if (i + 1 < objectText.size() && objectText[i + 1] == ',') {
          ++i;
        } else if (!out.empty() && out.back() == ',') {
          out.pop_back();
        }
        continue;
      }
      inString = true;
      out.push_back(c);
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace hdtn::service
