// Minimal JSON plumbing for the sweep service's wire protocol and durable
// work-queue journal (docs/SERVICE.md).
//
// Both formats are newline-delimited flat JSON objects — string, integer,
// double, boolean, and null values only, no nesting — so a full JSON
// library would be dead weight. parseFlatObject() is strict about what it
// does support: a malformed line is an error with a reason, never a silent
// partial parse, because the queue journal uses "parses cleanly" to tell a
// torn crash-tail from corruption.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hdtn::service {

/// JSON string escaping: backslash, quote, and control characters (\n, \t,
/// \r and \u00XX for the rest). Everything else passes through.
[[nodiscard]] std::string jsonEscape(std::string_view text);

/// One flat JSON object, parsed into key → decoded value. Numbers and
/// booleans keep their literal spelling ("42", "1.5", "true"); strings are
/// unescaped; null becomes an empty string.
using FlatObject = std::map<std::string, std::string>;

/// Parses `{"key":value,...}` with no nested objects/arrays. Returns false
/// and sets *error (when non-null) on anything malformed: truncated input,
/// bad escape, trailing bytes, nesting.
[[nodiscard]] bool parseFlatObject(std::string_view line, FlatObject* out,
                                   std::string* error);

/// Convenience getters over a parsed object.
[[nodiscard]] std::string getString(const FlatObject& object,
                                    const std::string& key,
                                    const std::string& fallback = "");
[[nodiscard]] std::int64_t getInt(const FlatObject& object,
                                  const std::string& key,
                                  std::int64_t fallback = 0);
[[nodiscard]] bool getBool(const FlatObject& object, const std::string& key,
                           bool fallback = false);

/// Splits the body of a JSON array of flat objects ("{...},{...}") into the
/// individual object texts, respecting quoted strings. Used by the status
/// client, which receives one nested array (the job list) inside an
/// otherwise flat reply.
[[nodiscard]] std::vector<std::string> splitObjectArray(
    std::string_view arrayBody);

/// Extracts the body of the top-level array field `"key":[ ... ]` from a
/// JSON object text, respecting quoted strings; empty when absent.
[[nodiscard]] std::string extractArrayBody(std::string_view objectText,
                                           const std::string& key);

/// The same object text with every top-level array field removed — what
/// parseFlatObject can digest of a status reply.
[[nodiscard]] std::string stripArrayFields(std::string_view objectText);

}  // namespace hdtn::service
