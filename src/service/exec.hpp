// Job-execution core shared by the batch sweep supervisor (bench
// --supervise) and the resident sweep service (hdtn_sim --serve).
//
// ChildProcess is the one place that forks: it spawns a worker, captures
// its stdout (in memory or to a per-attempt log file), and supports the
// cooperative stop protocol — requestStop() sends SIGTERM so a
// checkpoint-aware worker can save state and exit with kPreemptedExitCode,
// and forceKill() escalates to SIGKILL when the grace period runs out.
//
// classifyOutcome() turns what the child did into a retry decision: clean
// validation failures (exit 2, exec failure 127) are deterministic and fail
// fast; crashes, timeouts, and other runtime exits retry — with resume,
// because every supervised worker checkpoints (docs/SERVICE.md).
#pragma once

#include <string>
#include <vector>

#include <sys/types.h>

namespace hdtn::service {

/// Exit code a preempted worker uses after saving its checkpoint on
/// SIGTERM: "stopped on request, resume me later" (EX_TEMPFAIL).
inline constexpr int kPreemptedExitCode = 75;

enum class ExitCause {
  kCleanExit,  ///< exited; exitCode is valid
  kSignaled,   ///< died to a signal (crash, or our SIGKILL)
  kTimedOut,   ///< we killed it past its wall-clock budget
};

/// What one child attempt did.
struct ChildOutcome {
  ExitCause cause = ExitCause::kSignaled;
  int exitCode = -1;  ///< valid when cause == kCleanExit
  int signal = 0;     ///< valid when cause == kSignaled
  /// Captured stdout (memory-capture mode only; empty in log-file mode).
  std::string output;
};

/// "exit code 3" / "killed by signal 9" / "timed out after 600 s" — for
/// journals and status lines.
[[nodiscard]] std::string describeOutcome(const ChildOutcome& outcome,
                                          double timeoutSeconds);

/// One worker subprocess, driven non-blockingly so a pool can watch many.
class ChildProcess {
 public:
  ChildProcess() = default;
  ~ChildProcess();
  ChildProcess(const ChildProcess&) = delete;
  ChildProcess& operator=(const ChildProcess&) = delete;

  /// Spawns argv[0] with the given arguments. When `stdoutPath` is empty,
  /// stdout is captured into memory (drained by poll()); otherwise stdout
  /// and stderr are redirected to that file, truncating it — per-attempt
  /// logs stay bounded by construction. Returns false with *error set when
  /// the fork or pipe fails.
  [[nodiscard]] bool start(const std::vector<std::string>& argv,
                           const std::string& stdoutPath, std::string* error);

  /// Drains any pipe output and reaps the child if it exited. Returns true
  /// while the child is still running.
  [[nodiscard]] bool poll();

  /// Cooperative stop: SIGTERM. A checkpoint-aware worker saves state and
  /// exits kPreemptedExitCode; anything else just dies.
  void requestStop();

  /// SIGKILL. The next poll()/wait() reaps it as kSignaled.
  void forceKill(bool countAsTimeout = false);

  /// Blocks until the child exits, then returns its outcome. Also valid
  /// after poll() returned false.
  [[nodiscard]] ChildOutcome wait();

  [[nodiscard]] pid_t pid() const { return pid_; }
  [[nodiscard]] bool started() const { return pid_ > 0; }
  /// Wall-clock seconds since start().
  [[nodiscard]] double elapsedSeconds() const;

 private:
  void drainPipe();

  pid_t pid_ = -1;
  int stdoutFd_ = -1;
  bool reaped_ = false;
  bool timedOut_ = false;
  int status_ = 0;
  double startSeconds_ = 0.0;
  std::string captured_;
};

/// Runs argv to completion under a wall-clock budget, SIGKILLing it past
/// the deadline. The synchronous path used by the batch supervisor.
[[nodiscard]] ChildOutcome runChild(const std::vector<std::string>& argv,
                                    double timeoutSeconds);

/// Retry policy shared by the supervisor and the service.
struct RetryPolicy {
  /// Attempts per job (first run + retries).
  int maxAttempts = 3;
  /// Sleep before retry n is backoffBaseSeconds * 2^(n-1).
  double backoffBaseSeconds = 0.5;
  /// Clean exit codes that are deterministic — bad flags, invalid
  /// parameters, exec failure — and therefore fail fast with no retry.
  std::vector<int> failFastExitCodes = {2, 127};
};

enum class RetryDecision {
  kSuccess,    ///< exit 0
  kRetry,      ///< crash / timeout / transient runtime failure
  kFailFast,   ///< deterministic validation failure; retrying cannot help
  kPreempted,  ///< stopped on request with a checkpoint; not a failure
};

[[nodiscard]] RetryDecision classifyOutcome(const ChildOutcome& outcome,
                                            const RetryPolicy& policy);

/// Backoff before attempt `nextAttempt` (2, 3, ...): base * 2^(n-2).
[[nodiscard]] double backoffSeconds(const RetryPolicy& policy,
                                    int nextAttempt);

/// Monotonic clock in seconds (steady, not wall time).
[[nodiscard]] double monotonicSeconds();

}  // namespace hdtn::service
