// The resident sweep service behind `hdtn_sim --serve` (docs/SERVICE.md).
//
// One long-lived, single-threaded daemon owns a durable WorkQueue and a
// bounded pool of worker subprocesses. Scenario jobs arrive over a local
// Unix socket as newline-delimited JSON (submit/status/cancel/drain/
// shutdown — hdtn_sweepctl is the CLI client); each accepted job is
// persisted to the write-ahead queue before it is acknowledged, executed
// as `<workerExe> --scenario=<job dir>/scenario.txt --csv` under a
// wall-clock timeout, and retried with exponential backoff and
// resume-from-checkpoint on crashes and timeouts. A strictly
// higher-priority submission preempts the lowest-priority running job:
// SIGTERM asks the worker to checkpoint and exit kPreemptedExitCode, and
// SIGKILL lands after a grace period — either way the job resumes later
// from its checkpoint, byte-identical to an undisturbed run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/service/exec.hpp"
#include "src/service/queue.hpp"

namespace hdtn::service {

struct DaemonConfig {
  /// Unix-domain socket the daemon listens on. A stale socket file from a
  /// killed daemon is replaced at start.
  std::string socketPath;
  /// Holds the durable queue (queue.wal / queue.snapshot), per-job
  /// directories (jobs/<id>/), and the periodically rewritten status.json.
  std::string stateDir;
  /// Worker binary (hdtn_sim); `--serve` points this at its own
  /// executable.
  std::string workerExe;
  /// Worker subprocess slots.
  std::size_t workers = 2;
  /// Backpressure + WAL rotation bounds.
  QueueLimits queueLimits;
  /// Wall-clock budget per attempt; the watchdog SIGKILLs past it.
  double jobTimeoutSeconds = 600.0;
  /// Attempts/backoff/fail-fast classification (shared with --supervise).
  RetryPolicy retry;
  /// Seconds between the preemption SIGTERM and the SIGKILL escalation.
  double graceSeconds = 5.0;
  /// checkpoint-every injected into every job, simulation seconds.
  std::int64_t checkpointEverySimSeconds = 21600;
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Opens the queue (replaying the WAL), binds the socket, and starts
  /// listening. Replay warnings are reported to stderr; only an unusable
  /// state dir or socket fails.
  [[nodiscard]] bool start(std::string* error);

  /// Serves until shutdown is requested (command or requestShutdown()),
  /// then stops workers via checkpoint preemption and persists the queue.
  void runLoop();

  /// One poll/schedule iteration, waiting at most `waitSeconds` for socket
  /// activity. Returns false once the daemon has fully shut down.
  [[nodiscard]] bool step(double waitSeconds);

  /// Thread/signal-safe shutdown request; the loop notices on its next
  /// iteration.
  void requestShutdown() { externalShutdown_.store(true); }

  /// The queue, for post-shutdown inspection in tests.
  [[nodiscard]] const WorkQueue* queue() const { return queue_.get(); }

  [[nodiscard]] const DaemonConfig& config() const { return config_; }

  /// Directory holding one job's scenario, outputs, and checkpoint.
  [[nodiscard]] std::string jobDir(std::uint64_t id) const;

 private:
  struct WorkerSlot {
    std::uint64_t jobId = 0;
    std::unique_ptr<ChildProcess> child;
    /// SIGTERM sent (preemption/cancel/shutdown); SIGKILL past the
    /// deadline.
    bool stopping = false;
    /// True when the stop is a cancellation, not a preemption.
    bool cancelling = false;
    double stopDeadline = 0.0;
  };

  struct Client {
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    bool closing = false;
  };

  [[nodiscard]] std::string handleCommand(const std::string& line);
  [[nodiscard]] std::string statusJson() const;
  void pollSockets(double waitSeconds);
  void reapWorkers();
  void watchdog();
  void launchEligible();
  void preemptForPriority();
  void launch(JobRecord& job);
  void stopWorker(WorkerSlot& slot, bool cancelling);
  void writeStatusFile();
  void finishShutdown();
  [[nodiscard]] std::uint64_t jobOutputBytes(std::uint64_t id) const;
  [[nodiscard]] std::int64_t jobProgressSimSeconds(std::uint64_t id) const;

  DaemonConfig config_;
  std::unique_ptr<WorkQueue> queue_;
  int listenFd_ = -1;
  std::vector<Client> clients_;
  std::vector<WorkerSlot> workers_;
  bool draining_ = false;
  bool shuttingDown_ = false;
  bool stopped_ = false;
  std::atomic<bool> externalShutdown_{false};
  double nextStatusWrite_ = 0.0;
  /// Output bytes of terminal jobs, accumulated at reap time; running
  /// jobs are measured live in statusJson().
  std::uint64_t terminalOutputBytes_ = 0;
};

}  // namespace hdtn::service
