#include "src/util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "src/util/types.hpp"

namespace hdtn {
namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel logThreshold() { return g_threshold.load(std::memory_order_relaxed); }

void setLogThreshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

void logMessage(LogLevel level, std::string_view message) {
  if (level < logThreshold()) return;
  std::fprintf(stderr, "[%s] %.*s\n", levelName(level),
               static_cast<int>(message.size()), message.data());
}

std::string formatTime(SimTime t) {
  const SimTime day = t / kDay;
  SimTime rem = t % kDay;
  if (rem < 0) rem += kDay;
  const int h = static_cast<int>(rem / kHour);
  const int m = static_cast<int>((rem % kHour) / kMinute);
  const int s = static_cast<int>(rem % kMinute);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%lld %02d:%02d:%02d",
                static_cast<long long>(day), h, m, s);
  return buf;
}

}  // namespace hdtn
