// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in the library flows through Rng so that a run is
// exactly reproducible from its seed. The engine hands independent streams
// (derived via SplitMix64) to independent subsystems so that adding a random
// draw in one subsystem does not perturb another.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/util/types.hpp"

namespace hdtn {

/// xoshiro256** PRNG (Blackman & Vigna) seeded via SplitMix64.
/// Satisfies the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }

  result_type operator()();

  /// Derives an independent child stream; deterministic in (state, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p.
  bool chance(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Normal draw via Box-Muller.
  double normal(double mean, double stddev);

  /// Picks a uniformly random element index of a non-empty range size.
  std::size_t pickIndex(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = pickIndex(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// The raw xoshiro256** state, for checkpointing a stream position.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  /// Restores a stream position captured with state().
  void setState(const std::array<std::uint64_t, 4>& s) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  std::uint64_t s_[4];
};

/// Samples file popularity using the paper's inverse-CDF construction
/// (Section VI-A): density ~ lambda * e^(-lambda * x), truncated/normalized
/// to [0, 1]:
///     p = -log(1 - x * (1 - e^-lambda)) / lambda,  x ~ U(0, 1).
/// Mean is approximately 1/lambda for large lambda.
[[nodiscard]] Popularity samplePopularity(Rng& rng, double lambda);

/// The paper sets lambda = n/2 for n new files per day so that each node
/// generates on average 2 queries per day.
[[nodiscard]] double popularityLambdaForFilesPerDay(int filesPerDay);

/// Deterministic cyclic broadcast order for the tit-for-tat download
/// scheduler (Section V-B): every member of a clique computes the same
/// permutation of `members` from a PRNG seeded with the sum of the ids.
[[nodiscard]] std::vector<NodeId> cyclicOrder(std::span<const NodeId> members);

}  // namespace hdtn
