// Fundamental value types shared across the hdtn library.
//
// Strong typedefs are used for identifiers so that a node id can never be
// accidentally passed where a file id is expected. Simulation time is an
// integer number of seconds since the start of the trace; every module in
// the library uses this single representation.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace hdtn {

/// Simulation time in whole seconds since trace start.
using SimTime = std::int64_t;

/// Duration in seconds.
using Duration = std::int64_t;

inline constexpr SimTime kSecond = 1;
inline constexpr SimTime kMinute = 60;
inline constexpr SimTime kHour = 3600;
inline constexpr SimTime kDay = 86400;

/// Sentinel for "never" / "no deadline".
inline constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::max();

/// Hour of day (14:00) at which the Internet publishes the day's new files
/// in the paper's simulation model (Section VI-A).
inline constexpr SimTime kDailyPublishHour = 14 * kHour;

/// Strongly-typed integral identifier. `Tag` makes distinct instantiations
/// incompatible with each other.
template <typename Tag>
struct Id {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;
};

struct NodeTag {};
struct FileTag {};
struct QueryTag {};

/// Identifier of a mobile node (or the Internet pseudo-node).
using NodeId = Id<NodeTag>;
/// Identifier of a published file; doubles as the index into the catalog.
using FileId = Id<FileTag>;
/// Identifier of a user query.
using QueryId = Id<QueryTag>;

/// Uniform resource identifier of a file, e.g. "dtn://fox/news-0042".
/// In this implementation the URI uniquely determines the file.
using Uri = std::string;

/// Popularity of a file/metadata in [0, 1]: the probability that a given
/// user is interested in the file (paper Section VI-A).
using Popularity = double;

/// Formats a SimTime as "d<day> hh:mm:ss" for logs and reports.
[[nodiscard]] std::string formatTime(SimTime t);

}  // namespace hdtn

namespace std {
template <typename Tag>
struct hash<hdtn::Id<Tag>> {
  size_t operator()(hdtn::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
}  // namespace std
