#include "src/util/random.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace hdtn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the full 256-bit state from SplitMix64 as recommended by the
  // xoshiro authors; guarantees a non-zero state.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t salt) {
  std::uint64_t seed = (*this)() ^ (salt * 0x2545f4914f6cdd1dull);
  return Rng(seed);
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ull) - (~0ull) % span;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.141592653589793 * u2);
  return mean + stddev * z;
}

std::size_t Rng::pickIndex(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(
      uniformInt(0, static_cast<std::int64_t>(size) - 1));
}

Popularity samplePopularity(Rng& rng, double lambda) {
  assert(lambda > 0);
  const double x = rng.uniform();
  const double p = -std::log(1.0 - x * (1.0 - std::exp(-lambda))) / lambda;
  return std::clamp(p, 0.0, 1.0);
}

double popularityLambdaForFilesPerDay(int filesPerDay) {
  assert(filesPerDay > 0);
  return static_cast<double>(filesPerDay) / 2.0;
}

std::vector<NodeId> cyclicOrder(std::span<const NodeId> members) {
  std::vector<NodeId> order(members.begin(), members.end());
  std::sort(order.begin(), order.end());
  // Seed with the sum of the ids so that every clique member computes the
  // same permutation without any coordination (paper Section V-B).
  std::uint64_t seed = 0;
  for (NodeId id : order) seed += id.value;
  Rng rng(seed);
  rng.shuffle(order);
  return order;
}

}  // namespace hdtn
