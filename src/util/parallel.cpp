#include "src/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace hdtn {

unsigned defaultThreadCount() {
  if (const char* env = std::getenv("HDTN_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1u : hw;
}

void parallelFor(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
         i < count; i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  const std::size_t workerCount =
      std::min<std::size_t>(threads, count) - 1;  // caller thread works too
  std::vector<std::thread> pool;
  pool.reserve(workerCount);
  for (std::size_t t = 0; t < workerCount; ++t) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
}

}  // namespace hdtn
