// Tabular result output: CSV files for downstream plotting and aligned
// plain-text tables for terminal reports. Every benchmark prints its series
// through these helpers so that all tables in bench output share a format.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace hdtn {

/// A simple in-memory table of strings with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header width.
  void addRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void addRow(std::initializer_list<double> values, int precision = 4);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const { return header_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Writes RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
  void writeCsv(std::ostream& os) const;

  /// Writes an aligned, pipe-separated text table.
  void writeAligned(std::ostream& os) const;

  /// Formats a double without trailing noise.
  [[nodiscard]] static std::string formatDouble(double v, int precision = 4);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hdtn
