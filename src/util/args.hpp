// Tiny command-line flag parser for the CLI tools.
//
// Accepts "--key=value", "--key value", and bare "--switch" forms.
// Unrecognized positional arguments are collected separately. Typed getters
// return a default when the flag is absent and record an error when the
// value does not parse.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hdtn {

/// One entry of a tool's --help text: "--family=nus" / "trace family".
struct FlagHelp {
  std::string flag;  ///< flag with its value sketch, without leading dashes
  std::string text;  ///< one-line description
};

/// Renders a uniform usage block shared by every tool:
///
///   usage: hdtn_tracegen --family=dieselnet|nus|rwp [options]
///     --seed=N             generator seed
///     --out=PATH           output trace path (default stdout)
///
/// Flags are aligned on the description column.
[[nodiscard]] std::string formatUsage(const std::string& usageLine,
                                      const std::vector<FlagHelp>& flags);

class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  /// True when the flag appeared (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string getString(const std::string& name,
                                      const std::string& fallback) const;
  [[nodiscard]] std::int64_t getInt(const std::string& name,
                                    std::int64_t fallback);
  [[nodiscard]] double getDouble(const std::string& name, double fallback);
  [[nodiscard]] bool getBool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Parse errors accumulated by the typed getters; empty when clean.
  [[nodiscard]] const std::vector<std::string>& errors() const {
    return errors_;
  }

  /// Flags that were provided but never queried — typo detection. Call
  /// after all getters.
  [[nodiscard]] std::vector<std::string> unusedFlags() const;

  /// True when --help (or -h as a positional) was given.
  [[nodiscard]] bool helpRequested() const;

  /// The shared end-of-parsing check every tool runs after its getters:
  /// prints accumulated parse errors and unknown flags to stderr prefixed
  /// with the tool name. Returns true when the command line was clean.
  [[nodiscard]] bool ok(const std::string& toolName) const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace hdtn
