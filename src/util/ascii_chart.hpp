// ASCII line charts for benchmark output.
//
// Each benchmark regenerating a paper figure renders its series as a small
// terminal chart so the shape (who wins, where lines cross) is visible
// without external plotting.
#pragma once

#include <string>
#include <vector>

namespace hdtn {

/// One plotted series: a label, a glyph, and y-values aligned with the
/// chart's shared x-values.
struct ChartSeries {
  std::string label;
  char glyph = '*';
  std::vector<double> y;
};

/// Renders several series over shared x positions into a fixed-size ASCII
/// grid with a y-axis scale and an x-axis label row.
class AsciiChart {
 public:
  AsciiChart(std::string title, std::vector<double> x);

  void addSeries(ChartSeries series);

  /// Fixes the y-range; otherwise it is derived from data (padded).
  void setYRange(double lo, double hi);

  [[nodiscard]] std::string render(int width = 64, int height = 16) const;

 private:
  std::string title_;
  std::vector<double> x_;
  std::vector<ChartSeries> series_;
  bool hasYRange_ = false;
  double yLo_ = 0.0, yHi_ = 1.0;
};

}  // namespace hdtn
