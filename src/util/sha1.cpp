#include "src/util/sha1.hpp"

#include <cstring>

namespace hdtn {
namespace {

constexpr std::array<std::uint32_t, 5> kInit = {0x67452301u, 0xefcdab89u,
                                                0x98badcfeu, 0x10325476u,
                                                0xc3d2e1f0u};

std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

}  // namespace

std::string Sha1Digest::hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(40);
  for (std::uint8_t b : bytes) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xf]);
  }
  return out;
}

Sha1::Sha1() { reset(); }

void Sha1::reset() {
  h_ = kInit;
  bufferLen_ = 0;
  totalLen_ = 0;
}

void Sha1::update(std::string_view data) {
  update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void Sha1::update(std::span<const std::uint8_t> data) {
  totalLen_ += data.size();
  std::size_t offset = 0;
  if (bufferLen_ > 0) {
    const std::size_t need = 64 - bufferLen_;
    const std::size_t take = std::min(need, data.size());
    std::memcpy(buffer_.data() + bufferLen_, data.data(), take);
    bufferLen_ += take;
    offset += take;
    if (bufferLen_ == 64) {
      processBlock(buffer_.data());
      bufferLen_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    processBlock(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    bufferLen_ = data.size() - offset;
  }
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bitLen = totalLen_ * 8;
  // Append the 0x80 terminator and zero padding up to 56 mod 64.
  std::uint8_t pad[72] = {0x80};
  const std::size_t padLen =
      (bufferLen_ < 56) ? (56 - bufferLen_) : (120 - bufferLen_);
  update(std::span<const std::uint8_t>(pad, padLen));
  // Append the 64-bit big-endian length.
  std::uint8_t lenBytes[8];
  for (int i = 0; i < 8; ++i) {
    lenBytes[i] = static_cast<std::uint8_t>(bitLen >> (56 - 8 * i));
  }
  update(std::span<const std::uint8_t>(lenBytes, 8));

  Sha1Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest.bytes[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    digest.bytes[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    digest.bytes[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    digest.bytes[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

void Sha1::processBlock(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1Digest Sha1::hash(std::string_view data) {
  Sha1 hasher;
  hasher.update(data);
  return hasher.finish();
}

Sha1Digest Sha1::hash(std::span<const std::uint8_t> data) {
  Sha1 hasher;
  hasher.update(data);
  return hasher.finish();
}

}  // namespace hdtn
