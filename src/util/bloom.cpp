#include "src/util/bloom.hpp"

#include <cassert>
#include <cmath>

namespace hdtn {
namespace {

// SplitMix64 finalizer: a strong 64-bit mixer for double hashing.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

BloomFilter::BloomFilter(std::size_t bits, int hashes)
    : words_((bits + 63) / 64, 0), hashes_(hashes) {
  assert(bits > 0);
  assert(hashes > 0);
}

BloomFilter BloomFilter::forCapacity(std::size_t expectedElements,
                                     double falsePositiveRate) {
  assert(expectedElements > 0);
  assert(falsePositiveRate > 0.0 && falsePositiveRate < 1.0);
  const double ln2 = std::log(2.0);
  const double m = -static_cast<double>(expectedElements) *
                   std::log(falsePositiveRate) / (ln2 * ln2);
  const double k = m / static_cast<double>(expectedElements) * ln2;
  return BloomFilter(static_cast<std::size_t>(std::ceil(m)),
                     std::max(1, static_cast<int>(std::lround(k))));
}

std::uint64_t BloomFilter::probe(std::uint64_t key, int i) const {
  // Kirsch-Mitzenmacher double hashing: h_i = h1 + i * h2.
  const std::uint64_t h1 = mix(key ^ 0x9e3779b97f4a7c15ull);
  const std::uint64_t h2 = mix(key + 0x2545f4914f6cdd1dull) | 1;
  return (h1 + static_cast<std::uint64_t>(i) * h2) % (words_.size() * 64);
}

void BloomFilter::insert(std::uint64_t key) {
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = probe(key, i);
    words_[bit / 64] |= 1ull << (bit % 64);
  }
  ++insertions_;
}

bool BloomFilter::mayContain(std::uint64_t key) const {
  for (int i = 0; i < hashes_; ++i) {
    const std::uint64_t bit = probe(key, i);
    if ((words_[bit / 64] & (1ull << (bit % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  for (auto& word : words_) word = 0;
  insertions_ = 0;
}

double BloomFilter::load() const {
  std::size_t set = 0;
  for (std::uint64_t word : words_) {
    set += static_cast<std::size_t>(__builtin_popcountll(word));
  }
  return static_cast<double>(set) / static_cast<double>(words_.size() * 64);
}

void BloomFilter::merge(const BloomFilter& other) {
  assert(words_.size() == other.words_.size());
  assert(hashes_ == other.hashes_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  insertions_ += other.insertions_;
}

}  // namespace hdtn
