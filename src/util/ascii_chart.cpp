#include "src/util/ascii_chart.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace hdtn {

AsciiChart::AsciiChart(std::string title, std::vector<double> x)
    : title_(std::move(title)), x_(std::move(x)) {}

void AsciiChart::addSeries(ChartSeries series) {
  assert(series.y.size() == x_.size());
  series_.push_back(std::move(series));
}

void AsciiChart::setYRange(double lo, double hi) {
  assert(hi > lo);
  hasYRange_ = true;
  yLo_ = lo;
  yHi_ = hi;
}

std::string AsciiChart::render(int width, int height) const {
  std::ostringstream out;
  out << title_ << "\n";
  if (x_.empty() || series_.empty()) {
    out << "  (no data)\n";
    return out.str();
  }

  double yLo = yLo_, yHi = yHi_;
  if (!hasYRange_) {
    yLo = series_[0].y[0];
    yHi = yLo;
    for (const auto& s : series_) {
      for (double v : s.y) {
        yLo = std::min(yLo, v);
        yHi = std::max(yHi, v);
      }
    }
    if (yHi - yLo < 1e-12) {
      yLo -= 0.5;
      yHi += 0.5;
    } else {
      const double pad = 0.05 * (yHi - yLo);
      yLo -= pad;
      yHi += pad;
    }
  }
  const double xLo = x_.front();
  const double xHi = x_.back();
  const double xSpan = (xHi - xLo) > 1e-12 ? (xHi - xLo) : 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width),
                                            ' '));
  auto plot = [&](double xv, double yv, char glyph) {
    int col = static_cast<int>(std::lround((xv - xLo) / xSpan * (width - 1)));
    int row = static_cast<int>(
        std::lround((yv - yLo) / (yHi - yLo) * (height - 1)));
    col = std::clamp(col, 0, width - 1);
    row = std::clamp(row, 0, height - 1);
    // Row 0 is the top of the chart.
    grid[static_cast<std::size_t>(height - 1 - row)]
        [static_cast<std::size_t>(col)] = glyph;
  };

  for (const auto& s : series_) {
    // Connect consecutive points with linear interpolation so the lines
    // read as lines, not scatter.
    for (std::size_t i = 0; i + 1 < x_.size(); ++i) {
      const int steps = std::max(2, width / std::max<int>(1, (int)x_.size()));
      for (int k = 0; k <= steps; ++k) {
        const double t = static_cast<double>(k) / steps;
        plot(x_[i] + t * (x_[i + 1] - x_[i]), s.y[i] + t * (s.y[i + 1] - s.y[i]),
             s.glyph);
      }
    }
    if (x_.size() == 1) plot(x_[0], s.y[0], s.glyph);
  }

  char label[32];
  for (int r = 0; r < height; ++r) {
    const double yv = yHi - (yHi - yLo) * r / (height - 1);
    if (r % 4 == 0 || r == height - 1) {
      std::snprintf(label, sizeof(label), "%8.3f |", yv);
    } else {
      std::snprintf(label, sizeof(label), "%8s |", "");
    }
    out << label << grid[static_cast<std::size_t>(r)] << "\n";
  }
  out << std::string(9, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-')
      << "\n";
  std::snprintf(label, sizeof(label), "%-10.3g", xLo);
  std::string axis(10, ' ');
  axis += label;
  out << axis;
  std::snprintf(label, sizeof(label), "%10.3g", xHi);
  const int rightPad = width - 20;
  if (rightPad > 0) out << std::string(static_cast<std::size_t>(rightPad), ' ');
  out << label << "\n";
  for (const auto& s : series_) {
    out << "  " << s.glyph << " = " << s.label << "\n";
  }
  return out.str();
}

}  // namespace hdtn
