#include "src/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace hdtn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const { return n_ ? min_ : 0.0; }

double RunningStats::max() const { return n_ ? max_ : 0.0; }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

void SampleSet::add(double x) {
  if (!samples_.empty() && x < samples_.back()) sorted_ = false;
  samples_.push_back(x);
}

void SampleSet::ensureSorted() const {
  if (sorted_) return;
  auto& mutableSamples = const_cast<std::vector<double>&>(samples_);
  std::sort(mutableSamples.begin(), mutableSamples.end());
  sorted_ = true;
}

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleSet::quantile(double q) const {
  assert(!samples_.empty());
  ensureSorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bucketLow(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucketHigh(std::size_t i) const { return bucketLow(i + 1); }

std::string Histogram::render(int width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak) * width);
    char label[64];
    std::snprintf(label, sizeof(label), "[%10.3f, %10.3f) %8llu ",
                  bucketLow(i), bucketHigh(i),
                  static_cast<unsigned long long>(counts_[i]));
    out << label << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
  if (underflow_ || overflow_) {
    out << "underflow " << underflow_ << ", overflow " << overflow_ << "\n";
  }
  return out.str();
}

}  // namespace hdtn
