// Small string helpers used by the query engine and trace I/O.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hdtn {

/// ASCII lowercase copy.
[[nodiscard]] std::string toLower(std::string_view s);

/// Splits on any run of the given delimiter characters; no empty tokens.
[[nodiscard]] std::vector<std::string> splitTokens(std::string_view s,
                                                   std::string_view delims);

/// Splits keyword tokens for the query engine: lowercased, split on
/// whitespace and common punctuation.
[[nodiscard]] std::vector<std::string> keywordTokens(std::string_view s);

/// Joins parts with the separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);

}  // namespace hdtn
