#include "src/util/args.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/util/string_util.hpp"

namespace hdtn {

std::string formatUsage(const std::string& usageLine,
                        const std::vector<FlagHelp>& flags) {
  std::size_t width = 0;
  for (const FlagHelp& flag : flags) {
    width = std::max(width, flag.flag.size());
  }
  std::string out = "usage: " + usageLine + "\n";
  for (const FlagHelp& flag : flags) {
    out += "  --" + flag.flag;
    out.append(width - flag.flag.size() + 2, ' ');
    out += flag.text + "\n";
  }
  return out;
}

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!startsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // bare switch.
    if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.contains(name);
}

std::string ArgParser::getString(const std::string& name,
                                 const std::string& fallback) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t ArgParser::getInt(const std::string& name,
                               std::int64_t fallback) {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + ": expected integer, got '" +
                      it->second + "'");
    return fallback;
  }
  return value;
}

double ArgParser::getDouble(const std::string& name, double fallback) {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + ": expected number, got '" + it->second +
                      "'");
    return fallback;
  }
  return value;
}

bool ArgParser::getBool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return !(it->second == "false" || it->second == "0");
}

std::vector<std::string> ArgParser::unusedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

bool ArgParser::helpRequested() const {
  if (flags_.contains("help")) {
    queried_["help"] = true;
    return true;
  }
  for (const std::string& arg : positional_) {
    if (arg == "-h") return true;
  }
  return false;
}

bool ArgParser::ok(const std::string& toolName) const {
  queried_["help"] = true;  // --help is always understood
  bool clean = true;
  for (const std::string& error : errors_) {
    std::fprintf(stderr, "%s: error: %s\n", toolName.c_str(), error.c_str());
    clean = false;
  }
  for (const std::string& flag : unusedFlags()) {
    std::fprintf(stderr, "%s: error: unknown flag --%s\n", toolName.c_str(),
                 flag.c_str());
    clean = false;
  }
  return clean;
}

}  // namespace hdtn
