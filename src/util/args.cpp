#include "src/util/args.hpp"

#include <cstdlib>

#include "src/util/string_util.hpp"

namespace hdtn {

ArgParser::ArgParser(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!startsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not itself a flag; otherwise a
    // bare switch.
    if (i + 1 < argc && !startsWith(argv[i + 1], "--")) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "";
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  queried_[name] = true;
  return flags_.contains(name);
}

std::string ArgParser::getString(const std::string& name,
                                 const std::string& fallback) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t ArgParser::getInt(const std::string& name,
                               std::int64_t fallback) {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + ": expected integer, got '" +
                      it->second + "'");
    return fallback;
  }
  return value;
}

double ArgParser::getDouble(const std::string& name, double fallback) {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("--" + name + ": expected number, got '" + it->second +
                      "'");
    return fallback;
  }
  return value;
}

bool ArgParser::getBool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1") {
    return true;
  }
  return !(it->second == "false" || it->second == "0");
}

std::vector<std::string> ArgParser::unusedFlags() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace hdtn
