#include "src/util/csv.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace hdtn {
namespace {

bool needsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string quoteCsv(const std::string& field) {
  if (!needsQuoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  assert(!header_.empty());
}

void Table::addRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::addRow(std::initializer_list<double> values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size());
  for (double v : values) row.push_back(formatDouble(v, precision));
  addRow(std::move(row));
}

std::string Table::formatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    // Strip trailing zeros but keep at least one decimal digit.
    std::size_t last = s.find_last_not_of('0');
    if (s[last] == '.') ++last;
    s.erase(last + 1);
  }
  return s;
}

void Table::writeCsv(std::ostream& os) const {
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c) os << ',';
    os << quoteCsv(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quoteCsv(row[c]);
    }
    os << '\n';
  }
}

void Table::writeAligned(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto writeRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? " | " : "");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  writeRow(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 3 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) writeRow(row);
}

}  // namespace hdtn
