// Minimal binary serialization for checkpoint snapshots.
//
// The format is deliberately dumb: fixed-width little-endian integers,
// doubles as exact IEEE-754 bit patterns (byte identity of a restored run
// depends on bit-exact state), length-prefixed strings. No varints, no
// schema evolution inside a payload — the checkpoint header carries a
// version number and incompatible formats are rejected wholesale (see
// docs/CHECKPOINT.md).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace hdtn {

/// Thrown by Deserializer on a truncated or malformed payload. Checkpoint
/// payloads are checksummed before parsing, so in practice this indicates a
/// writer/reader mismatch, not file corruption.
class SerializeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Appends values to a growing byte buffer.
class Serializer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view v) {
    u64(v.size());
    bytes_.append(v.data(), v.size());
  }

  /// Raw bytes without a length prefix (fixed-size digests).
  void raw(const void* data, std::size_t n) {
    bytes_.append(static_cast<const char*>(data), n);
  }

  [[nodiscard]] const std::string& bytes() const { return bytes_; }
  [[nodiscard]] std::string takeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Reads values back in the exact order they were written. Every read is
/// bounds-checked and throws SerializeError instead of reading garbage.
class Deserializer {
 public:
  explicit Deserializer(std::string_view bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{u8()} << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw SerializeError("corrupt payload: bool out of range");
    return v == 1;
  }

  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string out(bytes_.substr(pos_, n));
    pos_ += n;
    return out;
  }

  void raw(void* out, std::size_t n) {
    need(n);
    std::copy(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
              bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n),
              static_cast<char*>(out));
    pos_ += n;
  }

  /// Reads a length prefix for a sequence whose elements occupy at least
  /// `minElementBytes` each; rejects lengths the remaining payload cannot
  /// possibly hold (guards vector reserves against absurd corrupt counts).
  std::size_t length(std::size_t minElementBytes = 1) {
    const std::uint64_t n = u64();
    if (minElementBytes > 0 && n > remaining() / minElementBytes) {
      throw SerializeError("corrupt payload: sequence length exceeds data");
    }
    return static_cast<std::size_t>(n);
  }

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  void need(std::uint64_t n) {
    if (n > remaining()) {
      throw SerializeError("corrupt payload: truncated read");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// Slurps a whole file into `out`. Returns false (with `*error` set) on
/// open or read failure.
bool readFileBytes(const std::string& path, std::string* out,
                   std::string* error);

/// Durably replaces `path` with `bytes` via a temp file and rename, so a
/// crash mid-write never leaves a torn file behind.
bool writeFileAtomic(const std::string& path, std::string_view bytes,
                     std::string* error);

}  // namespace hdtn
