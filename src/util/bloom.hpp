// Bloom filter.
//
// Epidemic DTN routing exchanges *summary vectors* — compact encodings of
// "which messages I carry" — before transferring anything (Vahdat &
// Becker). A Bloom filter is the classic realization: set membership with
// no false negatives and a tunable false-positive rate; a false positive
// makes a peer skip a message the other side actually lacks. The routing
// substrate exposes this as an optional fidelity knob.
#pragma once

#include <cstdint>
#include <vector>

namespace hdtn {

class BloomFilter {
 public:
  /// `bits` cells and `hashes` probes per element. bits is rounded up to a
  /// multiple of 64.
  BloomFilter(std::size_t bits, int hashes);

  /// Sizes the filter for `expectedElements` at the target false-positive
  /// rate using the standard optimum (m = -n ln p / ln^2 2, k = m/n ln 2).
  static BloomFilter forCapacity(std::size_t expectedElements,
                                 double falsePositiveRate);

  void insert(std::uint64_t key);
  /// No false negatives; false positives at roughly the design rate.
  [[nodiscard]] bool mayContain(std::uint64_t key) const;

  void clear();
  [[nodiscard]] std::size_t bitCount() const { return words_.size() * 64; }
  [[nodiscard]] int hashCount() const { return hashes_; }
  [[nodiscard]] std::size_t insertions() const { return insertions_; }

  /// Fraction of bits set; load above ~0.5 means the design capacity was
  /// exceeded and the false-positive rate is degrading.
  [[nodiscard]] double load() const;

  /// Union with a filter of identical geometry (asserts on mismatch).
  void merge(const BloomFilter& other);

 private:
  [[nodiscard]] std::uint64_t probe(std::uint64_t key, int i) const;

  std::vector<std::uint64_t> words_;
  int hashes_;
  std::size_t insertions_ = 0;
};

}  // namespace hdtn
