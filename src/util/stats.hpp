// Streaming statistics accumulators used by trace analysis, metrics, and
// benchmark reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hdtn {

/// Online mean/variance (Welford) plus min/max. O(1) space.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel-friendly).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Retains all samples; supports exact quantiles. Use for modest sample
/// counts (trace statistics, per-run metrics).
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated quantile, q in [0, 1]. Requires non-empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensureSorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t bucketCount() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucketLow(std::size_t i) const;
  [[nodiscard]] double bucketHigh(std::size_t i) const;

  /// Multi-line ASCII rendering, widest bucket = `width` characters.
  [[nodiscard]] std::string render(int width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace hdtn
