// Minimal data-parallel helpers for embarrassingly parallel sweeps (the
// figure benches run seeds x sweep-points x protocols independent
// simulations). Deliberately tiny: a worker pool pulling task indices off an
// atomic counter — no futures, no queues, no exceptions crossing threads
// (tasks must be noexcept in spirit; a throwing task terminates).
#pragma once

#include <cstddef>
#include <functional>

namespace hdtn {

/// Number of workers to use by default: the hardware concurrency, or 1 when
/// unknown. Overridable via the HDTN_THREADS environment variable (clamped
/// to >= 1), which the bench harness also exposes as --threads=N.
[[nodiscard]] unsigned defaultThreadCount();

/// Runs fn(0) .. fn(count-1), distributing indices over `threads` workers.
/// Blocks until all tasks finish. With threads <= 1 (or count <= 1) the
/// tasks run inline on the calling thread, preserving single-thread
/// debuggability. Tasks must be independent; result ordering is the
/// caller's job (write to disjoint slots, not shared state).
void parallelFor(std::size_t count, unsigned threads,
                 const std::function<void(std::size_t)>& fn);

}  // namespace hdtn
