#include "src/util/string_util.hpp"

#include <cctype>

namespace hdtn {

std::string toLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> splitTokens(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find_first_of(delims, start);
    const std::size_t stop = (end == std::string_view::npos) ? s.size() : end;
    if (stop > start) out.emplace_back(s.substr(start, stop - start));
    start = stop + 1;
  }
  return out;
}

std::vector<std::string> keywordTokens(std::string_view s) {
  const std::string lowered = toLower(s);
  return splitTokens(lowered, " \t\r\n,.;:!?()[]{}\"'/-_");
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace hdtn
