// SHA-1 message digest (FIPS 180-1).
//
// Metadata records carry SHA-1 checksums of each 256 KB file piece, exactly
// as BitTorrent metadata does (paper Sections II-B and III-B). SHA-1 is used
// for integrity in this protocol context, not for collision-resistant
// security guarantees.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace hdtn {

/// A 160-bit SHA-1 digest.
struct Sha1Digest {
  std::array<std::uint8_t, 20> bytes{};

  friend bool operator==(const Sha1Digest&, const Sha1Digest&) = default;

  /// Lowercase hex encoding, 40 characters.
  [[nodiscard]] std::string hex() const;
};

/// Incremental SHA-1 hasher.
class Sha1 {
 public:
  Sha1();

  /// Absorbs more input. May be called any number of times.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view data);

  /// Finishes the hash. The hasher must not be reused afterwards without
  /// calling reset().
  [[nodiscard]] Sha1Digest finish();

  /// Restores the initial state.
  void reset();

  /// One-shot convenience.
  [[nodiscard]] static Sha1Digest hash(std::string_view data);
  [[nodiscard]] static Sha1Digest hash(std::span<const std::uint8_t> data);

 private:
  void processBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 5> h_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t bufferLen_ = 0;
  std::uint64_t totalLen_ = 0;
};

}  // namespace hdtn
