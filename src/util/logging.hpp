// Minimal leveled logger.
//
// Simulations are quiet by default (kWarn); examples raise the level to
// narrate protocol activity. The logger is process-global because log output
// interleaving across simulated nodes is exactly what an observer wants.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace hdtn {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns/sets the global threshold. Messages below it are dropped.
LogLevel logThreshold();
void setLogThreshold(LogLevel level);

/// Emits one line to stderr: "[level] message".
void logMessage(LogLevel level, std::string_view message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { logMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace hdtn

// Streaming log macros; the stream expression is only evaluated when the
// level is enabled.
#define HDTN_LOG(level)                      \
  if (::hdtn::logThreshold() > (level)) {    \
  } else                                     \
    ::hdtn::detail::LogLine(level)

#define HDTN_TRACE() HDTN_LOG(::hdtn::LogLevel::kTrace)
#define HDTN_DEBUG() HDTN_LOG(::hdtn::LogLevel::kDebug)
#define HDTN_INFO() HDTN_LOG(::hdtn::LogLevel::kInfo)
#define HDTN_WARN() HDTN_LOG(::hdtn::LogLevel::kWarn)
#define HDTN_ERROR() HDTN_LOG(::hdtn::LogLevel::kError)
