#include "src/util/serialize.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace hdtn {

bool readFileBytes(const std::string& path, std::string* out,
                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    if (error) *error = "read error on " + path;
    return false;
  }
  *out = std::move(bytes);
  return true;
}

bool writeFileAtomic(const std::string& path, std::string_view bytes,
                     std::string* error) {
  // Write-to-temp + rename so a crash mid-write never leaves a torn file at
  // `path`: readers see either the old snapshot or the new one, complete.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      if (error) *error = "cannot open " + tmp + " for writing";
      return false;
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      if (error) *error = "write error on " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    if (error) *error = "cannot rename " + tmp + " to " + path + ": " +
                        ec.message();
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace hdtn
