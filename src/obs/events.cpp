#include "src/obs/events.hpp"

namespace hdtn::obs {

const char* simEventTypeName(SimEventType type) {
  switch (type) {
    case SimEventType::kContactBegin:
      return "contact_begin";
    case SimEventType::kContactEnd:
      return "contact_end";
    case SimEventType::kCliqueFormed:
      return "clique_formed";
    case SimEventType::kFilePublished:
      return "file_published";
    case SimEventType::kFileExpired:
      return "file_expired";
    case SimEventType::kMetadataBroadcast:
      return "metadata_broadcast";
    case SimEventType::kMetadataAccepted:
      return "metadata_accepted";
    case SimEventType::kMetadataRejected:
      return "metadata_rejected";
    case SimEventType::kPieceBroadcast:
      return "piece_broadcast";
    case SimEventType::kPieceReceived:
      return "piece_received";
    case SimEventType::kForgeryCrafted:
      return "forgery_crafted";
    case SimEventType::kForgeryAccepted:
      return "forgery_accepted";
    case SimEventType::kDiscoveryPlanned:
      return "discovery_planned";
    case SimEventType::kDownloadPlanned:
      return "download_planned";
    case SimEventType::kFaultInjected:
      return "fault_injected";
    case SimEventType::kPieceRejectedCorrupt:
      return "piece_rejected_corrupt";
    case SimEventType::kNodeDown:
      return "node_down";
    case SimEventType::kNodeUp:
      return "node_up";
    case SimEventType::kRetransmit:
      return "retransmit";
    case SimEventType::kCoordinatorFailover:
      return "coordinator_failover";
    case SimEventType::kRepairRequested:
      return "repair_requested";
    case SimEventType::kMetadataEvicted:
      return "metadata_evicted";
    case SimEventType::kCodedBroadcast:
      return "coded_broadcast";
    case SimEventType::kInnovativeFrame:
      return "innovative_frame";
    case SimEventType::kGenerationDecoded:
      return "generation_decoded";
    case SimEventType::kDecodeFailed:
      return "decode_failed";
    case SimEventType::kAttackInjected:
      return "attack_injected";
    case SimEventType::kPollutionDetected:
      return "pollution_detected";
    case SimEventType::kGenerationRolledBack:
      return "generation_rolled_back";
    case SimEventType::kNodeQuarantined:
      return "node_quarantined";
    case SimEventType::kNodeReleased:
      return "node_released";
  }
  return "unknown";
}

void CountingObserver::onEvent(const SimEvent& event) {
  ++counts_[static_cast<std::size_t>(event.type)];
  ++total_;
}

void MulticastObserver::add(EngineObserver* observer) {
  if (observer != nullptr) sinks_.push_back(observer);
}

void MulticastObserver::onEvent(const SimEvent& event) {
  for (EngineObserver* sink : sinks_) sink->onEvent(event);
}

}  // namespace hdtn::obs
