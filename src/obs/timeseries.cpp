#include "src/obs/timeseries.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace hdtn::obs {

namespace {

void writeReportCsv(std::ostream& out, const core::DeliveryReport& r) {
  char buf[192];
  const int n = std::snprintf(
      buf, sizeof(buf), ",%zu,%zu,%zu,%.6f,%.6f,%.1f,%.1f", r.queries,
      r.metadataDelivered, r.filesDelivered, r.metadataRatio, r.fileRatio,
      r.meanMetadataDelaySeconds, r.meanFileDelaySeconds);
  out.write(buf, n);
}

void writeReportJson(std::ostream& out, const char* key,
                     const core::DeliveryReport& r) {
  char buf[320];
  const int n = std::snprintf(
      buf, sizeof(buf),
      "\"%s\":{\"queries\":%zu,\"metadata_delivered\":%zu,"
      "\"files_delivered\":%zu,\"metadata_ratio\":%.6f,\"file_ratio\":%.6f,"
      "\"mean_metadata_delay_s\":%.1f,\"mean_file_delay_s\":%.1f}",
      key, r.queries, r.metadataDelivered, r.filesDelivered, r.metadataRatio,
      r.fileRatio, r.meanMetadataDelaySeconds, r.meanFileDelaySeconds);
  out.write(buf, n);
}

}  // namespace

const char* TimeSeries::csvHeader() {
  return "time_s"
         ",queries,metadata_delivered,files_delivered,metadata_ratio"
         ",file_ratio,mean_metadata_delay_s,mean_file_delay_s"
         ",access_queries,access_metadata_delivered,access_files_delivered"
         ",access_metadata_ratio,access_file_ratio"
         ",access_mean_metadata_delay_s,access_mean_file_delay_s"
         ",contacts_processed,files_published,queries_generated"
         ",metadata_broadcasts,piece_broadcasts,metadata_receptions"
         ",piece_receptions,forgeries_crafted,forgeries_accepted"
         ",forgeries_rejected";
}

void TimeSeries::writeCsvHeader(std::ostream& out) {
  out << csvHeader() << "\n";
}

void TimeSeries::writeCsvRow(std::ostream& out, const TimeSeriesSample& s) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%" PRId64,
                              static_cast<std::int64_t>(s.time));
  out.write(buf, n);
  writeReportCsv(out, s.result.delivery);
  writeReportCsv(out, s.result.accessDelivery);
  const core::EngineTotals& t = s.result.totals;
  const int m = std::snprintf(
      buf, sizeof(buf), ",%llu,%llu,%llu,%llu,%llu",
      static_cast<unsigned long long>(t.contactsProcessed),
      static_cast<unsigned long long>(t.filesPublished),
      static_cast<unsigned long long>(t.queriesGenerated),
      static_cast<unsigned long long>(t.metadataBroadcasts),
      static_cast<unsigned long long>(t.pieceBroadcasts));
  out.write(buf, m);
  const int k = std::snprintf(
      buf, sizeof(buf), ",%llu,%llu,%llu,%llu,%llu\n",
      static_cast<unsigned long long>(t.metadataReceptions),
      static_cast<unsigned long long>(t.pieceReceptions),
      static_cast<unsigned long long>(t.forgeriesCrafted),
      static_cast<unsigned long long>(t.forgeriesAccepted),
      static_cast<unsigned long long>(t.forgeriesRejected));
  out.write(buf, k);
}

namespace {

void throwIfFailed(std::ostream& out, const char* what) {
  out.flush();
  if (!out) {
    throw std::runtime_error(
        std::string(what) +
        ": stream entered a failed state (disk full or closed stream?); "
        "the series on disk is incomplete");
  }
}

}  // namespace

void TimeSeries::writeCsv(std::ostream& out) const {
  writeCsvHeader(out);
  for (const TimeSeriesSample& s : samples_) writeCsvRow(out, s);
  throwIfFailed(out, "TimeSeries::writeCsv");
}

void TimeSeries::writeJson(std::ostream& out) const {
  out << "{\"samples\":[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const TimeSeriesSample& s = samples_[i];
    if (i > 0) out << ",";
    out << "\n  {\"time_s\":" << s.time << ",";
    writeReportJson(out, "delivery", s.result.delivery);
    out << ",";
    writeReportJson(out, "access_delivery", s.result.accessDelivery);
    const core::EngineTotals& t = s.result.totals;
    out << ",\"totals\":{\"contacts_processed\":" << t.contactsProcessed
        << ",\"files_published\":" << t.filesPublished
        << ",\"queries_generated\":" << t.queriesGenerated
        << ",\"metadata_broadcasts\":" << t.metadataBroadcasts
        << ",\"piece_broadcasts\":" << t.pieceBroadcasts
        << ",\"metadata_receptions\":" << t.metadataReceptions
        << ",\"piece_receptions\":" << t.pieceReceptions
        << ",\"forgeries_crafted\":" << t.forgeriesCrafted
        << ",\"forgeries_accepted\":" << t.forgeriesAccepted
        << ",\"forgeries_rejected\":" << t.forgeriesRejected << "}}";
  }
  out << "\n]}\n";
  throwIfFailed(out, "TimeSeries::writeJson");
}

core::EngineResult runSampled(core::Engine& engine, Duration cadence,
                              TimeSeries& out) {
  if (cadence <= 0) {
    throw std::invalid_argument(
        "obs::runSampled: cadence must be positive seconds");
  }
  if (engine.finished()) {
    throw std::logic_error("obs::runSampled: engine already finished");
  }
  const SimTime end = engine.endTime();
  for (SimTime t = cadence; t < end; t += cadence) {
    engine.runUntil(t);
    out.addSample(t, engine.currentResult());
  }
  const core::EngineResult result = engine.finish();
  out.addSample(end, result);
  return result;
}

}  // namespace hdtn::obs
