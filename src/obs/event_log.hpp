// JSONL event-trace sink: one JSON object per event, one event per line.
//
// The format is append-only and schema-stable so traces from different runs
// concatenate and diff cleanly:
//
//   {"t":121800,"type":"piece_received","node":17,"peer":4,"file":23,
//    "extra":0,"value":0.4100}
//
// Fields that are not meaningful for an event type are omitted ("peer" and
// "file" when invalid, "extra"/"value" when zero); "t" and "type" are always
// present.
#pragma once

#include <ostream>

#include "src/obs/events.hpp"

namespace hdtn::obs {

class JsonlEventSink final : public EngineObserver {
 public:
  /// Writes to `out`, which must outlive the sink. The sink never flushes
  /// mid-run; the stream's destructor (or an explicit flush) finishes it.
  explicit JsonlEventSink(std::ostream& out) : out_(out) {}

  void onEvent(const SimEvent& event) override;

  /// Flushes the stream and throws std::runtime_error when it is in a
  /// failed state (disk full, closed file) — a silently truncated event
  /// trace is worse than a failed run. Call once after the run completes;
  /// onEvent itself stays check-free because it sits on the hot path.
  void finish();

  [[nodiscard]] std::uint64_t eventsWritten() const { return written_; }

 private:
  std::ostream& out_;
  std::uint64_t written_ = 0;
};

}  // namespace hdtn::obs
