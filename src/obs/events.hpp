// Run-time observability: typed simulation events and the observer interface.
//
// The engine (and the planners it drives) publish a flat stream of typed
// events — contact lifecycle, metadata and piece exchange, publications,
// forgeries — to a single attached EngineObserver. Observers are non-owning
// and optional: with no observer attached the engine skips event
// construction entirely, so the hot contact path pays one pointer test.
//
// Event semantics:
//   * Events describe *DTN actions* (what moved inside contacts) plus the
//     Internet-side publication lifecycle. Instant server-side deliveries to
//     access nodes are not evented; they are visible in the sampled
//     DeliveryReport instead (obs/timeseries.hpp).
//   * Events are emitted in execution order. Timestamps are the simulation
//     times of the actions; kContactEnd carries the contact's end time, so
//     the stream is not globally monotone.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/util/types.hpp"

namespace hdtn::obs {

enum class SimEventType : std::uint8_t {
  kContactBegin,       ///< contact started; extra = member count
  kContactEnd,         ///< contact finished; extra = member count
  kCliqueFormed,       ///< exchange clique formed; extra = clique size
  kFilePublished,      ///< Internet published a file; value = popularity
  kFileExpired,        ///< file TTL elapsed (checked at publish instants)
  kMetadataBroadcast,  ///< node sent a metadata record to its clique
  kMetadataAccepted,   ///< receiver stored a record from peer
  kMetadataRejected,   ///< receiver dropped a record (failed verification)
  kPieceBroadcast,     ///< node sent a piece; extra = piece index
  kPieceReceived,      ///< receiver stored a piece; extra = piece index
  kForgeryCrafted,     ///< forger minted a fake record
  kForgeryAccepted,    ///< honest node stored a forged record
  kDiscoveryPlanned,   ///< planner output for one contact; extra = broadcasts
  kDownloadPlanned,    ///< planner output for one contact; extra = transfers
  kFaultInjected,      ///< a fault fired; extra = faults::FaultKind
  kPieceRejectedCorrupt,  ///< piece failed its checksum on reception
  kNodeDown,           ///< churn: node switched off; value = interval length
  kNodeUp,             ///< churn: node switched back on
  kRetransmit,         ///< recovery resent a lost frame; extra = piece index
                       ///< (0xffffffff for a metadata frame)
  kCoordinatorFailover,  ///< clique coordinator churned down mid-round; node
                         ///< = elected successor, peer = failed coordinator
  kRepairRequested,    ///< anti-entropy push attempt; extra = piece index
                       ///< (0xffffffff for a metadata frame)
  kMetadataEvicted,    ///< bounded store shed a record; value = popularity
  kCodedBroadcast,     ///< one coded frame sent; extra = generation size
  kInnovativeFrame,    ///< coded frame raised receiver rank; extra = rank
  kGenerationDecoded,  ///< receiver hit full rank; extra = generation size
  kDecodeFailed,       ///< coded frame rejected (corrupt) before folding
  kAttackInjected,     ///< a Byzantine attack fired; extra =
                       ///< faults::AttackKind, node = attacker
  kPollutionDetected,  ///< verification caught polluted rows at decode
                       ///< time; extra = polluted row count
  kGenerationRolledBack,  ///< a tainted generation was discarded and will
                          ///< be re-collected; extra = generation size
  kNodeQuarantined,    ///< suspicion crossed the threshold; value =
                       ///< suspicion score
  kNodeReleased,       ///< decay ended a quarantine; value = suspicion
};

inline constexpr std::size_t kSimEventTypeCount = 31;

/// Stable snake_case name of an event type (JSONL traces, schemas).
[[nodiscard]] const char* simEventTypeName(SimEventType type);

/// One typed simulation event. A flat POD: fields not meaningful for a
/// given type are left at their defaults (invalid ids, zero extra/value).
struct SimEvent {
  SimEventType type{};
  SimTime time = 0;
  NodeId node{};             ///< primary actor (sender, publisher, receiver)
  NodeId peer{};             ///< counterpart (sender seen by a receiver)
  FileId file{};
  std::uint32_t extra = 0;   ///< piece index, clique size, plan size, ...
  double value = 0.0;        ///< popularity, budget, contact duration, ...
};

/// Receives every event of a run. Implementations must not mutate engine
/// state; they are called synchronously on the simulation thread.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void onEvent(const SimEvent& event) = 0;
};

/// Explicit no-op sink (attaching it measures pure dispatch overhead).
class NullObserver final : public EngineObserver {
 public:
  void onEvent(const SimEvent&) override {}
};

/// Counts events per type; the cheapest useful observer (tests, smokes).
class CountingObserver final : public EngineObserver {
 public:
  void onEvent(const SimEvent& event) override;

  [[nodiscard]] std::uint64_t count(SimEventType type) const {
    return counts_[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t total() const { return total_; }

 private:
  std::array<std::uint64_t, kSimEventTypeCount> counts_{};
  std::uint64_t total_ = 0;
};

/// Fans one event stream out to several observers, in attach order.
class MulticastObserver final : public EngineObserver {
 public:
  /// Non-owning; ignores nullptr (so optional sinks compose cleanly).
  void add(EngineObserver* observer);
  void onEvent(const SimEvent& event) override;
  [[nodiscard]] std::size_t sinkCount() const { return sinks_.size(); }

 private:
  std::vector<EngineObserver*> sinks_;
};

}  // namespace hdtn::obs
