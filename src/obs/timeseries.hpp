// Time-series sampling of a running engine.
//
// The paper's evaluation is about trajectories (delivery ratio over
// simulated days), so the observability layer can sample the full
// EngineResult — every DeliveryReport slice plus the traffic totals — at a
// fixed cadence while the simulation advances through the stepped API
// (Engine::runUntil / finish). The final sample is taken from the finished
// run's result, so it equals the end-of-run report exactly.
#pragma once

#include <ostream>
#include <vector>

#include "src/core/engine.hpp"

namespace hdtn::obs {

struct TimeSeriesSample {
  /// Sampling horizon (wall time of the sample, not of the last event).
  SimTime time = 0;
  core::EngineResult result;
};

/// An in-memory run trajectory with CSV / JSON serialization.
class TimeSeries {
 public:
  void addSample(SimTime time, const core::EngineResult& result) {
    samples_.push_back({time, result});
  }

  [[nodiscard]] const std::vector<TimeSeriesSample>& samples() const {
    return samples_;
  }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// One header row plus one row per sample. Flushes and throws
  /// std::runtime_error when the stream ends up in a failed state (disk
  /// full, closed file) — a silently truncated series must not pass for a
  /// complete one.
  void writeCsv(std::ostream& out) const;

  /// A single JSON object: {"samples": [...]}. Same failure contract as
  /// writeCsv.
  void writeJson(std::ostream& out) const;

  /// The stable CSV column list (docs, schema checks).
  [[nodiscard]] static const char* csvHeader();

  /// One CSV data row for `sample`, no trailing flush or check. Resume
  /// drivers use these two to emit the series incrementally (header once,
  /// one row per sample boundary) instead of buffering the whole run; the
  /// bytes equal what writeCsv produces for the same samples.
  static void writeCsvHeader(std::ostream& out);
  static void writeCsvRow(std::ostream& out, const TimeSeriesSample& sample);

 private:
  std::vector<TimeSeriesSample> samples_;
};

/// Drives `engine` to completion through the stepped API, sampling every
/// `cadence` seconds of simulated time (first sample at `cadence`), then
/// appends the finished run's result as the final sample and returns it.
/// The returned result is byte-identical to what Engine::run() on the same
/// engine would have produced. Throws std::invalid_argument when cadence
/// is not positive, std::logic_error when the engine already finished.
core::EngineResult runSampled(core::Engine& engine, Duration cadence,
                              TimeSeries& out);

}  // namespace hdtn::obs
