#include "src/obs/event_log.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace hdtn::obs {

void JsonlEventSink::onEvent(const SimEvent& event) {
  // Formatted into a stack buffer and written in one call: the sink sits on
  // the hot path when attached, and ostream operator chains are slow.
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf), "{\"t\":%" PRId64 ",\"type\":\"%s\"",
                        static_cast<std::int64_t>(event.time),
                        simEventTypeName(event.type));
  auto append = [&](const char* fmt, auto value) {
    if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) return;
    const int m = std::snprintf(buf + n, sizeof(buf) - static_cast<std::size_t>(n),
                                fmt, value);
    if (m > 0) n += m;
  };
  if (event.node.valid()) append(",\"node\":%u", event.node.value);
  if (event.peer.valid()) append(",\"peer\":%u", event.peer.value);
  if (event.file.valid()) append(",\"file\":%u", event.file.value);
  if (event.extra != 0) append(",\"extra\":%u", event.extra);
  if (event.value != 0.0) append(",\"value\":%.4f", event.value);
  append("%s", "}\n");
  out_.write(buf, n);
  ++written_;
}

void JsonlEventSink::finish() {
  out_.flush();
  if (!out_) {
    throw std::runtime_error(
        "JsonlEventSink: event stream entered a failed state after " +
        std::to_string(written_) +
        " events (disk full or closed stream?); the trace on disk is "
        "incomplete");
  }
}

}  // namespace hdtn::obs
