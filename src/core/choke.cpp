#include "src/core/choke.hpp"

#include "src/util/random.hpp"

namespace hdtn::core {

PieceKey derivePieceKey(const std::string& senderSecret, const Uri& fileUri,
                        std::uint32_t pieceIndex) {
  Sha1 hasher;
  hasher.update(senderSecret);
  hasher.update(std::string_view("\x1f"));
  hasher.update(fileUri);
  hasher.update(std::string_view("\x1f"));
  hasher.update(std::to_string(pieceIndex));
  return PieceKey{hasher.finish()};
}

std::vector<std::uint8_t> cryptPiece(const PieceKey& key,
                                     std::span<const std::uint8_t> data) {
  // Seed a keystream generator from the key digest.
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) {
    seed = (seed << 8) | key.digest.bytes[static_cast<std::size_t>(i)];
  }
  std::uint64_t tweak = 0;
  for (int i = 8; i < 16; ++i) {
    tweak = (tweak << 8) | key.digest.bytes[static_cast<std::size_t>(i)];
  }
  Rng keystream(seed ^ (tweak * 0x9e3779b97f4a7c15ull));
  std::vector<std::uint8_t> out(data.begin(), data.end());
  std::size_t i = 0;
  while (i < out.size()) {
    std::uint64_t word = keystream();
    for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
      out[i] ^= static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return out;
}

std::vector<std::uint8_t> KeyEscrow::encrypt(
    const Uri& fileUri, std::uint32_t pieceIndex,
    std::span<const std::uint8_t> plaintext) const {
  return cryptPiece(derivePieceKey(secret_, fileUri, pieceIndex), plaintext);
}

std::optional<PieceKey> KeyEscrow::requestKey(NodeId peer,
                                              const CreditLedger& ledger,
                                              const Uri& fileUri,
                                              std::uint32_t pieceIndex) const {
  if (ledger.credit(peer) < minimumCredit_) return std::nullopt;
  return derivePieceKey(secret_, fileUri, pieceIndex);
}

std::string CipherVault::slot(const Uri& fileUri, std::uint32_t pieceIndex) {
  return fileUri + "#" + std::to_string(pieceIndex);
}

void CipherVault::storeCiphertext(const Uri& fileUri,
                                  std::uint32_t pieceIndex,
                                  std::vector<std::uint8_t> ciphertext) {
  ciphertexts_[slot(fileUri, pieceIndex)] = std::move(ciphertext);
}

void CipherVault::storeKey(const Uri& fileUri, std::uint32_t pieceIndex,
                           const PieceKey& key) {
  keys_[slot(fileUri, pieceIndex)] = key;
}

std::optional<std::vector<std::uint8_t>> CipherVault::tryDecrypt(
    const Uri& fileUri, std::uint32_t pieceIndex) {
  const std::string key = slot(fileUri, pieceIndex);
  auto cipherIt = ciphertexts_.find(key);
  auto keyIt = keys_.find(key);
  if (cipherIt == ciphertexts_.end() || keyIt == keys_.end()) {
    return std::nullopt;
  }
  auto plaintext = cryptPiece(keyIt->second, cipherIt->second);
  ciphertexts_.erase(cipherIt);
  keys_.erase(keyIt);
  return plaintext;
}

}  // namespace hdtn::core
