// Metadata records.
//
// Paper Section III-B: each file is associated with metadata containing (a)
// the file name, (b) the publisher, (c) a free-text description, (d) the
// URI, (e) SHA-1 checksums of its pieces, and (f) authentication information
// against fake publishers. Metadata is the unit of file *discovery*: it is
// distributed in the DTN earlier, in larger amounts, and for longer than the
// files themselves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/util/serialize.hpp"
#include "src/util/sha1.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// FNV-1a over the token bytes — the hash behind Metadata::keywordHashes.
[[nodiscard]] std::uint64_t keywordHash(std::string_view token);

struct Metadata {
  FileId file;
  std::string name;
  std::string publisher;
  std::string description;
  Uri uri;
  std::uint64_t sizeBytes = 0;
  std::uint32_t pieceSizeBytes = 0;
  std::vector<Sha1Digest> pieceChecksums;
  /// Publisher authentication tag (see PublisherRegistry).
  Sha1Digest authTag{};
  /// Popularity snapshot at distribution time, in [0, 1].
  Popularity popularity = 0.0;
  SimTime publishedAt = 0;
  Duration ttl = 0;
  /// Sorted, deduplicated lowercase keywords of name/publisher/description.
  /// Derived data (not covered by authTag); rebuildKeywords() refreshes it
  /// and the catalog fills it at publish time so query matching is a binary
  /// search instead of re-tokenizing.
  std::vector<std::string> keywords;
  /// Sorted FNV-1a hashes of `keywords` (also derived; rebuilt together).
  /// Query matching probes these first — a u64 binary search — and only
  /// falls back to the string keywords to confirm a hash hit.
  std::vector<std::uint64_t> keywordHashes;

  /// Recomputes `keywords` (and their hashes) from the text fields.
  void rebuildKeywords();

  [[nodiscard]] std::uint32_t pieceCount() const {
    return static_cast<std::uint32_t>(pieceChecksums.size());
  }
  [[nodiscard]] SimTime expiresAt() const { return publishedAt + ttl; }
  [[nodiscard]] bool expired(SimTime now) const { return now >= expiresAt(); }

  /// Canonical byte string covered by the authentication tag.
  [[nodiscard]] std::string authPayload() const;

  /// Checkpoints the authoritative fields; keywords/keywordHashes are
  /// derived and rebuilt on load.
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);
};

/// Publisher authentication: a keyed-hash scheme standing in for the
/// publisher signatures the paper requires ("authentication information of
/// the metadata against fake publishers"). A publisher registers a secret
/// with the registry (the trusted Internet side); tagging computes
/// SHA1(secret || payload); verification recomputes it. A forged metadata
/// naming a known publisher fails verification; unknown publishers are
/// rejected outright.
class PublisherRegistry {
 public:
  /// Registers (or replaces) a publisher secret.
  void registerPublisher(const std::string& publisher,
                         const std::string& secret);

  [[nodiscard]] bool knows(const std::string& publisher) const;

  /// Computes the tag for metadata from its registered publisher. Returns
  /// std::nullopt when the publisher is unknown.
  [[nodiscard]] std::optional<Sha1Digest> sign(const Metadata& md) const;

  /// True iff md.authTag matches the registered publisher's tag.
  [[nodiscard]] bool verify(const Metadata& md) const;

 private:
  std::unordered_map<std::string, std::string> secrets_;
};

}  // namespace hdtn::core
