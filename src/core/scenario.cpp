#include "src/core/scenario.hpp"

#include <charconv>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <istream>
#include <stdexcept>
#include <string_view>

#include "src/core/checkpoint.hpp"
#include "src/core/download_planner.hpp"
#include "src/obs/event_log.hpp"
#include "src/obs/timeseries.hpp"
#include "src/trace/dieselnet.hpp"
#include "src/trace/mobility.hpp"
#include "src/trace/nus.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/string_util.hpp"

namespace hdtn::core {

namespace {

bool parseIntValue(const std::string& text, std::int64_t* out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool parseDoubleValue(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

/// Bare switches ("--observed-popularity") arrive with an empty value.
bool parseBoolValue(const std::string& text, bool* out) {
  if (text.empty() || text == "true" || text == "1" || text == "on" ||
      text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "off" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

std::string badValue(const std::string& key, const std::string& value,
                     const char* expected) {
  return "key '" + key + "': expected " + expected + ", got '" + value + "'";
}

}  // namespace

// --- TraceSpec --------------------------------------------------------------

std::vector<std::string> TraceSpec::validate() const {
  std::vector<std::string> errors;
  if (family != "file" && family != "nus" && family != "dieselnet" &&
      family != "rwp") {
    errors.push_back("trace-family must be file|nus|dieselnet|rwp, got '" +
                     family + "'");
  }
  if (family == "file" && path.empty()) {
    errors.push_back("trace family 'file' requires a trace path (key 'trace')");
  }
  if (days < 0) errors.push_back("trace-days must be >= 0 (0 = default)");
  if (family == "nus" && (students < 2 || courses < 1)) {
    errors.push_back("nus trace needs >= 2 students and >= 1 course");
  }
  if (family == "dieselnet" && (buses < 2 || routes < 1)) {
    errors.push_back("dieselnet trace needs >= 2 buses and >= 1 route");
  }
  if (family == "rwp" && (nodes < 2 || hours <= 0.0)) {
    errors.push_back("rwp trace needs >= 2 nodes and positive hours");
  }
  return errors;
}

std::optional<trace::ContactTrace> TraceSpec::build(std::string* error) const {
  for (const std::string& problem : validate()) {
    if (error != nullptr) *error = problem;
    return std::nullopt;
  }
  if (family == "file") return trace::loadTraceFile(path, error);
  if (family == "nus") {
    trace::NusParams p;
    p.students = students;
    p.courses = courses;
    p.coursesPerStudent = coursesPerStudent;
    p.attendanceRate = attendance;
    if (days > 0) p.days = days;
    p.seed = seed;
    return trace::generateNus(p);
  }
  if (family == "dieselnet") {
    trace::DieselNetParams p;
    p.buses = buses;
    p.routes = routes;
    if (days > 0) p.days = days;
    p.seed = seed;
    return trace::generateDieselNet(p);
  }
  trace::RandomWaypointParams p;
  p.nodes = nodes;
  p.duration = static_cast<Duration>(hours * kHour);
  p.radioRange = radioRange;
  p.fieldWidth = p.fieldHeight = fieldSize;
  p.seed = seed;
  return trace::generateRandomWaypoint(p);
}

// --- Scenario ---------------------------------------------------------------

const std::vector<std::string>& Scenario::knownKeys() {
  static const std::vector<std::string> kKeys = {
      // identity + trace source
      "name", "trace", "trace-family", "trace-seed", "trace-days",
      "trace-students", "trace-courses", "trace-courses-per-student",
      "trace-attendance", "trace-buses", "trace-routes", "trace-nodes",
      "trace-hours", "trace-range", "trace-field",
      // engine parameters (same names as the hdtn_sim flags)
      "protocol", "scheduling", "download-mode", "coded-redundancy",
      "coded-sparsity", "access", "files-per-day", "ttl-days",
      "md-per-contact", "files-per-contact", "pieces-per-file", "free-riders",
      "frequent-days", "observed-popularity", "seed",
      // fault injection
      "loss-rate", "truncation-rate", "truncation-keep-min",
      "truncation-keep-max", "corruption-rate", "churn-fraction",
      "churn-downtime-hours",
      // recovery layer (docs/RECOVERY.md)
      "recovery-retries", "recovery-retransmit-budget", "recovery-repair",
      "recovery-queue-limit", "recovery-failover", "md-capacity",
      // Byzantine adversary + defense (docs/ADVERSARY.md)
      "adversary-fraction", "adversary-attacks", "defense",
      "quarantine-threshold",
      // outputs
      "events-out", "timeseries-out", "sample-every",
      // checkpoint/resume (docs/CHECKPOINT.md)
      "checkpoint-out", "checkpoint-every", "resume"};
  return kKeys;
}

std::string Scenario::apply(const std::string& key, const std::string& value) {
  auto asInt = [&](std::int64_t* out) -> std::string {
    std::int64_t parsed = 0;
    if (!parseIntValue(value, &parsed)) {
      return badValue(key, value, "an integer");
    }
    *out = parsed;
    return "";
  };
  auto asDouble = [&](double* out) -> std::string {
    double parsed = 0.0;
    if (!parseDoubleValue(value, &parsed)) {
      return badValue(key, value, "a number");
    }
    *out = parsed;
    return "";
  };
  auto asBool = [&](bool* out) -> std::string {
    bool parsed = false;
    if (!parseBoolValue(value, &parsed)) {
      return badValue(key, value, "a boolean");
    }
    *out = parsed;
    return "";
  };

  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::string err;

  if (key == "name") {
    name = value;
  } else if (key == "trace") {
    trace.family = "file";
    trace.path = value;
  } else if (key == "trace-family") {
    trace.family = value;
  } else if (key == "trace-seed") {
    if (!(err = asInt(&i)).empty()) return err;
    trace.seed = static_cast<std::uint64_t>(i);
  } else if (key == "trace-days") {
    if (!(err = asInt(&i)).empty()) return err;
    trace.days = static_cast<int>(i);
  } else if (key == "trace-students") {
    if (!(err = asInt(&i)).empty()) return err;
    trace.students = static_cast<int>(i);
  } else if (key == "trace-courses") {
    if (!(err = asInt(&i)).empty()) return err;
    trace.courses = static_cast<int>(i);
  } else if (key == "trace-courses-per-student") {
    if (!(err = asInt(&i)).empty()) return err;
    trace.coursesPerStudent = static_cast<int>(i);
  } else if (key == "trace-attendance") {
    if (!(err = asDouble(&d)).empty()) return err;
    trace.attendance = d;
  } else if (key == "trace-buses") {
    if (!(err = asInt(&i)).empty()) return err;
    trace.buses = static_cast<int>(i);
  } else if (key == "trace-routes") {
    if (!(err = asInt(&i)).empty()) return err;
    trace.routes = static_cast<int>(i);
  } else if (key == "trace-nodes") {
    if (!(err = asInt(&i)).empty()) return err;
    trace.nodes = static_cast<int>(i);
  } else if (key == "trace-hours") {
    if (!(err = asDouble(&d)).empty()) return err;
    trace.hours = d;
  } else if (key == "trace-range") {
    if (!(err = asDouble(&d)).empty()) return err;
    trace.radioRange = d;
  } else if (key == "trace-field") {
    if (!(err = asDouble(&d)).empty()) return err;
    trace.fieldSize = d;
  } else if (key == "protocol") {
    if (value == "mbt") {
      params.protocol.kind = ProtocolKind::kMbt;
    } else if (value == "mbt-q") {
      params.protocol.kind = ProtocolKind::kMbtQ;
    } else if (value == "mbt-qm") {
      params.protocol.kind = ProtocolKind::kMbtQm;
    } else {
      return badValue(key, value, "mbt|mbt-q|mbt-qm");
    }
  } else if (key == "scheduling") {
    if (value == "coop") {
      params.protocol.scheduling = Scheduling::kCooperative;
    } else if (value == "tft") {
      params.protocol.scheduling = Scheduling::kTitForTat;
    } else {
      return badValue(key, value, "coop|tft");
    }
  } else if (key == "download-mode") {
    const DownloadModeInfo* info = findDownloadMode(value);
    if (info == nullptr) {
      return badValue(key, value, "coop|tft|popularity|pairwise|coded");
    }
    params.downloadMode = info->mode;
    params.protocol.scheduling = info->scheduling;
  } else if (key == "coded-redundancy") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.coded.redundancy = d;
  } else if (key == "coded-sparsity") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.coded.sparsity = d;
  } else if (key == "access") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.internetAccessFraction = d;
  } else if (key == "files-per-day") {
    if (!(err = asInt(&i)).empty()) return err;
    params.newFilesPerDay = static_cast<int>(i);
  } else if (key == "ttl-days") {
    if (!(err = asInt(&i)).empty()) return err;
    params.fileTtlDays = static_cast<int>(i);
  } else if (key == "md-per-contact") {
    if (!(err = asInt(&i)).empty()) return err;
    params.metadataPerContact = static_cast<int>(i);
  } else if (key == "files-per-contact") {
    if (!(err = asInt(&i)).empty()) return err;
    params.filesPerContact = static_cast<int>(i);
  } else if (key == "pieces-per-file") {
    if (!(err = asInt(&i)).empty()) return err;
    if (i < 0) return badValue(key, value, "a non-negative integer");
    params.piecesPerFile = static_cast<std::uint32_t>(i);
  } else if (key == "free-riders") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.freeRiderFraction = d;
  } else if (key == "frequent-days") {
    if (!(err = asInt(&i)).empty()) return err;
    params.frequentContactPeriod = static_cast<Duration>(i) * kDay;
  } else if (key == "observed-popularity") {
    if (!(err = asBool(&b)).empty()) return err;
    params.useObservedPopularity = b;
  } else if (key == "seed") {
    if (!(err = asInt(&i)).empty()) return err;
    params.seed = static_cast<std::uint64_t>(i);
  } else if (key == "loss-rate") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.faults.messageLossRate = d;
  } else if (key == "truncation-rate") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.faults.contactTruncationRate = d;
  } else if (key == "truncation-keep-min") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.faults.truncationKeepMin = d;
  } else if (key == "truncation-keep-max") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.faults.truncationKeepMax = d;
  } else if (key == "corruption-rate") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.faults.pieceCorruptionRate = d;
  } else if (key == "churn-fraction") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.faults.churnDownFraction = d;
  } else if (key == "churn-downtime-hours") {
    if (!(err = asDouble(&d)).empty()) return err;
    if (d <= 0.0) return badValue(key, value, "a positive number of hours");
    params.faults.churnMeanDowntime = static_cast<Duration>(d * kHour);
  } else if (key == "recovery-retries") {
    if (!(err = asInt(&i)).empty()) return err;
    params.recovery.maxRetries = static_cast<int>(i);
  } else if (key == "recovery-retransmit-budget") {
    if (!(err = asInt(&i)).empty()) return err;
    params.recovery.retransmitBudget = static_cast<int>(i);
  } else if (key == "recovery-repair") {
    if (!(err = asInt(&i)).empty()) return err;
    params.recovery.repairPerContact = static_cast<int>(i);
  } else if (key == "recovery-queue-limit") {
    if (!(err = asInt(&i)).empty()) return err;
    if (i < 1) return badValue(key, value, "a positive integer");
    params.recovery.repairQueueLimit = static_cast<std::size_t>(i);
  } else if (key == "recovery-failover") {
    if (!(err = asBool(&b)).empty()) return err;
    params.recovery.coordinatorFailover = b;
  } else if (key == "adversary-fraction") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.adversary.byzantineFraction = d;
  } else if (key == "adversary-attacks") {
    std::uint32_t mask = 0;
    std::string offender;
    if (!faults::parseAttackMask(value, &mask, &offender)) {
      return badValue(key, offender.empty() ? value : offender,
                      "a comma-separated attack list "
                      "(pollution|piece-lie|false-summary|ack-spoof|"
                      "coordinator), 'all', or 'none'");
    }
    params.adversary.attacks = mask;
  } else if (key == "defense") {
    if (!(err = asBool(&b)).empty()) return err;
    params.reputation.defense = b;
  } else if (key == "quarantine-threshold") {
    if (!(err = asDouble(&d)).empty()) return err;
    params.reputation.quarantineThreshold = d;
  } else if (key == "md-capacity") {
    if (!(err = asInt(&i)).empty()) return err;
    if (i < 0) return badValue(key, value, "a non-negative integer");
    params.nodeMetadataCapacity = static_cast<std::size_t>(i);
  } else if (key == "events-out") {
    eventsOut = value;
  } else if (key == "timeseries-out") {
    timeseriesOut = value;
  } else if (key == "sample-every") {
    if (!(err = asInt(&i)).empty()) return err;
    sampleEvery = static_cast<Duration>(i);
  } else if (key == "checkpoint-out") {
    checkpointOut = value;
  } else if (key == "checkpoint-every") {
    if (!(err = asInt(&i)).empty()) return err;
    checkpointEvery = static_cast<Duration>(i);
  } else if (key == "resume") {
    if (!(err = asBool(&b)).empty()) return err;
    resume = b;
  } else {
    return "unknown key '" + key + "'";
  }
  return "";
}

std::optional<Scenario> Scenario::parse(std::istream& in,
                                        std::vector<std::string>* errors) {
  Scenario scenario;
  bool failed = false;
  std::string line;
  int lineNumber = 0;
  while (std::getline(in, line)) {
    ++lineNumber;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    const std::string trimmed(trim(line));
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineNumber) +
                          ": expected 'key = value', got '" + trimmed + "'");
      }
      failed = true;
      continue;
    }
    const std::string key(trim(std::string_view(trimmed).substr(0, eq)));
    const std::string value(trim(std::string_view(trimmed).substr(eq + 1)));
    if (key.empty()) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineNumber) +
                          ": empty key");
      }
      failed = true;
      continue;
    }
    const std::string error = scenario.apply(key, value);
    if (!error.empty()) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(lineNumber) + ": " + error);
      }
      failed = true;
    }
  }
  if (failed) return std::nullopt;
  return scenario;
}

std::optional<Scenario> Scenario::fromFile(const std::string& path,
                                           std::vector<std::string>* errors) {
  std::ifstream in(path);
  if (!in) {
    if (errors != nullptr) {
      errors->push_back("cannot read scenario file '" + path + "'");
    }
    return std::nullopt;
  }
  return parse(in, errors);
}

std::vector<std::string> Scenario::validate() const {
  std::vector<std::string> errors = trace.validate();
  for (std::string& error : params.validate()) {
    errors.push_back(std::move(error));
  }
  if (sampleEvery <= 0) errors.push_back("sample-every must be positive");
  if (checkpointEvery <= 0) {
    errors.push_back("checkpoint-every must be positive");
  }
  if (resume && checkpointOut.empty()) {
    errors.push_back("resume requires checkpoint-out");
  }
  return errors;
}

// --- ScenarioBuilder --------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::name(std::string value) {
  scenario_.name = std::move(value);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::traceFile(std::string path) {
  scenario_.trace.family = "file";
  scenario_.trace.path = std::move(path);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::nusTrace(int students, int courses,
                                           int days) {
  scenario_.trace.family = "nus";
  scenario_.trace.students = students;
  scenario_.trace.courses = courses;
  scenario_.trace.days = days;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::dieselNetTrace(int buses, int routes,
                                                 int days) {
  scenario_.trace.family = "dieselnet";
  scenario_.trace.buses = buses;
  scenario_.trace.routes = routes;
  scenario_.trace.days = days;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::rwpTrace(int nodes, double hours) {
  scenario_.trace.family = "rwp";
  scenario_.trace.nodes = nodes;
  scenario_.trace.hours = hours;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::traceSeed(std::uint64_t seed) {
  scenario_.trace.seed = seed;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::protocol(ProtocolKind kind) {
  scenario_.params.protocol.kind = kind;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::scheduling(Scheduling scheduling) {
  scenario_.params.protocol.scheduling = scheduling;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::downloadMode(const std::string& name) {
  return set("download-mode", name);
}
ScenarioBuilder& ScenarioBuilder::codedRedundancy(double redundancy) {
  scenario_.params.coded.redundancy = redundancy;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::codedSparsity(double sparsity) {
  scenario_.params.coded.sparsity = sparsity;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::accessFraction(double fraction) {
  scenario_.params.internetAccessFraction = fraction;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::filesPerDay(int files) {
  scenario_.params.newFilesPerDay = files;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::ttlDays(int days) {
  scenario_.params.fileTtlDays = days;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::piecesPerFile(std::uint32_t pieces) {
  scenario_.params.piecesPerFile = pieces;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::freeRiderFraction(double fraction) {
  scenario_.params.freeRiderFraction = fraction;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::frequentContactDays(int days) {
  scenario_.params.frequentContactPeriod = static_cast<Duration>(days) * kDay;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t value) {
  scenario_.params.seed = value;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::faults(faults::FaultParams params) {
  scenario_.params.faults = params;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::messageLossRate(double rate) {
  scenario_.params.faults.messageLossRate = rate;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::contactTruncationRate(double rate) {
  scenario_.params.faults.contactTruncationRate = rate;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::pieceCorruptionRate(double rate) {
  scenario_.params.faults.pieceCorruptionRate = rate;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::churn(double downFraction,
                                        Duration meanDowntime) {
  scenario_.params.faults.churnDownFraction = downFraction;
  scenario_.params.faults.churnMeanDowntime = meanDowntime;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::recovery(RecoveryParams params) {
  scenario_.params.recovery = params;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::recoveryRetries(int maxRetries) {
  scenario_.params.recovery.maxRetries = maxRetries;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::recoveryRepair(int perContact) {
  scenario_.params.recovery.repairPerContact = perContact;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::recoveryFailover(bool enabled) {
  scenario_.params.recovery.coordinatorFailover = enabled;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::metadataCapacity(std::size_t records) {
  scenario_.params.nodeMetadataCapacity = records;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::eventsOut(std::string path) {
  scenario_.eventsOut = std::move(path);
  return *this;
}
ScenarioBuilder& ScenarioBuilder::timeseriesOut(std::string path,
                                                Duration sampleEvery) {
  scenario_.timeseriesOut = std::move(path);
  scenario_.sampleEvery = sampleEvery;
  return *this;
}
ScenarioBuilder& ScenarioBuilder::set(const std::string& key,
                                      const std::string& value) {
  const std::string error = scenario_.apply(key, value);
  if (!error.empty()) errors_.push_back(error);
  return *this;
}

Scenario ScenarioBuilder::build() const {
  std::vector<std::string> errors = errors_;
  for (std::string& error : scenario_.validate()) {
    errors.push_back(std::move(error));
  }
  if (!errors.empty()) {
    std::string message = "invalid scenario '" + scenario_.name + "':";
    for (const std::string& error : errors) message += "\n  " + error;
    throw std::invalid_argument(message);
  }
  return scenario_;
}

// --- runScenario ------------------------------------------------------------

namespace {

/// Cooperative preemption flag (setScenarioStopFlag). Checked only at
/// sample/checkpoint boundaries of checkpointing runs, so the cost on the
/// simulation hot path is zero.
const volatile std::sig_atomic_t* g_stopFlag = nullptr;

bool stopRequested() { return g_stopFlag != nullptr && *g_stopFlag != 0; }

}  // namespace

void setScenarioStopFlag(const volatile std::sig_atomic_t* flag) {
  g_stopFlag = flag;
}

namespace {

/// The driver state a checkpointing run stores in the checkpoint's extra
/// blob: how far each output file had gotten (byte offsets, so a resume can
/// truncate a partially written tail and append byte-identically) and the
/// next sample/checkpoint boundaries.
struct ResumeCursor {
  std::uint64_t eventsWritten = 0;
  std::uint64_t eventsOffset = 0;
  std::uint64_t timeseriesOffset = 0;
  SimTime nextSample = 0;
  SimTime nextCheckpoint = 0;
  bool hasEvents = false;
  bool hasTimeseries = false;
};

constexpr std::uint8_t kCursorVersion = 1;

std::string packCursor(const ResumeCursor& cursor) {
  Serializer out;
  out.u8(kCursorVersion);
  out.boolean(cursor.hasEvents);
  out.boolean(cursor.hasTimeseries);
  out.u64(cursor.eventsWritten);
  out.u64(cursor.eventsOffset);
  out.u64(cursor.timeseriesOffset);
  out.i64(cursor.nextSample);
  out.i64(cursor.nextCheckpoint);
  return out.takeBytes();
}

bool unpackCursor(const std::string& blob, ResumeCursor* cursor,
                  std::string* error) {
  try {
    Deserializer in(blob);
    if (in.u8() != kCursorVersion) {
      if (error != nullptr) {
        *error = "cannot resume: checkpoint carries an unknown driver cursor "
                 "version";
      }
      return false;
    }
    cursor->hasEvents = in.boolean();
    cursor->hasTimeseries = in.boolean();
    cursor->eventsWritten = in.u64();
    cursor->eventsOffset = in.u64();
    cursor->timeseriesOffset = in.u64();
    cursor->nextSample = in.i64();
    cursor->nextCheckpoint = in.i64();
    return true;
  } catch (const SerializeError& e) {
    if (error != nullptr) {
      *error = std::string("cannot resume: corrupt driver cursor: ") +
               e.what();
    }
    return false;
  }
}

/// Truncates an output file back to the offset the checkpoint recorded
/// (dropping any tail written after the checkpoint but before the crash)
/// and reopens it in append mode. Missing or too-short files fail loudly:
/// the resume contract is byte identity, and a file that lost bytes before
/// the recorded offset cannot honor it.
bool reopenForResume(const std::string& path, std::uint64_t offset,
                     const char* what, std::ofstream* out,
                     std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec) {
    if (error != nullptr) {
      *error = std::string("cannot resume: ") + what + " output '" + path +
               "' is missing (" + ec.message() +
               "); it must survive alongside the checkpoint";
    }
    return false;
  }
  if (size < offset) {
    if (error != nullptr) {
      *error = std::string("cannot resume: ") + what + " output '" + path +
               "' holds " + std::to_string(size) +
               " bytes but the checkpoint recorded " + std::to_string(offset);
    }
    return false;
  }
  fs::resize_file(path, offset, ec);
  if (ec) {
    if (error != nullptr) {
      *error = std::string("cannot resume: cannot truncate ") + what +
               " output '" + path + "': " + ec.message();
    }
    return false;
  }
  out->open(path, std::ios::app);
  if (!*out) {
    if (error != nullptr) {
      *error = std::string("cannot reopen ") + what + " output '" + path +
               "' for append";
    }
    return false;
  }
  return true;
}

/// The checkpointing/resuming driver: advances the engine boundary by
/// boundary (sample boundaries and checkpoint boundaries, in time order),
/// writing the time series incrementally so every checkpoint can record the
/// exact on-disk offsets of both outputs. Event execution is identical to
/// obs::runSampled — only the bookkeeping between events differs.
std::optional<ScenarioOutcome> runCheckpointed(
    const Scenario& scenario, const trace::ContactTrace& trace,
    std::string* error) {
  namespace fs = std::filesystem;
  ScenarioOutcome outcome;
  Engine engine(trace, scenario.params);
  const bool wantEvents = !scenario.eventsOut.empty();
  const bool wantTimeseries = !scenario.timeseriesOut.empty();
  ResumeCursor cursor;
  cursor.hasEvents = wantEvents;
  cursor.hasTimeseries = wantTimeseries;
  cursor.nextSample = scenario.sampleEvery;
  cursor.nextCheckpoint = scenario.checkpointEvery;
  std::uint64_t eventsWrittenBefore = 0;
  if (scenario.resume && fs::exists(scenario.checkpointOut)) {
    try {
      const CheckpointInfo info = readCheckpointInfo(scenario.checkpointOut);
      if (!unpackCursor(info.extra, &cursor, error)) return std::nullopt;
      if (cursor.hasEvents != wantEvents ||
          cursor.hasTimeseries != wantTimeseries) {
        if (error != nullptr) {
          *error = "cannot resume: the checkpoint was written with different "
                   "events-out/timeseries-out settings";
        }
        return std::nullopt;
      }
      engine.restoreCheckpoint(scenario.checkpointOut);
    } catch (const CheckpointError& e) {
      if (error != nullptr) *error = e.what();
      return std::nullopt;
    }
    eventsWrittenBefore = cursor.eventsWritten;
    outcome.resumed = true;
  }
  std::ofstream eventsFile;
  std::optional<obs::JsonlEventSink> sink;
  if (wantEvents) {
    if (outcome.resumed) {
      if (!reopenForResume(scenario.eventsOut, cursor.eventsOffset, "events",
                           &eventsFile, error)) {
        return std::nullopt;
      }
    } else {
      eventsFile.open(scenario.eventsOut);
      if (!eventsFile) {
        if (error != nullptr) *error = "cannot write " + scenario.eventsOut;
        return std::nullopt;
      }
    }
    sink.emplace(eventsFile);
    engine.setObserver(&*sink);
  }
  std::ofstream tsFile;
  if (wantTimeseries) {
    if (outcome.resumed) {
      if (!reopenForResume(scenario.timeseriesOut, cursor.timeseriesOffset,
                           "timeseries", &tsFile, error)) {
        return std::nullopt;
      }
    } else {
      tsFile.open(scenario.timeseriesOut);
      if (!tsFile) {
        if (error != nullptr) {
          *error = "cannot write " + scenario.timeseriesOut;
        }
        return std::nullopt;
      }
      obs::TimeSeries::writeCsvHeader(tsFile);
    }
  }
  const SimTime end = engine.endTime();
  try {
    while (true) {
      SimTime boundary = end;
      if (wantTimeseries && cursor.nextSample < boundary) {
        boundary = cursor.nextSample;
      }
      if (cursor.nextCheckpoint < boundary) boundary = cursor.nextCheckpoint;
      if (boundary >= end) break;
      engine.runUntil(boundary);
      // Sample before checkpointing so a checkpoint at a shared boundary
      // covers the row just written.
      if (wantTimeseries && boundary == cursor.nextSample) {
        obs::TimeSeries::writeCsvRow(tsFile,
                                     {boundary, engine.currentResult()});
        cursor.nextSample += scenario.sampleEvery;
      }
      // A preemption request checkpoints at whatever boundary comes next
      // (sample or checkpoint), so the stop latency is bounded by the
      // tighter of the two cadences.
      const bool preempt = stopRequested();
      if (boundary == cursor.nextCheckpoint || preempt) {
        if (boundary == cursor.nextCheckpoint) {
          cursor.nextCheckpoint += scenario.checkpointEvery;
        }
        // The on-disk bytes must match the offsets the checkpoint records,
        // so flush (and verify) both outputs before writing it.
        if (sink) sink->finish();
        if (wantTimeseries) {
          tsFile.flush();
          if (!tsFile) {
            throw std::runtime_error("I/O error writing " +
                                     scenario.timeseriesOut);
          }
        }
        ResumeCursor at = cursor;
        at.eventsWritten =
            eventsWrittenBefore + (sink ? sink->eventsWritten() : 0);
        at.eventsOffset =
            wantEvents ? static_cast<std::uint64_t>(eventsFile.tellp()) : 0;
        at.timeseriesOffset =
            wantTimeseries ? static_cast<std::uint64_t>(tsFile.tellp()) : 0;
        engine.saveCheckpoint(scenario.checkpointOut, packCursor(at));
      }
      if (preempt) {
        outcome.preempted = true;
        outcome.result = engine.currentResult();
        if (sink) {
          outcome.eventsWritten = eventsWrittenBefore + sink->eventsWritten();
        }
        return outcome;
      }
    }
    outcome.result = engine.finish();
    if (wantTimeseries) {
      obs::TimeSeries::writeCsvRow(tsFile, {end, outcome.result});
      tsFile.flush();
      if (!tsFile) {
        throw std::runtime_error("I/O error writing " +
                                 scenario.timeseriesOut);
      }
    }
    if (sink) sink->finish();
  } catch (const std::runtime_error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
  if (sink) {
    outcome.eventsWritten = eventsWrittenBefore + sink->eventsWritten();
  }
  return outcome;
}

}  // namespace

std::optional<ScenarioOutcome> runScenario(const Scenario& scenario,
                                           const trace::ContactTrace& trace,
                                           std::string* error) {
  for (const std::string& problem : scenario.validate()) {
    if (error != nullptr) *error = problem;
    return std::nullopt;
  }
  if (!scenario.checkpointOut.empty()) {
    return runCheckpointed(scenario, trace, error);
  }
  ScenarioOutcome outcome;
  if (scenario.eventsOut.empty() && scenario.timeseriesOut.empty()) {
    outcome.result = runSimulation(trace, scenario.params);
    return outcome;
  }
  Engine engine(trace, scenario.params);
  std::ofstream eventsFile;
  std::optional<obs::JsonlEventSink> sink;
  if (!scenario.eventsOut.empty()) {
    eventsFile.open(scenario.eventsOut);
    if (!eventsFile) {
      if (error != nullptr) *error = "cannot write " + scenario.eventsOut;
      return std::nullopt;
    }
    sink.emplace(eventsFile);
    engine.setObserver(&*sink);
  }
  try {
    if (!scenario.timeseriesOut.empty()) {
      obs::TimeSeries series;
      outcome.result = obs::runSampled(engine, scenario.sampleEvery, series);
      std::ofstream tsFile(scenario.timeseriesOut);
      if (!tsFile) {
        if (error != nullptr) {
          *error = "cannot write " + scenario.timeseriesOut;
        }
        return std::nullopt;
      }
      series.writeCsv(tsFile);
    } else {
      outcome.result = engine.run();
    }
    if (sink) sink->finish();
  } catch (const std::runtime_error& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
  if (sink) outcome.eventsWritten = sink->eventsWritten();
  return outcome;
}

std::optional<ScenarioOutcome> runScenario(const Scenario& scenario,
                                           std::string* error) {
  const auto trace = scenario.trace.build(error);
  if (!trace) return std::nullopt;
  return runScenario(scenario, *trace, error);
}

}  // namespace hdtn::core
