// Sharded parallel simulation engine.
//
// A contact trace decomposes into *contact-connected components*: maximal
// node sets linked by shared contacts. Nodes in different components never
// exchange a byte inside the DTN, so each component is an independent
// simulation — the only coupling is the Internet side, which ShardedEngine
// makes identical everywhere by sharing one publication stream (every
// component publishes the same daily catalog) and one publish horizon.
//
// ShardedEngine finds the components (union-find over the contacts, or an
// explicit partition hint), runs one Engine per component, and steps the
// components on a worker pool. The `shards` parameter only groups components
// into scheduling units; because components share no mutable state and every
// merge happens in canonical component order (ascending smallest global node
// id), the merged result is byte-identical at any --shards / --threads
// setting. The determinism reference is the sharded run itself: shards=N
// equals shards=1. (It intentionally differs from a monolithic Engine run of
// the same trace: role assignment and query draws happen per component.)
//
// Two driving modes:
//   * materialized — constructed from a ContactTrace; each component gets
//     its own remapped sub-trace and runs the normal schedule (churn,
//     frequent-contact relation, everything).
//   * streaming — constructed from a trace::ContactStream; contacts are
//     pulled lazily in global start order and fed to their component
//     (Engine feed mode), so a city-scale trace never materializes. Feed
//     mode limitations (see Engine::beginFeed): empty frequent-contact
//     relation and empty churn intervals.
//
// Checkpoints: saveCheckpoint writes one envelope holding every component's
// state; restoreCheckpoint replays each component's schedule position —
// materialized components skip their executed prefix, streaming components
// re-pull the stream up to the saved epoch with replay feeds. A checkpoint
// saved at any shard/thread setting restores at any other.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/engine.hpp"
#include "src/trace/contact_trace.hpp"
#include "src/trace/streaming.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

struct ShardedParams {
  /// Base engine configuration. `engine.seed` is the run seed: component
  /// engines derive their streams from it (mixed with the component's
  /// smallest global node id), and the shared publication stream is derived
  /// from it too. Explicit access / free-rider node lists are global ids;
  /// they are filtered and remapped per component.
  EngineParams engine;
  /// Scheduling groups. Purely a performance knob: results are identical at
  /// every value. Components are assigned round-robin.
  std::uint32_t shards = 1;
  /// Worker threads stepping the shard groups; 0 = defaultThreadCount().
  /// Purely a performance knob: results are identical at every value.
  unsigned threads = 1;
  /// Optional explicit partition: one label per global node id. Nodes with
  /// equal labels form one component (labels must not be spanned by any
  /// contact — violating contacts throw at construction). Empty = derive
  /// components by union-find (materialized / streaming without a hint) or
  /// from the stream's partitionHint().
  std::vector<std::uint32_t> partition;

  /// One message per violation; empty when valid (engine params are
  /// validated by the component Engine constructors).
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Runs a trace as independent per-component engines on a thread pool.
/// Results and checkpoints are byte-identical at every shards/threads
/// setting. Not reentrant; drive from one thread.
class ShardedEngine {
 public:
  /// Materialized mode. The trace must outlive the engine.
  /// Throws std::invalid_argument on invalid params or an explicit
  /// partition spanned by a contact.
  ShardedEngine(const trace::ContactTrace& trace, ShardedParams params);

  /// Streaming mode. The stream must outlive the engine and must yield
  /// contacts in ascending start order; it is reset before partition
  /// discovery and again before feeding (and on checkpoint restore).
  ShardedEngine(trace::ContactStream& stream, ShardedParams params);

  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Runs everything and returns the merged result (equivalent to
  /// finish()). Throws std::logic_error when already finished.
  EngineResult run();

  /// Advances every component to `horizon` (exclusive), feeding streamed
  /// contacts on the way. Horizons must not decrease across calls.
  void runUntil(SimTime horizon);

  /// Drains every component and returns the merged result exactly once.
  EngineResult finish();

  [[nodiscard]] bool finished() const { return finished_; }

  /// Merged snapshot of all component metrics at the current position.
  [[nodiscard]] EngineResult currentResult() const;

  /// The last runUntil horizon (the epoch boundary all components reached).
  [[nodiscard]] SimTime now() const { return epoch_; }

  /// Global horizon: trace/stream end time.
  [[nodiscard]] SimTime endTime() const { return globalEnd_; }

  [[nodiscard]] std::size_t nodeCount() const { return componentOf_.size(); }
  [[nodiscard]] std::size_t componentCount() const {
    return components_.size();
  }
  /// Scheduling groups actually formed: min(shards, componentCount).
  [[nodiscard]] std::size_t shardCount() const { return groups_.size(); }

  /// The component engine (canonical order: ascending smallest global id).
  [[nodiscard]] const Engine& component(std::size_t index) const {
    return *components_[index].engine;
  }
  /// Component index owning a global node id.
  [[nodiscard]] std::uint32_t componentOf(NodeId id) const {
    return componentOf_[id.value];
  }
  /// Global node ids of one component, ascending (local id = position).
  [[nodiscard]] const std::vector<NodeId>& componentNodes(
      std::size_t index) const {
    return components_[index].globalIds;
  }

  /// Writes one versioned, checksummed envelope holding every component's
  /// state (atomic temp-file + rename). Legal at any epoch boundary before
  /// finish(). Restorable at any shards/threads setting. Throws
  /// CheckpointError on I/O failure.
  void saveCheckpoint(const std::string& path,
                      std::string_view extra = {}) const;

  /// Restores into a freshly constructed ShardedEngine (same trace or
  /// stream, same engine params). Streaming mode resets the stream and
  /// replays the contact prefix before the saved epoch without executing
  /// it. Throws CheckpointError on corruption or configuration mismatch.
  void restoreCheckpoint(const std::string& path);

 private:
  struct Component {
    /// Ascending global ids; the local id of globalIds[i] is i.
    std::vector<NodeId> globalIds;
    /// Remapped sub-trace (materialized) or contact-less placeholder
    /// (streaming). Owned here: the Engine holds a reference into it.
    trace::ContactTrace trace;
    std::unique_ptr<Engine> engine;
    /// Contacts fed so far (streaming mode; checkpoint verification).
    std::uint64_t contactsFed = 0;
    /// Contacts pulled for the current epoch, awaiting the parallel feed.
    std::vector<trace::Contact> feedBucket;
  };

  /// Groups nodes into components from explicit labels or union-find roots,
  /// pooling isolated nodes (no contacts) into one component; fills
  /// componentOf_/localId_ and the components' globalIds in canonical
  /// order.
  void buildComponents(std::size_t nodeCount,
                       const std::vector<std::uint32_t>& labels);
  /// Constructs the per-component engines (seeds, publish stream, horizon;
  /// feed mode when streaming) over the already-filled component traces.
  void buildEngines();
  /// Remaps a global contact into its owning component's id space; returns
  /// the component index. Throws std::invalid_argument when the contact
  /// spans components (bad explicit partition / lying stream hint).
  std::uint32_t remapContact(const trace::Contact& contact,
                             trace::Contact* local) const;
  /// Streaming: pulls every stream contact with start < horizon into the
  /// per-component feed buckets.
  void pullContacts(SimTime horizon);
  void throwIfFinished(const char* what) const;
  [[nodiscard]] unsigned threadCount() const;
  /// SHA-1 over the sharded configuration: mode, component layout, and
  /// every component engine's configuration fingerprint.
  [[nodiscard]] Sha1Digest shardedFingerprint() const;

  ShardedParams params_;
  /// Non-null in streaming mode.
  trace::ContactStream* stream_ = nullptr;
  SimTime globalEnd_ = 0;
  std::vector<std::uint32_t> componentOf_;  ///< global id -> component index
  std::vector<std::uint32_t> localId_;      ///< global id -> local id
  std::vector<Component> components_;
  /// Round-robin component indices per scheduling group.
  std::vector<std::vector<std::uint32_t>> groups_;
  /// Streaming lookahead: the first stream contact at/after the last pull
  /// horizon.
  std::optional<trace::Contact> pending_;
  SimTime epoch_ = 0;
  bool streaming_ = false;
  bool finished_ = false;
};

}  // namespace hdtn::core
