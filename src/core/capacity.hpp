// Per-node transmission capacity: broadcast vs pairwise (paper Section V).
//
// The paper's argument for broadcast-based download: in a clique of n nodes
// where one node transmits at a time, each transmission has n-1 receivers,
// so per-node useful receive capacity is W(n-1)/n and *grows* with density;
// with pairwise transmission, links contend for the same channel and each
// transmission has exactly one receiver, so per-node capacity is W/n and
// *shrinks* with density. We provide both the closed forms and a slotted
// contention simulator (CSMA-like random access for the pairwise case) that
// reproduces them empirically.
#pragma once

#include <cstdint>

#include "src/util/random.hpp"

namespace hdtn::core {

/// Per-node useful receive capacity of a perfectly scheduled broadcast
/// clique of n nodes, as a fraction of the channel rate W: (n-1)/n.
[[nodiscard]] double analyticBroadcastCapacity(int n);

/// Per-node useful receive capacity of pairwise transmission in a clique of
/// n nodes (one link active at a time, one receiver per transmission): 1/n.
[[nodiscard]] double analyticPairwiseCapacity(int n);

struct ContentionParams {
  int nodes = 10;
  /// Number of time slots to simulate.
  int slots = 20000;
  /// Per-slot transmission attempt probability of each node (pairwise
  /// random access). A slot succeeds when exactly one node transmits.
  double attemptProbability = 0.2;
  std::uint64_t seed = 1;
};

struct ContentionResult {
  /// Mean useful receptions per node per slot.
  double perNodeGoodput = 0.0;
  /// Fraction of slots wasted by collisions (pairwise only; 0 for
  /// broadcast, which is collision-free by schedule).
  double collisionFraction = 0.0;
  /// Fraction of idle slots.
  double idleFraction = 0.0;
};

/// Slotted random-access pairwise transmission inside one clique: each slot,
/// every node independently transmits with attemptProbability to a uniformly
/// random peer; the slot delivers one piece to one receiver iff exactly one
/// node transmitted.
[[nodiscard]] ContentionResult simulatePairwiseContention(
    const ContentionParams& params);

/// Scheduled broadcast inside one clique: senders rotate; every slot
/// delivers to all n-1 other members.
[[nodiscard]] ContentionResult simulateBroadcastSchedule(
    const ContentionParams& params);

/// The attempt probability maximizing slotted-ALOHA-style success for n
/// nodes (1/n), used by benches to give the pairwise baseline its best case.
[[nodiscard]] double optimalAttemptProbability(int n);

}  // namespace hdtn::core
