#include "src/core/file_catalog.hpp"

#include <cassert>

namespace hdtn::core {

std::uint32_t FileInfo::pieceCount() const {
  assert(pieceSizeBytes > 0);
  if (sizeBytes == 0) return 0;
  return static_cast<std::uint32_t>((sizeBytes + pieceSizeBytes - 1) /
                                    pieceSizeBytes);
}

std::uint32_t FileInfo::pieceLength(std::uint32_t pieceIndex) const {
  assert(pieceIndex < pieceCount());
  const std::uint64_t offset =
      static_cast<std::uint64_t>(pieceIndex) * pieceSizeBytes;
  const std::uint64_t remaining = sizeBytes - offset;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(remaining, pieceSizeBytes));
}

std::vector<std::uint8_t> makePieceBytes(const FileInfo& info,
                                         std::uint32_t piece) {
  // Key the stream on (uri, piece) so every piece is independently
  // generatable; Sha1 of that key seeds a PRNG that expands to the payload.
  Sha1 keyHasher;
  keyHasher.update(info.uri);
  keyHasher.update(std::string_view("#piece#"));
  keyHasher.update(std::to_string(piece));
  const Sha1Digest key = keyHasher.finish();
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) {
    seed = (seed << 8) | key.bytes[static_cast<std::size_t>(i)];
  }
  Rng rng(seed);
  const std::uint32_t length = info.pieceLength(piece);
  std::vector<std::uint8_t> out(length);
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = rng();
    for (int b = 0; b < 8; ++b) {
      out[i++] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  if (i < out.size()) {
    std::uint64_t word = rng();
    while (i < out.size()) {
      out[i++] = static_cast<std::uint8_t>(word);
      word >>= 8;
    }
  }
  return out;
}

FileId FileCatalog::publish(const PublishRequest& request) {
  assert(request.sizeBytes > 0);
  assert(request.pieceSizeBytes > 0);
  assert(request.ttl > 0);

  FileInfo info;
  info.id = FileId(static_cast<std::uint32_t>(files_.size()));
  info.name = request.name;
  info.publisher = request.publisher;
  info.description = request.description;
  info.sizeBytes = request.sizeBytes;
  info.pieceSizeBytes = request.pieceSizeBytes;
  info.popularity = request.popularity;
  info.publishedAt = request.publishedAt;
  info.ttl = request.ttl;
  info.uri = "dtn://" + request.publisher + "/f" +
             std::to_string(info.id.value);

  Metadata md;
  md.file = info.id;
  md.name = info.name;
  md.publisher = info.publisher;
  md.description = info.description;
  md.uri = info.uri;
  md.sizeBytes = info.sizeBytes;
  md.pieceSizeBytes = info.pieceSizeBytes;
  md.popularity = info.popularity;
  md.publishedAt = info.publishedAt;
  md.ttl = info.ttl;
  md.pieceChecksums.reserve(info.pieceCount());
  for (std::uint32_t p = 0; p < info.pieceCount(); ++p) {
    md.pieceChecksums.push_back(Sha1::hash(makePieceBytes(info, p)));
  }
  md.rebuildKeywords();
  if (registry_ != nullptr) {
    if (const auto tag = registry_->sign(md)) md.authTag = *tag;
  }

  byUri_.emplace(info.uri, info.id);
  files_.push_back(std::move(info));
  metadata_.push_back(std::move(md));
  return metadata_.back().file;
}

const FileInfo* FileCatalog::find(FileId id) const {
  if (!id.valid() || id.value >= files_.size()) return nullptr;
  return &files_[id.value];
}

const FileInfo* FileCatalog::findByUri(const Uri& uri) const {
  auto it = byUri_.find(uri);
  return it == byUri_.end() ? nullptr : find(it->second);
}

const Metadata& FileCatalog::metadataFor(FileId id) const {
  assert(id.valid() && id.value < metadata_.size());
  return metadata_[id.value];
}

const Sha1Digest& FileCatalog::pieceDigest(FileId id,
                                           std::uint32_t piece) const {
  const Metadata& md = metadataFor(id);
  assert(piece < md.pieceCount());
  return md.pieceChecksums[piece];
}

bool FileCatalog::verifyPiece(FileId id, std::uint32_t piece,
                              std::span<const std::uint8_t> data) const {
  const Metadata& md = metadataFor(id);
  if (piece >= md.pieceCount()) return false;
  return Sha1::hash(data) == md.pieceChecksums[piece];
}

void FileCatalog::setPopularity(FileId id, Popularity popularity) {
  assert(id.valid() && id.value < files_.size());
  files_[id.value].popularity = popularity;
  metadata_[id.value].popularity = popularity;
}

std::vector<FileId> FileCatalog::aliveFiles(SimTime now) const {
  std::vector<FileId> out;
  for (const FileInfo& f : files_) {
    if (f.alive(now)) out.push_back(f.id);
  }
  return out;
}

std::vector<FileId> FileCatalog::allFiles() const {
  std::vector<FileId> out;
  out.reserve(files_.size());
  for (const FileInfo& f : files_) out.push_back(f.id);
  return out;
}

}  // namespace hdtn::core
