// Keyword queries and metadata matching.
//
// A user searching for a file "inputs a query string and the file discovery
// process ... returns a sorted list of matched metadata ... in a
// preferential order" (paper Section III-B). A query matches a metadata
// record when every query keyword appears among the record's keywords (name,
// publisher, and description). Ranking is by popularity, the paper's proxy
// for "the right file" among similarly named ones.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/metadata.hpp"
#include "src/core/metadata_store.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// An outstanding user query in the simulation. `target` is the file the
/// user actually wants (ground truth used for delivery accounting); the
/// protocol only ever sees `text`.
struct Query {
  QueryId id;
  NodeId owner;
  std::string text;
  FileId target;
  SimTime issuedAt = 0;
  Duration ttl = 0;

  [[nodiscard]] SimTime expiresAt() const { return issuedAt + ttl; }
  [[nodiscard]] bool expired(SimTime now) const { return now >= expiresAt(); }
};

/// True when every keyword of `queryText` occurs in the metadata keywords.
/// Empty queries match nothing.
[[nodiscard]] bool queryMatches(const std::string& queryText,
                                const Metadata& md);

/// Same, over pre-tokenized query keywords (hot paths tokenize once).
[[nodiscard]] bool queryTokensMatch(const std::vector<std::string>& queryTokens,
                                    const Metadata& md);

/// Same again, with the tokens' keywordHash values precomputed by the caller
/// (parallel to `queryTokens`). When the record carries its keywordHashes
/// index the containment test is a u64 binary search per token, confirming
/// against the string keywords only on a hash hit; otherwise this behaves
/// exactly like queryTokensMatch.
[[nodiscard]] bool queryTokensMatchPrehashed(
    const std::vector<std::string>& queryTokens,
    const std::vector<std::uint64_t>& queryTokenHashes, const Metadata& md);

/// A match with its rank score.
struct RankedMatch {
  const Metadata* metadata = nullptr;
  double score = 0.0;
};

/// Filters `candidates` by queryMatches and sorts by (score desc, file id
/// asc). Score is the popularity plus a specificity bonus: records whose
/// keyword set is smaller (more precisely described by the query) score
/// slightly higher among equal popularity.
[[nodiscard]] std::vector<RankedMatch> rankMatches(
    const std::string& queryText,
    std::span<const Metadata* const> candidates);

/// Overload so call sites can pass a braced list of records.
[[nodiscard]] inline std::vector<RankedMatch> rankMatches(
    const std::string& queryText,
    std::initializer_list<const Metadata*> candidates) {
  return rankMatches(queryText,
                     std::span<const Metadata* const>(candidates.begin(),
                                                      candidates.size()));
}

/// Convenience: the best match in a store, or nullptr.
[[nodiscard]] const Metadata* bestMatch(const std::string& queryText,
                                        const MetadataStore& store);

}  // namespace hdtn::core
