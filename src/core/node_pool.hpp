// Contiguous pool of simulation nodes.
//
// The engine used to hold one heap allocation per node
// (vector<unique_ptr<Node>>); at city scale (10^5–10^6 nodes) that is a
// pointer chase per node visit and a malloc storm at setup. The pool stores
// nodes contiguously and keeps structure-of-arrays role views (per-role id
// lists, role bitmap) beside them so daily all-node scans touch one dense
// array instead of testing every node's options.
//
// Address stability: eviction hooks and verifiers capture raw Node*, so the
// pool reserves its full capacity in reset() and never reallocates. emplace()
// past the reserved capacity is a programming error (asserted).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/core/node.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

class NodePool {
 public:
  /// Drops all nodes and reserves storage for exactly `count` nodes.
  void reset(std::size_t count);

  /// Constructs the next node in place. Nodes must be emplaced in id order
  /// (id == size()): the engine indexes the pool by NodeId.
  Node& emplace(NodeId id, const NodeOptions& options);

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }

  [[nodiscard]] Node& operator[](NodeId id) {
    assert(id.value < nodes_.size());
    return nodes_[id.value];
  }
  [[nodiscard]] const Node& operator[](NodeId id) const {
    assert(id.value < nodes_.size());
    return nodes_[id.value];
  }

  [[nodiscard]] auto begin() { return nodes_.begin(); }
  [[nodiscard]] auto end() { return nodes_.end(); }
  [[nodiscard]] auto begin() const { return nodes_.begin(); }
  [[nodiscard]] auto end() const { return nodes_.end(); }

  // --- SoA role views -----------------------------------------------------
  // Ids ascending (emplace order). The daily hot scans — access-node sync
  // and forger injection — iterate these instead of the whole pool.

  [[nodiscard]] const std::vector<NodeId>& accessIds() const {
    return accessIds_;
  }
  [[nodiscard]] const std::vector<NodeId>& forgerIds() const {
    return forgerIds_;
  }
  [[nodiscard]] std::size_t freeRiderCount() const { return freeRiders_; }

  /// O(1) role test off the packed bitmap (no Node dereference).
  [[nodiscard]] bool isAccess(NodeId id) const {
    return roleBit(id, kAccessBit);
  }
  [[nodiscard]] bool isForger(NodeId id) const {
    return roleBit(id, kForgerBit);
  }

 private:
  static constexpr std::uint64_t kAccessBit = 0;
  static constexpr std::uint64_t kForgerBit = 1;

  [[nodiscard]] bool roleBit(NodeId id, std::uint64_t bit) const {
    const std::uint64_t pos = id.value * 2 + bit;
    if (pos / 64 >= roleBits_.size()) return false;
    return (roleBits_[pos / 64] >> (pos % 64)) & 1u;
  }
  void setRoleBit(NodeId id, std::uint64_t bit) {
    const std::uint64_t pos = id.value * 2 + bit;
    roleBits_[pos / 64] |= std::uint64_t{1} << (pos % 64);
  }

  std::vector<Node> nodes_;
  /// Two bits per node (access, forger), packed.
  std::vector<std::uint64_t> roleBits_;
  std::vector<NodeId> accessIds_;
  std::vector<NodeId> forgerIds_;
  std::size_t freeRiders_ = 0;
};

}  // namespace hdtn::core
