#include "src/core/metadata.hpp"

#include <algorithm>

#include "src/util/string_util.hpp"

namespace hdtn::core {

std::uint64_t keywordHash(std::string_view token) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void Metadata::rebuildKeywords() {
  keywords.clear();
  for (const std::string& source : {name, publisher, description}) {
    for (auto& token : keywordTokens(source)) {
      keywords.push_back(std::move(token));
    }
  }
  std::sort(keywords.begin(), keywords.end());
  keywords.erase(std::unique(keywords.begin(), keywords.end()),
                 keywords.end());
  keywordHashes.clear();
  keywordHashes.reserve(keywords.size());
  for (const std::string& kw : keywords) {
    keywordHashes.push_back(keywordHash(kw));
  }
  std::sort(keywordHashes.begin(), keywordHashes.end());
}

std::string Metadata::authPayload() const {
  // Field-separated canonical encoding; '\x1f' cannot occur in the text
  // fields we generate and keeps fields from running together.
  std::string payload;
  payload.reserve(name.size() + publisher.size() + uri.size() +
                  pieceChecksums.size() * 20 + 64);
  payload += name;
  payload += '\x1f';
  payload += publisher;
  payload += '\x1f';
  payload += uri;
  payload += '\x1f';
  payload += std::to_string(sizeBytes);
  payload += '\x1f';
  payload += std::to_string(pieceSizeBytes);
  for (const Sha1Digest& d : pieceChecksums) {
    payload.append(reinterpret_cast<const char*>(d.bytes.data()),
                   d.bytes.size());
  }
  return payload;
}

void PublisherRegistry::registerPublisher(const std::string& publisher,
                                          const std::string& secret) {
  secrets_[publisher] = secret;
}

void Metadata::saveState(Serializer& out) const {
  out.u32(file.value);
  out.str(name);
  out.str(publisher);
  out.str(description);
  out.str(uri);
  out.u64(sizeBytes);
  out.u32(pieceSizeBytes);
  out.u64(pieceChecksums.size());
  for (const Sha1Digest& digest : pieceChecksums) {
    out.raw(digest.bytes.data(), digest.bytes.size());
  }
  out.raw(authTag.bytes.data(), authTag.bytes.size());
  out.f64(popularity);
  out.i64(publishedAt);
  out.i64(ttl);
}

void Metadata::loadState(Deserializer& in) {
  file = FileId{in.u32()};
  name = in.str();
  publisher = in.str();
  description = in.str();
  uri = in.str();
  sizeBytes = in.u64();
  pieceSizeBytes = in.u32();
  pieceChecksums.resize(in.length(sizeof(Sha1Digest::bytes)));
  for (Sha1Digest& digest : pieceChecksums) {
    in.raw(digest.bytes.data(), digest.bytes.size());
  }
  in.raw(authTag.bytes.data(), authTag.bytes.size());
  popularity = in.f64();
  publishedAt = in.i64();
  ttl = in.i64();
  rebuildKeywords();
}

bool PublisherRegistry::knows(const std::string& publisher) const {
  return secrets_.contains(publisher);
}

std::optional<Sha1Digest> PublisherRegistry::sign(const Metadata& md) const {
  auto it = secrets_.find(md.publisher);
  if (it == secrets_.end()) return std::nullopt;
  Sha1 hasher;
  hasher.update(it->second);
  hasher.update(md.authPayload());
  return hasher.finish();
}

bool PublisherRegistry::verify(const Metadata& md) const {
  const auto expected = sign(md);
  return expected.has_value() && *expected == md.authTag;
}

}  // namespace hdtn::core
