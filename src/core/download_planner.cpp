#include "src/core/download_planner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_map>

#include "src/obs/events.hpp"
#include "src/util/random.hpp"

namespace hdtn::core {
namespace {

struct PieceKey {
  FileId file;
  std::uint32_t piece = 0;
  friend auto operator<=>(const PieceKey&, const PieceKey&) = default;
};

struct Candidate {
  PieceKey key;
  Popularity popularity = 0.0;
  std::vector<NodeId> holders;
  std::vector<NodeId> lackers;
  std::vector<NodeId> requesters;
};

std::vector<Candidate> collectCandidates(std::span<const DownloadPeer> peers,
                                         const PopularityFn& popularityOf) {
  // Union of every piece held by a contributing member.
  std::map<PieceKey, Candidate> byKey;
  for (const DownloadPeer& peer : peers) {
    if (peer.pieces == nullptr || !peer.contributes) continue;
    for (FileId file : peer.pieces->files()) {
      const std::uint32_t count = peer.pieces->pieceCount(file);
      for (std::uint32_t p = 0; p < count; ++p) {
        if (!peer.pieces->hasPiece(file, p)) continue;
        auto& cand = byKey[PieceKey{file, p}];
        cand.key = PieceKey{file, p};
        cand.holders.push_back(peer.id);
      }
    }
  }
  std::vector<Candidate> out;
  out.reserve(byKey.size());
  for (auto& [key, cand] : byKey) {
    cand.popularity = popularityOf(key.file);
    for (const DownloadPeer& peer : peers) {
      if (peer.pieces != nullptr &&
          peer.pieces->hasPiece(key.file, key.piece)) {
        continue;
      }
      cand.lackers.push_back(peer.id);
      const bool wants = std::find(peer.wanted.begin(), peer.wanted.end(),
                                   key.file) != peer.wanted.end();
      if (wants) cand.requesters.push_back(peer.id);
    }
    if (cand.lackers.empty()) continue;
    out.push_back(std::move(cand));
  }
  return out;
}

void emitPlanned(obs::EngineObserver* observer, SimTime now,
                 std::size_t planned, int budget) {
  if (observer == nullptr) return;
  obs::SimEvent event;
  event.type = obs::SimEventType::kDownloadPlanned;
  event.time = now;
  event.extra = static_cast<std::uint32_t>(planned);
  event.value = static_cast<double>(budget);
  observer->onEvent(event);
}

/// Publishes selected candidates as a broadcast plan. The requester arena
/// is filled completely before any span is cut, so nothing dangles.
DownloadPlan publishBroadcasts(
    std::span<const std::pair<NodeId, const Candidate*>> selected) {
  DownloadPlan plan;
  std::size_t total = 0;
  for (const auto& [sender, cand] : selected) {
    total += cand->requesters.size();
  }
  plan.requesterPool.reserve(total);
  plan.broadcasts.reserve(selected.size());
  for (const auto& [sender, cand] : selected) {
    plan.requesterPool.insert(plan.requesterPool.end(),
                              cand->requesters.begin(),
                              cand->requesters.end());
  }
  std::size_t offset = 0;
  for (const auto& [sender, cand] : selected) {
    PieceBroadcast b;
    b.sender = sender;
    b.file = cand->key.file;
    b.piece = cand->key.piece;
    b.requesters = std::span<const NodeId>(plan.requesterPool)
                       .subspan(offset, cand->requesters.size());
    b.phase = cand->requesters.empty() ? 2 : 1;
    plan.broadcasts.push_back(b);
    offset += cand->requesters.size();
  }
  return plan;
}

/// Cooperative coordinator scheduling (paper V-A); with the request phase
/// disabled this is the popularity-only ablation.
class CooperativePlanner final : public DownloadPlanner {
 public:
  explicit CooperativePlanner(bool useRequestPhase)
      : useRequestPhase_(useRequestPhase) {}

  DownloadPlan plan(const DownloadRequest& request) const override {
    if (request.budgetPieces <= 0 || request.peers.size() < 2) return {};
    std::vector<Candidate> candidates =
        collectCandidates(request.peers, *request.popularityOf);
    const bool useRequestPhase = useRequestPhase_;
    const PushOrder pushOrder = request.pushOrder;
    std::sort(candidates.begin(), candidates.end(),
              [useRequestPhase, pushOrder](const Candidate& a,
                                           const Candidate& b) {
                if (useRequestPhase &&
                    a.requesters.size() != b.requesters.size()) {
                  return a.requesters.size() > b.requesters.size();
                }
                if (pushOrder == PushOrder::kRarestFirst &&
                    a.holders.size() != b.holders.size()) {
                  return a.holders.size() < b.holders.size();
                }
                if (a.popularity != b.popularity) {
                  return a.popularity > b.popularity;
                }
                return a.key < b.key;  // pieces of a file flow in index order
              });
    std::vector<std::pair<NodeId, const Candidate*>> selected;
    for (const Candidate& cand : candidates) {
      if (static_cast<int>(selected.size()) >= request.budgetPieces) break;
      selected.emplace_back(
          *std::min_element(cand.holders.begin(), cand.holders.end()),
          &cand);
    }
    DownloadPlan plan = publishBroadcasts(selected);
    emitPlanned(request.observer, request.now, plan.broadcasts.size(),
                request.budgetPieces);
    return plan;
  }

 private:
  bool useRequestPhase_;
};

/// Tit-for-tat turn scheduling (paper V-B).
class TitForTatPlanner final : public DownloadPlanner {
 public:
  DownloadPlan plan(const DownloadRequest& request) const override {
    if (request.budgetPieces <= 0 || request.peers.size() < 2) return {};
    const std::vector<Candidate> candidates =
        collectCandidates(request.peers, *request.popularityOf);
    std::unordered_map<NodeId, const DownloadPeer*> peerById;
    std::vector<NodeId> contributorIds;
    for (const DownloadPeer& peer : request.peers) {
      peerById[peer.id] = &peer;
      if (peer.contributes) contributorIds.push_back(peer.id);
    }
    if (contributorIds.empty()) {
      DownloadPlan plan;
      emitPlanned(request.observer, request.now, 0, request.budgetPieces);
      return plan;
    }
    const std::vector<NodeId> order(
        cyclicOrder(std::span<const NodeId>(contributorIds)));

    std::vector<std::pair<NodeId, const Candidate*>> selected;
    std::set<PieceKey> sent;
    std::size_t turn = 0;
    int idleTurns = 0;
    while (static_cast<int>(selected.size()) < request.budgetPieces &&
           idleTurns < static_cast<int>(order.size())) {
      const NodeId sender = order[turn % order.size()];
      ++turn;
      const DownloadPeer& senderPeer = *peerById.at(sender);
      const Candidate* best = nullptr;
      double bestWeight = -1.0;
      for (const Candidate& cand : candidates) {
        if (sent.contains(cand.key)) continue;
        if (std::find(cand.holders.begin(), cand.holders.end(), sender) ==
            cand.holders.end()) {
          continue;
        }
        double weight = cand.popularity;
        for (NodeId requester : cand.requesters) {
          weight += 1.0;  // a request always outranks a pure push
          weight += senderPeer.credits != nullptr
                        ? senderPeer.credits->credit(requester)
                        : 0.0;
        }
        if (best == nullptr || weight > bestWeight ||
            (weight == bestWeight && cand.key < best->key)) {
          best = &cand;
          bestWeight = weight;
        }
      }
      if (best == nullptr) {
        ++idleTurns;
        continue;
      }
      idleTurns = 0;
      sent.insert(best->key);
      selected.emplace_back(sender, best);
    }
    DownloadPlan plan = publishBroadcasts(selected);
    emitPlanned(request.observer, request.now, plan.broadcasts.size(),
                request.budgetPieces);
    return plan;
  }
};

/// Disjoint-pair unicast baseline.
class PairwisePlanner final : public DownloadPlanner {
 public:
  DownloadPlan plan(const DownloadRequest& request) const override {
    DownloadPlan plan;
    if (request.budgetPieces <= 0 || request.peers.size() < 2) return plan;
    const PopularityFn& popularityOf = *request.popularityOf;

    // Greedy matching by ascending id; a leftover odd member idles (it has
    // no link — the inefficiency the paper's broadcast scheme removes).
    std::vector<const DownloadPeer*> sorted;
    for (const DownloadPeer& peer : request.peers) sorted.push_back(&peer);
    std::sort(sorted.begin(), sorted.end(),
              [](const DownloadPeer* a, const DownloadPeer* b) {
                return a->id < b->id;
              });

    for (std::size_t i = 0; i + 1 < sorted.size(); i += 2) {
      const DownloadPeer& a = *sorted[i];
      const DownloadPeer& b = *sorted[i + 1];
      struct Option {
        PieceTransfer transfer;
        Popularity popularity = 0.0;
      };
      std::vector<Option> options;
      auto addOptions = [&](const DownloadPeer& from,
                            const DownloadPeer& to) {
        if (!from.contributes || from.pieces == nullptr) return;
        for (FileId file : from.pieces->files()) {
          const std::uint32_t count = from.pieces->pieceCount(file);
          for (std::uint32_t p = 0; p < count; ++p) {
            if (!from.pieces->hasPiece(file, p)) continue;
            if (to.pieces != nullptr && to.pieces->hasPiece(file, p)) {
              continue;
            }
            Option opt;
            opt.transfer.sender = from.id;
            opt.transfer.receiver = to.id;
            opt.transfer.file = file;
            opt.transfer.piece = p;
            opt.transfer.requested =
                std::find(to.wanted.begin(), to.wanted.end(), file) !=
                to.wanted.end();
            opt.popularity = popularityOf(file);
            options.push_back(std::move(opt));
          }
        }
      };
      addOptions(a, b);
      addOptions(b, a);
      std::sort(options.begin(), options.end(),
                [](const Option& x, const Option& y) {
                  if (x.transfer.requested != y.transfer.requested) {
                    return x.transfer.requested > y.transfer.requested;
                  }
                  if (x.popularity != y.popularity) {
                    return x.popularity > y.popularity;
                  }
                  if (x.transfer.file != y.transfer.file) {
                    return x.transfer.file < y.transfer.file;
                  }
                  if (x.transfer.piece != y.transfer.piece) {
                    return x.transfer.piece < y.transfer.piece;
                  }
                  return x.transfer.sender < y.transfer.sender;
                });
      // The pairwise link carries one piece per slot in either direction.
      const int take = std::min<int>(request.budgetPieces,
                                     static_cast<int>(options.size()));
      for (int k = 0; k < take; ++k) {
        plan.transfers.push_back(
            options[static_cast<std::size_t>(k)].transfer);
      }
    }
    emitPlanned(request.observer, request.now, plan.transfers.size(),
                request.budgetPieces);
    return plan;
  }
};

/// RLNC generation broadcasts (docs/CODING.md): instead of naming pieces,
/// grant each incomplete file a run of coded frames sized to the worst
/// receiver's piece deficit plus redundancy. Coefficient seeds are drawn by
/// the engine at transmission time. A receiver's decoder rank can only
/// exceed its held-piece count, so sizing frames off the stores never
/// undershoots — surplus frames cost redundancy, which is the mode's whole
/// trade.
class CodedPlanner final : public DownloadPlanner {
 public:
  DownloadPlan plan(const DownloadRequest& request) const override {
    if (request.budgetPieces <= 0 || request.peers.size() < 2) return {};

    struct FileCand {
      FileId file;
      Popularity popularity = 0.0;
      std::uint32_t generationSize = 0;
      std::uint32_t maxDeficit = 0;
      NodeId sender;
      std::uint32_t senderHeld = 0;
      bool hasSender = false;
      std::vector<NodeId> requesters;
    };
    std::map<FileId, FileCand> byFile;
    for (const DownloadPeer& peer : request.peers) {
      if (peer.pieces == nullptr) continue;
      for (FileId file : peer.pieces->files()) {
        const std::uint32_t k = peer.pieces->pieceCount(file);
        if (k == 0) continue;
        auto& cand = byFile[file];
        cand.file = file;
        cand.generationSize = std::max(cand.generationSize, k);
      }
    }
    for (auto& [file, cand] : byFile) {
      cand.popularity = (*request.popularityOf)(file);
      const std::uint32_t k = cand.generationSize;
      for (const DownloadPeer& peer : request.peers) {
        const std::uint32_t held =
            peer.pieces != nullptr ? peer.pieces->piecesHeld(file) : 0;
        // Sender: the contributing member holding the most pieces (ties go
        // to the lowest id, the coordinator convention). Partial holders
        // recode from the subspace they have.
        if (peer.contributes && peer.pieces != nullptr && held > 0 &&
            (!cand.hasSender || held > cand.senderHeld)) {
          cand.sender = peer.id;
          cand.senderHeld = held;
          cand.hasSender = true;
        }
        if (held >= k) continue;  // complete receivers need nothing
        cand.maxDeficit = std::max(cand.maxDeficit, k - held);
        const bool wants = std::find(peer.wanted.begin(), peer.wanted.end(),
                                     file) != peer.wanted.end();
        if (wants) cand.requesters.push_back(peer.id);
      }
    }
    std::vector<const FileCand*> order;
    for (const auto& [file, cand] : byFile) {
      if (!cand.hasSender || cand.maxDeficit == 0) continue;
      order.push_back(&cand);
    }
    // Requested generations first (more requesters first), then the
    // popularity push — the coded analogue of the cooperative phases.
    std::sort(order.begin(), order.end(),
              [](const FileCand* a, const FileCand* b) {
                if (a->requesters.size() != b->requesters.size()) {
                  return a->requesters.size() > b->requesters.size();
                }
                if (a->popularity != b->popularity) {
                  return a->popularity > b->popularity;
                }
                return a->file < b->file;
              });

    DownloadPlan plan;
    std::size_t totalRequesters = 0;
    for (const FileCand* cand : order) {
      totalRequesters += cand->requesters.size();
    }
    plan.requesterPool.reserve(totalRequesters);
    int budget = request.budgetPieces;
    std::size_t planned = 0;
    std::size_t offset = 0;
    for (const FileCand* cand : order) {
      if (budget <= 0) break;
      plan.requesterPool.insert(plan.requesterPool.end(),
                                cand->requesters.begin(),
                                cand->requesters.end());
    }
    // Two-pass budget split: coverage first (each planned generation gets
    // its worst deficit in frames, matching the selective modes' spend for
    // the same file), then redundancy only from whatever budget is left —
    // so extra frames never starve a later file out of the plan entirely.
    budget = request.budgetPieces;
    for (const FileCand* cand : order) {
      if (budget <= 0) break;
      const int frames =
          std::min(budget, static_cast<int>(cand->maxDeficit));
      budget -= frames;
      CodedBroadcast cb;
      cb.sender = cand->sender;
      cb.file = cand->file;
      cb.generationSize = cand->generationSize;
      cb.frames = static_cast<std::uint32_t>(frames);
      cb.popularity = cand->popularity;
      cb.requesters = std::span<const NodeId>(plan.requesterPool)
                          .subspan(offset, cand->requesters.size());
      offset += cand->requesters.size();
      plan.coded.push_back(cb);
      planned += static_cast<std::size_t>(frames);
    }
    for (std::size_t i = 0; i < plan.coded.size(); ++i) {
      if (budget <= 0) break;
      const double deficit = order[i]->maxDeficit;
      const int extra = std::min(
          budget,
          static_cast<int>(std::ceil(deficit * request.coded.redundancy)));
      plan.coded[i].frames += static_cast<std::uint32_t>(extra);
      budget -= extra;
      planned += static_cast<std::size_t>(extra);
    }
    emitPlanned(request.observer, request.now, planned,
                request.budgetPieces);
    return plan;
  }
};

}  // namespace

std::span<const DownloadModeInfo> downloadModeRegistry() {
  static const CooperativePlanner coop{/*useRequestPhase=*/true};
  static const CooperativePlanner popularity{/*useRequestPhase=*/false};
  static const TitForTatPlanner tft;
  static const PairwisePlanner pairwise;
  static const CodedPlanner coded;
  static const DownloadModeInfo entries[] = {
      {"coop", DownloadMode::kBroadcast, Scheduling::kCooperative, &coop},
      {"tft", DownloadMode::kBroadcast, Scheduling::kTitForTat, &tft},
      {"popularity", DownloadMode::kBroadcast, Scheduling::kPopularityOnly,
       &popularity},
      {"pairwise", DownloadMode::kPairwise, Scheduling::kCooperative,
       &pairwise},
      {"coded", DownloadMode::kCoded, Scheduling::kCooperative, &coded},
  };
  return entries;
}

const DownloadModeInfo* findDownloadMode(std::string_view name) {
  for (const DownloadModeInfo& info : downloadModeRegistry()) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

const DownloadModeInfo& downloadModeInfo(DownloadMode mode,
                                         Scheduling scheduling) {
  const DownloadModeInfo* fallback = nullptr;
  for (const DownloadModeInfo& info : downloadModeRegistry()) {
    if (info.mode != mode) continue;
    if (info.scheduling == scheduling) return info;
    if (fallback == nullptr) fallback = &info;
  }
  // Pairwise/coded have one row each; any scheduling maps onto it.
  return *fallback;
}

}  // namespace hdtn::core
