#include "src/core/internet.hpp"

#include <algorithm>
#include <set>

#include "src/obs/events.hpp"
#include "src/util/string_util.hpp"

namespace hdtn::core {
namespace {

constexpr const char* kPublishers[] = {"fox", "abc",  "nbc",
                                       "cnn", "espn", "bbc"};
constexpr const char* kTopics[] = {"news",  "drama",  "comedy", "sports",
                                   "music", "travel", "tech",   "science"};
constexpr const char* kStyles[] = {"daily", "weekly", "special",  "live",
                                   "prime", "late",   "breaking", "classic"};

}  // namespace

void PopularityTable::recordRequest(FileId file, NodeId requester,
                                    SimTime now) {
  events_[file].push_back(Event{now, requester});
}

double PopularityTable::observed(FileId file, SimTime now,
                                 std::size_t population) const {
  if (population == 0) return 0.0;
  auto it = events_.find(file);
  if (it == events_.end()) return 0.0;
  std::set<NodeId> distinct;
  for (const Event& e : it->second) {
    if (e.when > now - window_ && e.when <= now) distinct.insert(e.who);
  }
  return static_cast<double>(distinct.size()) /
         static_cast<double>(population);
}

std::size_t PopularityTable::totalRequests(FileId file) const {
  auto it = events_.find(file);
  return it == events_.end() ? 0 : it->second.size();
}

void PopularityTable::saveState(Serializer& out) const {
  std::vector<FileId> sorted;
  sorted.reserve(events_.size());
  for (const auto& [file, _] : events_) sorted.push_back(file);
  std::sort(sorted.begin(), sorted.end());
  out.u64(sorted.size());
  for (const FileId file : sorted) {
    const auto& events = events_.at(file);
    out.u32(file.value);
    out.u64(events.size());
    for (const Event& e : events) {
      out.i64(e.when);
      out.u32(e.who.value);
    }
  }
}

void PopularityTable::loadState(Deserializer& in) {
  events_.clear();
  const std::size_t fileCount = in.length();
  for (std::size_t i = 0; i < fileCount; ++i) {
    const FileId file{in.u32()};
    auto& events = events_[file];
    const std::size_t eventCount = in.length();
    for (std::size_t j = 0; j < eventCount; ++j) {
      const SimTime when = in.i64();
      events.push_back(Event{when, NodeId{in.u32()}});
    }
  }
}

InternetServices::InternetServices() : catalog_(&registry_) {}

void InternetServices::saveState(Serializer& out) const {
  const std::vector<FileId> files = catalog_.allFiles();
  out.u64(files.size());
  for (const FileId id : files) {
    const FileInfo* info = catalog_.find(id);
    out.str(info->name);
    out.str(info->publisher);
    out.str(info->description);
    out.u64(info->sizeBytes);
    out.u32(info->pieceSizeBytes);
    out.f64(info->popularity);
    out.i64(info->publishedAt);
    out.i64(info->ttl);
  }
  popularity_.saveState(out);
}

void InternetServices::loadState(Deserializer& in) {
  if (catalog_.size() != 0) {
    throw SerializeError("InternetServices::loadState needs an empty catalog");
  }
  const std::size_t fileCount = in.length();
  for (std::size_t i = 0; i < fileCount; ++i) {
    FileCatalog::PublishRequest req;
    req.name = in.str();
    req.publisher = in.str();
    req.description = in.str();
    req.sizeBytes = in.u64();
    req.pieceSizeBytes = in.u32();
    req.popularity = in.f64();
    req.publishedAt = in.i64();
    req.ttl = in.i64();
    publish(req);
  }
  popularity_.loadState(in);
}

FileId InternetServices::publish(const FileCatalog::PublishRequest& request) {
  if (!registry_.knows(request.publisher)) {
    // Well-known organizations register once; the derived secret stands in
    // for their signing key.
    registry_.registerPublisher(request.publisher,
                                "secret::" + request.publisher);
  }
  const FileId id = catalog_.publish(request);
  if (observer_ != nullptr) {
    obs::SimEvent event;
    event.type = obs::SimEventType::kFilePublished;
    event.time = request.publishedAt;
    event.file = id;
    event.value = request.popularity;
    observer_->onEvent(event);
  }
  return id;
}

std::vector<RankedMatch> InternetServices::search(
    const std::string& queryText, SimTime now) const {
  std::vector<const Metadata*> candidates;
  for (FileId id : catalog_.aliveFiles(now)) {
    candidates.push_back(&catalog_.metadataFor(id));
  }
  return rankMatches(queryText, candidates);
}

std::vector<const Metadata*> InternetServices::topPopular(
    SimTime now, std::size_t limit) const {
  std::vector<const Metadata*> out;
  for (FileId id : catalog_.aliveFiles(now)) {
    out.push_back(&catalog_.metadataFor(id));
  }
  std::sort(out.begin(), out.end(), [](const Metadata* a, const Metadata* b) {
    if (a->popularity != b->popularity) return a->popularity > b->popularity;
    return a->file < b->file;
  });
  if (out.size() > limit) out.resize(limit);
  return out;
}

const Metadata* InternetServices::metadataForUri(const Uri& uri) const {
  const FileInfo* info = catalog_.findByUri(uri);
  return info == nullptr ? nullptr : &catalog_.metadataFor(info->id);
}

std::vector<FileId> publishSyntheticBatch(InternetServices& internet,
                                          const SyntheticBatchParams& params,
                                          Rng& rng) {
  std::vector<FileId> out;
  out.reserve(static_cast<std::size_t>(params.count));
  for (int i = 0; i < params.count; ++i) {
    FileCatalog::PublishRequest req;
    const char* publisher =
        kPublishers[rng.pickIndex(std::size(kPublishers))];
    const char* topic = kTopics[rng.pickIndex(std::size(kTopics))];
    const char* style = kStyles[rng.pickIndex(std::size(kStyles))];
    // The unique episode token makes the canonical query unambiguous; the
    // shared topic/style vocabulary makes partial queries ambiguous, as in
    // real keyword search.
    const std::string episode =
        "ep" + std::to_string(internet.catalog().size());
    req.name = std::string(publisher) + " " + topic + " " + style + " " +
               episode;
    req.publisher = publisher;
    req.description = std::string("poster advertisement for the ") + style +
                      " " + topic + " show " + episode + " by " + publisher;
    req.sizeBytes = static_cast<std::uint64_t>(params.piecesPerFile) *
                    params.pieceSizeBytes;
    req.pieceSizeBytes = params.pieceSizeBytes;
    req.popularity = samplePopularity(rng, params.lambda);
    req.publishedAt = params.publishedAt;
    req.ttl = params.ttl;
    out.push_back(internet.publish(req));
  }
  return out;
}

std::string canonicalQueryText(const FileInfo& info) {
  // "<topic> ep<k>": the topic narrows the category, the episode token
  // pins the exact file.
  const auto tokens = keywordTokens(info.name);
  // name = "<publisher> <topic> <style> <episode>"
  if (tokens.size() >= 4) return tokens[1] + " " + tokens[3];
  return info.name;
}

}  // namespace hdtn::core
