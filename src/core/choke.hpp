// Encryption-based choking (the paper's stated future work, Section IV
// footnote: "Peers can still be choked if encryption is used").
//
// Broadcast transmission means free-riders always *hear* pieces; what a
// sender can withhold is the ability to decrypt them. Each (file, piece,
// sender) gets a stream-cipher keystream derived from the sender's secret;
// the encrypted payload is broadcast to everyone, and the 20-byte piece key
// is released individually — only to peers whose credit clears the
// sender's threshold. A free-rider accumulates ciphertext it cannot read
// until it starts contributing.
//
// The keystream is SHA-1-keyed xoshiro output. That is not a vetted AEAD —
// like the rest of this library it is a faithful protocol-level model, not
// a production cipher.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/credit.hpp"
#include "src/util/sha1.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// Key of one encrypted piece.
struct PieceKey {
  Sha1Digest digest{};
  friend bool operator==(const PieceKey&, const PieceKey&) = default;
};

/// Derives the piece key from a sender secret and the piece identity.
[[nodiscard]] PieceKey derivePieceKey(const std::string& senderSecret,
                                      const Uri& fileUri,
                                      std::uint32_t pieceIndex);

/// XOR stream cipher keyed by a PieceKey; involution, so the same call
/// encrypts and decrypts.
[[nodiscard]] std::vector<std::uint8_t> cryptPiece(
    const PieceKey& key, std::span<const std::uint8_t> data);

/// A sender-side escrow: broadcasts ciphertext freely, releases keys only
/// to sufficiently credited peers.
class KeyEscrow {
 public:
  /// `secret` is this node's key-derivation secret; `minimumCredit` is the
  /// credit a peer needs before keys are released to it.
  KeyEscrow(std::string secret, double minimumCredit)
      : secret_(std::move(secret)), minimumCredit_(minimumCredit) {}

  [[nodiscard]] double minimumCredit() const { return minimumCredit_; }

  /// Encrypts a piece for broadcast.
  [[nodiscard]] std::vector<std::uint8_t> encrypt(
      const Uri& fileUri, std::uint32_t pieceIndex,
      std::span<const std::uint8_t> plaintext) const;

  /// Releases the key for one piece to `peer` iff `ledger` (the sender's
  /// view of its peers) credits the peer with at least minimumCredit.
  [[nodiscard]] std::optional<PieceKey> requestKey(
      NodeId peer, const CreditLedger& ledger, const Uri& fileUri,
      std::uint32_t pieceIndex) const;

 private:
  std::string secret_;
  double minimumCredit_;
};

/// Receiver-side vault: stores ciphertext until the matching key arrives.
class CipherVault {
 public:
  /// Stores an overheard encrypted piece.
  void storeCiphertext(const Uri& fileUri, std::uint32_t pieceIndex,
                       std::vector<std::uint8_t> ciphertext);

  /// Stores a released key.
  void storeKey(const Uri& fileUri, std::uint32_t pieceIndex,
                const PieceKey& key);

  /// Decrypts and removes a piece when both ciphertext and key are present.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> tryDecrypt(
      const Uri& fileUri, std::uint32_t pieceIndex);

  [[nodiscard]] std::size_t pendingCiphertexts() const {
    return ciphertexts_.size();
  }
  [[nodiscard]] std::size_t heldKeys() const { return keys_.size(); }

 private:
  static std::string slot(const Uri& fileUri, std::uint32_t pieceIndex);

  std::unordered_map<std::string, std::vector<std::uint8_t>> ciphertexts_;
  std::unordered_map<std::string, PieceKey> keys_;
};

}  // namespace hdtn::core
