#include "src/core/coding.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hdtn::core::coding {

namespace {

constexpr std::uint32_t kPoly = 0x11d;  // x^8 + x^4 + x^3 + x^2 + 1

struct GfTables {
  // exp is doubled so gfMul can add logs without a mod-255 reduction.
  std::uint8_t exp[510];
  std::uint8_t log[256];
};

GfTables buildTables() {
  GfTables t{};
  std::uint32_t v = 1;
  for (int i = 0; i < 255; ++i) {
    t.exp[i] = static_cast<std::uint8_t>(v);
    t.exp[i + 255] = static_cast<std::uint8_t>(v);
    t.log[v] = static_cast<std::uint8_t>(i);
    v <<= 1;  // multiply by the generator alpha = 2
    if (v & 0x100) v ^= kPoly;
  }
  t.log[0] = 0;  // unused; gfMul never looks up log[0]
  return t;
}

const GfTables& tables() {
  static const GfTables t = buildTables();
  return t;
}

/// SplitMix64 — self-contained so coefficient expansion does not depend on
/// the engine's Rng and can be reproduced from a wire-carried seed alone.
std::uint64_t splitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint8_t gfMul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const GfTables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t gfMulSlow(std::uint8_t a, std::uint8_t b) {
  std::uint32_t acc = 0;
  std::uint32_t aa = a;
  std::uint32_t bb = b;
  while (bb != 0) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= kPoly;
    bb >>= 1;
  }
  return static_cast<std::uint8_t>(acc);
}

std::uint8_t gfInv(std::uint8_t a) {
  assert(a != 0 && "gfInv(0) is undefined");
  const GfTables& t = tables();
  return t.exp[255 - t.log[a]];
}

std::uint8_t gfDiv(std::uint8_t a, std::uint8_t b) {
  if (a == 0) return 0;
  return gfMul(a, gfInv(b));
}

std::vector<std::uint8_t> sparseCoefficients(std::uint32_t k,
                                             std::uint64_t seed,
                                             double sparsity) {
  if (sparsity <= 0.0 || sparsity > 1.0) sparsity = 1.0;
  std::vector<std::uint8_t> coeffs(k, 0);
  if (k == 0) return coeffs;
  std::uint64_t state = seed;
  bool anyNonZero = false;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint64_t draw = splitMix64(state);
    // Top 53 bits -> uniform double in [0, 1); low bits pick the value.
    const double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
    if (u < sparsity) {
      coeffs[i] = static_cast<std::uint8_t>(1 + (draw & 0xff) % 255);
      anyNonZero = true;
    }
  }
  if (!anyNonZero) {
    // A zero vector carries no information; force one deterministic entry.
    coeffs[seed % k] = static_cast<std::uint8_t>(1 + (seed >> 8) % 255);
  }
  return coeffs;
}

GenerationDecoder::GenerationDecoder(std::uint32_t generationSize,
                                     std::uint32_t payloadBytes)
    : k_(generationSize),
      payloadBytes_(payloadBytes),
      pivot_(generationSize, kNoPivot) {
  if (generationSize == 0) {
    throw std::invalid_argument("GenerationDecoder: empty generation");
  }
}

bool GenerationDecoder::addFrame(std::span<const std::uint8_t> coefficients,
                                 std::span<const std::uint8_t> payload,
                                 bool polluted, std::uint32_t origin) {
  // Over-length rows are degenerate input (a malformed or hostile encoder),
  // not a caller bug: reject and count before any row operation.
  if (coefficients.size() > k_) {
    ++degenerateFrames_;
    return false;
  }
  if (coefficients.size() != k_ || payload.size() != payloadBytes_) {
    throw std::invalid_argument("GenerationDecoder: frame shape mismatch");
  }
  bool anyNonZero = false;
  for (std::uint8_t c : coefficients) {
    if (c != 0) {
      anyNonZero = true;
      break;
    }
  }
  if (!anyNonZero) {
    // A zero vector can never raise the rank; folding it would only burn
    // rowOps on forward elimination of nothing.
    ++degenerateFrames_;
    return false;
  }
  return fold({coefficients.begin(), coefficients.end()},
              {payload.begin(), payload.end()}, polluted, origin);
}

bool GenerationDecoder::addSourcePiece(std::uint32_t piece,
                                       std::span<const std::uint8_t> payload) {
  if (piece >= k_ || payload.size() != payloadBytes_) {
    throw std::invalid_argument("GenerationDecoder: bad source piece");
  }
  std::vector<std::uint8_t> unit(k_, 0);
  unit[piece] = 1;
  return fold(std::move(unit), {payload.begin(), payload.end()}, false,
              kNoOrigin);
}

bool GenerationDecoder::fold(std::vector<std::uint8_t> coeffs,
                             std::vector<std::uint8_t> data, bool polluted,
                             std::uint32_t origin) {
  // A frame is tainted when it arrived polluted or when elimination mixes
  // in a tainted stored row — pollution spreads exactly like information.
  bool tainted = polluted;
  // Forward-eliminate against every existing pivot.
  for (std::uint32_t col = 0; col < k_; ++col) {
    const std::uint8_t factor = coeffs[col];
    if (factor == 0 || pivot_[col] == kNoPivot) continue;
    const Row& prow = rows_[pivot_[col]];
    if (prow.tainted) tainted = true;
    for (std::uint32_t j = 0; j < k_; ++j) {
      coeffs[j] = gfAdd(coeffs[j], gfMul(factor, prow.coeffs[j]));
    }
    for (std::size_t j = 0; j < data.size(); ++j) {
      data[j] = gfAdd(data[j], gfMul(factor, prow.payload[j]));
    }
    ++rowOps_;
  }
  // First surviving nonzero column becomes the pivot.
  std::uint32_t pivotCol = kNoPivot;
  for (std::uint32_t col = 0; col < k_; ++col) {
    if (coeffs[col] != 0) {
      pivotCol = col;
      break;
    }
  }
  if (pivotCol == kNoPivot) return false;  // redundant frame

  // Normalize the leading coefficient to 1.
  const std::uint8_t inv = gfInv(coeffs[pivotCol]);
  if (inv != 1) {
    for (std::uint32_t j = 0; j < k_; ++j) coeffs[j] = gfMul(coeffs[j], inv);
    for (std::size_t j = 0; j < data.size(); ++j) {
      data[j] = gfMul(data[j], inv);
    }
    ++rowOps_;
  }
  // Back-substitute: clear this column from every stored row so the matrix
  // stays fully reduced (identity at full rank).
  const std::uint32_t newIndex = static_cast<std::uint32_t>(rows_.size());
  for (Row& row : rows_) {
    const std::uint8_t factor = row.coeffs[pivotCol];
    if (factor == 0) continue;
    if (tainted) row.tainted = true;
    for (std::uint32_t j = 0; j < k_; ++j) {
      row.coeffs[j] = gfAdd(row.coeffs[j], gfMul(factor, coeffs[j]));
    }
    for (std::size_t j = 0; j < data.size(); ++j) {
      row.payload[j] = gfAdd(row.payload[j], gfMul(factor, data[j]));
    }
    ++rowOps_;
  }
  rows_.push_back({std::move(coeffs), std::move(data), tainted, polluted,
                   polluted ? origin : kNoOrigin});
  pivot_[pivotCol] = newIndex;
  ++rank_;
  return true;
}

bool GenerationDecoder::tainted() const {
  for (const Row& row : rows_) {
    if (row.tainted) return true;
  }
  return false;
}

std::uint32_t GenerationDecoder::pollutedRows() const {
  std::uint32_t count = 0;
  for (const Row& row : rows_) {
    if (row.polluted) ++count;
  }
  return count;
}

std::vector<std::uint32_t> GenerationDecoder::pollutedOrigins() const {
  std::vector<std::uint32_t> origins;
  for (const Row& row : rows_) {
    if (row.polluted && row.origin != kNoOrigin) {
      origins.push_back(row.origin);
    }
  }
  std::sort(origins.begin(), origins.end());
  origins.erase(std::unique(origins.begin(), origins.end()), origins.end());
  return origins;
}

std::vector<std::uint8_t> GenerationDecoder::recodeCoefficients(
    std::uint64_t seed, double sparsity,
    std::vector<std::uint8_t>* payloadOut, bool* taintedOut) const {
  std::vector<std::uint8_t> out(k_, 0);
  if (payloadOut != nullptr) payloadOut->assign(payloadBytes_, 0);
  if (taintedOut != nullptr) *taintedOut = false;
  if (rank_ == 0) return out;
  // Mix over the stored (independent) rows: any nonzero mix of independent
  // rows is itself nonzero, so the recoded frame always carries information
  // from this node's subspace.
  const std::vector<std::uint8_t> mix =
      sparseCoefficients(rank_, seed, sparsity);
  for (std::uint32_t i = 0; i < rank_; ++i) {
    const std::uint8_t factor = mix[i];
    if (factor == 0) continue;
    const Row& row = rows_[i];
    if (taintedOut != nullptr && row.tainted) *taintedOut = true;
    for (std::uint32_t j = 0; j < k_; ++j) {
      out[j] = gfAdd(out[j], gfMul(factor, row.coeffs[j]));
    }
    if (payloadOut != nullptr) {
      for (std::uint32_t j = 0; j < payloadBytes_; ++j) {
        (*payloadOut)[j] = gfAdd((*payloadOut)[j],
                                 gfMul(factor, row.payload[j]));
      }
    }
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> GenerationDecoder::decode() const {
  if (!complete()) {
    throw std::logic_error("GenerationDecoder::decode before full rank");
  }
  std::vector<std::vector<std::uint8_t>> pieces(k_);
  // Fully reduced at full rank: the row owning pivot column p is the unit
  // vector e_p, so its payload is piece p verbatim.
  for (std::uint32_t col = 0; col < k_; ++col) {
    pieces[col] = rows_[pivot_[col]].payload;
  }
  return pieces;
}

void GenerationDecoder::saveState(Serializer& out) const {
  out.u32(k_);
  out.u32(payloadBytes_);
  out.u32(rank_);
  out.u64(rowOps_);
  out.u64(degenerateFrames_);
  out.u64(rows_.size());
  for (const Row& row : rows_) {
    out.raw(row.coeffs.data(), row.coeffs.size());
    out.raw(row.payload.data(), row.payload.size());
    out.u8(row.tainted ? 1 : 0);
    out.u8(row.polluted ? 1 : 0);
    out.u32(row.origin);
  }
  for (std::uint32_t col = 0; col < k_; ++col) out.u32(pivot_[col]);
}

void GenerationDecoder::loadState(Deserializer& in) {
  k_ = in.u32();
  payloadBytes_ = in.u32();
  rank_ = in.u32();
  rowOps_ = in.u64();
  degenerateFrames_ = in.u64();
  if (k_ == 0 || rank_ > k_) {
    throw SerializeError("GenerationDecoder: corrupt shape");
  }
  const std::uint64_t rowCount =
      in.length(static_cast<std::size_t>(k_) + payloadBytes_ + 6);
  if (rowCount != rank_) {
    throw SerializeError("GenerationDecoder: row count != rank");
  }
  rows_.clear();
  rows_.reserve(rowCount);
  for (std::uint64_t i = 0; i < rowCount; ++i) {
    Row row;
    row.coeffs.resize(k_);
    in.raw(row.coeffs.data(), k_);
    row.payload.resize(payloadBytes_);
    in.raw(row.payload.data(), payloadBytes_);
    row.tainted = in.u8() != 0;
    row.polluted = in.u8() != 0;
    row.origin = in.u32();
    rows_.push_back(std::move(row));
  }
  pivot_.assign(k_, kNoPivot);
  for (std::uint32_t col = 0; col < k_; ++col) {
    pivot_[col] = in.u32();
    if (pivot_[col] != kNoPivot && pivot_[col] >= rows_.size()) {
      throw SerializeError("GenerationDecoder: pivot out of range");
    }
  }
}

CodedEncoder::CodedEncoder(std::vector<std::vector<std::uint8_t>> pieces)
    : pieces_(std::move(pieces)) {
  if (pieces_.empty()) {
    throw std::invalid_argument("CodedEncoder: empty generation");
  }
  for (const auto& piece : pieces_) {
    if (piece.size() != pieces_.front().size()) {
      throw std::invalid_argument("CodedEncoder: unequal piece sizes");
    }
  }
}

CodedEncoder::Frame CodedEncoder::frame(std::uint64_t seed,
                                        double sparsity) const {
  Frame f;
  f.coefficients = sparseCoefficients(generationSize(), seed, sparsity);
  f.payload = payloadFor(f.coefficients);
  return f;
}

std::vector<std::uint8_t> CodedEncoder::payloadFor(
    std::span<const std::uint8_t> coefficients) const {
  if (coefficients.size() != pieces_.size()) {
    throw std::invalid_argument("CodedEncoder: coefficient count mismatch");
  }
  std::vector<std::uint8_t> payload(payloadBytes(), 0);
  for (std::size_t i = 0; i < pieces_.size(); ++i) {
    const std::uint8_t factor = coefficients[i];
    if (factor == 0) continue;
    for (std::size_t j = 0; j < payload.size(); ++j) {
      payload[j] = gfAdd(payload[j], gfMul(factor, pieces_[i][j]));
    }
  }
  return payload;
}

}  // namespace hdtn::core::coding
