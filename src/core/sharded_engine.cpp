#include "src/core/sharded_engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "src/core/checkpoint.hpp"
#include "src/util/parallel.hpp"
#include "src/util/serialize.hpp"
#include "src/util/sha1.hpp"
#include "src/util/string_util.hpp"

namespace hdtn::core {

namespace {

/// Salt deriving the shared publication stream from the run seed
/// ("publish"). Every component engine receives the identical publish seed.
constexpr std::uint64_t kPublishSalt = 0x7075626c69736800ull;

/// Label given to the pooled isolated-node component by union-find
/// partitioning.
constexpr std::uint32_t kIsolatedLabel = 0xffffffffu;

constexpr char kShardMagic[8] = {'H', 'D', 'T', 'N', 'S', 'H', 'R', 'D'};
constexpr std::size_t kShardHeaderSize = 8 + 4 + 8 + 20;

/// splitmix64-style stateless mix: component seeds derive from the run seed
/// and the component's smallest global node id without consuming any draws
/// from a parent stream (Rng::fork would make seeds order-dependent).
std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (salt + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Union-find with path halving; unions by smaller root index so the final
/// root of every set is its smallest member.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      parent_[i] = static_cast<std::uint32_t>(i);
    }
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (a > b) std::swap(a, b);
    parent_[b] = a;
    touched_[a] = true;
    touched_[b] = true;
  }

  void noteContactMember(std::uint32_t x) { touched_[x] = true; }

  /// One label per node: the set's root, except nodes that never appeared
  /// in a contact, which all share kIsolatedLabel (pooled into one
  /// component so a sparse trace does not spawn thousands of single-node
  /// engines).
  [[nodiscard]] std::vector<std::uint32_t> labels() {
    std::vector<std::uint32_t> out(parent_.size());
    for (std::uint32_t i = 0; i < parent_.size(); ++i) {
      out[i] = touched_.contains(i) ? find(i) : kIsolatedLabel;
    }
    return out;
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::unordered_map<std::uint32_t, bool> touched_;
};

void uniteContact(UnionFind& uf, const trace::Contact& contact,
                  std::size_t nodeCount) {
  const std::uint32_t first = contact.members.front().value;
  for (const NodeId member : contact.members) {
    if (member.value >= nodeCount) {
      throw std::invalid_argument(
          "ShardedEngine: contact member " + std::to_string(member.value) +
          " is outside the node universe of " + std::to_string(nodeCount));
    }
    uf.noteContactMember(member.value);
    uf.unite(first, member.value);
  }
}

struct ReportAccumulator {
  DeliveryReport out;
  double metadataDelaySum = 0.0;
  double fileDelaySum = 0.0;

  void add(const DeliveryReport& r) {
    out.queries += r.queries;
    out.metadataDelivered += r.metadataDelivered;
    out.filesDelivered += r.filesDelivered;
    metadataDelaySum += r.meanMetadataDelaySeconds *
                        static_cast<double>(r.metadataDelivered);
    fileDelaySum +=
        r.meanFileDelaySeconds * static_cast<double>(r.filesDelivered);
  }

  [[nodiscard]] DeliveryReport result() const {
    DeliveryReport r = out;
    if (r.queries > 0) {
      r.metadataRatio = static_cast<double>(r.metadataDelivered) /
                        static_cast<double>(r.queries);
      r.fileRatio = static_cast<double>(r.filesDelivered) /
                    static_cast<double>(r.queries);
    }
    if (r.metadataDelivered > 0) {
      r.meanMetadataDelaySeconds =
          metadataDelaySum / static_cast<double>(r.metadataDelivered);
    }
    if (r.filesDelivered > 0) {
      r.meanFileDelaySeconds =
          fileDelaySum / static_cast<double>(r.filesDelivered);
    }
    return r;
  }
};

void addTotals(EngineTotals& into, const EngineTotals& t) {
  into.contactsProcessed += t.contactsProcessed;
  into.filesPublished += t.filesPublished;
  into.queriesGenerated += t.queriesGenerated;
  into.metadataBroadcasts += t.metadataBroadcasts;
  into.pieceBroadcasts += t.pieceBroadcasts;
  into.metadataReceptions += t.metadataReceptions;
  into.pieceReceptions += t.pieceReceptions;
  into.forgeriesCrafted += t.forgeriesCrafted;
  into.forgeriesAccepted += t.forgeriesAccepted;
  into.forgeriesRejected += t.forgeriesRejected;
  into.faultMessagesDropped += t.faultMessagesDropped;
  into.faultContactsTruncated += t.faultContactsTruncated;
  into.faultPiecesRejectedCorrupt += t.faultPiecesRejectedCorrupt;
  into.faultNodeDownIntervals += t.faultNodeDownIntervals;
  into.recoveryFramesLost += t.recoveryFramesLost;
  into.recoveryRetransmits += t.recoveryRetransmits;
  into.recoveryRedeliveries += t.recoveryRedeliveries;
  into.coordinatorFailovers += t.coordinatorFailovers;
  into.repairRequests += t.repairRequests;
  into.metadataEvictions += t.metadataEvictions;
}

/// Merges per-component results in canonical component order (the caller
/// passes them indexed by component), so the merged doubles are identical at
/// every shards/threads setting.
EngineResult mergeResults(const std::vector<EngineResult>& parts) {
  ReportAccumulator delivery;
  ReportAccumulator access;
  ReportAccumulator contributor;
  ReportAccumulator freeRider;
  EngineResult merged;
  for (const EngineResult& part : parts) {
    delivery.add(part.delivery);
    access.add(part.accessDelivery);
    contributor.add(part.contributorDelivery);
    freeRider.add(part.freeRiderDelivery);
    addTotals(merged.totals, part.totals);
  }
  merged.delivery = delivery.result();
  merged.accessDelivery = access.result();
  merged.contributorDelivery = contributor.result();
  merged.freeRiderDelivery = freeRider.result();
  return merged;
}

}  // namespace

std::vector<std::string> ShardedParams::validate() const {
  std::vector<std::string> errors;
  if (shards < 1) errors.emplace_back("shards must be >= 1");
  return errors;
}

ShardedEngine::ShardedEngine(const trace::ContactTrace& trace,
                             ShardedParams params)
    : params_(std::move(params)) {
  const std::vector<std::string> errors = params_.validate();
  if (!errors.empty()) {
    throw std::invalid_argument("invalid ShardedParams: " +
                                join(errors, "; "));
  }
  const std::size_t n = trace.nodeCount();
  if (n == 0) {
    throw std::invalid_argument("ShardedEngine: empty node universe");
  }
  globalEnd_ = trace.endTime();

  std::vector<std::uint32_t> labels;
  if (!params_.partition.empty()) {
    if (params_.partition.size() != n) {
      throw std::invalid_argument(
          "ShardedEngine: partition has " +
          std::to_string(params_.partition.size()) + " labels for " +
          std::to_string(n) + " nodes");
    }
    labels = params_.partition;
  } else {
    UnionFind uf(n);
    for (const trace::Contact& contact : trace.contacts()) {
      uniteContact(uf, contact, n);
    }
    labels = uf.labels();
  }
  buildComponents(n, labels);

  for (Component& c : components_) {
    c.trace = trace::ContactTrace(trace.name(), c.globalIds.size());
  }
  for (const trace::Contact& contact : trace.contacts()) {
    trace::Contact local;
    const std::uint32_t ci = remapContact(contact, &local);
    components_[ci].trace.addContact(std::move(local));
  }
  buildEngines();
}

ShardedEngine::ShardedEngine(trace::ContactStream& stream,
                             ShardedParams params)
    : params_(std::move(params)), stream_(&stream), streaming_(true) {
  const std::vector<std::string> errors = params_.validate();
  if (!errors.empty()) {
    throw std::invalid_argument("invalid ShardedParams: " +
                                join(errors, "; "));
  }
  const std::size_t n = stream.nodeCount();
  if (n == 0) {
    throw std::invalid_argument("ShardedEngine: empty node universe");
  }
  globalEnd_ = stream.endTime();

  std::vector<std::uint32_t> labels;
  if (!params_.partition.empty()) {
    if (params_.partition.size() != n) {
      throw std::invalid_argument(
          "ShardedEngine: partition has " +
          std::to_string(params_.partition.size()) + " labels for " +
          std::to_string(n) + " nodes");
    }
    labels = params_.partition;
  } else if (!stream.partitionHint().empty()) {
    if (stream.partitionHint().size() != n) {
      throw std::invalid_argument(
          "ShardedEngine: the stream's partition hint has " +
          std::to_string(stream.partitionHint().size()) + " labels for " +
          std::to_string(n) + " nodes");
    }
    labels = stream.partitionHint();
  } else {
    // No hint: one discovery pass over the stream, then rewind.
    stream.reset();
    UnionFind uf(n);
    while (const std::optional<trace::Contact> contact = stream.next()) {
      uniteContact(uf, *contact, n);
    }
    labels = uf.labels();
  }
  buildComponents(n, labels);

  for (Component& c : components_) {
    // Contact-less placeholder: the node universe for Engine feed mode.
    c.trace = trace::ContactTrace(stream.name(), c.globalIds.size());
  }
  buildEngines();
  stream_->reset();
}

ShardedEngine::~ShardedEngine() = default;

void ShardedEngine::buildComponents(std::size_t nodeCount,
                                    const std::vector<std::uint32_t>& labels) {
  componentOf_.assign(nodeCount, 0);
  localId_.assign(nodeCount, 0);
  // Iterating node ids ascending and appending a component at each label's
  // first occurrence yields the canonical order for free: components sorted
  // by smallest global node id, with ascending globalIds inside each.
  std::unordered_map<std::uint32_t, std::uint32_t> byLabel;
  for (std::uint32_t i = 0; i < nodeCount; ++i) {
    const auto [it, fresh] = byLabel.try_emplace(
        labels[i], static_cast<std::uint32_t>(components_.size()));
    if (fresh) components_.emplace_back();
    Component& c = components_[it->second];
    componentOf_[i] = it->second;
    localId_[i] = static_cast<std::uint32_t>(c.globalIds.size());
    c.globalIds.emplace_back(i);
  }
}

void ShardedEngine::buildEngines() {
  const bool explicitMode = !params_.engine.explicitAccessNodes.empty() ||
                            !params_.engine.explicitFreeRiders.empty();
  const std::uint64_t publishSeed = mixSeed(params_.engine.seed, kPublishSalt);
  for (std::size_t index = 0; index < components_.size(); ++index) {
    Component& c = components_[index];
    EngineParams ep = params_.engine;
    ep.seed = mixSeed(params_.engine.seed, c.globalIds.front().value);
    auto remapIds = [&](const std::vector<NodeId>& global) {
      std::vector<NodeId> local;
      for (const NodeId id : global) {
        if (id.value < componentOf_.size() &&
            componentOf_[id.value] == index) {
          local.emplace_back(localId_[id.value]);
        }
      }
      return local;
    };
    ep.explicitAccessNodes = remapIds(params_.engine.explicitAccessNodes);
    ep.explicitFreeRiders = remapIds(params_.engine.explicitFreeRiders);
    // An explicit global assignment that names none of this component's
    // nodes must not fall back to fractional assignment.
    if (explicitMode && ep.explicitAccessNodes.empty() &&
        ep.explicitFreeRiders.empty()) {
      ep.internetAccessFraction = 0.0;
      ep.freeRiderFraction = 0.0;
    }
    c.engine = std::make_unique<Engine>(c.trace, ep);
    c.engine->usePublishStream(publishSeed);
    c.engine->setPublishHorizon(globalEnd_);
    if (streaming_) c.engine->beginFeed();
  }
  const std::size_t groupCount = std::max<std::size_t>(
      1, std::min<std::size_t>(params_.shards, components_.size()));
  groups_.assign(groupCount, {});
  for (std::size_t i = 0; i < components_.size(); ++i) {
    groups_[i % groupCount].push_back(static_cast<std::uint32_t>(i));
  }
}

std::uint32_t ShardedEngine::remapContact(const trace::Contact& contact,
                                          trace::Contact* local) const {
  const std::uint32_t ci = componentOf_[contact.members.front().value];
  local->start = contact.start;
  local->end = contact.end;
  local->members.clear();
  local->members.reserve(contact.members.size());
  for (const NodeId member : contact.members) {
    if (member.value >= componentOf_.size() ||
        componentOf_[member.value] != ci) {
      throw std::invalid_argument(
          "ShardedEngine: contact at t=" + std::to_string(contact.start) +
          " spans partition components (node " +
          std::to_string(member.value) +
          " is not in the component of node " +
          std::to_string(contact.members.front().value) + ")");
    }
    local->members.emplace_back(localId_[member.value]);
  }
  return ci;
}

void ShardedEngine::pullContacts(SimTime horizon) {
  while (true) {
    if (!pending_.has_value()) {
      pending_ = stream_->next();
      if (!pending_.has_value()) return;
    }
    if (pending_->start >= horizon) return;
    trace::Contact local;
    const std::uint32_t ci = remapContact(*pending_, &local);
    components_[ci].feedBucket.push_back(std::move(local));
    pending_.reset();
  }
}

void ShardedEngine::throwIfFinished(const char* what) const {
  if (finished_) {
    throw std::logic_error(
        std::string(what) +
        ": the simulation already ran to completion and returned its "
        "result; construct a fresh ShardedEngine to run again");
  }
}

unsigned ShardedEngine::threadCount() const {
  return params_.threads == 0 ? defaultThreadCount() : params_.threads;
}

void ShardedEngine::runUntil(SimTime horizon) {
  throwIfFinished("ShardedEngine::runUntil");
  if (streaming_) pullContacts(horizon);
  parallelFor(groups_.size(), threadCount(), [&](std::size_t g) {
    for (const std::uint32_t ci : groups_[g]) {
      Component& c = components_[ci];
      for (const trace::Contact& contact : c.feedBucket) {
        c.engine->feedContact(contact);
        ++c.contactsFed;
      }
      c.feedBucket.clear();
      c.engine->runUntil(horizon);
    }
  });
  if (horizon > epoch_) epoch_ = horizon;
}

EngineResult ShardedEngine::finish() {
  throwIfFinished("ShardedEngine::finish (or run)");
  if (streaming_) pullContacts(kTimeInfinity);
  std::vector<EngineResult> results(components_.size());
  parallelFor(groups_.size(), threadCount(), [&](std::size_t g) {
    for (const std::uint32_t ci : groups_[g]) {
      Component& c = components_[ci];
      for (const trace::Contact& contact : c.feedBucket) {
        c.engine->feedContact(contact);
        ++c.contactsFed;
      }
      c.feedBucket.clear();
      results[ci] = c.engine->finish();
    }
  });
  finished_ = true;
  epoch_ = globalEnd_;
  return mergeResults(results);
}

EngineResult ShardedEngine::run() { return finish(); }

EngineResult ShardedEngine::currentResult() const {
  std::vector<EngineResult> results;
  results.reserve(components_.size());
  for (const Component& c : components_) {
    results.push_back(c.engine->currentResult());
  }
  return mergeResults(results);
}

Sha1Digest ShardedEngine::shardedFingerprint() const {
  Serializer s;
  s.boolean(streaming_);
  s.u64(componentOf_.size());
  s.i64(globalEnd_);
  s.u64(components_.size());
  // Each component fingerprint covers its params (with the derived seed)
  // and sub-trace identity — for materialized components, every contact.
  // Streaming contact content is not covered here; the replay in
  // restoreCheckpoint verifies per-component fed-contact counts instead.
  for (const Component& c : components_) {
    const Sha1Digest digest = c.engine->configFingerprint();
    s.raw(digest.bytes.data(), digest.bytes.size());
  }
  return Sha1::hash(s.bytes());
}

void ShardedEngine::saveCheckpoint(const std::string& path,
                                   std::string_view extra) const {
  if (finished_) {
    throw std::logic_error(
        "ShardedEngine::saveCheckpoint: the run already finished; there is "
        "nothing left to resume");
  }
  Serializer payload;
  payload.i64(epoch_);
  payload.str(extra);
  const Sha1Digest fingerprint = shardedFingerprint();
  payload.raw(fingerprint.bytes.data(), fingerprint.bytes.size());
  payload.u64(components_.size());
  for (const Component& c : components_) {
    payload.u64(c.engine->sim_.executedEvents());
    payload.i64(c.engine->sim_.now());
    payload.u64(c.contactsFed);
    c.engine->saveComponentState(payload);
  }

  Serializer file;
  file.raw(kShardMagic, sizeof(kShardMagic));
  file.u32(kCheckpointVersion);
  file.u64(payload.bytes().size());
  const Sha1Digest digest = Sha1::hash(payload.bytes());
  file.raw(digest.bytes.data(), digest.bytes.size());
  file.raw(payload.bytes().data(), payload.bytes().size());

  std::string error;
  if (!writeFileAtomic(path, file.bytes(), &error)) {
    throw CheckpointError("ShardedEngine::saveCheckpoint: " + error);
  }
}

void ShardedEngine::restoreCheckpoint(const std::string& path) {
  if (finished_ || epoch_ != 0) {
    throw std::logic_error(
        "ShardedEngine::restoreCheckpoint requires a freshly constructed "
        "engine (same trace/stream and params, not yet advanced)");
  }
  for (const Component& c : components_) {
    if (c.engine->sim_.executedEvents() != 0 || c.contactsFed != 0) {
      throw std::logic_error(
          "ShardedEngine::restoreCheckpoint requires a freshly constructed "
          "engine (same trace/stream and params, not yet advanced)");
    }
  }

  std::string fileBytes;
  std::string error;
  if (!readFileBytes(path, &fileBytes, &error)) {
    throw CheckpointError("cannot read checkpoint: " + error);
  }
  const std::string_view bytes(fileBytes);
  if (bytes.size() < kShardHeaderSize) {
    throw CheckpointError(path + ": truncated sharded checkpoint");
  }
  if (std::memcmp(bytes.data(), kShardMagic, sizeof(kShardMagic)) != 0) {
    throw CheckpointError(path +
                          ": not a sharded checkpoint file (bad magic)");
  }
  Deserializer header(bytes.substr(sizeof(kShardMagic)));
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion) {
    throw CheckpointError(
        path + ": unsupported checkpoint version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kCheckpointVersion) +
        ")");
  }
  const std::uint64_t payloadSize = header.u64();
  Sha1Digest stored;
  header.raw(stored.bytes.data(), stored.bytes.size());
  if (bytes.size() - kShardHeaderSize != payloadSize) {
    throw CheckpointError(path + ": truncated sharded checkpoint payload");
  }
  const std::string_view payload = bytes.substr(kShardHeaderSize);
  if (!(Sha1::hash(payload) == stored)) {
    throw CheckpointError(path +
                          ": checksum mismatch (corrupt checkpoint file)");
  }

  try {
    Deserializer in(payload);
    const SimTime savedEpoch = in.i64();
    in.str();  // caller extra blob: not interpreted here
    Sha1Digest fingerprint;
    in.raw(fingerprint.bytes.data(), fingerprint.bytes.size());
    if (!(fingerprint == shardedFingerprint())) {
      throw CheckpointError(
          path +
          ": checkpoint was written by a different run configuration "
          "(sharded fingerprint mismatch)");
    }
    const std::size_t count = in.length();
    if (count != components_.size()) {
      throw CheckpointError(path + ": checkpoint holds " +
                            std::to_string(count) + " components, engine has " +
                            std::to_string(components_.size()));
    }
    std::vector<std::uint64_t> executed(count);
    std::vector<SimTime> clocks(count);
    std::vector<std::uint64_t> fed(count);
    for (std::size_t i = 0; i < count; ++i) {
      executed[i] = in.u64();
      clocks[i] = in.i64();
      fed[i] = in.u64();
      components_[i].engine->loadComponentState(in);
    }
    if (!in.done()) {
      throw SerializeError("trailing bytes after the component states");
    }

    if (streaming_) {
      // Rebuild the schedule position by replaying the stream prefix: the
      // contacts' effects are in the restored state, so replay feeds skip
      // instead of execute.
      stream_->reset();
      pending_.reset();
      while (true) {
        if (!pending_.has_value()) {
          pending_ = stream_->next();
          if (!pending_.has_value()) break;
        }
        if (pending_->start >= savedEpoch) break;
        trace::Contact local;
        const std::uint32_t ci = remapContact(*pending_, &local);
        components_[ci].engine->feedContact(local, /*replay=*/true);
        ++components_[ci].contactsFed;
        pending_.reset();
      }
      for (std::size_t i = 0; i < count; ++i) {
        components_[i].engine->skipReplayUntil(savedEpoch);
        if (components_[i].contactsFed != fed[i]) {
          throw CheckpointError(
              path + ": stream replay fed " +
              std::to_string(components_[i].contactsFed) +
              " contacts into component " + std::to_string(i) +
              ", checkpoint recorded " + std::to_string(fed[i]) +
              " (different stream?)");
        }
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        Engine& engine = *components_[i].engine;
        engine.ensureScheduled();
        for (std::uint64_t k = 0; k < executed[i]; ++k) {
          if (!engine.sim_.skipOne()) {
            throw CheckpointError(
                path + ": checkpoint records more executed events than the "
                       "schedule of component " +
                std::to_string(i) + " holds");
          }
        }
        if (engine.sim_.now() != clocks[i]) {
          throw CheckpointError(
              path + ": replayed schedule position of component " +
              std::to_string(i) + " (t=" + std::to_string(engine.sim_.now()) +
              ") does not match the checkpoint clock (t=" +
              std::to_string(clocks[i]) + ")");
        }
      }
    }
    epoch_ = savedEpoch;
  } catch (const SerializeError& e) {
    throw CheckpointError(path + ": malformed checkpoint payload: " +
                          e.what());
  }
}

}  // namespace hdtn::core
