// Per-node suspicion tracking and quarantine: the defense half of the
// Byzantine adversary layer (docs/ADVERSARY.md).
//
// Honest nodes cannot see who is Byzantine; they can only observe protocol
// misbehavior. The engine turns three observable anomalies into evidence
// events against the apparent culprit:
//
//   * failed verification — a fully-ranked coded generation failed its
//     piece-hash check and was rolled back; charged to every sender whose
//     polluted frame tainted the decoder (strong evidence);
//   * summary mismatch    — an anti-entropy repair push targeted data the
//     receiver demonstrably already held, i.e. its advertised Bloom
//     summary omitted real content (medium evidence — honest Bloom
//     summaries have no false negatives);
//   * ack anomaly         — a retransmission was requested for a metadata
//     frame the requester already held (weak evidence; legitimate races
//     can produce the same signal, hence the low weight).
//
// Suspicion accumulates per node with deterministic linear decay, so a
// burst of anomalies quarantines a node while scattered random noise
// evaporates. Quarantine has hysteresis: a node enters at
// quarantineThreshold and is only released when decay brings suspicion
// under half the threshold, so a node on the boundary cannot flap in and
// out every contact. Quarantined peers keep *receiving* data (an honest
// false positive must be able to catch up) but are excluded from sender
// selection, repair service, and coordinator election.
//
// The tracker is deterministic (no RNG) and checkpointable; it exists only
// when ReputationParams::defense is set, so the defense is zero-cost and
// byte-identical-off.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// What kind of anomaly the engine observed; selects the evidence weight.
enum class EvidenceKind : std::uint32_t {
  kFailedVerification = 1,
  kSummaryMismatch = 2,
  kAckAnomaly = 3,
  kBroadcastSuppressed = 4,
};

struct ReputationParams {
  /// Master switch for the defense layer (verification rollback feeds
  /// evidence in; quarantine gates senders out). Off by default.
  bool defense = false;
  /// Suspicion level at which a node is quarantined. Released again only
  /// when decay brings suspicion under threshold / 2 (hysteresis).
  double quarantineThreshold = 3.0;
  /// Evidence weights per anomaly kind.
  double failedVerificationWeight = 1.0;
  double summaryMismatchWeight = 0.5;
  double ackAnomalyWeight = 0.15;
  double broadcastSuppressedWeight = 0.5;
  /// Linear suspicion decay per simulated day.
  double decayPerDay = 1.0;

  [[nodiscard]] bool enabled() const { return defense; }

  /// One descriptive message per violation (empty when valid): positive
  /// threshold, non-negative weights and decay.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Deterministic per-node suspicion scores with lazy linear decay.
class ReputationTracker {
 public:
  explicit ReputationTracker(const ReputationParams& params)
      : params_(params) {}

  [[nodiscard]] const ReputationParams& params() const { return params_; }

  /// Charges one anomaly to `node` at time `now` (decay is applied first).
  /// Returns true when this evidence newly quarantined the node.
  bool addEvidence(NodeId node, EvidenceKind kind, SimTime now);

  /// True while `node` is quarantined. Applies lazy decay; when the decay
  /// crosses the release level the node is freed and *released (optional)
  /// is set so the caller can count/emit the release.
  [[nodiscard]] bool isQuarantined(NodeId node, SimTime now,
                                   bool* released = nullptr);

  /// Current (decayed) suspicion of `node` at `now`; 0 for unknown nodes.
  [[nodiscard]] double suspicion(NodeId node, SimTime now) const;

  /// Nodes currently marked quarantined (no decay applied; tests/stats).
  [[nodiscard]] std::size_t quarantinedCount() const;

  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  struct Entry {
    double suspicion = 0.0;
    SimTime lastUpdate = 0;
    bool quarantined = false;
  };

  /// Applies linear decay to `entry` up to `now` (monotone clamp).
  void decay(Entry& entry, SimTime now) const;

  ReputationParams params_;
  std::map<std::uint32_t, Entry> entries_;
};

}  // namespace hdtn::core
