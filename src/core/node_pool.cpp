#include "src/core/node_pool.hpp"

namespace hdtn::core {

void NodePool::reset(std::size_t count) {
  nodes_.clear();
  nodes_.reserve(count);
  roleBits_.assign((count * 2 + 63) / 64, 0);
  accessIds_.clear();
  forgerIds_.clear();
  freeRiders_ = 0;
}

Node& NodePool::emplace(NodeId id, const NodeOptions& options) {
  assert(id.value == nodes_.size() && "nodes must be emplaced in id order");
  assert(nodes_.size() < nodes_.capacity() &&
         "pool is full: reset() fixes capacity so node addresses stay stable");
  Node& node = nodes_.emplace_back(id, options);
  if (options.internetAccess) {
    setRoleBit(id, kAccessBit);
    accessIds_.push_back(id);
  }
  if (options.forger) {
    setRoleBit(id, kForgerBit);
    forgerIds_.push_back(id);
  }
  if (options.freeRider) ++freeRiders_;
  return node;
}

}  // namespace hdtn::core
