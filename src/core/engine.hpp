// Trace-driven simulation of the full cooperative file-sharing system.
//
// Implements the paper's simulation model (Section VI-A): n new files appear
// on the Internet every day at 2 PM with popularity drawn from the paper's
// distribution; each node queries each new file with probability equal to
// its popularity; a configurable fraction of nodes has Internet access and
// is serviced instantly; all other exchange happens inside trace contacts,
// with fixed per-contact budgets of metadata and file transmissions.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/download.hpp"
#include "src/core/internet.hpp"
#include "src/faults/adversary.hpp"
#include "src/faults/faults.hpp"
#include "src/core/metrics.hpp"
#include "src/core/node.hpp"
#include "src/core/node_pool.hpp"
#include "src/core/protocol.hpp"
#include "src/core/recovery.hpp"
#include "src/core/reputation.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/contact_trace.hpp"
#include "src/util/random.hpp"
#include "src/util/serialize.hpp"
#include "src/util/sha1.hpp"
#include "src/util/types.hpp"

namespace hdtn::obs {
class EngineObserver;  // src/obs/events.hpp
struct SimEvent;
}

namespace hdtn::core {

struct EngineCaches;     // internal per-run caches (engine.cpp)
struct CodedEngineState;  // RLNC decoders + coded RNG stream (engine.cpp)
class DownloadPlanner;    // src/core/download_planner.hpp

struct EngineParams {
  ProtocolConfig protocol;
  DownloadMode downloadMode = DownloadMode::kBroadcast;

  /// Fraction of nodes with direct Internet access (paper sweeps 0.1-0.9).
  double internetAccessFraction = 0.3;
  /// New files published per day at 2 PM.
  int newFilesPerDay = 40;
  /// File (and query) time-to-live in days.
  int fileTtlDays = 3;
  /// Metadata broadcasts allowed per contact.
  int metadataPerContact = 5;
  /// File transmissions allowed per contact (whole-file units; the piece
  /// budget is filesPerContact * piecesPerFile).
  int filesPerContact = 2;
  /// When true, per-contact budgets scale linearly with contact duration
  /// relative to referenceContactDuration (min multiplier 1). The paper's
  /// model is a fixed number per contact; this option models airtime.
  bool scaleBudgetsWithDuration = false;
  Duration referenceContactDuration = 10 * kMinute;
  /// Ordering of the download push phase (paper: popularity;
  /// rarest-first is the BitTorrent-style alternative, Ablation A7).
  PushOrder pushOrder = PushOrder::kPopularity;
  /// Pieces per published file; 1 matches the paper's whole-file exchange.
  std::uint32_t piecesPerFile = 1;
  std::uint32_t pieceSizeBytes = 1024;
  /// Window defining the frequent-contact relation (3 days for DieselNet,
  /// 1 day for NUS per the paper).
  Duration frequentContactPeriod = 3 * kDay;
  /// Fraction of non-access nodes that free-ride (never transmit).
  double freeRiderFraction = 0.0;
  /// Access nodes fetch files peers advertised as wanted ("requesting
  /// URIs"), carrying them into the DTN.
  bool accessFetchesPeerRequests = true;
  /// Per-node piece-storage capacity in pieces; 0 = unbounded (the paper's
  /// model). Bounded nodes evict lowest-popularity incomplete files first.
  std::size_t nodePieceCapacity = 0;
  /// Per-node metadata-record capacity; 0 = unbounded (the paper's model).
  /// Bounded stores shed the least-popular record (oldest first at ties)
  /// and report each shed via the metadata_evicted event.
  std::size_t nodeMetadataCapacity = 0;
  /// Fraction of non-access nodes that are *forgers*: each publication day
  /// they craft fake metadata mimicking the day's most popular files
  /// (copied names, inflated popularity, unverifiable authentication tags)
  /// and push it into the DTN. Models the paper's fake-publisher threat.
  double forgerFraction = 0.0;
  /// Fake records crafted per forger per day.
  int forgeriesPerForgerPerDay = 3;
  /// When true, nodes verify metadata authentication tags against the
  /// well-known publisher registry before accepting (paper Section III-B,
  /// metadata field (f)); forged records are rejected on contact.
  bool verifyMetadata = false;
  /// When true, the metadata server replaces publisher-assigned popularity
  /// with its *observed* estimate — the fraction of access nodes that
  /// requested the file in the past 24 h (paper Section IV). Query
  /// generation still uses the ground-truth interest probability; only the
  /// ranking/push order sees the estimate.
  bool useObservedPopularity = false;
  /// When non-empty, exactly these nodes have Internet access and
  /// internetAccessFraction is ignored (scenario tests, examples).
  std::vector<NodeId> explicitAccessNodes;
  /// When non-empty, exactly these nodes free-ride and freeRiderFraction is
  /// ignored.
  std::vector<NodeId> explicitFreeRiders;
  /// Access nodes carry a popularity-ordered metadata "stock" covering this
  /// fraction of the currently alive files (at least 10 records, at most
  /// accessMetadataSyncLimit). Deliberately below 1.0: targeted
  /// (query-driven) collection is what MBT's query proxying adds on top of
  /// the stock, so full coverage would erase the MBT-vs-MBT-Q distinction.
  double accessMetadataSyncFraction = 0.25;
  /// Absolute cap on the carry stock.
  std::size_t accessMetadataSyncLimit = 500;
  /// Fault injection (message loss, contact truncation, piece corruption,
  /// node churn; see src/faults/faults.hpp). All-zero rates disable the
  /// subsystem entirely: no plan is constructed, no extra RNG draws happen,
  /// and the run is byte-identical to one without fault support.
  faults::FaultParams faults;
  /// Self-healing layer (contact-level retransmission, coordinator
  /// failover, anti-entropy repair; see src/core/recovery.hpp and
  /// docs/RECOVERY.md). All-zero/false knobs disable the subsystem
  /// entirely: no state is constructed, no extra RNG draws happen, and the
  /// run is byte-identical to one without recovery support.
  RecoveryParams recovery;
  /// RLNC knobs, consulted only when downloadMode == DownloadMode::kCoded
  /// (see src/core/coding.hpp and docs/CODING.md). The coded RNG stream is
  /// forked only in coded mode, so the other modes stay byte-identical to
  /// builds without coding support.
  CodedParams coded;
  /// Byzantine adversary (coded-frame pollution, piece lies, false
  /// summaries, ack spoofing, coordinator abuse; see src/faults/adversary.hpp
  /// and docs/ADVERSARY.md). A zero fraction disables the subsystem
  /// entirely: no plan is constructed, no extra RNG draws happen, and the
  /// run is byte-identical to one without adversary support.
  faults::AdversaryParams adversary;
  /// Verify-and-quarantine defense layer (src/core/reputation.hpp). Off by
  /// default; when off, no tracker is constructed, pollution is delivered
  /// unverified (the undefended baseline), and the run is byte-identical to
  /// one without defense support.
  ReputationParams reputation;
  std::uint64_t seed = 42;

  /// Checks every field for consistency and returns one descriptive message
  /// per violation (empty when the configuration is valid): fractions must
  /// lie in [0, 1], per-contact budgets and daily publication count must be
  /// positive, piecesPerFile >= 1, TTL >= 1 day. Engine's constructor calls
  /// this and throws std::invalid_argument listing every problem, so a bad
  /// sweep fails loudly instead of silently misbehaving.
  [[nodiscard]] std::vector<std::string> validate() const;
};

struct EngineTotals {
  std::uint64_t contactsProcessed = 0;
  std::uint64_t filesPublished = 0;
  std::uint64_t queriesGenerated = 0;
  std::uint64_t metadataBroadcasts = 0;
  std::uint64_t pieceBroadcasts = 0;
  std::uint64_t metadataReceptions = 0;
  std::uint64_t pieceReceptions = 0;
  std::uint64_t forgeriesCrafted = 0;
  /// Forged records stored by honest nodes (0 when verification is on).
  std::uint64_t forgeriesAccepted = 0;
  /// Forged records dropped at reception by the verifier.
  std::uint64_t forgeriesRejected = 0;
  // Fault-injection accounting (all zero when faults are disabled).
  /// Deliverable messages lost inside contacts (metadata or pieces).
  std::uint64_t faultMessagesDropped = 0;
  /// Contacts whose budgets were truncated.
  std::uint64_t faultContactsTruncated = 0;
  /// Pieces corrupted in flight and rejected by their SHA-1 checksum
  /// (never stored; the receiver re-requests at later contacts).
  std::uint64_t faultPiecesRejectedCorrupt = 0;
  /// Churn down intervals whose start the run has executed.
  std::uint64_t faultNodeDownIntervals = 0;
  // Recovery accounting (all zero when recovery is disabled).
  /// Deliverable frames lost while a reliable session was recording (each
  /// gets at least one retransmission attempt, budget permitting).
  std::uint64_t recoveryFramesLost = 0;
  /// Retransmission attempts (in-contact rounds + cross-contact serves).
  std::uint64_t recoveryRetransmits = 0;
  /// Retransmitted frames that were stored by their receiver.
  std::uint64_t recoveryRedeliveries = 0;
  /// Broadcast rounds resumed under an elected successor coordinator.
  std::uint64_t coordinatorFailovers = 0;
  /// Anti-entropy push attempts (metadata or piece).
  std::uint64_t repairRequests = 0;
  /// Metadata records shed by bounded stores (capacity pressure).
  std::uint64_t metadataEvictions = 0;
  // Network-coding accounting (all zero outside coded mode).
  /// Coded frames sent (each reaches every incomplete clique member).
  std::uint64_t codedBroadcasts = 0;
  /// Receptions that raised a receiver's decoder rank.
  std::uint64_t codedInnovativeFrames = 0;
  /// Receptions whose coefficients were already in the receiver's row space.
  std::uint64_t codedRedundantFrames = 0;
  /// Generations decoded to full rank (source pieces recovered).
  std::uint64_t generationsDecoded = 0;
  /// Coded frames rejected before folding (corrupted payloads).
  std::uint64_t codedDecodeFailures = 0;
  /// Gaussian-elimination row operations performed by receivers — the
  /// deterministic decode-CPU proxy reported by bench_robustness.
  std::uint64_t codedDecodeRowOps = 0;
  /// Degenerate coded frames rejected before any row operation (all-zero
  /// or over-length coefficient vectors).
  std::uint64_t codedDegenerateFrames = 0;
  // Byzantine adversary accounting (all zero when the adversary is off).
  /// Attack opportunities a Byzantine node acted on (any kind).
  std::uint64_t adversaryAttacks = 0;
  /// Polluted coded frames injected by Byzantine senders.
  std::uint64_t pollutionInjected = 0;
  /// Polluted rows caught by decode-time verification (defense on).
  std::uint64_t pollutionDetected = 0;
  /// Full-rank generations whose decoded output was garbage and was
  /// delivered anyway (defense off — the undefended collapse).
  std::uint64_t pollutedDeliveries = 0;
  /// Tainted generations discarded and re-collected (defense on).
  std::uint64_t generationsRolledBack = 0;
  /// Named-piece transfers where a Byzantine sender lied about the payload
  /// (always caught by the metadata SHA-1 checksum; the slot is burnt).
  std::uint64_t piecesLied = 0;
  /// Bloom summaries forged (emptied) by Byzantine repair receivers.
  std::uint64_t summariesForged = 0;
  /// Bogus loss reports injected into retransmission queues.
  std::uint64_t acksSpoofed = 0;
  /// Planned broadcasts silently dropped by Byzantine coordinators.
  std::uint64_t broadcastsSuppressed = 0;
  // Defense accounting (all zero when the defense is off).
  /// Nodes that entered quarantine (counts entries, not distinct nodes).
  std::uint64_t nodesQuarantined = 0;
  /// Quarantines released by suspicion decay.
  std::uint64_t nodesReleased = 0;
  /// Quarantine entries whose node was in fact honest (ground truth).
  std::uint64_t falseQuarantines = 0;
};

struct EngineResult {
  DeliveryReport delivery;             ///< non-access nodes (the paper's metric)
  DeliveryReport accessDelivery;       ///< access nodes (sanity ~ 1.0)
  DeliveryReport contributorDelivery;  ///< non-access, non-free-riding
  DeliveryReport freeRiderDelivery;    ///< non-access free-riders
  EngineTotals totals;
};

/// Trace-driven simulation engine with incremental execution.
///
/// The run can be driven three ways, all producing byte-identical results:
///   * `run()` — the classic single shot (a thin wrapper over finish()).
///   * `runUntil(t)` repeatedly, then `finish()` — advance in time slices,
///     inspecting nodes / metrics / `currentResult()` between slices (this
///     is how obs::runSampled records delivery-ratio trajectories).
///   * `step()` in a loop — one simulation event at a time.
/// `run()` / `finish()` return the final result exactly once; a second call
/// throws std::logic_error. An optional obs::EngineObserver receives typed
/// events (see src/obs/events.hpp); with none attached the event hooks cost
/// one branch.
class Engine {
 public:
  /// Throws std::invalid_argument when params.validate() reports errors.
  Engine(const trace::ContactTrace& trace, EngineParams params);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the whole trace and returns the final metrics. Equivalent to
  /// finish(); throws std::logic_error when the run already finished.
  EngineResult run();

  /// Executes exactly one pending simulation event (a publication instant
  /// or one contact). Returns false when no events remain. Throws
  /// std::logic_error after finish().
  bool step();

  /// Executes every event strictly before `horizon` (same semantics as
  /// sim::Simulator::runUntil). Throws std::logic_error after finish().
  void runUntil(SimTime horizon);

  /// Drains the remaining events and returns the final metrics. At most
  /// one of run()/finish() may complete; a second call throws
  /// std::logic_error.
  EngineResult finish();

  /// True once run()/finish() returned the final result.
  [[nodiscard]] bool finished() const { return finished_; }

  /// Simulation clock: time of the last executed event.
  [[nodiscard]] SimTime now() const { return sim_.now(); }

  /// End of the driving trace (the natural horizon of the run).
  [[nodiscard]] SimTime endTime() const { return trace_.endTime(); }

  /// Events not yet executed; 0 before the first step and after finish().
  [[nodiscard]] std::size_t pendingEvents() const {
    return sim_.pendingEvents();
  }

  /// Snapshot of the metrics as of the current clock — the same structure
  /// run() returns, computable at any point of a stepped run.
  [[nodiscard]] EngineResult currentResult() const;

  /// Attaches (or detaches, with nullptr) the event observer. Non-owning;
  /// the observer must outlive the run. Attach before stepping to see the
  /// whole stream.
  void setObserver(obs::EngineObserver* observer);

  // Introspection (tests, examples).
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  [[nodiscard]] const InternetServices& internet() const { return internet_; }
  [[nodiscard]] const MetricsCollector& metrics() const { return metrics_; }
  [[nodiscard]] const EngineParams& params() const { return params_; }
  [[nodiscard]] const EngineTotals& totals() const { return totals_; }
  [[nodiscard]] std::vector<NodeId> accessNodes() const;
  /// The run's fault schedule; nullptr when faults are disabled.
  [[nodiscard]] const faults::FaultPlan* faultPlan() const {
    return faults_.get();
  }
  /// Cross-contact recovery state (pending retransmissions); nullptr when
  /// recovery is disabled.
  [[nodiscard]] const RecoveryState* recoveryState() const {
    return recovery_.get();
  }
  /// The run's Byzantine adversary; nullptr when the adversary is off.
  [[nodiscard]] const faults::AdversaryPlan* adversaryPlan() const {
    return adversary_.get();
  }
  /// The defense layer's suspicion tracker; nullptr when the defense is off.
  [[nodiscard]] const ReputationTracker* reputationTracker() const {
    return reputation_.get();
  }

  // --- checkpoint/restore (src/core/checkpoint.cpp) -----------------------

  /// Writes a versioned, checksummed snapshot of the complete engine state
  /// to `path` (atomically, via temp file + rename). Legal at any step
  /// boundary, including before the first step and after the last event;
  /// throws std::logic_error after finish(). `extra` is an opaque
  /// caller-supplied blob stored alongside the state (e.g. output-sink byte
  /// offsets; see readCheckpointInfo); throws CheckpointError on I/O
  /// failure. See docs/CHECKPOINT.md for the format and guarantees.
  void saveCheckpoint(const std::string& path,
                      std::string_view extra = {}) const;

  /// Restores the state saved by saveCheckpoint into this engine, which
  /// must be freshly constructed (same trace and params, not yet stepped,
  /// no observer attached — attach sinks after restoring). Finishing the
  /// restored run is byte-identical to the uninterrupted run. Throws
  /// CheckpointError on a corrupt, truncated, version-mismatched, or
  /// configuration-mismatched file — the engine is only mutated after the
  /// payload checksum and the configuration fingerprint both verify.
  void restoreCheckpoint(const std::string& path);

  // --- sharded / streaming support (see core/sharded_engine.hpp) ----------
  //
  // A sharded run decomposes the trace into contact-connected components
  // and runs one Engine per component. These hooks give the component
  // engines the two properties the decomposition needs: a publication
  // stream shared by every component (identical daily catalogs) and a
  // publish horizon independent of the component's own last contact.

  /// Draws publication randomness (the daily synthetic batch) from an
  /// independent stream seeded with `seed` instead of the engine stream.
  /// Every component engine of a sharded run receives the same publish
  /// seed, so all components publish the identical catalog no matter how
  /// many node/query draws their own streams consumed. Must be called
  /// before the first advance.
  void usePublishStream(std::uint64_t seed);

  /// Extends the daily publication schedule through `horizon` when the
  /// trace (or component sub-trace) ends earlier, so every component
  /// publishes the same number of days and users keep issuing queries
  /// through the global horizon. Must be called before the first advance.
  void setPublishHorizon(SimTime horizon);

  /// Feed mode: schedules publications (and churn observations) only; the
  /// caller then pushes contacts one at a time in ascending start order
  /// with feedContact(), and finish() drains the tail. The trace passed to
  /// the constructor acts as the node universe (typically contact-less);
  /// consequences: the frequent-contact relation is empty (MBT query
  /// proxying is inert) and fault churn intervals are empty (the plan
  /// horizon is the placeholder trace's end). Message loss, truncation,
  /// and corruption faults still apply per contact.
  void beginFeed();

  /// Runs every event up to and including the contact's start instant
  /// (publications first at equal instants, as in a scheduled run), then
  /// the contact itself. With replay=true the events are skipped, not run
  /// — checkpoint restore rebuilds the schedule position this way.
  void feedContact(const trace::Contact& contact, bool replay = false);

  /// Replay companion to runUntil(horizon): discards every remaining
  /// scheduled event strictly before `horizon` without running it.
  void skipReplayUntil(SimTime horizon);

 private:
  friend class ShardedEngine;  // component (de)serialization, sim position

  void setupNodes();
  /// Builds the event schedule lazily, on the first advance.
  void ensureScheduled();
  /// Daily 2 PM publication events through max(trace end, publish horizon).
  void schedulePublications();
  /// Churn transition observation events (no-op without a fault plan).
  void scheduleChurnEvents();
  void throwIfFinished(const char* what) const;
  /// Forwards to the attached observer; no-op (one branch) when detached.
  void emit(const obs::SimEvent& event);
  void publishDay(SimTime now);
  void processContact(const trace::Contact& contact);
  void syncAccessNode(Node& node, SimTime now);
  void deliverWholeFile(Node& node, FileId file, SimTime now);
  void expireNodeData(Node& node, SimTime now);
  void runDiscoveryPhase(const std::vector<Node*>& members, SimTime now,
                         int metadataBudget, RecoverySession* session);
  void runDownloadPhase(const std::vector<Node*>& members, SimTime now,
                        int pieceBudget, RecoverySession* session);
  /// Delivers one planned coded broadcast: draws a coefficient seed per
  /// frame, folds the frame into every incomplete member's decoder, credits
  /// innovative receptions, and converts full-rank decoders into stored
  /// pieces. Only called in coded mode (coded_ non-null).
  void deliverCodedBroadcast(const CodedBroadcast& cb,
                             const std::vector<Node*>& members, SimTime now,
                             RecoverySession* session);
  /// Folds one coded frame into `receiver`'s decoder with full accounting
  /// (innovation counters, credits, decode-at-full-rank). Returns true when
  /// the frame was innovative. Shared by the broadcast and recovery paths.
  /// `polluted` marks a frame whose payload is Byzantine junk and `origin`
  /// the attacker's id (GenerationDecoder::kNoOrigin for honest or relayed
  /// traffic); at full rank a tainted decoder is rolled back (defense on)
  /// or delivers garbage (defense off).
  bool deliverCodedFrameTo(Node& receiver, NodeId sender, FileId file,
                           std::uint32_t generationSize, bool requested,
                           std::span<const std::uint8_t> coefficients,
                           bool polluted, std::uint32_t origin,
                           const FileInfo& info, SimTime now);
  /// The coefficient vector a sender emits for `seed`: a fresh sparse
  /// combination from a complete holder, a recoded row-space mix from a
  /// partial one. `taintedOut` (optional) is set when the emitted mix
  /// includes a polluted row of the sender's own decoder (relayed
  /// pollution).
  [[nodiscard]] std::vector<std::uint8_t> codedFrameCoefficients(
      Node& sender, FileId file, std::uint32_t generationSize,
      std::uint64_t seed, bool* taintedOut = nullptr);
  /// Draws the channel loss for one deliverable metadata frame: returns
  /// true when the frame was lost, updating counters and emitting the
  /// fault event. Only called when faults_ is non-null.
  bool metadataReceptionFaulted(NodeId receiver, NodeId sender, FileId file,
                                SimTime now);
  /// Draws the channel faults for one deliverable piece: returns true when
  /// the reception must be skipped (frame lost, or payload corrupted and
  /// rejected by its checksum), updating counters and emitting events.
  /// A lost (not corrupted) frame is recorded in `session` when one is
  /// attached. Only called when faults_ is non-null.
  bool pieceReceptionFaulted(NodeId receiver, NodeId sender, FileId file,
                             std::uint32_t piece, bool requested, SimTime now,
                             RecoverySession* session);
  /// Stores one metadata record at `receiver` with full accounting
  /// (reception counter, verification/rejection handling, credits, metrics,
  /// events). Shared by the discovery, retransmission, and repair paths.
  void deliverMetadataTo(Node& receiver, NodeId sender, const Metadata& md,
                         SimTime now);
  /// Stores one piece at `receiver` with full accounting. Shared by the
  /// download, retransmission, and repair paths.
  void deliverPieceTo(Node& receiver, NodeId sender, FileId file,
                      std::uint32_t piece, const FileInfo& info,
                      bool requested, SimTime now);
  /// One retransmission attempt of `frame` (counted + evented): re-draws
  /// the channel faults and delivers on success; on another loss the frame
  /// is re-queued into `session` (when attached and retries remain).
  void attemptRedelivery(LostFrame frame, RecoverySession* session,
                         SimTime now);
  /// Serves every cross-contact pending frame whose sender and receiver
  /// both attend this contact.
  void servePendingRecoveries(const std::vector<Node*>& members,
                              RecoverySession* session, SimTime now);
  /// Anti-entropy repair: receivers summarise their holdings in a Bloom
  /// summary vector; peers push query-matching metadata and wanted pieces
  /// the summary proves missing, under params_.recovery.repairPerContact.
  void runRepairPhase(const std::vector<Node*>& members, SimTime now,
                      RecoverySession* session);
  /// Charges one anomaly against `suspect` (no-op when the defense is off);
  /// counts/events newly entered quarantines and ground-truth false ones.
  void noteEvidence(NodeId suspect, EvidenceKind kind, SimTime now);
  /// True while `node` is quarantined by the defense layer (always false
  /// when the defense is off). Applies lazy suspicion decay and
  /// counts/events releases.
  bool isQuarantined(NodeId node, SimTime now);
  /// True when a Byzantine `sender` lies about this named-piece transfer:
  /// the forged payload fails the metadata checksum, the reception is
  /// dropped, and (defense on) verification evidence accrues. Consumes one
  /// adversary draw per Byzantine-sent piece.
  bool adversaryLiedPiece(NodeId receiver, NodeId sender, FileId file,
                          std::uint32_t piece, SimTime now);
  /// True when a Byzantine `sender` pollutes the coded frame it is about
  /// to emit (counts and events the injection). Consumes one adversary
  /// draw per Byzantine-sent coded frame.
  bool adversaryPollutesFrame(NodeId sender, FileId file, SimTime now);
  // Checkpoint internals. Component (de)serialization lives in engine.cpp
  // (it touches the file-local EngineCaches); the file format, checksum,
  // fingerprint, and schedule-replay logic live in checkpoint.cpp.
  void saveComponentState(Serializer& out) const;
  void loadComponentState(Deserializer& in);
  /// Recomputes the popularity-ordered carry stock for the current publish
  /// epoch (caches_->topPopular holds pointers into the catalog, so restore
  /// recomputes it instead of serializing it).
  void refreshPublishEpochCaches();
  /// SHA-1 over the engine configuration (params + trace identity); stored
  /// in checkpoints so a restore into a different run fails loudly.
  [[nodiscard]] Sha1Digest configFingerprint() const;

  const trace::ContactTrace& trace_;
  EngineParams params_;
  std::uint32_t nextForgedId_ = 1u << 24;  // kForgedIdBase in engine.cpp
  Rng rng_;
  InternetServices internet_;
  MetricsCollector metrics_;
  NodePool nodes_;
  /// Null when params_.faults is disabled (the zero-cost clean path: every
  /// fault site costs one pointer test, like the observer hooks).
  std::unique_ptr<faults::FaultPlan> faults_;
  /// Null when params_.recovery is disabled (same zero-cost discipline).
  std::unique_ptr<RecoveryState> recovery_;
  /// RLNC decoders + dedicated coefficient-seed stream; null outside coded
  /// mode (same zero-cost discipline as faults_/recovery_).
  std::unique_ptr<CodedEngineState> coded_;
  /// Null when params_.adversary is disabled (same zero-cost discipline).
  std::unique_ptr<faults::AdversaryPlan> adversary_;
  /// Null when params_.reputation (the defense) is disabled.
  std::unique_ptr<ReputationTracker> reputation_;
  /// Resolved once from the download-mode registry; never null after
  /// construction.
  const DownloadPlanner* planner_ = nullptr;
  EngineTotals totals_;
  std::unique_ptr<EngineCaches> caches_;
  sim::Simulator sim_;
  obs::EngineObserver* observer_ = nullptr;
  /// Files whose expiry was already evented (advanced at publish instants).
  SimTime expiryScanUpTo_ = 0;
  /// Independent publication stream; engaged by usePublishStream (sharded
  /// runs share one publish seed across every component engine).
  Rng publishRng_{0};
  bool hasPublishRng_ = false;
  /// Extends the publication schedule past the trace end; see
  /// setPublishHorizon.
  SimTime publishHorizon_ = 0;
  /// Feed mode: contacts arrive via feedContact instead of the trace.
  bool feeding_ = false;
  bool scheduled_ = false;
  bool finished_ = false;
};

/// Convenience: builds, runs, and returns the result in one call.
EngineResult runSimulation(const trace::ContactTrace& trace,
                           const EngineParams& params);

}  // namespace hdtn::core
