// Trace-driven simulation of the full cooperative file-sharing system.
//
// Implements the paper's simulation model (Section VI-A): n new files appear
// on the Internet every day at 2 PM with popularity drawn from the paper's
// distribution; each node queries each new file with probability equal to
// its popularity; a configurable fraction of nodes has Internet access and
// is serviced instantly; all other exchange happens inside trace contacts,
// with fixed per-contact budgets of metadata and file transmissions.
#pragma once

#include <memory>
#include <vector>

#include "src/core/download.hpp"
#include "src/core/internet.hpp"
#include "src/core/metrics.hpp"
#include "src/core/node.hpp"
#include "src/core/protocol.hpp"
#include "src/sim/simulator.hpp"
#include "src/trace/contact_trace.hpp"
#include "src/util/random.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

struct EngineCaches;  // internal per-run caches (engine.cpp)

/// How file pieces are transmitted inside a contact.
enum class DownloadMode {
  kBroadcast,  ///< the paper's scheme: one sender, all members receive
  kPairwise,   ///< prior-work baseline: disjoint pairs, one receiver each
};

struct EngineParams {
  ProtocolConfig protocol;
  DownloadMode downloadMode = DownloadMode::kBroadcast;

  /// Fraction of nodes with direct Internet access (paper sweeps 0.1-0.9).
  double internetAccessFraction = 0.3;
  /// New files published per day at 2 PM.
  int newFilesPerDay = 40;
  /// File (and query) time-to-live in days.
  int fileTtlDays = 3;
  /// Metadata broadcasts allowed per contact.
  int metadataPerContact = 5;
  /// File transmissions allowed per contact (whole-file units; the piece
  /// budget is filesPerContact * piecesPerFile).
  int filesPerContact = 2;
  /// When true, per-contact budgets scale linearly with contact duration
  /// relative to referenceContactDuration (min multiplier 1). The paper's
  /// model is a fixed number per contact; this option models airtime.
  bool scaleBudgetsWithDuration = false;
  Duration referenceContactDuration = 10 * kMinute;
  /// Ordering of the download push phase (paper: popularity;
  /// rarest-first is the BitTorrent-style alternative, Ablation A7).
  PushOrder pushOrder = PushOrder::kPopularity;
  /// Pieces per published file; 1 matches the paper's whole-file exchange.
  std::uint32_t piecesPerFile = 1;
  std::uint32_t pieceSizeBytes = 1024;
  /// Window defining the frequent-contact relation (3 days for DieselNet,
  /// 1 day for NUS per the paper).
  Duration frequentContactPeriod = 3 * kDay;
  /// Fraction of non-access nodes that free-ride (never transmit).
  double freeRiderFraction = 0.0;
  /// Access nodes fetch files peers advertised as wanted ("requesting
  /// URIs"), carrying them into the DTN.
  bool accessFetchesPeerRequests = true;
  /// Per-node piece-storage capacity in pieces; 0 = unbounded (the paper's
  /// model). Bounded nodes evict lowest-popularity incomplete files first.
  std::size_t nodePieceCapacity = 0;
  /// Fraction of non-access nodes that are *forgers*: each publication day
  /// they craft fake metadata mimicking the day's most popular files
  /// (copied names, inflated popularity, unverifiable authentication tags)
  /// and push it into the DTN. Models the paper's fake-publisher threat.
  double forgerFraction = 0.0;
  /// Fake records crafted per forger per day.
  int forgeriesPerForgerPerDay = 3;
  /// When true, nodes verify metadata authentication tags against the
  /// well-known publisher registry before accepting (paper Section III-B,
  /// metadata field (f)); forged records are rejected on contact.
  bool verifyMetadata = false;
  /// When true, the metadata server replaces publisher-assigned popularity
  /// with its *observed* estimate — the fraction of access nodes that
  /// requested the file in the past 24 h (paper Section IV). Query
  /// generation still uses the ground-truth interest probability; only the
  /// ranking/push order sees the estimate.
  bool useObservedPopularity = false;
  /// When non-empty, exactly these nodes have Internet access and
  /// internetAccessFraction is ignored (scenario tests, examples).
  std::vector<NodeId> explicitAccessNodes;
  /// When non-empty, exactly these nodes free-ride and freeRiderFraction is
  /// ignored.
  std::vector<NodeId> explicitFreeRiders;
  /// Access nodes carry a popularity-ordered metadata "stock" covering this
  /// fraction of the currently alive files (at least 10 records, at most
  /// accessMetadataSyncLimit). Deliberately below 1.0: targeted
  /// (query-driven) collection is what MBT's query proxying adds on top of
  /// the stock, so full coverage would erase the MBT-vs-MBT-Q distinction.
  double accessMetadataSyncFraction = 0.25;
  /// Absolute cap on the carry stock.
  std::size_t accessMetadataSyncLimit = 500;
  std::uint64_t seed = 42;
};

struct EngineTotals {
  std::uint64_t contactsProcessed = 0;
  std::uint64_t filesPublished = 0;
  std::uint64_t queriesGenerated = 0;
  std::uint64_t metadataBroadcasts = 0;
  std::uint64_t pieceBroadcasts = 0;
  std::uint64_t metadataReceptions = 0;
  std::uint64_t pieceReceptions = 0;
  std::uint64_t forgeriesCrafted = 0;
  /// Forged records stored by honest nodes (0 when verification is on).
  std::uint64_t forgeriesAccepted = 0;
  /// Forged records dropped at reception by the verifier.
  std::uint64_t forgeriesRejected = 0;
};

struct EngineResult {
  DeliveryReport delivery;             ///< non-access nodes (the paper's metric)
  DeliveryReport accessDelivery;       ///< access nodes (sanity ~ 1.0)
  DeliveryReport contributorDelivery;  ///< non-access, non-free-riding
  DeliveryReport freeRiderDelivery;    ///< non-access free-riders
  EngineTotals totals;
};

class Engine {
 public:
  Engine(const trace::ContactTrace& trace, EngineParams params);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the whole trace and returns the final metrics. Call once.
  EngineResult run();

  // Introspection (tests, examples).
  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  [[nodiscard]] const InternetServices& internet() const { return internet_; }
  [[nodiscard]] const MetricsCollector& metrics() const { return metrics_; }
  [[nodiscard]] const EngineParams& params() const { return params_; }
  [[nodiscard]] std::vector<NodeId> accessNodes() const;

 private:
  void setupNodes();
  void publishDay(SimTime now);
  void processContact(const trace::Contact& contact);
  void syncAccessNode(Node& node, SimTime now);
  void deliverWholeFile(Node& node, FileId file, SimTime now);
  void expireNodeData(Node& node, SimTime now);
  void runDiscoveryPhase(const std::vector<Node*>& members, SimTime now,
                         int budgetMultiplier);
  void runDownloadPhase(const std::vector<Node*>& members, SimTime now,
                        int budgetMultiplier);

  const trace::ContactTrace& trace_;
  EngineParams params_;
  std::uint32_t nextForgedId_ = 1u << 24;  // kForgedIdBase in engine.cpp
  Rng rng_;
  InternetServices internet_;
  MetricsCollector metrics_;
  std::vector<std::unique_ptr<Node>> nodes_;
  EngineTotals totals_;
  std::unique_ptr<EngineCaches> caches_;
  bool ran_ = false;
};

/// Convenience: builds, runs, and returns the result in one call.
EngineResult runSimulation(const trace::ContactTrace& trace,
                           const EngineParams& params);

}  // namespace hdtn::core
