// Cooperative and tit-for-tat metadata distribution (paper Section IV).
//
// During a contact, the clique members plan an ordered sequence of metadata
// *broadcasts* (one sender at a time, everyone else receives):
//
//   Cooperative (IV-A): phase 1 sends metadata matching the queries of
//   connected nodes — records matching more nodes' queries first, ties by
//   decreasing popularity; phase 2 sends the remaining metadata in
//   decreasing popularity.
//
//   Tit-for-tat (IV-B): senders take turns; each weighs a record by the sum
//   of the credits of the nodes requesting it, so serving contributors is
//   preferred. Free-riders (contributes == false) never transmit but still
//   overhear broadcasts — the paper notes they cannot be fully inhibited,
//   only starved of *targeted* service.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/core/credit.hpp"
#include "src/core/metadata_store.hpp"
#include "src/util/types.hpp"

namespace hdtn::obs {
class EngineObserver;  // src/obs/events.hpp
}

namespace hdtn::core {

/// Scheduling discipline for a contact.
enum class Scheduling {
  kCooperative,     ///< altruistic: coordinator orders by request count
  kTitForTat,       ///< selfish-robust: cyclic senders, credit-weighted picks
  kPopularityOnly,  ///< ablation: ignore requests, pure popularity push
};

/// One clique member's state as seen by the discovery planner.
struct DiscoveryPeer {
  NodeId id;
  /// The member's metadata store (source of records it can send).
  const MetadataStore* store = nullptr;
  /// Records this member refused (failed authentication); treated as held
  /// so they are never re-broadcast at it. Optional.
  const std::unordered_set<FileId>* rejected = nullptr;
  /// Senders this member ignores entirely (repeat forgery offenders). A
  /// member is not a lacker of a record when every holder is distrusted.
  const std::unordered_set<NodeId>* distrustedSenders = nullptr;
  /// Query strings this member wants served: its own plus, under MBT, the
  /// stored queries of its frequent contacts.
  std::vector<std::string> queries;
  /// Optional pre-tokenized form of `queries` (one token list per query).
  /// When set, the planner matches against these and never tokenizes (or
  /// reads) `queries` — the engine points this at Node::contactQueryTokens
  /// so tokenization happens once per query, not once per contact.
  const std::vector<std::vector<std::string>>* tokenizedQueries = nullptr;
  /// The member's credit ledger (used when it is the sender under TFT).
  const CreditLedger* credits = nullptr;
  /// Free-riders set this false: they receive but never send.
  bool contributes = true;
};

/// One planned metadata broadcast.
struct MetadataBroadcast {
  NodeId sender;
  const Metadata* metadata = nullptr;
  /// Members that lack the record and have a query matching it.
  std::vector<NodeId> requesters;
  /// 1 = requested phase, 2 = popularity push phase.
  int phase = 1;
};

/// Plans up to `budget` broadcasts for one contact. Each record is broadcast
/// at most once (after a broadcast every member holds it). Deterministic in
/// its inputs. When an observer is attached, emits one kDiscoveryPlanned
/// event per invocation timestamped at `now` (extra = planned broadcasts,
/// value = budget), exposing budget- vs supply-limited contacts.
[[nodiscard]] std::vector<MetadataBroadcast> planDiscovery(
    std::span<const DiscoveryPeer> peers, int budget, Scheduling scheduling,
    obs::EngineObserver* observer = nullptr, SimTime now = 0);

/// Naive reference planner, retained for equivalence testing: the direct
/// transcription of the paper's scheduling rules with no indexing (the
/// tit-for-tat loop rescans every candidate each turn). Must produce output
/// byte-identical to planDiscovery on any input; see
/// core_planner_property_test.cpp.
[[nodiscard]] std::vector<MetadataBroadcast> planDiscoveryReference(
    std::span<const DiscoveryPeer> peers, int budget, Scheduling scheduling);

}  // namespace hdtn::core
