// Tit-for-tat credit ledger.
//
// Paper Section IV-B: "Each node u maintains a credit value for each other
// node v ... if v sends to u a new metadata that matches some of u's query
// strings, then v's credit is increased by 5; otherwise, if v sends to u a
// new metadata that u is not interested in, then v's credit is increased by
// the popularity of the metadata." The same ledger drives the tit-for-tat
// file download (Section V-B): senders weigh a request by the requester's
// credit, so contributors get served earlier.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/util/serialize.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// Credit granted for an item the receiver had requested.
inline constexpr double kRequestedCredit = 5.0;

class CreditLedger {
 public:
  /// Credit this node assigns to `peer`; unknown peers have 0.
  [[nodiscard]] double credit(NodeId peer) const;

  /// Records receiving a *requested* item from `peer` (+5).
  void onReceivedRequested(NodeId peer);

  /// Records receiving an *unrequested* item from `peer` (+popularity).
  void onReceivedUnrequested(NodeId peer, Popularity popularity);

  /// Direct adjustment (tests, decay policies).
  void addCredit(NodeId peer, double delta);

  /// Multiplies every credit by `factor` in [0, 1]; aging-out policy so
  /// ancient contributions do not dominate forever.
  void decay(double factor);

  [[nodiscard]] std::size_t knownPeers() const { return credits_.size(); }

  /// (peer, credit) pairs sorted by credit descending, peer ascending.
  [[nodiscard]] std::vector<std::pair<NodeId, double>> ranking() const;

  /// Checkpoints all credits (peer-id ascending for deterministic bytes).
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  std::unordered_map<NodeId, double> credits_;
};

}  // namespace hdtn::core
