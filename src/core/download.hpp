// Broadcast-based file download (paper Section V).
//
// A contact's clique schedules piece *broadcasts*: one sender at a time, all
// other members silent receivers.
//
//   Cooperative (V-A): a coordinator (lowest id) orders pieces: phase 1 —
//   pieces requested by clique members, more requesters first, ties by
//   decreasing file popularity; phase 2 — other pieces by decreasing
//   popularity.
//
//   Tit-for-tat (V-B): no coordinator (a selfish one could cheat); members
//   broadcast in an agreed pseudo-random cyclic order seeded by the sum of
//   the ids, each weighing pieces by the sum of the requesters' credits.
//
// A pairwise baseline (the transmission mode of all prior DTN content
// distribution per Section II) is provided for comparison: members are
// matched into disjoint pairs, and each pair exchanges pieces over a
// unicast link with a per-pair budget.
//
// A network-coded mode (docs/CODING.md) broadcasts RLNC combinations over a
// file's pieces instead of named pieces; receivers accumulate rank and
// decode at full rank, so losses cost redundancy instead of replay.
//
// The planners behind these modes implement the DownloadPlanner interface
// (download_planner.hpp) and are resolved from a single mode registry; the
// free functions below are thin legacy wrappers over that registry.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/core/credit.hpp"
#include "src/core/discovery.hpp"  // Scheduling
#include "src/core/piece_store.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// How pieces move during a contact (one registry entry per mode spelling;
/// broadcast covers the coop/tft/popularity schedulings).
enum class DownloadMode {
  kBroadcast,  ///< the paper's clique broadcasts (Section V)
  kPairwise,   ///< disjoint-pair unicast baseline (Section II regime)
  kCoded,      ///< RLNC generation broadcasts (docs/CODING.md)
};

/// Knobs of the coded download mode (docs/CODING.md).
struct CodedParams {
  /// Extra coded frames per unit of receiver deficit: a file k pieces short
  /// at the worst receiver is granted ceil(k * (1 + redundancy)) frames.
  double redundancy = 0.5;
  /// Probability that a coefficient is nonzero (sparse RLNC).
  double sparsity = 0.5;

  /// One descriptive message per violation (empty when valid): redundancy
  /// in [0, 4], sparsity in (0, 1].
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// One clique member's state as seen by the download planner.
struct DownloadPeer {
  NodeId id;
  const PieceStore* pieces = nullptr;
  /// Files this member is actively downloading (it holds a matching
  /// metadata for an unsatisfied query); advertised as URIs in hellos.
  /// A view over node-owned storage (Node::wantedFilesView) — planners
  /// never copy the list.
  std::span<const FileId> wanted;
  const CreditLedger* credits = nullptr;
  bool contributes = true;
};

/// Popularity oracle: the engine resolves it from catalog/metadata.
using PopularityFn = std::function<Popularity(FileId)>;

/// Ordering of the push phase (and of ties inside the requested phase).
enum class PushOrder {
  kPopularity,   ///< the paper's rule: decreasing file popularity
  kRarestFirst,  ///< BitTorrent's rule: fewest holders in the clique first
};

/// One planned piece broadcast.
struct PieceBroadcast {
  NodeId sender;
  FileId file;
  std::uint32_t piece = 0;
  /// Members that want the file and lack this piece; views the owning
  /// DownloadPlan's requester pool.
  std::span<const NodeId> requesters;
  /// 1 = requested phase, 2 = popularity push phase.
  int phase = 1;
};

/// One planned pairwise (unicast) transfer.
struct PieceTransfer {
  NodeId sender;
  NodeId receiver;
  FileId file;
  std::uint32_t piece = 0;
  bool requested = false;
};

/// One planned run of coded frames: `frames` RLNC combinations over the
/// file's generation, broadcast by `sender`. Coefficient seeds are drawn at
/// transmission time from the engine's coded stream.
struct CodedBroadcast {
  NodeId sender;
  FileId file;
  std::uint32_t generationSize = 0;  ///< k: pieces in the file
  std::uint32_t frames = 0;          ///< coded frames to transmit
  Popularity popularity = 0.0;
  /// Members actively wanting the file; views the requester pool.
  std::span<const NodeId> requesters;
};

/// What a DownloadPlanner produced for one contact. Owns the requester
/// arena its broadcast spans point into, so it is movable but not copyable.
/// Exactly one of the three lists is populated, by mode.
class DownloadPlan {
 public:
  DownloadPlan() = default;
  DownloadPlan(const DownloadPlan&) = delete;
  DownloadPlan& operator=(const DownloadPlan&) = delete;
  DownloadPlan(DownloadPlan&&) noexcept = default;
  DownloadPlan& operator=(DownloadPlan&&) noexcept = default;

  std::vector<PieceBroadcast> broadcasts;
  std::vector<PieceTransfer> transfers;
  std::vector<CodedBroadcast> coded;
  /// Arena behind every requesters span above. Appending after the spans
  /// are finalized would dangle them; planners fill it once, then publish.
  std::vector<NodeId> requesterPool;

  // Legacy conveniences: existing call sites and tests treat a broadcast
  // plan as a range of PieceBroadcasts.
  [[nodiscard]] std::size_t size() const { return broadcasts.size(); }
  [[nodiscard]] bool empty() const { return broadcasts.empty(); }
  [[nodiscard]] const PieceBroadcast& operator[](std::size_t i) const {
    return broadcasts[i];
  }
  [[nodiscard]] auto begin() const { return broadcasts.begin(); }
  [[nodiscard]] auto end() const { return broadcasts.end(); }
};

/// Plans up to `budgetPieces` broadcasts for one contact. Each (file, piece)
/// is broadcast at most once. Deterministic in its inputs. When an observer
/// is attached, emits one kDownloadPlanned event per invocation timestamped
/// at `now` (extra = planned broadcasts, value = budget). Thin wrapper over
/// the broadcast planners in the mode registry (download_planner.hpp).
[[nodiscard]] DownloadPlan planDownload(
    std::span<const DownloadPeer> peers, const PopularityFn& popularityOf,
    int budgetPieces, Scheduling scheduling,
    PushOrder pushOrder = PushOrder::kPopularity,
    obs::EngineObserver* observer = nullptr, SimTime now = 0);

/// Pairwise baseline: members are greedily matched into disjoint pairs
/// (ascending id order); each pair plans up to `budgetPerPair` transfers,
/// requested pieces first (then popularity). Models the "exactly one
/// receiver per transmission" regime the paper argues against. Emits one
/// kDownloadPlanned event per invocation when an observer is attached.
/// Thin wrapper over the pairwise registry planner.
[[nodiscard]] std::vector<PieceTransfer> planPairwiseDownload(
    std::span<const DownloadPeer> peers, const PopularityFn& popularityOf,
    int budgetPerPair, obs::EngineObserver* observer = nullptr,
    SimTime now = 0);

}  // namespace hdtn::core
