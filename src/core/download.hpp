// Broadcast-based file download (paper Section V).
//
// A contact's clique schedules piece *broadcasts*: one sender at a time, all
// other members silent receivers.
//
//   Cooperative (V-A): a coordinator (lowest id) orders pieces: phase 1 —
//   pieces requested by clique members, more requesters first, ties by
//   decreasing file popularity; phase 2 — other pieces by decreasing
//   popularity.
//
//   Tit-for-tat (V-B): no coordinator (a selfish one could cheat); members
//   broadcast in an agreed pseudo-random cyclic order seeded by the sum of
//   the ids, each weighing pieces by the sum of the requesters' credits.
//
// A pairwise baseline (the transmission mode of all prior DTN content
// distribution per Section II) is provided for comparison: members are
// matched into disjoint pairs, and each pair exchanges pieces over a
// unicast link with a per-pair budget.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/core/credit.hpp"
#include "src/core/discovery.hpp"  // Scheduling
#include "src/core/piece_store.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

/// One clique member's state as seen by the download planner.
struct DownloadPeer {
  NodeId id;
  const PieceStore* pieces = nullptr;
  /// Files this member is actively downloading (it holds a matching
  /// metadata for an unsatisfied query); advertised as URIs in hellos.
  std::vector<FileId> wanted;
  const CreditLedger* credits = nullptr;
  bool contributes = true;
};

/// Popularity oracle: the engine resolves it from catalog/metadata.
using PopularityFn = std::function<Popularity(FileId)>;

/// Ordering of the push phase (and of ties inside the requested phase).
enum class PushOrder {
  kPopularity,   ///< the paper's rule: decreasing file popularity
  kRarestFirst,  ///< BitTorrent's rule: fewest holders in the clique first
};

/// One planned piece broadcast.
struct PieceBroadcast {
  NodeId sender;
  FileId file;
  std::uint32_t piece = 0;
  /// Members that want the file and lack this piece.
  std::vector<NodeId> requesters;
  /// 1 = requested phase, 2 = popularity push phase.
  int phase = 1;
};

/// Plans up to `budgetPieces` broadcasts for one contact. Each (file, piece)
/// is broadcast at most once. Deterministic in its inputs. When an observer
/// is attached, emits one kDownloadPlanned event per invocation timestamped
/// at `now` (extra = planned broadcasts, value = budget).
[[nodiscard]] std::vector<PieceBroadcast> planDownload(
    std::span<const DownloadPeer> peers, const PopularityFn& popularityOf,
    int budgetPieces, Scheduling scheduling,
    PushOrder pushOrder = PushOrder::kPopularity,
    obs::EngineObserver* observer = nullptr, SimTime now = 0);

/// One planned pairwise (unicast) transfer.
struct PieceTransfer {
  NodeId sender;
  NodeId receiver;
  FileId file;
  std::uint32_t piece = 0;
  bool requested = false;
};

/// Pairwise baseline: members are greedily matched into disjoint pairs
/// (ascending id order); each pair plans up to `budgetPerPair` transfers,
/// requested pieces first (then popularity). Models the "exactly one
/// receiver per transmission" regime the paper argues against. Emits one
/// kDownloadPlanned event per invocation when an observer is attached.
[[nodiscard]] std::vector<PieceTransfer> planPairwiseDownload(
    std::span<const DownloadPeer> peers, const PopularityFn& popularityOf,
    int budgetPerPair, obs::EngineObserver* observer = nullptr,
    SimTime now = 0);

}  // namespace hdtn::core
