#include "src/core/credit.hpp"

#include <algorithm>

namespace hdtn::core {

double CreditLedger::credit(NodeId peer) const {
  auto it = credits_.find(peer);
  return it == credits_.end() ? 0.0 : it->second;
}

void CreditLedger::onReceivedRequested(NodeId peer) {
  credits_[peer] += kRequestedCredit;
}

void CreditLedger::onReceivedUnrequested(NodeId peer, Popularity popularity) {
  credits_[peer] += popularity;
}

void CreditLedger::addCredit(NodeId peer, double delta) {
  credits_[peer] += delta;
}

void CreditLedger::decay(double factor) {
  for (auto& [_, credit] : credits_) credit *= factor;
}

std::vector<std::pair<NodeId, double>> CreditLedger::ranking() const {
  std::vector<std::pair<NodeId, double>> out(credits_.begin(),
                                             credits_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace hdtn::core
