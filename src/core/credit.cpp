#include "src/core/credit.hpp"

#include <algorithm>

namespace hdtn::core {

double CreditLedger::credit(NodeId peer) const {
  auto it = credits_.find(peer);
  return it == credits_.end() ? 0.0 : it->second;
}

void CreditLedger::onReceivedRequested(NodeId peer) {
  credits_[peer] += kRequestedCredit;
}

void CreditLedger::onReceivedUnrequested(NodeId peer, Popularity popularity) {
  credits_[peer] += popularity;
}

void CreditLedger::addCredit(NodeId peer, double delta) {
  credits_[peer] += delta;
}

void CreditLedger::decay(double factor) {
  for (auto& [_, credit] : credits_) credit *= factor;
}

std::vector<std::pair<NodeId, double>> CreditLedger::ranking() const {
  std::vector<std::pair<NodeId, double>> out(credits_.begin(),
                                             credits_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void CreditLedger::saveState(Serializer& out) const {
  std::vector<std::pair<NodeId, double>> sorted(credits_.begin(),
                                                credits_.end());
  std::sort(sorted.begin(), sorted.end());
  out.u64(sorted.size());
  for (const auto& [peer, credit] : sorted) {
    out.u32(peer.value);
    out.f64(credit);
  }
}

void CreditLedger::loadState(Deserializer& in) {
  credits_.clear();
  const std::size_t count = in.length();
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId peer{in.u32()};
    credits_[peer] = in.f64();
  }
}

}  // namespace hdtn::core
