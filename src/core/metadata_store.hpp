// Per-node metadata storage.
//
// "The file discovery process collects metadata and stores them in the
// local storage of the node" (paper Section III-B). Metadata is keyed by
// FileId (equivalently its URI), expires with its file's TTL, and can be
// enumerated in popularity order for the push phases of discovery.
#pragma once

#include <unordered_map>
#include <vector>

#include "src/core/metadata.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

class MetadataStore {
 public:
  /// Inserts (or refreshes) a record. A refresh keeps the higher popularity
  /// snapshot. Returns true when the record was not present before.
  bool add(const Metadata& md);

  [[nodiscard]] bool has(FileId file) const;
  [[nodiscard]] const Metadata* get(FileId file) const;

  /// Drops records whose TTL has elapsed at `now`. Returns number dropped.
  std::size_t expire(SimTime now);

  void remove(FileId file);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  /// All records, file-id ascending.
  [[nodiscard]] std::vector<const Metadata*> all() const;

  /// All records, popularity descending (ties by file id ascending).
  [[nodiscard]] std::vector<const Metadata*> byPopularity() const;

 private:
  std::unordered_map<FileId, Metadata> records_;
};

}  // namespace hdtn::core
