// Per-node metadata storage.
//
// "The file discovery process collects metadata and stores them in the
// local storage of the node" (paper Section III-B). Metadata is keyed by
// FileId (equivalently its URI), expires with its file's TTL, and can be
// enumerated in popularity order for the push phases of discovery.
//
// Enumeration views (all(), byPopularity()) are cached: the store keeps a
// generation counter bumped on every mutation, and each view is rebuilt
// lazily only when its cached generation falls behind. The per-contact hot
// path (every peer's store enumerated once per contact) therefore sorts
// nothing and allocates nothing in the steady state. Returned spans are
// invalidated by any non-const call, like iterators of a standard container.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/metadata.hpp"
#include "src/util/types.hpp"

namespace hdtn::core {

class MetadataStore {
 public:
  /// Unbounded store (the paper's model).
  MetadataStore() = default;

  /// Bounded store: at most `capacityRecords` records are retained. When
  /// full, add() sheds the least-popular record (ties broken by insertion
  /// order, oldest first — the same discipline PieceStore uses) or the
  /// incoming record itself when it would be the victim, so overload
  /// degrades gracefully instead of growing without bound.
  explicit MetadataStore(std::size_t capacityRecords)
      : capacity_(capacityRecords) {}

  /// Called with every record shed by capacity pressure (stored records
  /// evicted *and* incoming records refused admission). TTL expiry and
  /// explicit remove() do not fire it.
  using EvictionHook = std::function<void(const Metadata&)>;
  void setEvictionHook(EvictionHook hook) { evictionHook_ = std::move(hook); }

  [[nodiscard]] std::optional<std::size_t> capacity() const {
    return capacity_;
  }

  /// Inserts (or refreshes) a record. A refresh keeps the higher popularity
  /// snapshot. Returns true when the record was not present before and was
  /// admitted (a bounded store may shed the incoming record instead).
  bool add(const Metadata& md);

  [[nodiscard]] bool has(FileId file) const;
  [[nodiscard]] const Metadata* get(FileId file) const;

  /// Drops records whose TTL has elapsed at `now`. Returns number dropped.
  std::size_t expire(SimTime now);

  void remove(FileId file);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] bool empty() const { return records_.empty(); }

  /// All records, file-id ascending. Valid until the next mutation.
  [[nodiscard]] std::span<const Metadata* const> all() const;

  /// All records, popularity descending (ties by file id ascending). Valid
  /// until the next mutation.
  [[nodiscard]] std::span<const Metadata* const> byPopularity() const;

  /// Mutation counter, for callers layering their own caches on top.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Checkpoints all records (file-id ascending for deterministic bytes).
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  struct CachedView {
    std::uint64_t generation = 0;  // valid when == store generation (> 0)
    std::vector<const Metadata*> items;
  };

  /// Stored record plus its insertion order (the eviction tie-break). One
  /// map entry per record — metadata and seq used to live in two parallel
  /// maps, which doubled the hash lookups and node allocations on the
  /// per-contact hot path.
  struct Record {
    Metadata md;
    std::uint64_t seq = 0;
  };

  /// The stored record with the lowest (popularity, seq) — the next capacity
  /// victim. end() when empty. Total order: seqs are unique.
  [[nodiscard]] std::unordered_map<FileId, Record>::iterator evictionVictim();

  std::unordered_map<FileId, Record> records_;
  std::uint64_t nextSeq_ = 1;
  std::optional<std::size_t> capacity_;
  EvictionHook evictionHook_;
  // Generation 0 means "no view built yet"; every mutation bumps it, so a
  // view stamped with the current generation is exact.
  std::uint64_t generation_ = 1;
  mutable CachedView allView_;
  mutable CachedView popularityView_;
};

}  // namespace hdtn::core
