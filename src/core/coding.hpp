// Sparse random linear network coding (RLNC) over GF(2^8).
//
// The coded download mode (docs/CODING.md) broadcasts random linear
// combinations of a file's pieces instead of named pieces: a file's pieces
// form one *generation*, every coded frame carries a coefficient vector
// over GF(2^8), and any `pieceCount` linearly independent frames decode the
// whole generation. Losses therefore cost redundancy (one more frame from
// anybody) instead of a selective-ack replay round-trip.
//
// Everything here is deterministic: coefficient vectors are expanded from a
// 64-bit seed with a self-contained SplitMix64 (so a frame on the wire only
// needs the seed, and any receiver regenerates the same vector), and the
// incremental Gauss-Jordan decoder's row layout is a pure function of its
// frame arrival order — which makes its state checkpointable byte-for-byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/serialize.hpp"

namespace hdtn::core::coding {

// --- GF(2^8) field arithmetic -------------------------------------------
// The field is GF(2)[x] / (x^8 + x^4 + x^3 + x^2 + 1), i.e. the classic
// Reed-Solomon polynomial 0x11d, with generator alpha = 2. Multiplication
// and inversion go through log/antilog tables built once at first use.

/// Addition and subtraction coincide (characteristic 2).
[[nodiscard]] constexpr std::uint8_t gfAdd(std::uint8_t a, std::uint8_t b) {
  return a ^ b;
}

/// Table-backed product.
[[nodiscard]] std::uint8_t gfMul(std::uint8_t a, std::uint8_t b);

/// Bitwise shift-and-add product (no tables); cross-checks gfMul in tests.
[[nodiscard]] std::uint8_t gfMulSlow(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; `a` must be nonzero.
[[nodiscard]] std::uint8_t gfInv(std::uint8_t a);

/// a / b; `b` must be nonzero.
[[nodiscard]] std::uint8_t gfDiv(std::uint8_t a, std::uint8_t b);

// --- coefficient vectors ------------------------------------------------

/// Expands `seed` into a sparse coefficient vector of length `k`: each
/// position is nonzero with probability `sparsity` (clamped to (0, 1]), and
/// the vector is guaranteed to have at least one nonzero entry. The same
/// (k, seed, sparsity) always yields the same vector on every platform.
[[nodiscard]] std::vector<std::uint8_t> sparseCoefficients(
    std::uint32_t k, std::uint64_t seed, double sparsity);

// --- incremental decoder ------------------------------------------------

/// Incremental Gauss-Jordan eliminator over one generation.
///
/// Frames are folded in as they arrive; each fold either raises the rank by
/// one (*innovative*) or reduces to zero and is discarded (*redundant*).
/// Rows are kept fully reduced (leading 1, the pivot column eliminated from
/// every other row), so at full rank the rows ARE the unit vectors and the
/// payloads ARE the decoded pieces — decode() is a table lookup.
///
/// Constructed with payloadBytes == 0 the decoder tracks coefficients only
/// (rank bookkeeping inside the engine, where pieces are abstract); with a
/// payload size it additionally carries and decodes real piece bytes.
class GenerationDecoder {
 public:
  GenerationDecoder() = default;
  explicit GenerationDecoder(std::uint32_t generationSize,
                             std::uint32_t payloadBytes = 0);

  /// Sentinel origin for frames with no attributable source (honest
  /// traffic, or pollution relayed by an innocent recoder).
  static constexpr std::uint32_t kNoOrigin = 0xffffffffu;

  /// Folds one coded frame. Truncated frames (`coefficients.size()` under
  /// the generation size, or a payload that does not match payloadBytes())
  /// throw; degenerate frames — over-length coefficient vectors or all-zero
  /// vectors — are rejected *before any row operation* and counted in
  /// degenerateFrames(), since they can never raise the rank but would
  /// otherwise burn rowOps. Returns true when the frame was innovative.
  ///
  /// `polluted` marks a frame whose payload is known-junk (a Byzantine
  /// pollution attack, docs/ADVERSARY.md); `origin` is the attacker's node
  /// id for blame attribution. Folding a polluted frame taints every row it
  /// touches — see tainted().
  bool addFrame(std::span<const std::uint8_t> coefficients,
                std::span<const std::uint8_t> payload = {},
                bool polluted = false, std::uint32_t origin = kNoOrigin);

  /// Folds source piece `piece` held in the clear (unit coefficient
  /// vector). Returns true when it raised the rank.
  bool addSourcePiece(std::uint32_t piece,
                      std::span<const std::uint8_t> payload = {});

  /// A fresh combination of this decoder's row space — what a partial
  /// holder re-broadcasts (recoding). Deterministic in (state, seed);
  /// nonzero whenever rank() > 0. Returns a generation-sized coefficient
  /// vector; with payloads tracked, `payloadOut` (if non-null) receives the
  /// matching combined payload. `taintedOut` (if non-null) is set to
  /// whether the mix touched any tainted row — i.e. whether the recoded
  /// frame itself relays pollution.
  [[nodiscard]] std::vector<std::uint8_t> recodeCoefficients(
      std::uint64_t seed, double sparsity,
      std::vector<std::uint8_t>* payloadOut = nullptr,
      bool* taintedOut = nullptr) const;

  [[nodiscard]] std::uint32_t generationSize() const { return k_; }
  [[nodiscard]] std::uint32_t payloadBytes() const { return payloadBytes_; }
  [[nodiscard]] std::uint32_t rank() const { return rank_; }
  [[nodiscard]] bool complete() const { return k_ > 0 && rank_ == k_; }

  /// Row operations performed so far (one unit per row-times-scalar fold);
  /// a deterministic, platform-independent proxy for decode CPU cost.
  [[nodiscard]] std::uint64_t rowOps() const { return rowOps_; }

  /// Degenerate frames rejected before any row operation (all-zero
  /// coefficient vectors, over-length rows).
  [[nodiscard]] std::uint64_t degenerateFrames() const {
    return degenerateFrames_;
  }

  /// True when any stored row mixes in a polluted frame: at full rank the
  /// "decoded" generation would be garbage and must be rolled back
  /// (docs/ADVERSARY.md).
  [[nodiscard]] bool tainted() const;

  /// Stored rows whose frame arrived polluted (not merely contaminated by
  /// later elimination).
  [[nodiscard]] std::uint32_t pollutedRows() const;

  /// Sorted, unique origins of the arrival-polluted rows (kNoOrigin
  /// excluded) — the ground-truth blame list for a rollback.
  [[nodiscard]] std::vector<std::uint32_t> pollutedOrigins() const;

  /// The decoded pieces, in piece order. Requires complete() and payload
  /// tracking.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> decode() const;

  /// Checkpoints the full elimination state; a restored decoder continues
  /// byte-identically (docs/CHECKPOINT.md, payload v4).
  void saveState(Serializer& out) const;
  void loadState(Deserializer& in);

 private:
  struct Row {
    std::vector<std::uint8_t> coeffs;
    std::vector<std::uint8_t> payload;
    bool tainted = false;    ///< mixes in at least one polluted frame
    bool polluted = false;   ///< the frame itself arrived polluted
    std::uint32_t origin = kNoOrigin;  ///< attacker id when polluted
  };

  bool fold(std::vector<std::uint8_t> coeffs, std::vector<std::uint8_t> data,
            bool polluted, std::uint32_t origin);

  std::uint32_t k_ = 0;
  std::uint32_t payloadBytes_ = 0;
  std::uint32_t rank_ = 0;
  std::uint64_t rowOps_ = 0;
  std::uint64_t degenerateFrames_ = 0;
  std::vector<Row> rows_;             ///< one per innovative frame, reduced
  std::vector<std::uint32_t> pivot_;  ///< column -> row index (kNoPivot)
  static constexpr std::uint32_t kNoPivot = 0xffffffffu;
};

// --- encoder ------------------------------------------------------------

/// Source-side encoder over a complete generation of real piece bytes
/// (equal-sized pieces). Frames pair a seed-expanded coefficient vector
/// with the matching combined payload.
class CodedEncoder {
 public:
  explicit CodedEncoder(std::vector<std::vector<std::uint8_t>> pieces);

  struct Frame {
    std::vector<std::uint8_t> coefficients;
    std::vector<std::uint8_t> payload;
  };

  /// The frame for a seed-expanded sparse coefficient vector.
  [[nodiscard]] Frame frame(std::uint64_t seed, double sparsity) const;

  /// The payload matching an arbitrary coefficient vector.
  [[nodiscard]] std::vector<std::uint8_t> payloadFor(
      std::span<const std::uint8_t> coefficients) const;

  [[nodiscard]] std::uint32_t generationSize() const {
    return static_cast<std::uint32_t>(pieces_.size());
  }
  [[nodiscard]] std::uint32_t payloadBytes() const {
    return pieces_.empty()
               ? 0
               : static_cast<std::uint32_t>(pieces_.front().size());
  }

 private:
  std::vector<std::vector<std::uint8_t>> pieces_;
};

}  // namespace hdtn::core::coding
