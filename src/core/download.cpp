#include "src/core/download.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "src/obs/events.hpp"
#include "src/util/random.hpp"

namespace hdtn::core {
namespace {

struct PieceKey {
  FileId file;
  std::uint32_t piece = 0;
  friend auto operator<=>(const PieceKey&, const PieceKey&) = default;
};

struct Candidate {
  PieceKey key;
  Popularity popularity = 0.0;
  std::vector<NodeId> holders;
  std::vector<NodeId> lackers;
  std::vector<NodeId> requesters;
};

std::vector<Candidate> collectCandidates(std::span<const DownloadPeer> peers,
                                         const PopularityFn& popularityOf) {
  // Union of every piece held by a contributing member.
  std::map<PieceKey, Candidate> byKey;
  for (const DownloadPeer& peer : peers) {
    if (peer.pieces == nullptr || !peer.contributes) continue;
    for (FileId file : peer.pieces->files()) {
      const std::uint32_t count = peer.pieces->pieceCount(file);
      for (std::uint32_t p = 0; p < count; ++p) {
        if (!peer.pieces->hasPiece(file, p)) continue;
        auto& cand = byKey[PieceKey{file, p}];
        cand.key = PieceKey{file, p};
        cand.holders.push_back(peer.id);
      }
    }
  }
  std::vector<Candidate> out;
  out.reserve(byKey.size());
  for (auto& [key, cand] : byKey) {
    cand.popularity = popularityOf(key.file);
    for (const DownloadPeer& peer : peers) {
      if (peer.pieces != nullptr &&
          peer.pieces->hasPiece(key.file, key.piece)) {
        continue;
      }
      cand.lackers.push_back(peer.id);
      const bool wants = std::find(peer.wanted.begin(), peer.wanted.end(),
                                   key.file) != peer.wanted.end();
      if (wants) cand.requesters.push_back(peer.id);
    }
    if (cand.lackers.empty()) continue;
    out.push_back(std::move(cand));
  }
  return out;
}

std::vector<PieceBroadcast> planCooperative(
    std::span<const DownloadPeer> peers, const PopularityFn& popularityOf,
    int budget, bool useRequestPhase, PushOrder pushOrder) {
  std::vector<Candidate> candidates = collectCandidates(peers, popularityOf);
  std::sort(candidates.begin(), candidates.end(),
            [useRequestPhase, pushOrder](const Candidate& a,
                                         const Candidate& b) {
              if (useRequestPhase &&
                  a.requesters.size() != b.requesters.size()) {
                return a.requesters.size() > b.requesters.size();
              }
              if (pushOrder == PushOrder::kRarestFirst &&
                  a.holders.size() != b.holders.size()) {
                return a.holders.size() < b.holders.size();
              }
              if (a.popularity != b.popularity) {
                return a.popularity > b.popularity;
              }
              return a.key < b.key;  // pieces of a file flow in index order
            });
  std::vector<PieceBroadcast> plan;
  for (const Candidate& cand : candidates) {
    if (static_cast<int>(plan.size()) >= budget) break;
    PieceBroadcast b;
    b.sender = *std::min_element(cand.holders.begin(), cand.holders.end());
    b.file = cand.key.file;
    b.piece = cand.key.piece;
    b.requesters = cand.requesters;
    b.phase = cand.requesters.empty() ? 2 : 1;
    plan.push_back(std::move(b));
  }
  return plan;
}

std::vector<PieceBroadcast> planTitForTat(std::span<const DownloadPeer> peers,
                                          const PopularityFn& popularityOf,
                                          int budget) {
  std::vector<Candidate> candidates = collectCandidates(peers, popularityOf);
  std::unordered_map<NodeId, const DownloadPeer*> peerById;
  std::vector<NodeId> contributorIds;
  for (const DownloadPeer& peer : peers) {
    peerById[peer.id] = &peer;
    if (peer.contributes) contributorIds.push_back(peer.id);
  }
  if (contributorIds.empty()) return {};
  const std::vector<NodeId> order(
      cyclicOrder(std::span<const NodeId>(contributorIds)));

  std::vector<PieceBroadcast> plan;
  std::set<PieceKey> sent;
  std::size_t turn = 0;
  int idleTurns = 0;
  while (static_cast<int>(plan.size()) < budget &&
         idleTurns < static_cast<int>(order.size())) {
    const NodeId sender = order[turn % order.size()];
    ++turn;
    const DownloadPeer& senderPeer = *peerById.at(sender);
    const Candidate* best = nullptr;
    double bestWeight = -1.0;
    for (const Candidate& cand : candidates) {
      if (sent.contains(cand.key)) continue;
      if (std::find(cand.holders.begin(), cand.holders.end(), sender) ==
          cand.holders.end()) {
        continue;
      }
      double weight = cand.popularity;
      for (NodeId requester : cand.requesters) {
        weight += 1.0;  // a request always outranks a pure push
        weight += senderPeer.credits != nullptr
                      ? senderPeer.credits->credit(requester)
                      : 0.0;
      }
      if (best == nullptr || weight > bestWeight ||
          (weight == bestWeight && cand.key < best->key)) {
        best = &cand;
        bestWeight = weight;
      }
    }
    if (best == nullptr) {
      ++idleTurns;
      continue;
    }
    idleTurns = 0;
    sent.insert(best->key);
    PieceBroadcast b;
    b.sender = sender;
    b.file = best->key.file;
    b.piece = best->key.piece;
    b.requesters = best->requesters;
    b.phase = best->requesters.empty() ? 2 : 1;
    plan.push_back(std::move(b));
  }
  return plan;
}

}  // namespace

namespace {

void emitPlanned(obs::EngineObserver* observer, SimTime now,
                 std::size_t planned, int budget) {
  if (observer == nullptr) return;
  obs::SimEvent event;
  event.type = obs::SimEventType::kDownloadPlanned;
  event.time = now;
  event.extra = static_cast<std::uint32_t>(planned);
  event.value = static_cast<double>(budget);
  observer->onEvent(event);
}

}  // namespace

std::vector<PieceBroadcast> planDownload(std::span<const DownloadPeer> peers,
                                         const PopularityFn& popularityOf,
                                         int budgetPieces,
                                         Scheduling scheduling,
                                         PushOrder pushOrder,
                                         obs::EngineObserver* observer,
                                         SimTime now) {
  if (budgetPieces <= 0 || peers.size() < 2) return {};
  std::vector<PieceBroadcast> plan;
  switch (scheduling) {
    case Scheduling::kCooperative:
      plan = planCooperative(peers, popularityOf, budgetPieces,
                             /*useRequestPhase=*/true, pushOrder);
      break;
    case Scheduling::kTitForTat:
      plan = planTitForTat(peers, popularityOf, budgetPieces);
      break;
    case Scheduling::kPopularityOnly:
      plan = planCooperative(peers, popularityOf, budgetPieces,
                             /*useRequestPhase=*/false, pushOrder);
      break;
  }
  emitPlanned(observer, now, plan.size(), budgetPieces);
  return plan;
}

std::vector<PieceTransfer> planPairwiseDownload(
    std::span<const DownloadPeer> peers, const PopularityFn& popularityOf,
    int budgetPerPair, obs::EngineObserver* observer, SimTime now) {
  std::vector<PieceTransfer> plan;
  if (budgetPerPair <= 0 || peers.size() < 2) return plan;

  // Greedy matching by ascending id; a leftover odd member idles (it has no
  // link — the inefficiency the paper's broadcast scheme removes).
  std::vector<const DownloadPeer*> sorted;
  for (const DownloadPeer& peer : peers) sorted.push_back(&peer);
  std::sort(sorted.begin(), sorted.end(),
            [](const DownloadPeer* a, const DownloadPeer* b) {
              return a->id < b->id;
            });

  for (std::size_t i = 0; i + 1 < sorted.size(); i += 2) {
    const DownloadPeer& a = *sorted[i];
    const DownloadPeer& b = *sorted[i + 1];
    struct Option {
      PieceTransfer transfer;
      Popularity popularity = 0.0;
    };
    std::vector<Option> options;
    auto addOptions = [&](const DownloadPeer& from, const DownloadPeer& to) {
      if (!from.contributes || from.pieces == nullptr) return;
      for (FileId file : from.pieces->files()) {
        const std::uint32_t count = from.pieces->pieceCount(file);
        for (std::uint32_t p = 0; p < count; ++p) {
          if (!from.pieces->hasPiece(file, p)) continue;
          if (to.pieces != nullptr && to.pieces->hasPiece(file, p)) continue;
          Option opt;
          opt.transfer.sender = from.id;
          opt.transfer.receiver = to.id;
          opt.transfer.file = file;
          opt.transfer.piece = p;
          opt.transfer.requested =
              std::find(to.wanted.begin(), to.wanted.end(), file) !=
              to.wanted.end();
          opt.popularity = popularityOf(file);
          options.push_back(std::move(opt));
        }
      }
    };
    addOptions(a, b);
    addOptions(b, a);
    std::sort(options.begin(), options.end(),
              [](const Option& x, const Option& y) {
                if (x.transfer.requested != y.transfer.requested) {
                  return x.transfer.requested > y.transfer.requested;
                }
                if (x.popularity != y.popularity) {
                  return x.popularity > y.popularity;
                }
                if (x.transfer.file != y.transfer.file) {
                  return x.transfer.file < y.transfer.file;
                }
                if (x.transfer.piece != y.transfer.piece) {
                  return x.transfer.piece < y.transfer.piece;
                }
                return x.transfer.sender < y.transfer.sender;
              });
    // The pairwise link carries one piece per slot in either direction.
    const int take =
        std::min<int>(budgetPerPair, static_cast<int>(options.size()));
    for (int k = 0; k < take; ++k) {
      plan.push_back(options[static_cast<std::size_t>(k)].transfer);
    }
  }
  emitPlanned(observer, now, plan.size(), budgetPerPair);
  return plan;
}

}  // namespace hdtn::core
