// Legacy free-function entry points, kept as thin wrappers so existing
// call sites and tests keep working; the actual scheduling disciplines live
// behind the DownloadPlanner registry (download_planner.cpp).
#include "src/core/download.hpp"

#include <utility>

#include "src/core/download_planner.hpp"

namespace hdtn::core {

std::vector<std::string> CodedParams::validate() const {
  std::vector<std::string> errors;
  if (!(redundancy >= 0.0 && redundancy <= 4.0)) {
    errors.push_back("redundancy must be in [0, 4], got " +
                     std::to_string(redundancy));
  }
  if (!(sparsity > 0.0 && sparsity <= 1.0)) {
    errors.push_back("sparsity must be in (0, 1], got " +
                     std::to_string(sparsity));
  }
  return errors;
}

DownloadPlan planDownload(std::span<const DownloadPeer> peers,
                          const PopularityFn& popularityOf, int budgetPieces,
                          Scheduling scheduling, PushOrder pushOrder,
                          obs::EngineObserver* observer, SimTime now) {
  DownloadRequest request;
  request.peers = peers;
  request.popularityOf = &popularityOf;
  request.budgetPieces = budgetPieces;
  request.pushOrder = pushOrder;
  request.observer = observer;
  request.now = now;
  return downloadModeInfo(DownloadMode::kBroadcast, scheduling)
      .planner->plan(request);
}

std::vector<PieceTransfer> planPairwiseDownload(
    std::span<const DownloadPeer> peers, const PopularityFn& popularityOf,
    int budgetPerPair, obs::EngineObserver* observer, SimTime now) {
  DownloadRequest request;
  request.peers = peers;
  request.popularityOf = &popularityOf;
  request.budgetPieces = budgetPerPair;
  request.observer = observer;
  request.now = now;
  return std::move(downloadModeInfo(DownloadMode::kPairwise,
                                    Scheduling::kCooperative)
                       .planner->plan(request)
                       .transfers);
}

}  // namespace hdtn::core
