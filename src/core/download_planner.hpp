// The pluggable download-planner API and the single download-mode registry.
//
// Every download mode — cooperative, tit-for-tat, popularity-only,
// pairwise, coded — is one DownloadPlanner implementation plus one registry
// row. The registry is the only place a mode is spelled out: the engine
// resolves its planner from it, Scenario::apply and the hdtn_sim flags
// parse mode names through it, and the benches label series with its
// canonical names — so the string mapping round-trips by construction and
// adding a mode is one registration, not a switch per call site.
#pragma once

#include <span>
#include <string_view>

#include "src/core/download.hpp"

namespace hdtn::core {

/// Everything a planner may consult for one contact. Planners are pure:
/// same request, same plan.
struct DownloadRequest {
  std::span<const DownloadPeer> peers;
  const PopularityFn* popularityOf = nullptr;
  int budgetPieces = 0;
  PushOrder pushOrder = PushOrder::kPopularity;
  /// Coded-mode knobs; ignored by the named-piece planners.
  CodedParams coded;
  /// When set, the planner emits its kDownloadPlanned event at `now`.
  obs::EngineObserver* observer = nullptr;
  SimTime now = 0;
};

/// One download scheduling discipline. Implementations live behind the
/// registry; call sites never name a concrete planner type.
class DownloadPlanner {
 public:
  virtual ~DownloadPlanner() = default;
  [[nodiscard]] virtual DownloadPlan plan(
      const DownloadRequest& request) const = 0;
};

/// One registry row: the canonical mode name (scenario files, CLI flags,
/// bench labels, reports) and how the engine runs it.
struct DownloadModeInfo {
  const char* name;
  DownloadMode mode;
  /// The scheduling a broadcast-mode row selects; for pairwise/coded rows
  /// this is the value the name parses back to (cooperative), so that
  /// parse -> format round-trips for every row.
  Scheduling scheduling;
  const DownloadPlanner* planner;
};

/// All registered modes, in registration order.
[[nodiscard]] std::span<const DownloadModeInfo> downloadModeRegistry();

/// Row for a canonical name, or nullptr. Names: coop, tft, popularity,
/// pairwise, coded.
[[nodiscard]] const DownloadModeInfo* findDownloadMode(std::string_view name);

/// Row for an engine configuration (mode + scheduling). Every valid
/// configuration has exactly one row.
[[nodiscard]] const DownloadModeInfo& downloadModeInfo(DownloadMode mode,
                                                      Scheduling scheduling);

/// Canonical spelling of an engine configuration — the inverse of
/// findDownloadMode: findDownloadMode(downloadModeName(m, s)) names the
/// same planner.
[[nodiscard]] inline const char* downloadModeName(DownloadMode mode,
                                                 Scheduling scheduling) {
  return downloadModeInfo(mode, scheduling).name;
}

}  // namespace hdtn::core
